# Convenience targets for the repro library.

PYTHON ?= python3

.PHONY: install check test fuzz-smoke fuzz-campaign fuzz-distill bench bench-json bench-shards bench-partition bench-telemetry bench-tiled bench-replay bench-probes bench-quick examples lint clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || \
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# The pre-merge gate: byte-compile everything, run the tier-1 suite,
# and import-smoke every benchmark module (catches drift in the
# benchmark drivers without paying for a timed run).
check:
	PYTHONPATH=src $(PYTHON) -m compileall -q src
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -x -q
	@for bench in benchmarks/bench_*.py; do \
		echo "import $$bench"; \
		PYTHONPATH=src:benchmarks $(PYTHON) -c \
			"import importlib, os; \
			 importlib.import_module( \
			     os.path.splitext(os.path.basename('$$bench'))[0])" \
			|| exit 1; \
	done
	$(MAKE) bench-json REPRO_BENCH_SCALE=0.1
	$(MAKE) bench-shards REPRO_BENCH_SCALE=0.05 REPRO_BENCH_VECTORS=32 \
		REPRO_BENCH_FAULTS=96 REPRO_BENCH_WORKERS=1,2
	$(MAKE) bench-partition REPRO_BENCH_SCALE=0.05 \
		REPRO_BENCH_VECTORS=32 REPRO_BENCH_PARTITIONS=1,2,4
	$(MAKE) bench-telemetry
	$(MAKE) bench-tiled REPRO_BENCH_SCALE=0.05
	$(MAKE) bench-replay REPRO_BENCH_REPLAY_CYCLES=4000
	$(MAKE) bench-probes REPRO_BENCH_VECTORS=4096
	$(MAKE) fuzz-campaign
	@echo "check passed"

# Short differential-fuzzing campaign at a fixed seed; the exit code
# asserts that no technique/backend/execution-shape disagreement was
# found (a failure writes its shrunk reproducer to a temp corpus and
# fails the target).  The sampled lattice includes the partitioned
# execution axis (monolithic vs. barrier-engine identity).
fuzz-smoke:
	@tmp=$$(mktemp -d) && \
	PYTHONPATH=src $(PYTHON) -m repro.cli fuzz --seed 1990 \
		--budget-seconds 20 --corpus $$tmp/corpus && \
	rm -rf $$tmp

# The continuous campaign (~120 s budget): deterministic coverage
# preamble over every execution surface (scalar, batched, packed,
# tiled, laned-shift, partitioned, sequential replay w/ restore,
# probed, faults), random lattice exploration for the rest of the
# budget, then the perf oracles against a machine-calibrated envelope.
# --perf auto enforces the throughput floors except under CI=1 or on
# <4-CPU machines, where measurements reflect contention, not code —
# there the oracle still measures and prints flags (observe-only).
fuzz-campaign:
	@tmp=$$(mktemp -d) && \
	PYTHONPATH=src $(PYTHON) -m repro.cli fuzz campaign --seed 1990 \
		--budget-seconds 90 --corpus $$tmp/corpus --perf auto \
		--envelope $$tmp/envelope.json \
		--perf-artifacts $$tmp/artifacts && \
	rm -rf $$tmp

# Dry-run corpus distillation: shows which committed reproducers are
# subsumed (smaller entries covering the same lattice point) and
# asserts losslessness.  Re-run with APPLY=1 to delete them.
fuzz-distill:
	PYTHONPATH=src $(PYTHON) -m repro.cli fuzz distill \
		--corpus fuzz-corpus $(if $(APPLY),--apply,)

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Reduced-scale packed-throughput measurement: refreshes
# benchmarks/results/packed_throughput.{txt,json} and the repo-root
# BENCH_packed.json snapshot, then schema-validates the emitted JSON.
# Scale/vector knobs pass through the REPRO_BENCH_* environment.
bench-json:
	PYTHONPATH=src:benchmarks $(PYTHON) benchmarks/bench_packed_throughput.py

# Reduced-scale sharded fault grading: refreshes
# benchmarks/results/sharded_faults.{txt,json} and the repo-root
# BENCH_shards.json snapshot, asserting every merged report is
# bit-identical to the single-process run (the speedup floor applies
# only on hosts with >= 4 CPUs).  Knobs: REPRO_BENCH_{SCALE,VECTORS,
# FAULTS,WORKERS,BACKEND}.
bench-shards:
	PYTHONPATH=src:benchmarks $(PYTHON) benchmarks/bench_sharded_faults.py

# Reduced-scale partitioned-simulation measurement: refreshes
# benchmarks/results/partition.{txt,json} and the repo-root
# BENCH_partition.json snapshot, asserting every partitioned run is
# bit-identical to the monolithic engine and the cut is deterministic
# (the speedup floor applies only on >= 4 CPUs with the C backend).
# Knobs: REPRO_BENCH_{SCALE,VECTORS,PARTITIONS,BACKEND} and
# REPRO_BENCH_PARTITION_CIRCUIT.
bench-partition:
	PYTHONPATH=src:benchmarks $(PYTHON) benchmarks/bench_partition.py

# Telemetry overhead budgets: refreshes
# benchmarks/results/telemetry_overhead.{txt,json} and the repo-root
# BENCH_telemetry.json snapshot, asserting disabled instrumentation
# costs <= 2% and enabled <= 5% on the packed C-backend workload.
bench-telemetry:
	PYTHONPATH=src:benchmarks $(PYTHON) benchmarks/bench_telemetry_overhead.py

# Lane-tiling measurement: refreshes
# benchmarks/results/tiled_throughput.{txt,json} and the repo-root
# BENCH_tiled.json snapshot, asserting the K-tile packed and laned
# shift runs are bit-identical to the untiled ones on every backend
# (the speedup floors — tiled >= single-word packed, laned shift
# >= 2x the scalar chain — apply on the C backend only).
bench-tiled:
	PYTHONPATH=src:benchmarks $(PYTHON) benchmarks/bench_tiled.py

# Sequential replay measurement: refreshes
# benchmarks/results/replay.{txt,json} and the repo-root
# BENCH_replay.json snapshot, asserting replay throughput clears the
# cycles/s floor, checkpoint -> restore -> continue is bit-identical
# to the uninterrupted run on every engine and backend, and a
# single-gate edit recompiles only its own fanin cone (warm rebuild
# faster than cold on the C backend).  Knobs:
# REPRO_BENCH_REPLAY_{CYCLES,BITS} and REPRO_BENCH_BACKEND.
bench-replay:
	PYTHONPATH=src:benchmarks $(PYTHON) benchmarks/bench_replay.py

# Compiled-in probe overhead: refreshes
# benchmarks/results/probes.{txt,json} and the repo-root
# BENCH_probes.json snapshot, asserting the probes-off (<= 2%) and
# probes-on (<= 25%) budgets on the batched C path and that the
# instrumented fast path's ActivityReport is bit-identical to the
# history-based scalar reference.  Knobs: REPRO_BENCH_{SCALE,VECTORS}.
bench-probes:
	PYTHONPATH=src:benchmarks $(PYTHON) benchmarks/bench_probes.py

bench-quick:
	REPRO_BENCH_SUITE=c432,c880 REPRO_BENCH_VECTORS=64 \
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

examples:
	for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done
	@echo "all examples ran"

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks build dist *.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
