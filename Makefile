# Convenience targets for the repro library.

PYTHON ?= python3

.PHONY: install test bench bench-quick examples lint clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || \
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-quick:
	REPRO_BENCH_SUITE=c432,c880 REPRO_BENCH_VECTORS=64 \
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

examples:
	for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done
	@echo "all examples ran"

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks build dist *.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
