"""``python -m repro`` entry point — dispatches to :mod:`repro.cli`.

Equivalent to the installed ``repro-sim`` console script.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
