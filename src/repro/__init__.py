"""repro — unit-delay compiled logic simulation.

A from-scratch reproduction of Peter M. Maurer, *Two New Techniques for
Unit-Delay Compiled Simulation* (DAC 1990): the PC-set method, the
bit-parallel "parallel technique", bit-field trimming, and both
shift-elimination algorithms (path tracing and cycle breaking), together
with every substrate the evaluation needs — a gate-level netlist model
with ISCAS85 ``.bench`` I/O, levelization/PC-set/network-graph analyses,
interpreted event-driven and zero-delay baselines, a zero-delay LCC
compiler, and a benchmark harness reproducing every table of the paper.

Quickstart::

    from repro import CircuitBuilder, ParallelSimulator

    b = CircuitBuilder("demo")
    a, x, c = b.inputs("A", "B", "C")
    d = b.and_("D", a, x)
    b.outputs(b.and_("E", d, c))
    circuit = b.build()

    sim = ParallelSimulator(circuit, optimization="pathtrace")
    sim.reset([0, 0, 0])
    history = sim.apply_vector_history([1, 1, 1])

See DESIGN.md for the paper-to-module map and EXPERIMENTS.md for the
reproduced tables.
"""

from repro.errors import (
    AlignmentError,
    BackendError,
    BenchFormatError,
    CodegenError,
    CyclicCircuitError,
    NetlistError,
    ReproError,
    SimulationError,
    VectorError,
)
from repro.logic import GateType, X
from repro.netlist import (
    Circuit,
    CircuitBuilder,
    Gate,
    Net,
    SequentialCircuit,
    break_at_flipflops,
    fanin_cone,
    parse_bench,
    parse_bench_file,
    propagate_constants,
    prune_dead_logic,
    write_bench,
)
from repro.netlist.bench import parse_bench_sequential
from repro.netlist.iscas85 import ISCAS85_SPECS, load_circuit, make_circuit, make_suite
from repro.analysis import (
    Levelization,
    PCSets,
    UndirectedNetworkGraph,
    can_eliminate_all_shifts,
    compute_pc_sets,
    levelize,
)
from repro.analysis.stats import circuit_report
from repro.eventsim import EventDrivenSimulator, ZeroDelaySimulator, steady_state
from repro.eventsim.multidelay import MultiDelaySimulator
from repro.lcc import LCCSimulator, generate_lcc_program
from repro.pcset import (
    MultiVectorPCSetSimulator,
    PCSetSimulator,
    generate_pcset_program,
)
from repro.parallel import (
    Alignment,
    ParallelSimulator,
    cycle_breaking_alignment,
    generate_aligned_program,
    generate_parallel_program,
    path_tracing_alignment,
)
from repro.hazards import HazardKind, classify_field, find_hazards
from repro.seqsim import CompiledSequentialSimulator
from repro.verify import EquivalenceResult, check_equivalence
from repro.waveform import VCDWriter, write_vcd
from repro.activity import ActivityCollector, ActivityReport, collect_activity
from repro.faults import (
    Fault,
    FaultReport,
    ParallelFaultSimulator,
    TestSet,
    compact_tests,
    full_fault_list,
    generate_tests,
    inject_stuck_at,
    run_fault_simulation,
    serial_fault_simulation,
)
from repro.harness import build_simulator, cross_validate, random_vectors

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "NetlistError",
    "CyclicCircuitError",
    "BenchFormatError",
    "SimulationError",
    "VectorError",
    "CodegenError",
    "BackendError",
    "AlignmentError",
    # logic & netlist
    "GateType",
    "X",
    "Circuit",
    "CircuitBuilder",
    "Gate",
    "Net",
    "SequentialCircuit",
    "CompiledSequentialSimulator",
    "break_at_flipflops",
    "fanin_cone",
    "propagate_constants",
    "prune_dead_logic",
    "parse_bench",
    "parse_bench_file",
    "parse_bench_sequential",
    "write_bench",
    "ISCAS85_SPECS",
    "make_circuit",
    "make_suite",
    "load_circuit",
    # analysis
    "Levelization",
    "levelize",
    "PCSets",
    "compute_pc_sets",
    "UndirectedNetworkGraph",
    "can_eliminate_all_shifts",
    "circuit_report",
    # simulators
    "EventDrivenSimulator",
    "MultiDelaySimulator",
    "ZeroDelaySimulator",
    "steady_state",
    "LCCSimulator",
    "generate_lcc_program",
    "PCSetSimulator",
    "MultiVectorPCSetSimulator",
    "generate_pcset_program",
    "ParallelSimulator",
    "generate_parallel_program",
    "generate_aligned_program",
    "Alignment",
    "path_tracing_alignment",
    "cycle_breaking_alignment",
    # hazards & harness
    "HazardKind",
    "classify_field",
    "find_hazards",
    "build_simulator",
    "cross_validate",
    "random_vectors",
    "VCDWriter",
    "write_vcd",
    "ActivityCollector",
    "ActivityReport",
    "collect_activity",
    "Fault",
    "FaultReport",
    "ParallelFaultSimulator",
    "full_fault_list",
    "inject_stuck_at",
    "run_fault_simulation",
    "serial_fault_simulation",
    "TestSet",
    "compact_tests",
    "generate_tests",
    "EquivalenceResult",
    "check_equivalence",
    "__version__",
]
