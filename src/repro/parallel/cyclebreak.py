"""The cycle-breaking shift-elimination algorithm (§4, Figs. 13-16).

A depth-first search of the undirected network graph removes the most
recently traversed edge whenever a cycle is found (i.e. keeps a
spanning forest and discards the back edges).  A second traversal over
the surviving tree assigns alignments by the Fig. 15 rules:

- from a net aligned ``a``: gates driving it get ``a``; gates reading
  it get ``a + 1``;
- from a gate aligned ``a``: its output nets get ``a``; its input nets
  get ``a - 1``.

Every removed (back) edge whose implied constraint disagrees with the
assigned alignments becomes a retained shift; multi-bit and left shifts
are both possible, and the bit-field can expand dramatically (Fig. 14)
— which is exactly why the paper finds this algorithm loses to
path-tracing on realistic circuits despite removing the minimum number
of edges.

A final normalization pass slides all alignments down by one constant
so that every net's alignment is at or below its minlevel (strictly
below for left-shifted nets), per the paper's "second pass".
"""

from __future__ import annotations

from typing import Optional

from repro import telemetry
from repro.analysis.graph import Edge, UndirectedNetworkGraph, Vertex
from repro.analysis.levelize import Levelization, levelize
from repro.netlist.circuit import Circuit
from repro.parallel.alignment import Alignment

__all__ = ["cycle_breaking_alignment", "spanning_forest"]


def spanning_forest(
    graph: UndirectedNetworkGraph,
) -> tuple[dict[Vertex, list[Edge]], list[Edge]]:
    """DFS spanning forest of the undirected network graph.

    Returns ``(tree_adjacency, removed_edges)``: the adjacency lists of
    the kept (tree) edges, and the back edges the DFS removed — "when a
    cycle is found, the most recently traversed edge is removed" (§4).
    """
    tree: dict[Vertex, list[Edge]] = {v: [] for v in graph.adjacency}
    removed: list[Edge] = []
    visited: set[Vertex] = set()
    seen_edges: set[int] = set()
    for root in graph.adjacency:
        if root in visited:
            continue
        visited.add(root)
        stack: list[Vertex] = [root]
        while stack:
            vertex = stack.pop()
            for edge in graph.adjacency[vertex]:
                if edge.key in seen_edges:
                    continue
                seen_edges.add(edge.key)
                other = edge.other(vertex)
                if other in visited:
                    removed.append(edge)
                else:
                    visited.add(other)
                    tree[vertex].append(edge)
                    tree[other].append(edge)
                    stack.append(other)
    return tree, removed


def cycle_breaking_alignment(
    circuit: Circuit, levels: Optional[Levelization] = None
) -> Alignment:
    """Compute alignments with the §4 cycle-breaking algorithm."""
    with telemetry.span("align", algorithm="cyclebreak",
                        circuit=circuit.name):
        return _cycle_breaking_alignment(circuit, levels)


def _cycle_breaking_alignment(
    circuit: Circuit, levels: Optional[Levelization] = None
) -> Alignment:
    if levels is None:
        levels = levelize(circuit)
    minlevel = levels.net_minlevels
    graph = UndirectedNetworkGraph(circuit)
    tree, _removed = spanning_forest(graph)

    net_align: dict[str, int] = {}
    gate_align: dict[str, int] = {}
    assigned: set[Vertex] = set()

    po_set = list(circuit.outputs)

    def component_root(start: Vertex) -> tuple[Vertex, int]:
        """Pick the component's root: its first primary output if any.

        Falls back to the first net vertex encountered; alignment starts
        at the root net's minimum PC-set value (= minlevel).
        """
        component: list[Vertex] = []
        seen = {start}
        stack = [start]
        while stack:
            vertex = stack.pop()
            component.append(vertex)
            for edge in tree[vertex]:
                other = edge.other(vertex)
                if other not in seen:
                    seen.add(other)
                    stack.append(other)
        nets_in_component = {
            name for kind, name in component if kind == "net"
        }
        for po in po_set:
            if po in nets_in_component:
                return ("net", po), minlevel[po]
        for vertex in component:
            if vertex[0] == "net":
                return vertex, minlevel[vertex[1]]
        # A gates-only component is impossible (every gate touches nets).
        raise AssertionError("component without net vertices")

    for start in graph.adjacency:
        if start in assigned:
            continue
        root, root_value = component_root(start)
        stack2: list[tuple[Vertex, int]] = [(root, root_value)]
        while stack2:
            vertex, value = stack2.pop()
            if vertex in assigned:
                continue
            assigned.add(vertex)
            kind, name = vertex
            if kind == "net":
                net_align[name] = value
            else:
                gate_align[name] = value
            for edge in tree[vertex]:
                other = edge.other(vertex)
                if other in assigned:
                    continue
                if kind == "net":
                    # Gates driving the net share its alignment; gates
                    # reading it sit one later.
                    child = value if edge.role == "output" else value + 1
                else:
                    child = value if edge.role == "output" else value - 1
                stack2.append((other, child))

    alignment = Alignment(
        circuit, net_align, gate_align, "cyclebreak", levels
    )
    alignment.normalize()
    alignment.validate()
    return alignment
