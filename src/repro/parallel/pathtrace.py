"""The path-tracing shift-elimination algorithm (§4, Fig. 17).

A min-relaxation sweep from the primary outputs up toward the primary
inputs: a net aligned at ``x`` pulls its driving gate to ``x``; a gate
aligned at ``x`` pulls its inputs to ``x - 1``; only strictly smaller
values propagate.  Properties proved in the paper and enforced here by
tests:

- alignments only ever move *up* the network, so the bit-field never
  widens (and may shrink);
- every gate ends up aligned with its output and every net with at
  least one reader, so fanout-free regions simulate without shifts;
- all residual shifts are right shifts.
"""

from __future__ import annotations

from typing import Optional

from repro import telemetry
from repro.analysis.levelize import Levelization, levelize
from repro.netlist.circuit import Circuit
from repro.parallel.alignment import Alignment

__all__ = ["path_tracing_alignment"]

_INFINITY = 10**9


def path_tracing_alignment(
    circuit: Circuit, levels: Optional[Levelization] = None
) -> Alignment:
    """Compute alignments with the Fig. 17 path-tracing algorithm.

    The sweep starts from every primary output, aligned to its minimum
    PC-set value (= its minlevel); any sink nets that are not monitored
    are processed afterwards so the whole circuit gets aligned.
    """
    with telemetry.span("align", algorithm="pathtrace",
                        circuit=circuit.name):
        return _path_tracing_alignment(circuit, levels)


def _path_tracing_alignment(
    circuit: Circuit, levels: Optional[Levelization] = None
) -> Alignment:
    if levels is None:
        levels = levelize(circuit)
    minlevel = levels.net_minlevels

    net_align: dict[str, int] = {n: _INFINITY for n in circuit.nets}
    gate_align: dict[str, int] = {g: _INFINITY for g in circuit.gates}

    # Iterative worklist version of the mutually recursive
    # net_align()/gate_align() procedures of Fig. 17.
    stack: list[tuple[str, str, int]] = []

    def relax_net(net_name: str, new_alignment: int) -> None:
        if new_alignment < net_align[net_name]:
            net_align[net_name] = new_alignment
            driver = circuit.nets[net_name].driver
            if driver is not None:
                stack.append(("gate", driver, new_alignment))

    def relax_gate(gate_name: str, new_alignment: int) -> None:
        if new_alignment < gate_align[gate_name]:
            gate_align[gate_name] = new_alignment
            for in_net in circuit.gates[gate_name].inputs:
                stack.append(("net", in_net, new_alignment - 1))

    starts = list(circuit.outputs)
    starts += [
        net_name
        for net_name, net in circuit.nets.items()
        if not net.fanout and net_name not in set(circuit.outputs)
    ]
    for start in starts:
        relax_net(start, minlevel[start])
        while stack:
            kind, name, value = stack.pop()
            if kind == "gate":
                relax_gate(name, value)
            else:
                relax_net(name, value)

    # Unreached items can only be nets/gates with no path to any sink,
    # which cannot exist in a finite acyclic circuit; guard anyway.
    for net_name, value in net_align.items():
        if value >= _INFINITY:
            net_align[net_name] = minlevel[net_name]
    for gate_name, value in gate_align.items():
        if value >= _INFINITY:
            gate_align[gate_name] = net_align[
                circuit.gates[gate_name].output
            ]

    alignment = Alignment(
        circuit, net_align, gate_align, "pathtrace", levels
    )
    alignment.normalize()
    alignment.validate()
    return alignment
