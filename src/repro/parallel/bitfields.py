"""Bit-field layout for the parallel technique.

A net's bit-field maps simulation times to bit positions: bit ``i``
holds the net's value at time ``i + alignment``.  The unoptimized
technique (§3) uses alignment 0 and one common width (depth + 1) for
every net; shift elimination (§4) gives each net its own alignment and
width (``level - alignment + 1``).  Widths are rounded up to whole
machine words (Fig. 8).

Word classification for bit-field trimming (Fig. 9):

- ``LOW_FINAL`` — every time the word covers precedes the net's
  minlevel, so the whole word holds the previous vector's final value;
  filled once per vector during initialization.
- ``GAP`` — the word covers no PC-set representative; filled by
  replicating the high-order bit of the preceding word.
- ``ACTIVE`` — everything else: real simulation code is generated.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.analysis.levelize import Levelization
from repro.analysis.pcsets import PCSets
from repro.codegen.naming import NameAllocator
from repro.errors import CodegenError
from repro.netlist.circuit import Circuit

__all__ = ["WordClass", "FieldSpec", "FieldLayout"]


class WordClass(enum.Enum):
    ACTIVE = "active"
    GAP = "gap"
    LOW_FINAL = "low_final"


class FieldSpec:
    """Layout of one net's bit-field.

    Attributes
    ----------
    alignment:
        Time represented by bit 0.
    width:
        Used bits (before word rounding).
    num_words:
        Words after rounding up.
    words:
        Variable name per word, low-order first.
    classes:
        :class:`WordClass` per word (all ACTIVE when trimming is off).
    """

    __slots__ = ("net", "alignment", "width", "num_words", "words",
                 "classes")

    def __init__(
        self,
        net: str,
        alignment: int,
        width: int,
        num_words: int,
        words: list[str],
        classes: list[WordClass],
    ) -> None:
        self.net = net
        self.alignment = alignment
        self.width = width
        self.num_words = num_words
        self.words = words
        self.classes = classes

    @property
    def top(self) -> str:
        """Variable of the high-order word."""
        return self.words[-1]

    def bitpos(self, time: int) -> int:
        """Bit position of ``time`` in this field."""
        return time - self.alignment

    def __repr__(self) -> str:
        return (
            f"FieldSpec({self.net}, align={self.alignment}, "
            f"width={self.width}, words={self.num_words})"
        )


class FieldLayout:
    """Bit-field layout for every net of a circuit.

    Parameters
    ----------
    circuit, levels:
        The circuit and its levelization.
    word_width:
        Machine word size (the paper used 32).
    alignments:
        Per-net alignment (bit 0's time).  ``None`` means the
        unoptimized layout: alignment 0 and uniform width
        ``depth + 1`` for every net.
    pc_sets:
        Required when ``trimming`` so words can be classified.
    trimming:
        Enable word classification (otherwise everything is ACTIVE).
    """

    def __init__(
        self,
        circuit: Circuit,
        levels: Levelization,
        *,
        word_width: int = 32,
        alignments: Optional[dict[str, int]] = None,
        pc_sets: Optional[PCSets] = None,
        trimming: bool = False,
    ) -> None:
        if trimming and pc_sets is None:
            raise CodegenError("trimming requires PC-sets")
        self.circuit = circuit
        self.levels = levels
        self.word_width = word_width
        self.trimming = trimming
        self.uniform = alignments is None
        names = NameAllocator()
        self.fields: dict[str, FieldSpec] = {}

        depth = levels.depth
        for net_name in circuit.nets:
            if alignments is None:
                alignment = 0
                width = depth + 1
            else:
                alignment = alignments[net_name]
                width = levels.net_levels[net_name] - alignment + 1
            if width < 1:
                raise CodegenError(
                    f"net {net_name!r}: non-positive field width {width}"
                )
            num_words = -(-width // word_width)
            base = names.get(net_name)
            if num_words == 1:
                words = [base]
            else:
                words = [f"{base}_{j}" for j in range(num_words)]
            classes = self._classify(
                net_name, alignment, num_words, pc_sets
            )
            self.fields[net_name] = FieldSpec(
                net_name, alignment, width, num_words, words, classes
            )

    # ------------------------------------------------------------------
    def _classify(
        self,
        net_name: str,
        alignment: int,
        num_words: int,
        pc_sets: Optional[PCSets],
    ) -> list[WordClass]:
        if not self.trimming:
            return [WordClass.ACTIVE] * num_words
        assert pc_sets is not None
        w = self.word_width
        minlevel = self.levels.net_minlevels[net_name]
        reps = pc_sets.raw_net_pc_sets[net_name]
        rep_words = {(t - alignment) // w for t in reps}
        classes: list[WordClass] = []
        for j in range(num_words):
            top_time = alignment + (j + 1) * w - 1
            if top_time < minlevel:
                classes.append(WordClass.LOW_FINAL)
            elif j not in rep_words:
                classes.append(WordClass.GAP)
            else:
                classes.append(WordClass.ACTIVE)
        # The top word always holds the level representative, so a
        # fully-trimmed net (all LOW_FINAL) cannot occur for driven
        # nets; primary inputs have minlevel 0 and are all ACTIVE.
        return classes

    # ------------------------------------------------------------------
    def field(self, net_name: str) -> FieldSpec:
        return self.fields[net_name]

    def word_index(self, net_name: str, time: int) -> tuple[int, int]:
        """(word, bit-in-word) of ``time`` for a net."""
        pos = self.fields[net_name].bitpos(time)
        return pos // self.word_width, pos % self.word_width

    def total_words(self) -> int:
        """Total state words over all nets (memory cost)."""
        return sum(spec.num_words for spec in self.fields.values())

    def max_width(self) -> int:
        """Widest field (the Fig. 22 quantity)."""
        return max(spec.width for spec in self.fields.values())

    def max_words(self) -> int:
        return max(spec.num_words for spec in self.fields.values())

    def __repr__(self) -> str:
        return (
            f"FieldLayout({self.circuit.name!r}, W={self.word_width}, "
            f"max_width={self.max_width()}, words={self.total_words()})"
        )
