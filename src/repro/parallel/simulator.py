"""The parallel-technique simulator facade.

Selects a variant (unoptimized, trimming, path-tracing, cycle-breaking,
or path-tracing + trimming), compiles it on a backend, and exposes the
common simulator interface plus bit-field history decoding.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.codegen.packing import packing_mode
from repro.codegen.probes import ProbeSpec, instrument_parallel_program
from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.parallel.codegen import generate_parallel_program
from repro.simbase import CompiledSimulator

__all__ = ["ParallelSimulator", "OPTIMIZATIONS"]

#: Recognized optimization selectors.
OPTIMIZATIONS = (
    "none",
    "trim",
    "pathtrace",
    "cyclebreak",
    "pathtrace+trim",
)


class ParallelSimulator(CompiledSimulator):
    """Compiled unit-delay simulation via the parallel technique (§3-§4).

    Parameters
    ----------
    optimization:
        One of :data:`OPTIMIZATIONS`.  ``"none"`` is the plain §3
        technique; ``"trim"`` adds bit-field trimming; ``"pathtrace"``
        and ``"cyclebreak"`` are the §4 shift-elimination algorithms;
        ``"pathtrace+trim"`` is the Fig. 24 combination.
    backend:
        ``"python"`` or ``"c"``.
    word_width:
        Bits per machine word (8, 16, 32 or 64; the paper used 32).
    probes:
        Compile per-net toggle counters into the generated pass
        (``True`` for every net, an iterable of net names, or a
        :class:`~repro.codegen.probes.ProbeSpec`); read them with the
        inherited ``activity_report()``.  A net's bit-field *is* its
        settling history, so counting is a popcount of adjacent-bit
        differences — available on the time-aligned layouts
        (optimization ``"none"`` or ``"trim"``) only.

    Multi-vector traffic should go through the inherited batch API —
    ``apply_vectors`` for outputs, ``run_batch``/``prepare_batch`` +
    ``run_prepared`` for timing — which keeps the vector loop inside
    the generated code on both backends.  The per-vector methods below
    (``apply_vector_history``, ``output_trace``) stay scalar because
    they decode the machine *state* between vectors.
    """

    def __init__(
        self,
        circuit: Circuit,
        *,
        optimization: str = "none",
        backend: str = "python",
        word_width: int = 32,
        monitored: Optional[list[str]] = None,
        with_outputs: bool = True,
        comments: bool = False,
        probes=None,
        **backend_kwargs,
    ) -> None:
        if optimization not in OPTIMIZATIONS:
            raise SimulationError(
                f"unknown optimization {optimization!r}; "
                f"choose from {OPTIMIZATIONS}"
            )
        self.optimization = optimization
        if optimization in ("none", "trim"):
            program, layout = generate_parallel_program(
                circuit,
                word_width=word_width,
                trimming=(optimization == "trim"),
                monitored=monitored,
                emit_outputs=with_outputs,
                comments=comments,
            )
            self.alignment = None
        else:
            from repro.parallel.aligned_codegen import (
                generate_aligned_program,
            )
            from repro.parallel.cyclebreak import cycle_breaking_alignment
            from repro.parallel.pathtrace import path_tracing_alignment

            if optimization.startswith("pathtrace"):
                alignment = path_tracing_alignment(circuit)
            else:
                alignment = cycle_breaking_alignment(circuit)
            program, layout = generate_aligned_program(
                circuit,
                alignment,
                word_width=word_width,
                trimming=optimization.endswith("+trim"),
                monitored=monitored,
                emit_outputs=with_outputs,
                comments=comments,
            )
            self.alignment = alignment
        self.layout = layout
        self.monitored = (
            list(monitored) if monitored is not None else circuit.outputs
        )
        self.depth = layout.levels.depth
        spec = ProbeSpec.coerce(probes)
        plan = None
        base_mode = None
        if spec is not None:
            if optimization not in ("none", "trim"):
                raise SimulationError(
                    "probes require the time-aligned field layout "
                    "(optimization 'none' or 'trim'), not "
                    f"{optimization!r}"
                )
            base_mode = packing_mode(
                program if with_outputs else program.without_output()
            )
            plan = instrument_parallel_program(
                program, layout, circuit, spec
            )
        super().__init__(
            circuit,
            program,
            backend=backend,
            with_outputs=with_outputs,
            probe_plan=plan,
            packing_override=base_mode,
            **backend_kwargs,
        )

    # ------------------------------------------------------------------
    def _encode_state(self, settled: Mapping[str, int]) -> list[int]:
        # A steady state is flat in time: replicate each net's settled
        # value through every word of its field.
        mask = self.program.word_mask
        words: list[int] = []
        for net_name in self.circuit.nets:
            fill = (-(settled[net_name] & 1)) & mask
            words.extend([fill] * self.layout.field(net_name).num_words)
        return words

    # ------------------------------------------------------------------
    def _state_words(self) -> dict[str, list[int]]:
        """Current field words per net, decoded from machine state."""
        state = self.machine.dump_state()
        result: dict[str, list[int]] = {}
        cursor = 0
        for net_name in self.circuit.nets:
            count = self.layout.field(net_name).num_words
            result[net_name] = state[cursor:cursor + count]
            cursor += count
        return result

    def _old_finals(self) -> dict[str, int]:
        """Previous settled value per net (high-order bit of each field)."""
        w = self.layout.word_width
        return {
            net_name: (words[-1] >> (w - 1)) & 1
            for net_name, words in self._state_words().items()
        }

    def history_from_state(
        self, old_finals: Optional[Mapping[str, int]] = None
    ) -> dict[str, list[tuple[int, int]]]:
        """Change history of every net, decoded from the bit-fields.

        Valid right after :meth:`apply_vector`; directly comparable to
        the event-driven simulator's recorded histories.  For aligned
        fields whose bit 0 sits at the net's minlevel, the time-0 value
        is not represented in the field any more; pass ``old_finals``
        (captured with :meth:`_old_finals` *before* stepping) to recover
        it exactly.
        """
        w = self.layout.word_width
        histories: dict[str, list[tuple[int, int]]] = {}
        minlevels = self.layout.levels.net_minlevels
        for net_name, words in self._state_words().items():
            spec = self.layout.field(net_name)
            changes: list[tuple[int, int]] = []
            for time in range(self.depth + 1):
                pos = spec.bitpos(time)
                if pos < 0:
                    # Below the field: alignment is below minlevel there,
                    # so the net holds its time-0 value; skip to the
                    # first represented time.
                    continue
                if pos >= spec.num_words * w:
                    break
                value = (words[pos // w] >> (pos % w)) & 1
                if not changes:
                    changes.append((time, value))
                elif value != changes[-1][1]:
                    changes.append((time, value))
            if changes and changes[0][0] != 0:
                first_time, first_value = changes[0]
                if first_time < minlevels[net_name]:
                    # Provably still the time-0 value.
                    changes[0] = (0, first_value)
                elif old_finals is not None:
                    start = old_finals[net_name]
                    if start == first_value:
                        changes[0] = (0, first_value)
                    else:
                        changes.insert(0, (0, start))
                else:
                    # Best effort without the previous state: bit 0 can
                    # only sit at a time <= minlevel, and at minlevel
                    # the value may be a genuine change we cannot date.
                    changes[0] = (0, first_value)
            histories[net_name] = changes
        return histories

    def apply_vector_history(
        self, vector: Mapping[str, int] | Sequence[int]
    ) -> dict[str, list[tuple[int, int]]]:
        """Simulate one vector and decode every net's change history."""
        old_finals = self._old_finals()
        self.apply_vector(vector)
        return self.history_from_state(old_finals)

    def final_values(self) -> dict[str, int]:
        """Settled values of the monitored nets after the last vector."""
        w = self.layout.word_width
        state = self._state_words()
        result: dict[str, int] = {}
        for net_name in self.monitored:
            spec = self.layout.field(net_name)
            pos = spec.bitpos(self.layout.levels.net_levels[net_name])
            result[net_name] = (state[net_name][pos // w] >> (pos % w)) & 1
        return result

    def output_trace(
        self, vector: Mapping[str, int] | Sequence[int]
    ) -> list[tuple[int, dict[str, int]]]:
        """Simulate one vector; return per-time monitored values.

        One entry per time unit 0..depth (the sliding-mask trace of §3).
        """
        self.apply_vector(vector)
        history = self.history_from_state()
        trace: list[tuple[int, dict[str, int]]] = []
        current = {
            net_name: history[net_name][0][1] for net_name in self.monitored
        }
        cursors = {net_name: 0 for net_name in self.monitored}
        for time in range(self.depth + 1):
            for net_name in self.monitored:
                changes = history[net_name]
                cursor = cursors[net_name]
                while (cursor + 1 < len(changes)
                       and changes[cursor + 1][0] <= time):
                    cursor += 1
                cursors[net_name] = cursor
                current[net_name] = changes[cursor][1]
            trace.append((time, dict(current)))
        return trace
