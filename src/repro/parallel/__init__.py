"""The parallel technique of compiled unit-delay simulation (§3-§4).

Each net gets an ``n``-bit bit-field (``n`` = circuit depth + 1); bit
``t`` holds the net's value at time ``t``.  One bit-parallel logic
operation plus one left shift simulates every time step of a gate at
once.  Fields wider than the machine word are split into words (Fig. 8).

Optimizations:

- :mod:`repro.parallel.trimming` helpers + the ``trimming=True`` mode of
  the generator — word-level elimination of computation driven by
  PC-sets (Fig. 9);
- :mod:`repro.parallel.pathtrace` / :mod:`repro.parallel.cyclebreak` —
  the two shift-elimination algorithms of §4, consumed by
  :mod:`repro.parallel.aligned_codegen`.

:class:`~repro.parallel.simulator.ParallelSimulator` is the facade that
selects a variant and a backend.
"""

from repro.parallel.bitfields import FieldLayout, FieldSpec, WordClass
from repro.parallel.codegen import generate_parallel_program
from repro.parallel.alignment import Alignment
from repro.parallel.pathtrace import path_tracing_alignment
from repro.parallel.cyclebreak import cycle_breaking_alignment
from repro.parallel.aligned_codegen import generate_aligned_program
from repro.parallel.simulator import ParallelSimulator

__all__ = [
    "FieldLayout",
    "FieldSpec",
    "WordClass",
    "generate_parallel_program",
    "Alignment",
    "path_tracing_alignment",
    "cycle_breaking_alignment",
    "generate_aligned_program",
    "ParallelSimulator",
]
