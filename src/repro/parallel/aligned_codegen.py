"""Code generation for the shift-eliminated parallel technique (§4).

With per-net alignments the gate result is *already aligned* with its
output field (the unit delay is absorbed by condition 4), so no shift
follows a gate evaluation; instead each reader aligns its operands —
"shifts are done at the inputs of a gate rather than the outputs"
(Fig. 18).  Right shifts replicate the high-order bit into the vacated
positions (the settled value); left shifts replicate bit 0 (the
previous vector's value, guaranteed available because left-shifted nets
are aligned strictly below their minlevel).

Initialization shrinks to the primary inputs (negative alignments fill
the bits of negative index with the previous value, §4) — unless
bit-field trimming is also on, in which case the low-order words
without PC-set representatives are re-initialized from the previous
final value, exactly as §5 notes for the Fig. 24 combination.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro import telemetry
from repro.analysis.pcsets import compute_pc_sets
from repro.codegen.gates import gate_expression
from repro.codegen.program import (
    Assign,
    Bin,
    Comment,
    Const,
    Emit,
    Expr,
    Input,
    Program,
    Un,
    Var,
)
from repro.errors import CodegenError
from repro.logic import GateType
from repro.netlist.circuit import Circuit
from repro.parallel.alignment import Alignment
from repro.parallel.bitfields import FieldLayout, FieldSpec, WordClass

__all__ = ["generate_aligned_program"]


def generate_aligned_program(
    circuit: Circuit,
    alignment: Alignment,
    *,
    word_width: int = 32,
    trimming: bool = False,
    monitored: Optional[Iterable[str]] = None,
    emit_outputs: bool = True,
    output_mode: str = "words",
    comments: bool = False,
) -> tuple[Program, FieldLayout]:
    """Generate the shift-eliminated program for ``circuit``.

    ``alignment`` comes from :func:`~repro.parallel.pathtrace.
    path_tracing_alignment` or :func:`~repro.parallel.cyclebreak.
    cycle_breaking_alignment`.  Returns ``(program, layout)``.
    """
    if output_mode not in ("words", "bits"):
        raise CodegenError(f"unknown output mode: {output_mode!r}")
    with telemetry.span("emit", technique="parallel-aligned",
                        trimming=trimming, circuit=circuit.name):
        return _generate_aligned_program(
            circuit, alignment, word_width=word_width, trimming=trimming,
            monitored=monitored, emit_outputs=emit_outputs,
            output_mode=output_mode, comments=comments,
        )


def _generate_aligned_program(
    circuit: Circuit,
    alignment: Alignment,
    *,
    word_width: int,
    trimming: bool,
    monitored: Optional[Iterable[str]],
    emit_outputs: bool,
    output_mode: str,
    comments: bool,
) -> tuple[Program, FieldLayout]:
    alignment.validate()
    monitored_list = (
        list(monitored) if monitored is not None else circuit.outputs
    )
    levels = alignment.levels
    pc = compute_pc_sets(circuit, levels)
    layout = FieldLayout(
        circuit,
        levels,
        word_width=word_width,
        alignments=alignment.alignments_dict(),
        pc_sets=pc,
        trimming=trimming,
    )
    w = word_width
    # Same cross-pass contract as the unaligned generator: masked
    # assignments plus finals-only state dependence (see
    # repro.parallel.codegen), so state_carry="finals" applies here too.
    program = Program(
        f"parallel_{circuit.name}_{alignment.algorithm}"
        + ("_trim" if trimming else ""),
        word_width=w,
        inputs=circuit.inputs,
        mask_assignments=True,
        state_carry="finals",
    )

    const_nets: dict[str, int] = {}
    for gate in circuit.gates.values():
        if gate.gate_type is GateType.CONST0:
            const_nets[gate.output] = 0
        elif gate.gate_type is GateType.CONST1:
            const_nets[gate.output] = program.word_mask
    for net_name in circuit.nets:
        for word in layout.field(net_name).words:
            program.declare(word, const_nets.get(net_name, 0))
    t_old = program.declare_temp("t_old")

    _generate_init(
        program, circuit, layout, const_nets, t_old, comments
    )
    _generate_body(
        program, circuit, levels, layout, alignment, const_nets, comments
    )
    if emit_outputs:
        _generate_outputs(
            program, layout, monitored_list, levels.depth, output_mode
        )
    program.validate()
    return program, layout


# ----------------------------------------------------------------------
# initialization
# ----------------------------------------------------------------------
def _generate_init(
    program: Program,
    circuit: Circuit,
    layout: FieldLayout,
    const_nets: dict[str, int],
    t_old: str,
    comments: bool,
) -> None:
    w = layout.word_width
    if comments:
        program.init.append(Comment("primary-input reads"))
    for slot, net_name in enumerate(circuit.inputs):
        spec = layout.field(net_name)
        zero_bit = spec.bitpos(0)  # index of time 0 (= -alignment >= 0)
        if zero_bit == 0:
            for word in spec.words:
                program.init.append(Assign(word, Un("-", Input(slot))))
            continue
        # Bits below the time-0 index keep the previous value (taken
        # from the settled high-order bit), bits at or above it get the
        # new value (§4's negative-alignment rule).
        program.init.append(
            Assign(t_old, Bin("sar", Var(spec.top), Const(w - 1)))
        )
        for j, word in enumerate(spec.words):
            low = zero_bit - j * w  # first new bit within this word
            if low >= w:
                program.init.append(Assign(word, Var(t_old)))
            elif low <= 0:
                program.init.append(Assign(word, Un("-", Input(slot))))
            else:
                old_part = Bin("&", Var(t_old), Const((1 << low) - 1))
                new_part = Bin("<<", Un("-", Input(slot)), Const(low))
                program.init.append(
                    Assign(word, Bin("|", old_part, new_part))
                )
    if not layout.trimming:
        return
    if comments:
        program.init.append(Comment("trimmed low-word re-initialization"))
    for net_name, net in circuit.nets.items():
        if net.driver is None or net_name in const_nets:
            continue
        spec = layout.field(net_name)
        first_low = None
        for j, cls in enumerate(spec.classes):
            if cls is WordClass.LOW_FINAL:
                if first_low is None:
                    first_low = j
                    program.init.append(
                        Assign(spec.words[j],
                               Bin("sar", Var(spec.top), Const(w - 1)))
                    )
                else:
                    program.init.append(
                        Assign(spec.words[j], Var(spec.words[first_low]))
                    )


# ----------------------------------------------------------------------
# gate bodies
# ----------------------------------------------------------------------
def _extract_word(
    spec: FieldSpec, start_bit: int, w: int
) -> Expr:
    """W bits of a net's field starting at (possibly out-of-range)
    ``start_bit``.

    Bits above the field replicate the high-order bit (the settled
    value) — realized with the arithmetic shift ``sar``, one
    instruction, exactly the paper's "replicated from the high-order
    bit".  Bits below bit 0 replicate bit 0 (the previous vector's
    value — legal only for left-shifted nets, which the alignment pass
    keeps strictly below their minlevel).
    """
    n = spec.num_words
    q, r = divmod(start_bit, w)

    def word_at(m: int) -> Expr:
        if 0 <= m < n:
            return Var(spec.words[m])
        if m >= n:
            return Bin("sar", Var(spec.top), Const(w - 1))
        return Un("-", Bin("&", Var(spec.words[0]), Const(1)))

    if r == 0:
        return word_at(q)
    if q >= n:
        # Entirely above the field: replicated settled value.
        return Bin("sar", Var(spec.top), Const(w - 1))
    if q == n - 1:
        # Straddles the top: one arithmetic shift does shift + replicate.
        return Bin("sar", Var(spec.top), Const(r))
    if q < -1:
        # Entirely below the field: replicated previous value.
        return word_at(-1)
    low = word_at(q)
    high = word_at(q + 1)
    return Bin("|", Bin(">>", low, Const(r)),
               Bin("<<", high, Const(w - r)))


def _generate_body(
    program: Program,
    circuit: Circuit,
    levels,
    layout: FieldLayout,
    alignment: Alignment,
    const_nets: dict[str, int],
    comments: bool,
) -> None:
    w = layout.word_width
    ordered = sorted(
        circuit.topological_gates(),
        key=lambda g: levels.gate_levels[g.name],
    )
    for gate in ordered:
        if gate.fan_in == 0:
            continue
        out_spec = layout.field(gate.output)
        in_specs = [layout.field(n) for n in gate.inputs]
        shifts = [
            alignment.input_shift(gate.name, n) for n in gate.inputs
        ]
        if comments:
            shift_note = ",".join(str(s) for s in shifts)
            program.body.append(
                Comment(
                    f"{gate.gate_type.value} {gate.name} -> {gate.output}"
                    f" (input shifts {shift_note})"
                )
            )
        for j in range(out_spec.num_words):
            cls = out_spec.classes[j]
            if cls is WordClass.LOW_FINAL:
                continue  # re-initialized per vector
            word = out_spec.words[j]
            if cls is WordClass.GAP:
                program.body.append(
                    Assign(word, Bin("sar", Var(out_spec.words[j - 1]),
                                     Const(w - 1)))
                )
                continue
            operands = [
                _extract_word(spec, j * w + shift, w)
                for spec, shift in zip(in_specs, shifts)
            ]
            program.body.append(
                Assign(word, gate_expression(gate.gate_type, operands))
            )


def _generate_outputs(
    program: Program,
    layout: FieldLayout,
    monitored: list[str],
    depth: int,
    output_mode: str,
) -> None:
    if output_mode == "words":
        for net_name in monitored:
            spec = layout.field(net_name)
            for j, word in enumerate(spec.words):
                program.output.append(Emit(Var(word), (net_name, j)))
        return
    for time in range(depth + 1):
        for net_name in monitored:
            spec = layout.field(net_name)
            pos = max(0, spec.bitpos(time))
            program.output.append(
                Emit(
                    Bin("&", Bin(">>", Var(spec.words[pos // layout.word_width]),
                                 Const(pos % layout.word_width)), Const(1)),
                    (net_name, time),
                )
            )
