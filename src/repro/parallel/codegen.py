"""Code generation for the parallel technique (§3) and bit-field
trimming (§4, Fig. 9).

Unoptimized layout: every net gets a ``depth + 1``-bit field aligned at
time 0, rounded up to machine words.  Per vector:

- *init*: primary-input fields are filled with the new value in every
  bit; every other field moves its high-order bit (the previous final
  value) into bit 0;
- *body*: per gate in levelized order, a bit-parallel evaluation
  followed by a one-bit left shift ORed over the output field
  (Figs. 5-8);
- *output*: the bit-fields of the monitored nets (word mode), or the
  per-time sliding-mask samples (bit mode).

With ``trimming=True``, words classified LOW_FINAL/GAP by
:class:`~repro.parallel.bitfields.FieldLayout` are filled by bit
replication instead of being simulated and shifted, exactly as Fig. 9
describes.  The only subtlety beyond the paper's prose is the carry bit
into an ACTIVE word whose predecessor was trimmed: when the time at the
word boundary is itself a potential change of the net, the carry is
computed from the inputs' high-order bits rather than taken from the
(then stale) predecessor word.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro import telemetry
from repro.analysis.levelize import levelize
from repro.analysis.pcsets import compute_pc_sets
from repro.codegen.gates import gate_expression
from repro.codegen.program import (
    Assign,
    Bin,
    Comment,
    Const,
    Emit,
    Expr,
    Input,
    Program,
    Un,
    Var,
)
from repro.errors import CodegenError
from repro.logic import GateType
from repro.netlist.circuit import Circuit
from repro.parallel.bitfields import FieldLayout, WordClass

__all__ = ["generate_parallel_program"]


def generate_parallel_program(
    circuit: Circuit,
    *,
    word_width: int = 32,
    trimming: bool = False,
    monitored: Optional[Iterable[str]] = None,
    emit_outputs: bool = True,
    output_mode: str = "words",
    comments: bool = False,
) -> tuple[Program, FieldLayout]:
    """Generate the (un)trimmed parallel-technique program.

    Returns ``(program, layout)``.  ``output_mode`` is ``"words"``
    (emit each monitored net's field words; fast, decoded host-side) or
    ``"bits"`` (emit one value per net per time unit — the paper's
    sliding-mask trace printer).
    """
    if output_mode not in ("words", "bits"):
        raise CodegenError(f"unknown output mode: {output_mode!r}")
    with telemetry.span("emit", technique="parallel",
                        trimming=trimming, circuit=circuit.name):
        return _generate_parallel_program(
            circuit, word_width=word_width, trimming=trimming,
            monitored=monitored, emit_outputs=emit_outputs,
            output_mode=output_mode, comments=comments,
        )


def _generate_parallel_program(
    circuit: Circuit,
    *,
    word_width: int,
    trimming: bool,
    monitored: Optional[Iterable[str]],
    emit_outputs: bool,
    output_mode: str,
    comments: bool,
) -> tuple[Program, FieldLayout]:
    monitored_list = (
        list(monitored) if monitored is not None else circuit.outputs
    )
    levels = levelize(circuit)
    pc = compute_pc_sets(circuit, levels) if trimming else None
    layout = FieldLayout(
        circuit,
        levels,
        word_width=word_width,
        pc_sets=pc,
        trimming=trimming,
    )
    w = word_width
    # state_carry="finals": every word carries the previous vector's
    # settled finals in its top bit, and masked assignments keep the
    # rest of the word derived from those finals — so re-seeding from
    # the settled state reproduces a pass bit for bit.  This is what
    # makes shift programs eligible for per-lane packed execution.
    program = Program(
        f"parallel_{circuit.name}" + ("_trim" if trimming else ""),
        word_width=w,
        inputs=circuit.inputs,
        mask_assignments=True,
        state_carry="finals",
    )

    # Declarations.  Constant nets hold their value in every bit and are
    # never touched again.
    const_nets: dict[str, int] = {}
    for gate in circuit.gates.values():
        if gate.gate_type is GateType.CONST0:
            const_nets[gate.output] = 0
        elif gate.gate_type is GateType.CONST1:
            const_nets[gate.output] = program.word_mask
    for net_name in circuit.nets:
        spec = layout.field(net_name)
        for word in spec.words:
            program.declare(word, const_nets.get(net_name, 0))

    num_words = layout.max_words()
    temps = [program.declare_temp(f"tmp{j}") for j in range(num_words)]

    _generate_init(program, circuit, layout, const_nets, comments)
    _generate_body(
        program, circuit, levels, layout, pc, temps, const_nets, comments
    )
    if emit_outputs:
        _generate_outputs(
            program, layout, monitored_list, levels.depth, output_mode
        )
    program.validate()
    return program, layout


def _generate_init(
    program: Program,
    circuit: Circuit,
    layout: FieldLayout,
    const_nets: dict[str, int],
    comments: bool,
) -> None:
    w = layout.word_width
    if comments:
        program.init.append(Comment("per-vector field initialization"))
    for slot, net_name in enumerate(circuit.inputs):
        spec = layout.field(net_name)
        # Primary inputs change only at time 0: every bit gets the new
        # value (0/1 replicated by two's-complement negation).
        for word in spec.words:
            program.init.append(Assign(word, Un("-", Input(slot))))
    for net_name, net in circuit.nets.items():
        if net.driver is None or net_name in const_nets:
            continue
        spec = layout.field(net_name)
        top = Var(spec.top)
        if spec.classes[0] is WordClass.LOW_FINAL:
            # Whole low word(s) hold the previous final value.
            program.init.append(
                Assign(spec.words[0], Bin("sar", top, Const(w - 1)))
            )
            for j in range(1, spec.num_words):
                if spec.classes[j] is WordClass.LOW_FINAL:
                    program.init.append(
                        Assign(spec.words[j], Var(spec.words[0]))
                    )
        else:
            # Previous final value (high-order bit) into bit 0.
            program.init.append(
                Assign(spec.words[0], Bin(">>", top, Const(w - 1)))
            )


def _generate_body(
    program: Program,
    circuit: Circuit,
    levels,
    layout: FieldLayout,
    pc,
    temps: list[str],
    const_nets: dict[str, int],
    comments: bool,
) -> None:
    w = layout.word_width
    ordered = sorted(
        circuit.topological_gates(),
        key=lambda g: levels.gate_levels[g.name],
    )
    for gate in ordered:
        if gate.fan_in == 0:
            continue
        out_spec = layout.field(gate.output)
        in_specs = [layout.field(n) for n in gate.inputs]
        if comments:
            program.body.append(
                Comment(
                    f"{gate.gate_type.value} {gate.name} -> {gate.output}"
                )
            )

        def word_expr(j: int) -> Expr:
            return gate_expression(
                gate.gate_type, [Var(s.words[j]) for s in in_specs]
            )

        if not layout.trimming:
            _emit_untrimmed(program, gate, out_spec, word_expr, temps, w)
        else:
            _emit_trimmed(
                program, gate, out_spec, word_expr, in_specs, pc, temps, w
            )


def _emit_untrimmed(
    program: Program, gate, out_spec, word_expr, temps: list[str], w: int
) -> None:
    n = out_spec.num_words
    if n == 1:
        # Fig. 6 form: C = C | ((A & B) << 1);
        out = out_spec.words[0]
        program.body.append(
            Assign(out, Bin("|", Var(out), Bin("<<", word_expr(0), Const(1))))
        )
        return
    # Fig. 8 form: temps, carries, shifted ORs.
    for j in range(n):
        program.body.append(Assign(temps[j], word_expr(j)))
    for j in range(1, n):
        program.body.append(
            Assign(out_spec.words[j],
                   Bin(">>", Var(temps[j - 1]), Const(w - 1)))
        )
    for j in range(n):
        out = out_spec.words[j]
        program.body.append(
            Assign(out, Bin("|", Var(out),
                            Bin("<<", Var(temps[j]), Const(1))))
        )


def _emit_trimmed(
    program: Program,
    gate,
    out_spec,
    word_expr,
    in_specs,
    pc,
    temps: list[str],
    w: int,
) -> None:
    net_name = gate.output
    reps = set(pc.raw_net_pc_sets[net_name])
    classes = out_spec.classes
    n = out_spec.num_words
    if n == 1 and classes[0] is WordClass.ACTIVE:
        # Single-word fields cannot be trimmed ("it has no effect on
        # circuits whose bit-fields fit in a single word", §4): emit the
        # exact unoptimized Fig. 6 form.
        _emit_untrimmed(program, gate, out_spec, word_expr, temps, w)
        return
    # Which temps are needed: an ACTIVE word needs its own temp; the
    # carry into word j reuses temp j-1 only if word j-1 is ACTIVE.
    for j in range(n):
        if classes[j] is not WordClass.ACTIVE:
            continue
        program.body.append(Assign(temps[j], word_expr(j)))
    for j in range(n):
        word = out_spec.words[j]
        cls = classes[j]
        if cls is WordClass.LOW_FINAL:
            continue  # filled during initialization
        if cls is WordClass.GAP:
            # Replicate the high-order bit of the preceding word.
            program.body.append(
                Assign(word, Bin("sar", Var(out_spec.words[j - 1]),
                                 Const(w - 1)))
            )
            continue
        # ACTIVE: carry bit, then the shifted OR.
        if j == 0:
            program.body.append(
                Assign(word, Bin("|", Var(word),
                                 Bin("<<", Var(temps[0]), Const(1))))
            )
            continue
        boundary_time = j * w  # time of this word's bit 0 (alignment 0)
        if classes[j - 1] is WordClass.ACTIVE:
            carry: Expr = Bin(">>", Var(temps[j - 1]), Const(w - 1))
        elif boundary_time in reps:
            # The boundary is a potential change: the predecessor word
            # was trimmed, so compute f(inputs at boundary-1) from the
            # inputs' high-order bits.
            operands = [
                Bin(">>", Var(s.words[j - 1]), Const(w - 1))
                for s in in_specs
            ]
            carry = Bin(
                "&",
                gate_expression(gate.gate_type, operands),
                Const(1),
            )
        else:
            # No change possible at the boundary: the value carries over
            # from the (already filled) predecessor word.
            carry = Bin(">>", Var(out_spec.words[j - 1]), Const(w - 1))
        program.body.append(Assign(word, carry))
        program.body.append(
            Assign(word, Bin("|", Var(word),
                             Bin("<<", Var(temps[j]), Const(1))))
        )


def _generate_outputs(
    program: Program,
    layout: FieldLayout,
    monitored: list[str],
    depth: int,
    output_mode: str,
) -> None:
    if output_mode == "words":
        for net_name in monitored:
            spec = layout.field(net_name)
            for j, word in enumerate(spec.words):
                program.output.append(Emit(Var(word), (net_name, j)))
        return
    # Sliding-mask trace: one emitted value per (net, time).
    for time in range(depth + 1):
        for net_name in monitored:
            word_index, bit = layout.word_index(net_name, time)
            spec = layout.field(net_name)
            program.output.append(
                Emit(
                    Bin("&", Bin(">>", Var(spec.words[word_index]),
                                 Const(bit)), Const(1)),
                    (net_name, time),
                )
            )
