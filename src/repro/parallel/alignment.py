"""Net/gate alignments for shift elimination (§4).

An *alignment* gives every net and every gate the time represented by
bit 0 of its bit-field.  Shifts vanish when conditions 1-4 of §4 hold
along an edge; where they cannot hold, a residual shift remains.  In
this implementation all residual shifts are realized *at gate inputs*
(Fig. 18): a net's stored field is aligned with its driving gate, and a
reader at gate ``g`` shifts the operand by ``(align(g) - 1) -
stored_align(net)`` — positive amounts are right shifts (the only kind
path-tracing produces), negative are left shifts (possible with
cycle-breaking).

:class:`Alignment` owns the numbers, the width formula
``level - alignment + 1`` (Fig. 22), retained-shift counting (Fig. 21),
and the §4 normalization pass that slides every alignment down by a
constant so no change is ever lost and left shifts can be fed from the
previous vector's value.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.analysis.levelize import Levelization, levelize
from repro.errors import AlignmentError
from repro.netlist.circuit import Circuit

__all__ = ["Alignment", "unoptimized_shift_count"]


def unoptimized_shift_count(circuit: Circuit) -> int:
    """Shifts the unoptimized parallel technique performs: one per gate.

    This is the first column of Fig. 21.
    """
    return circuit.num_gates


class Alignment:
    """Alignments produced by a shift-elimination algorithm.

    Attributes
    ----------
    net_align / gate_align:
        The raw assignments of the algorithm.
    algorithm:
        ``"pathtrace"`` or ``"cyclebreak"`` (for reports).
    """

    def __init__(
        self,
        circuit: Circuit,
        net_align: dict[str, int],
        gate_align: dict[str, int],
        algorithm: str,
        levels: Optional[Levelization] = None,
    ) -> None:
        self.circuit = circuit
        self.net_align = net_align
        self.gate_align = gate_align
        self.algorithm = algorithm
        self.levels = levels if levels is not None else levelize(circuit)

    # ------------------------------------------------------------------
    def stored_align(self, net_name: str) -> int:
        """Alignment of the net's *stored* field.

        Driven nets are stored exactly as their driver computes them
        (shifts happen at the readers), so their stored alignment is the
        driving gate's; primary inputs use their own.
        """
        driver = self.circuit.nets[net_name].driver
        if driver is None:
            return self.net_align[net_name]
        return self.gate_align[driver]

    def input_shift(self, gate_name: str, net_name: str) -> int:
        """Shift a reader applies: positive = right, negative = left."""
        return (self.gate_align[gate_name] - 1) - self.stored_align(net_name)

    def iter_input_shifts(self) -> Iterator[tuple[str, str, int]]:
        """Yield ``(gate, input_net, shift)`` for every input pin."""
        for gate in self.circuit.gates.values():
            for net_name in gate.inputs:
                yield gate.name, net_name, self.input_shift(
                    gate.name, net_name
                )

    def retained_shifts(self) -> int:
        """Number of input pins whose shift is non-zero (Fig. 21)."""
        return sum(
            1 for _g, _n, shift in self.iter_input_shifts() if shift != 0
        )

    def has_left_shifts(self) -> bool:
        return any(shift < 0 for _g, _n, shift in self.iter_input_shifts())

    # ------------------------------------------------------------------
    def width(self, net_name: str) -> int:
        """Required bit-field width: ``level - alignment + 1`` (§4)."""
        return (
            self.levels.net_levels[net_name]
            - self.stored_align(net_name)
            + 1
        )

    def max_width(self) -> int:
        """The widest field — the Fig. 22 quantity."""
        return max(self.width(n) for n in self.circuit.nets)

    def words(self, net_name: str, word_width: int = 32) -> int:
        return -(-self.width(net_name) // word_width)

    def max_words(self, word_width: int = 32) -> int:
        return max(self.words(n, word_width) for n in self.circuit.nets)

    # ------------------------------------------------------------------
    def normalize(self) -> int:
        """Slide all alignments down so previous-vector values line up.

        Ensures every net's stored alignment is <= its minlevel (no
        potential change falls below bit 0), strictly below it for nets
        read with a left shift (the shifted-in bits must hold the
        previous vector's value, §4).  Subtracting one constant from
        every net and gate alignment preserves all shift amounts.
        Returns the constant subtracted.
        """
        delta = 0
        minlevels = self.levels.net_minlevels
        left_shifted = {
            net_name
            for _g, net_name, shift in self.iter_input_shifts()
            if shift < 0
        }
        for net_name in self.circuit.nets:
            bound = minlevels[net_name]
            if net_name in left_shifted:
                bound -= 1
            excess = self.stored_align(net_name) - bound
            if excess > delta:
                delta = excess
        if delta:
            for net_name in self.net_align:
                self.net_align[net_name] -= delta
            for gate_name in self.gate_align:
                self.gate_align[gate_name] -= delta
        return delta

    def validate(self) -> None:
        """Check the invariants code generation relies on."""
        minlevels = self.levels.net_minlevels
        for net_name in self.circuit.nets:
            stored = self.stored_align(net_name)
            if stored > minlevels[net_name]:
                raise AlignmentError(
                    f"net {net_name!r}: stored alignment {stored} above "
                    f"minlevel {minlevels[net_name]} — changes would be "
                    f"lost"
                )
        for gate_name, net_name, shift in self.iter_input_shifts():
            if shift < 0:
                stored = self.stored_align(net_name)
                if stored > minlevels[net_name] - 1:
                    raise AlignmentError(
                        f"net {net_name!r} read with a left shift at "
                        f"{gate_name!r} but its alignment {stored} is not "
                        f"strictly below its minlevel "
                        f"{minlevels[net_name]}"
                    )

    def alignments_dict(self) -> dict[str, int]:
        """Stored alignment per net (what the field layout consumes)."""
        return {
            net_name: self.stored_align(net_name)
            for net_name in self.circuit.nets
        }

    def __repr__(self) -> str:
        return (
            f"Alignment({self.algorithm}, {self.circuit.name!r}: "
            f"{self.retained_shifts()} retained shifts, "
            f"max width {self.max_width()})"
        )
