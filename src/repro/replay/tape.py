"""On-disk clocked stimulus tapes.

A tape is the simplest thing that streams: a text file with two header
lines and one fixed-width line of ``0``/``1`` characters per clock
cycle::

    #repro-tape v1
    #inputs EN,D0,D1
    010
    110
    ...

Column ``k`` of every line is the value of the ``k``-th declared input
that cycle.  Fixed-width lines make the format seekable in O(1):
cycle ``c`` starts at byte ``data_start + c * (num_inputs + 1)``, which
is what lets checkpoint/restore resume mid-tape without rescanning,
and lets million-cycle tapes replay in bounded memory.  The same
layout doubles as the *output* stream format (columns = external
outputs), so two replays are bit-compared with a file compare.
"""

from __future__ import annotations

import os
import random
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from repro.errors import SimulationError

__all__ = ["Tape", "TapeError", "write_tape", "random_tape"]

TAPE_MAGIC = "#repro-tape v1"


class TapeError(SimulationError):
    """Malformed tape file or out-of-range access."""


class Tape:
    """A stimulus tape opened for random-access reading.

    Attributes
    ----------
    inputs:
        Declared input names, in column order.
    cycles:
        Number of stimulus lines (derived from the file size — no scan).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        with open(path, "rb") as handle:
            magic = handle.readline().decode("ascii", "replace")
            if magic.rstrip("\n") != TAPE_MAGIC:
                raise TapeError(
                    f"{path}: not a stimulus tape "
                    f"(expected {TAPE_MAGIC!r} header)"
                )
            names = handle.readline().decode("ascii", "replace")
            if not names.startswith("#inputs"):
                raise TapeError(f"{path}: missing '#inputs' header line")
            declared = names[len("#inputs"):].strip()
            self.inputs = (
                [n for n in declared.split(",") if n] if declared else []
            )
            self._data_start = handle.tell()
        self._line_width = len(self.inputs) + 1  # trailing newline
        size = os.path.getsize(path)
        payload = size - self._data_start
        if payload % self._line_width:
            raise TapeError(
                f"{path}: truncated tape — {payload} data bytes is not "
                f"a multiple of the {self._line_width}-byte line"
            )
        self.cycles = payload // self._line_width
        self._handle = None

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Tape":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _file(self):
        if self._handle is None:
            self._handle = open(self.path, "rb")
        return self._handle

    # ------------------------------------------------------------------
    def read(self, start: int, count: int) -> list[list[int]]:
        """``count`` stimulus vectors starting at cycle ``start``.

        Each vector is a plain 0/1 list in ``inputs`` column order —
        exactly what ``CompiledSequentialSimulator`` accepts.
        """
        if start < 0 or start + count > self.cycles:
            raise TapeError(
                f"{self.path}: cycles [{start}, {start + count}) out of "
                f"range (tape has {self.cycles})"
            )
        handle = self._file()
        handle.seek(self._data_start + start * self._line_width)
        blob = handle.read(count * self._line_width)
        width = len(self.inputs)
        rows: list[list[int]] = []
        for c in range(count):
            base = c * self._line_width
            line = blob[base:base + width]
            row = []
            for ch in line:
                if ch == 0x30:
                    row.append(0)
                elif ch == 0x31:
                    row.append(1)
                else:
                    raise TapeError(
                        f"{self.path}: bad character {chr(ch)!r} at "
                        f"cycle {start + c}"
                    )
            rows.append(row)
        return rows

    def chunks(
        self,
        chunk_cycles: int,
        *,
        start: int = 0,
        end: Optional[int] = None,
    ) -> Iterator[tuple[int, list[list[int]]]]:
        """Yield ``(first_cycle, vectors)`` windows of the tape."""
        stop = self.cycles if end is None else min(end, self.cycles)
        cursor = start
        while cursor < stop:
            n = min(chunk_cycles, stop - cursor)
            yield cursor, self.read(cursor, n)
            cursor += n

    def __repr__(self) -> str:
        return (
            f"Tape({self.path!r}: {len(self.inputs)} inputs, "
            f"{self.cycles} cycles)"
        )


def _row_bits(
    row: "Mapping[str, int] | Sequence[int]",
    inputs: list[str],
    cycle: int,
) -> str:
    if isinstance(row, Mapping):
        try:
            values = [row[n] for n in inputs]
        except KeyError as exc:
            raise TapeError(
                f"cycle {cycle}: vector missing input {exc.args[0]!r}"
            ) from None
    else:
        values = list(row)
        if len(values) != len(inputs):
            raise TapeError(
                f"cycle {cycle}: vector has {len(values)} values for "
                f"{len(inputs)} inputs"
            )
    for v in values:
        if v not in (0, 1):
            raise TapeError(
                f"cycle {cycle}: tape values must be 0 or 1, got {v!r}"
            )
    return "".join("1" if v else "0" for v in values)


def write_tape(
    path: str,
    inputs: Sequence[str],
    rows: Iterable["Mapping[str, int] | Sequence[int]"],
) -> int:
    """Write a stimulus tape; returns the number of cycles written.

    ``rows`` may be any iterable (a generator streams without
    materialising the tape in memory).
    """
    names = list(inputs)
    count = 0
    with open(path, "w") as handle:
        handle.write(f"{TAPE_MAGIC}\n")
        handle.write(f"#inputs {','.join(names)}\n")
        for row in rows:
            handle.write(_row_bits(row, names, count))
            handle.write("\n")
            count += 1
    return count


def random_tape(
    path: str,
    inputs: Sequence[str],
    cycles: int,
    *,
    seed: int = 0,
) -> Tape:
    """A seeded uniform-random stimulus tape (streamed to disk)."""
    rng = random.Random(seed)
    names = list(inputs)
    width = len(names)

    def rows():
        for _ in range(cycles):
            yield [rng.randint(0, 1) for _ in range(width)]

    write_tape(path, names, rows())
    return Tape(path)
