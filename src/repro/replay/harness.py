"""The replay driver: stream a tape through a clocked simulator.

``replay_tape`` clocks a :class:`CompiledSequentialSimulator` through a
stimulus :class:`Tape` in bounded-memory chunks, optionally writing a
checkpoint every N cycles and/or resuming from one.  Per-cycle work is
incremental: external outputs stream to an output tape (same fixed-width
line format as the stimulus, so runs are compared with a byte compare),
per-output toggle counts accumulate as coverage, and a rolling checksum
folds every output of every cycle — the one-number bit-identity witness
used by the tests and ``make bench-replay``.

Chunk boundaries are aligned to checkpoint boundaries, so a checkpoint
always lands *exactly* after its cycle regardless of chunk size — the
restore contract is "cycle C completed, cycle C+1 not started".
"""

from __future__ import annotations

import os
import time
from typing import Callable, Optional

from repro import telemetry
from repro.errors import SimulationError
from repro.replay.checkpoint import ReplayCheckpoint, load_checkpoint
from repro.replay.tape import TAPE_MAGIC, Tape

__all__ = ["ReplayResult", "replay_tape", "fold_outputs"]

_MASK64 = (1 << 64) - 1


def fold_outputs(checksum: int, bits: list[int]) -> int:
    """Fold one cycle's output bits into the rolling checksum.

    Rotate-then-xor over a 64-bit word: order-sensitive (swapped cycles
    change the sum) and cheap enough to run every cycle.
    """
    for bit in bits:
        checksum = (
            ((checksum << 1) | (checksum >> 63)) ^ bit
        ) & _MASK64
    return checksum


class ReplayResult:
    """Summary of one :func:`replay_tape` call."""

    __slots__ = (
        "cycles", "cycle", "checksum", "toggles", "seconds",
        "checkpoints", "resumed_from", "outputs_path", "vcd_path",
    )

    def __init__(
        self,
        *,
        cycles: int,
        cycle: int,
        checksum: int,
        toggles: dict[str, int],
        seconds: float,
        checkpoints: list[str],
        resumed_from: Optional[int],
        outputs_path: Optional[str],
        vcd_path: Optional[str] = None,
    ) -> None:
        self.cycles = cycles          # cycles executed by this call
        self.cycle = cycle            # final cycle count (tape offset)
        self.checksum = checksum
        self.toggles = toggles
        self.seconds = seconds
        self.checkpoints = checkpoints
        self.resumed_from = resumed_from
        self.outputs_path = outputs_path
        self.vcd_path = vcd_path

    @property
    def cycles_per_second(self) -> float:
        if self.seconds <= 0.0:
            return 0.0
        return self.cycles / self.seconds

    def as_dict(self) -> dict:
        return {
            "cycles": self.cycles,
            "cycle": self.cycle,
            "checksum": self.checksum,
            "toggles": dict(self.toggles),
            "seconds": self.seconds,
            "cycles_per_second": self.cycles_per_second,
            "checkpoints": list(self.checkpoints),
            "resumed_from": self.resumed_from,
            "outputs_path": self.outputs_path,
            "vcd_path": self.vcd_path,
        }

    def __repr__(self) -> str:
        return (
            f"ReplayResult(cycles={self.cycles}, "
            f"checksum={self.checksum:#018x}, "
            f"{self.cycles_per_second:.0f} cyc/s)"
        )


def replay_tape(
    sim,
    tape: Tape,
    *,
    checkpoint_every: int = 0,
    checkpoint_dir: Optional[str] = None,
    resume_from: "Optional[str | ReplayCheckpoint]" = None,
    chunk_cycles: int = 4096,
    outputs_path: Optional[str] = None,
    vcd_path: Optional[str] = None,
    vcd_nets: Optional[list[str]] = None,
    limit: Optional[int] = None,
    on_chunk: Optional[Callable[[int, int], None]] = None,
) -> ReplayResult:
    """Stream ``tape`` through ``sim`` (a CompiledSequentialSimulator).

    Parameters
    ----------
    checkpoint_every:
        Write a checkpoint after every N-th cycle (0 disables).
        Requires ``checkpoint_dir``; files are named
        ``checkpoint_{cycle:012d}.json``.
    resume_from:
        A checkpoint path (or loaded :class:`ReplayCheckpoint`).  The
        simulator state, cycle count, tape offset and summary
        accumulators all restore from it; the result of resumed
        segments concatenates bit-identically with the pre-checkpoint
        segment.
    chunk_cycles:
        Vectors per ``apply_vectors`` call — the memory bound.
    outputs_path:
        Stream per-cycle external outputs here, in tape line format
        (header names the output columns).  A resumed run writes only
        its own segment.
    vcd_path:
        Stream a waveform of per-cycle external outputs here (one VCD
        tick per cycle, incremental — nothing accumulates in memory).
        ``vcd_nets`` restricts the trace to a subset of the external
        outputs.  Checkpoints carry the writer's dedup state, so a
        resumed run *appends* its segment to the same file and the
        result is byte-identical to the uninterrupted run; the closing
        time marker is written only when the replay reaches the end of
        the tape.
    limit:
        Replay at most this many cycles (default: to the end of tape).
    on_chunk:
        Optional ``callback(cycle, total_cycles)`` after each chunk.
    """
    seq = sim.sequential
    if list(tape.inputs) != list(seq.external_inputs):
        raise SimulationError(
            f"tape inputs {tape.inputs[:5]} do not match circuit "
            f"external inputs {list(seq.external_inputs)[:5]}"
        )
    if checkpoint_every < 0:
        raise SimulationError("checkpoint_every must be >= 0")
    if checkpoint_every and not checkpoint_dir:
        raise SimulationError(
            "checkpoint_every requires checkpoint_dir"
        )
    if checkpoint_every:
        os.makedirs(checkpoint_dir, exist_ok=True)
    if chunk_cycles < 1:
        raise SimulationError("chunk_cycles must be >= 1")

    outputs = list(seq.external_outputs)
    vcd_columns: Optional[list[str]] = None
    if vcd_path is not None:
        vcd_columns = (
            list(vcd_nets) if vcd_nets is not None else list(outputs)
        )
        unknown = [n for n in vcd_columns if n not in set(outputs)]
        if unknown:
            raise SimulationError(
                "replay waveforms trace external outputs only; "
                f"unknown nets: {unknown[:5]}"
            )
        if not vcd_columns:
            raise SimulationError("vcd_nets must name at least one net")
    elif vcd_nets is not None:
        raise SimulationError("vcd_nets requires vcd_path")
    if resume_from is not None:
        cp = (
            resume_from
            if isinstance(resume_from, ReplayCheckpoint)
            else load_checkpoint(resume_from)
        )
        if cp.tape_inputs and cp.tape_inputs != list(tape.inputs):
            raise SimulationError(
                "checkpoint was taken against a tape with different "
                f"inputs ({cp.tape_inputs[:5]} != {tape.inputs[:5]})"
            )
        if cp.cycle > tape.cycles:
            raise SimulationError(
                f"checkpoint cycle {cp.cycle} is beyond the tape "
                f"({tape.cycles} cycles)"
            )
        sim.restore({"state": cp.state, "cycle": cp.cycle})
        checksum = cp.checksum
        toggles = {o: cp.toggles.get(o, 0) for o in outputs}
        prev = dict(cp.prev_outputs) if cp.prev_outputs else None
        start = cp.cycle
        resumed_from = cp.cycle
        telemetry.counter("seq.restores")
    else:
        sim.reset()
        checksum = 0
        toggles = {o: 0 for o in outputs}
        prev = None
        start = 0
        resumed_from = None

    end = tape.cycles if limit is None else min(start + limit, tape.cycles)
    checkpoints: list[str] = []
    out_stream = None
    vcd_stream = None
    vcd_writer = None
    t0 = time.perf_counter()
    try:
        if outputs_path is not None:
            out_stream = open(outputs_path, "w")
            out_stream.write(f"{TAPE_MAGIC}\n")
            out_stream.write(f"#inputs {','.join(outputs)}\n")
        if vcd_path is not None:
            from repro.waveform import VCDWriter

            if resume_from is not None:
                saved = cp.vcd
                if saved is None:
                    raise SimulationError(
                        "checkpoint carries no waveform writer state; "
                        "the checkpointing run must pass vcd_path too"
                    )
                if saved.get("nets") != vcd_columns:
                    raise SimulationError(
                        "vcd_nets do not match the checkpointed "
                        f"waveform ({saved.get('nets')} != "
                        f"{vcd_columns})"
                    )
                # Append this segment to the existing document.
                vcd_stream = open(vcd_path, "a")
                vcd_writer = VCDWriter(
                    0, vcd_columns, stream=vcd_stream
                )
                vcd_writer.restore_state(saved)
            else:
                vcd_stream = open(vcd_path, "w")
                vcd_writer = VCDWriter(
                    0, vcd_columns, stream=vcd_stream
                )
        with telemetry.span("seq.replay", engine=sim.engine):
            cursor = start
            while cursor < end:
                n = min(chunk_cycles, end - cursor)
                if checkpoint_every:
                    # Land exactly on the next checkpoint boundary.
                    boundary = (
                        (cursor // checkpoint_every) + 1
                    ) * checkpoint_every
                    n = min(n, boundary - cursor)
                rows = tape.read(cursor, n)
                for out in sim.apply_vectors(rows):
                    bits = [out[o] for o in outputs]
                    checksum = fold_outputs(checksum, bits)
                    if prev is not None:
                        for o in outputs:
                            if out[o] != prev[o]:
                                toggles[o] += 1
                    prev = out
                    if out_stream is not None:
                        out_stream.write(
                            "".join("1" if b else "0" for b in bits)
                        )
                        out_stream.write("\n")
                    if vcd_writer is not None:
                        vcd_writer.add_vector({
                            o: ((0, out[o]),) for o in vcd_columns
                        })
                cursor += n
                if (
                    checkpoint_every
                    and cursor % checkpoint_every == 0
                ):
                    cp = ReplayCheckpoint(
                        cycle=sim.cycle,
                        state=sim.state,
                        checksum=checksum,
                        toggles=toggles,
                        prev_outputs=prev,
                        tape_inputs=list(tape.inputs),
                        tape_cycles=tape.cycles,
                        circuit=seq.core.name,
                        engine=sim.engine,
                        vcd=(
                            vcd_writer.state()
                            if vcd_writer is not None else None
                        ),
                    )
                    path = os.path.join(
                        checkpoint_dir,
                        f"checkpoint_{sim.cycle:012d}.json",
                    )
                    checkpoints.append(cp.save(path))
                    telemetry.counter("seq.checkpoints")
                if on_chunk is not None:
                    on_chunk(cursor, end)
        if (
            vcd_writer is not None
            and sim.cycle == tape.cycles
            and sim.cycle > start
            and vcd_writer.num_vectors > 0
        ):
            # End of tape on this segment: close the document.  An
            # interrupted (limit=) segment leaves the file open-ended
            # so a resumed run can append byte-identically.
            vcd_writer.finalize()
    finally:
        if out_stream is not None:
            out_stream.close()
        if vcd_stream is not None:
            vcd_stream.close()
    return ReplayResult(
        cycles=sim.cycle - start,
        cycle=sim.cycle,
        checksum=checksum,
        toggles=toggles,
        seconds=time.perf_counter() - t0,
        checkpoints=checkpoints,
        resumed_from=resumed_from,
        outputs_path=outputs_path,
        vcd_path=vcd_path,
    )
