"""Replay checkpoints: everything needed to resume bit-identically.

A checkpoint is a small JSON document holding the machine state of a
replay in flight: the flip-flop state after the last completed cycle,
the cycle count (= tape offset, since the tape is one line per cycle),
and the running summary accumulators (checksum, per-output toggle
counts, previous output values) so a resumed run's *report* — not just
its per-cycle outputs — matches the uninterrupted run exactly.

The combinational settle is a pure function of state + inputs, so this
is sufficient for every engine: no intra-cycle residue exists at a
cycle boundary (unit-delay engines re-settle from the restored state
on their first cycle, reaching the same steady values).
"""

from __future__ import annotations

import json
from typing import Mapping, Optional

from repro.errors import SimulationError

__all__ = ["ReplayCheckpoint", "load_checkpoint"]

CHECKPOINT_FORMAT = "repro-replay-checkpoint"
CHECKPOINT_VERSION = 1


class ReplayCheckpoint:
    """Serializable mid-replay machine state."""

    __slots__ = (
        "cycle", "state", "checksum", "toggles", "prev_outputs",
        "tape_inputs", "tape_cycles", "circuit", "engine", "vcd",
    )

    def __init__(
        self,
        *,
        cycle: int,
        state: Mapping[str, int],
        checksum: int = 0,
        toggles: Optional[Mapping[str, int]] = None,
        prev_outputs: Optional[Mapping[str, int]] = None,
        tape_inputs: Optional[list[str]] = None,
        tape_cycles: int = 0,
        circuit: str = "",
        engine: str = "",
        vcd: Optional[Mapping] = None,
    ) -> None:
        self.cycle = int(cycle)
        self.state = {q: v & 1 for q, v in state.items()}
        self.checksum = int(checksum)
        self.toggles = dict(toggles) if toggles else {}
        self.prev_outputs = (
            dict(prev_outputs) if prev_outputs is not None else None
        )
        self.tape_inputs = list(tape_inputs) if tape_inputs else []
        self.tape_cycles = int(tape_cycles)
        self.circuit = circuit
        self.engine = engine
        #: :meth:`repro.waveform.VCDWriter.state` snapshot when the
        #: replay was streaming a waveform (``None`` otherwise) — the
        #: resumed run's writer restores it and appends byte-for-byte.
        #: Optional key: checkpoints written before waveform streaming
        #: existed load fine, and old readers ignore it.
        self.vcd = dict(vcd) if vcd is not None else None

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "circuit": self.circuit,
            "engine": self.engine,
            "cycle": self.cycle,
            "state": self.state,
            "checksum": self.checksum,
            "toggles": self.toggles,
            "prev_outputs": self.prev_outputs,
            "tape": {
                "inputs": self.tape_inputs,
                "cycles": self.tape_cycles,
            },
            "vcd": self.vcd,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ReplayCheckpoint":
        if payload.get("format") != CHECKPOINT_FORMAT:
            raise SimulationError(
                "not a replay checkpoint "
                f"(format={payload.get('format')!r})"
            )
        if payload.get("version") != CHECKPOINT_VERSION:
            raise SimulationError(
                f"unsupported checkpoint version "
                f"{payload.get('version')!r}"
            )
        tape = payload.get("tape") or {}
        return cls(
            cycle=payload["cycle"],
            state=payload["state"],
            checksum=payload.get("checksum", 0),
            toggles=payload.get("toggles"),
            prev_outputs=payload.get("prev_outputs"),
            tape_inputs=tape.get("inputs"),
            tape_cycles=tape.get("cycles", 0),
            circuit=payload.get("circuit", ""),
            engine=payload.get("engine", ""),
            vcd=payload.get("vcd"),
        )

    # ------------------------------------------------------------------
    def save(self, path: str) -> str:
        with open(path, "w") as handle:
            json.dump(self.as_dict(), handle, indent=1, sort_keys=True)
            handle.write("\n")
        return path

    def __repr__(self) -> str:
        return (
            f"ReplayCheckpoint(cycle={self.cycle}, "
            f"{len(self.state)} FFs, checksum={self.checksum:#x})"
        )


def load_checkpoint(path: str) -> ReplayCheckpoint:
    """Read a checkpoint written by :meth:`ReplayCheckpoint.save`."""
    with open(path) as handle:
        return ReplayCheckpoint.from_dict(json.load(handle))
