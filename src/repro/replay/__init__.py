"""Replay-driven sequential simulation: tapes, checkpoints, harness.

The scale story for clocked workloads (ROADMAP item 4): stimulus lives
on disk as a seekable :class:`~repro.replay.tape.Tape`, the
:func:`~repro.replay.harness.replay_tape` driver streams it through a
:class:`~repro.seqsim.CompiledSequentialSimulator` in bounded memory,
and :class:`~repro.replay.checkpoint.ReplayCheckpoint` makes any cycle
boundary a resumable, bit-identical restart point.
"""

from repro.replay.checkpoint import ReplayCheckpoint, load_checkpoint
from repro.replay.harness import ReplayResult, fold_outputs, replay_tape
from repro.replay.tape import Tape, TapeError, random_tape, write_tape

__all__ = [
    "Tape",
    "TapeError",
    "write_tape",
    "random_tape",
    "ReplayCheckpoint",
    "load_checkpoint",
    "ReplayResult",
    "replay_tape",
    "fold_outputs",
]
