"""Bit-parallel multi-vector simulation with the PC-set method.

§3 observes that "the PC-set method is amenable to bit-parallel
simulation of multiple input vectors, while the parallel technique is
not": the generated PC-set code contains only bit-wise operations (no
shifts), so bit ``j`` of every variable can carry an independent vector
*stream*.  This module implements that mode: the very same generated
program simulates up to ``word_width`` sequential streams at once.

A batch of N vectors is split round-robin into ``lanes`` streams; lane
``j`` simulates vectors ``j, j+lanes, j+2*lanes, ...`` in order, each
starting from the lane's own previous steady state — exactly what
``lanes`` independent scalar simulators would do, at roughly the cost
of one.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.pcset.codegen import generate_pcset_program
from repro.simbase import CompiledSimulator

__all__ = ["MultiVectorPCSetSimulator", "pack_lanes", "unpack_lanes"]


def pack_lanes(rows: Sequence[Sequence[int]]) -> list[int]:
    """Pack per-lane vectors into words: bit ``j`` = lane ``j``.

    ``rows[j]`` is lane ``j``'s vector (one 0/1 value per primary
    input); the result has one word per primary input.
    """
    if not rows:
        return []
    width = len(rows[0])
    words = [0] * width
    for lane, row in enumerate(rows):
        if len(row) != width:
            raise SimulationError("ragged lane vectors")
        for k, value in enumerate(row):
            words[k] |= (value & 1) << lane
    return words


def unpack_lanes(words: Sequence[int], lanes: int) -> list[list[int]]:
    """Inverse of :func:`pack_lanes`: one row per lane."""
    return [
        [(word >> lane) & 1 for word in words] for lane in range(lanes)
    ]


class MultiVectorPCSetSimulator(CompiledSimulator):
    """PC-set simulation of ``lanes`` independent vector streams at once."""

    def __init__(
        self,
        circuit: Circuit,
        *,
        lanes: Optional[int] = None,
        backend: str = "python",
        word_width: int = 32,
        monitored: Optional[list[str]] = None,
        with_outputs: bool = True,
        **backend_kwargs,
    ) -> None:
        if lanes is None:
            lanes = word_width
        if not 1 <= lanes <= word_width:
            raise SimulationError(
                f"lanes must be in 1..{word_width}, got {lanes}"
            )
        self.lanes = lanes
        program, variables = generate_pcset_program(
            circuit,
            word_width=word_width,
            monitored=monitored,
            emit_outputs=with_outputs,
        )
        self.variables = variables
        self.pc_sets = variables.pc_sets
        self.monitored = (
            list(monitored) if monitored is not None else circuit.outputs
        )
        super().__init__(
            circuit,
            program,
            backend=backend,
            with_outputs=with_outputs,
            checksum_mask=(1 << lanes) - 1,
            **backend_kwargs,
        )

    # ------------------------------------------------------------------
    def _encode_state(self, settled: Mapping[str, int]) -> list[int]:
        mask = self.program.word_mask
        return [
            (-(settled[net_name] & 1)) & mask
            for net_name, _time, _identifier in self.variables.ordered
        ]

    def _vector_words(
        self, vector: Mapping[str, int] | Sequence[int]
    ) -> list[int]:
        # Packed mode: the caller passes one word per primary input with
        # one lane per bit; anything mapping-shaped is scalar use.
        if isinstance(vector, Mapping):
            return super()._vector_words(vector)
        values = list(vector)
        if len(values) != len(self._inputs):
            raise SimulationError(
                f"vector has {len(values)} words, expected "
                f"{len(self._inputs)}"
            )
        return values

    # ------------------------------------------------------------------
    def apply_packed(self, rows: Sequence[Sequence[int]]) -> list[int]:
        """Simulate one step of up to ``lanes`` streams.

        ``rows[j]`` is the next vector of stream ``j``.  Returns the raw
        packed output words.
        """
        if len(rows) > self.lanes:
            raise SimulationError(
                f"{len(rows)} rows exceed {self.lanes} lanes"
            )
        return self.apply_vector(pack_lanes(rows))

    def prepare_streams(self, vectors: Sequence[Sequence[int]]):
        """Pack a vector batch into lane words, outside any timed region.

        ``vectors[i]`` goes to lane ``i % lanes``; each lane sees its
        sub-sequence in order.  The tail step is padded by repeating
        the batch's last vector (padding lanes do not disturb the
        active ones).  Returns a prepared batch for
        :meth:`run_prepared` — on the C backend that is one contiguous
        native buffer driven entirely by the compiled loop.
        """
        lanes = self.lanes
        n = len(vectors)
        steps = (n + lanes - 1) // lanes
        packed: list[list[int]] = []
        for step_index in range(steps):
            rows = []
            for lane in range(lanes):
                i = step_index * lanes + lane
                rows.append(vectors[i if i < n else n - 1])
            packed.append(pack_lanes(rows))
        return self.prepare_batch(packed)

    def run_streams(
        self, vectors: Sequence[Sequence[int]]
    ) -> None:
        """Simulate a batch of vectors, round-robin across the lanes."""
        self.run_prepared(self.prepare_streams(vectors))

    def final_values_per_lane(self) -> list[dict[str, int]]:
        """Settled monitored values of every lane after the last step."""
        state = dict(zip(
            (identifier for _n, _t, identifier in self.variables.ordered),
            self.machine.dump_state(),
        ))
        result = []
        for lane in range(self.lanes):
            result.append({
                net_name: (state[self.variables.final_var(net_name)]
                           >> lane) & 1
                for net_name in self.monitored
            })
        return result
