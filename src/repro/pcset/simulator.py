"""The PC-set method simulator facade.

Wraps the generated PC-set program behind the common compiled-simulator
interface, adds history reconstruction (the generated code "creates a
complete history for the vector", §2), and decodes the PRINT output
routine.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.codegen.packing import packed_bits, packing_mode
from repro.codegen.probes import ProbeSpec, instrument_pcset_program
from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.pcset.codegen import generate_pcset_program
from repro.simbase import CompiledSimulator

__all__ = ["PCSetSimulator"]


class PCSetSimulator(CompiledSimulator):
    """Compiled unit-delay simulation via the PC-set method (§2).

    Typical use::

        sim = PCSetSimulator(circuit)
        sim.reset([0] * len(circuit.inputs))
        history = sim.apply_vector_history(vector)

    ``backend="c"`` compiles the generated code with the system C
    compiler instead of running it as Python.

    ``probes=`` compiles per-net toggle counters into the generated
    pass (``True`` for every net, or an iterable of net names / a
    :class:`~repro.codegen.probes.ProbeSpec`); read them with the
    inherited ``activity_report()``.  Probe counting observes lane 0
    only, so probed batches run on the scalar path.

    Multi-vector traffic should use the inherited batch API
    (``apply_vectors``, ``run_batch``, ``prepare_batch`` +
    ``run_prepared``): one dispatch drives the whole batch through the
    generated ``run_block`` loop.  ``apply_vector_history`` stays
    scalar — it reads the persistent state before and after each
    vector.
    """

    def __init__(
        self,
        circuit: Circuit,
        *,
        backend: str = "python",
        word_width: int = 32,
        monitored: Optional[list[str]] = None,
        with_outputs: bool = True,
        comments: bool = False,
        probes=None,
        **backend_kwargs,
    ) -> None:
        program, variables = generate_pcset_program(
            circuit,
            word_width=word_width,
            monitored=monitored,
            emit_outputs=with_outputs,
            comments=comments,
        )
        self.variables = variables
        self.pc_sets = variables.pc_sets
        self.monitored = (
            list(monitored) if monitored is not None else circuit.outputs
        )
        spec = ProbeSpec.coerce(probes)
        plan = None
        base_mode = None
        if spec is not None:
            # Record the uninstrumented program's packing eligibility;
            # the probe statements would classify it "none".
            base_mode = packing_mode(
                program if with_outputs else program.without_output()
            )
            plan = instrument_pcset_program(program, variables, spec)
        super().__init__(
            circuit,
            program,
            backend=backend,
            with_outputs=with_outputs,
            checksum_mask=1,
            probe_plan=plan,
            packing_override=base_mode,
            **backend_kwargs,
        )

    # ------------------------------------------------------------------
    def _encode_state(self, settled: Mapping[str, int]) -> list[int]:
        # A steady state is constant in time: every (net, t) variable
        # holds the settled value of its net.  The value is replicated
        # through the word so packed multi-vector lanes stay consistent.
        mask = self.program.word_mask
        return [
            (-(settled[net_name] & 1)) & mask
            for net_name, _time, _identifier in self.variables.ordered
        ]

    # ------------------------------------------------------------------
    def apply_vector_history(
        self, vector: Mapping[str, int] | Sequence[int]
    ) -> dict[str, list[tuple[int, int]]]:
        """Simulate one vector and reconstruct every net's change history.

        Returns ``net -> [(time, value), ...]`` with the time-0 value
        first — directly comparable with
        :meth:`repro.eventsim.simulator.EventDrivenSimulator.apply_vector`.
        """
        before = dict(zip(
            (identifier for _n, _t, identifier in self.variables.ordered),
            self.machine.dump_state(),
        ))
        self.apply_vector(vector)
        after = dict(zip(
            (identifier for _n, _t, identifier in self.variables.ordered),
            self.machine.dump_state(),
        ))

        histories: dict[str, list[tuple[int, int]]] = {}
        pc = self.pc_sets
        for net_name in self.circuit.nets:
            raw = pc.raw_net_pc_sets[net_name]
            full = pc.net_pc_set(net_name)
            if full[0] == 0:
                start = after[self.variables.var(net_name, 0)] & 1
            else:
                # No time-0 variable: the net held its previous final
                # value at time 0.
                start = before[self.variables.var(net_name, raw[-1])] & 1
            changes = [(0, start)]
            for time in raw:
                if time == 0:
                    continue
                value = after[self.variables.var(net_name, time)] & 1
                if value != changes[-1][1]:
                    changes.append((time, value))
            histories[net_name] = changes
        return histories

    def output_trace(
        self, vector: Mapping[str, int] | Sequence[int]
    ) -> list[tuple[int, dict[str, int]]]:
        """Simulate one vector; return the decoded PRINT routine output.

        One ``(time, {net: value})`` entry per element of the output
        routine's PC-set, in ascending time order.
        """
        out = self.apply_vector(vector)
        trace: dict[int, dict[str, int]] = {}
        for (net_name, time), value in zip(self.output_labels(), out):
            trace.setdefault(time, {})[net_name] = value & 1
        return sorted(trace.items())

    def settled_outputs(
        self, vectors: Sequence[Mapping[str, int] | Sequence[int]]
    ) -> list[dict[str, int]]:
        """Per-vector settled values of the monitored nets.

        Equivalent to calling :meth:`apply_vector` on each vector and
        reading :meth:`final_values` after it — but observing *only*
        settled values, which in an acyclic circuit depend on the
        current inputs alone.  That is exactly the boundary of
        ``"settled"`` packing eligibility (see
        :mod:`repro.codegen.packing`): the PC-set program's
        intermediate-time samples ride on the vector-to-vector state
        chain and cannot be packed, but this method never looks at
        them, so the batch runs pattern-packed — ``word_width``
        vectors per compiled pass.
        """
        if not self.with_outputs:
            raise SimulationError(
                "simulator was built without outputs; cannot observe "
                "settled values"
            )
        labels = self.output_labels()
        final_time = max(time for _net, time in labels)
        slots = [
            (net_name, index)
            for index, (net_name, time) in enumerate(labels)
            if time == final_time
        ]
        words = [self._vector_words(vector) for vector in vectors]
        if (self.packing_mode in ("full", "settled") and self._inputs
                and self.probe_plan is None):
            rows = packed_bits(self.machine, words)
        else:
            if not self._settled:
                raise SimulationError("call reset() before settled_outputs()")
            # The scalar batch path: under probes it also chunks the
            # run and drains the toggle counters.
            rows = self.apply_vectors(words)
        return [
            {net_name: row[index] & 1 for net_name, index in slots}
            for row in rows
        ]

    def final_values(self) -> dict[str, int]:
        """Settled values of the monitored nets after the last vector."""
        state = dict(zip(
            (identifier for _n, _t, identifier in self.variables.ordered),
            self.machine.dump_state(),
        ))
        return {
            net_name: state[self.variables.final_var(net_name)] & 1
            for net_name in self.monitored
        }
