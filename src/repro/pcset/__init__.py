"""The PC-set method of compiled unit-delay simulation (§2).

One variable per (net, potential-change-time) pair; one straight-line
gate evaluation per potential change of each gate; zero insertion and a
per-vector initialization section carry previous-vector values where a
gate's earliest evaluation needs inputs that have not changed yet.

The method generates much more code than the parallel technique (§3)
but is amenable to bit-parallel simulation of multiple input vectors:
:class:`~repro.pcset.multivector.MultiVectorPCSetSimulator` packs one
vector stream per bit of the machine word over the *same* generated
program.
"""

from repro.pcset.variables import PCSetVariables
from repro.pcset.codegen import generate_pcset_program
from repro.pcset.simulator import PCSetSimulator
from repro.pcset.multivector import MultiVectorPCSetSimulator

__all__ = [
    "PCSetVariables",
    "generate_pcset_program",
    "PCSetSimulator",
    "MultiVectorPCSetSimulator",
]
