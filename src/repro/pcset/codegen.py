"""Code generation for the PC-set method (§2, Fig. 4).

Layout of the generated program, in the paper's order:

1. *Initialization*: for every net that had a zero added to its PC-set,
   move its final value (the variable of its maximum raw PC element)
   into its time-0 variable; read the primary inputs from the vector.
2. *Simulation*: gates in levelized order; one evaluation per element
   of the gate's PC-set; operands selected by the
   largest-strictly-smaller rule.
3. *Output routine*: the PRINT pseudo-gate — one emitted vector per
   element of the union of the monitored nets' PC-sets.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro import telemetry
from repro.analysis.levelize import levelize
from repro.analysis.pcsets import compute_pc_sets
from repro.codegen.gates import gate_expression
from repro.codegen.program import Assign, Comment, Emit, Input, Program, Var
from repro.logic import GateType
from repro.netlist.circuit import Circuit
from repro.pcset.variables import PCSetVariables

__all__ = ["generate_pcset_program"]


def generate_pcset_program(
    circuit: Circuit,
    *,
    word_width: int = 32,
    monitored: Optional[Iterable[str]] = None,
    emit_outputs: bool = True,
    comments: bool = False,
) -> tuple[Program, PCSetVariables]:
    """Generate the PC-set program for ``circuit``.

    Returns ``(program, variables)``; the variable map is what the
    simulator uses to seed state and decode results.  Vector slot ``k``
    carries primary input ``k``; because the generated code is purely
    bit-wise (the PC-set method emits *no shifts*), each bit position of
    the word simulates an independent vector stream — pass 0/1 for
    single-vector simulation or packed words for the §3-referenced
    multi-vector mode.
    """
    with telemetry.span("emit", technique="pcset", circuit=circuit.name):
        return _generate_pcset_program(
            circuit, word_width=word_width, monitored=monitored,
            emit_outputs=emit_outputs, comments=comments,
        )


def _generate_pcset_program(
    circuit: Circuit,
    *,
    word_width: int,
    monitored: Optional[Iterable[str]],
    emit_outputs: bool,
    comments: bool,
) -> tuple[Program, PCSetVariables]:
    monitored_list = (
        list(monitored) if monitored is not None else circuit.outputs
    )
    levels = levelize(circuit)
    pc = compute_pc_sets(circuit, levels)
    pc.apply_zero_insertion(monitored_list)
    variables = PCSetVariables(pc)

    program = Program(
        f"pcset_{circuit.name}",
        word_width=word_width,
        inputs=circuit.inputs,
        mask_assignments=False,
        output_mask=(1 << word_width) - 1,
    )

    # Declarations.  Constant-signal variables get their value at
    # declaration time and are never reassigned.
    const_values: dict[str, int] = {}
    for gate in circuit.gates.values():
        if gate.gate_type is GateType.CONST0:
            const_values[gate.output] = 0
        elif gate.gate_type is GateType.CONST1:
            const_values[gate.output] = program.word_mask
    for net_name, _time, identifier in variables.ordered:
        program.declare(identifier, const_values.get(net_name, 0))

    # 1. Initialization: zero-element moves, then primary-input reads.
    if comments:
        program.init.append(Comment("previous-vector value retention"))
    for net_name in circuit.nets:
        if net_name in pc.zero_added:
            final_time = pc.raw_net_pc_sets[net_name][-1]
            program.init.append(
                Assign(
                    variables.var(net_name, 0),
                    Var(variables.var(net_name, final_time)),
                )
            )
    if comments:
        program.init.append(Comment("primary-input reads"))
    for slot, net_name in enumerate(circuit.inputs):
        program.init.append(
            Assign(variables.var(net_name, 0), Input(slot))
        )

    # 2. Simulation code: levelized gate order, one evaluation per
    #    gate PC element.
    ordered = sorted(
        circuit.topological_gates(),
        key=lambda g: levels.gate_levels[g.name],
    )
    for gate in ordered:
        if gate.fan_in == 0:
            continue  # constants: value fixed at declaration
        if comments:
            program.body.append(
                Comment(f"{gate.gate_type.value} {gate.name}")
            )
        for time in pc.gate_pc_set(gate.name):
            operands = [
                Var(variables.operand(in_net, time))
                for in_net in gate.inputs
            ]
            program.body.append(
                Assign(
                    variables.var(gate.output, time),
                    gate_expression(gate.gate_type, operands),
                )
            )

    # 3. Output routine: the PRINT pseudo-gate.
    if emit_outputs:
        for time in pc.output_pc_set(monitored_list):
            for net_name in monitored_list:
                program.output.append(
                    Emit(
                        Var(variables.sample(net_name, time)),
                        (net_name, time),
                    )
                )

    program.validate()
    return program, variables
