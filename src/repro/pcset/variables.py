"""Variable allocation for the PC-set method.

"one variable is generated for each element of the PC-set of each net"
(§2).  :class:`PCSetVariables` owns the (net, time) -> identifier
mapping, keeps the declaration order stable (net order, then ascending
time), and records which net/time each state variable belongs to so the
simulator can encode steady states and decode histories.
"""

from __future__ import annotations

from repro.analysis.pcsets import PCSets
from repro.codegen.naming import NameAllocator

__all__ = ["PCSetVariables"]


class PCSetVariables:
    """The (net, time) -> variable-name mapping of one PC-set program.

    Attributes
    ----------
    ordered:
        ``(net_name, time, identifier)`` triples in declaration order.
    """

    def __init__(self, pc_sets: PCSets) -> None:
        self.pc_sets = pc_sets
        self._names = NameAllocator()
        self._by_pair: dict[tuple[str, int], str] = {}
        self.ordered: list[tuple[str, int, str]] = []
        for net_name in pc_sets.circuit.nets:
            for time in pc_sets.net_pc_set(net_name):
                identifier = self._names.get(
                    f"{net_name}@{time}", f"{net_name}_{time}"
                )
                self._by_pair[(net_name, time)] = identifier
                self.ordered.append((net_name, time, identifier))

    def var(self, net_name: str, time: int) -> str:
        """Identifier of the variable holding ``net_name`` at ``time``."""
        return self._by_pair[(net_name, time)]

    def operand(self, net_name: str, gate_time: int) -> str:
        """Variable supplying ``net_name`` to a gate evaluated at ``gate_time``.

        The §2 rule: the largest PC element strictly smaller than the
        element being generated.
        """
        time = self.pc_sets.latest_change_before(net_name, gate_time)
        return self.var(net_name, time)

    def sample(self, net_name: str, time: int) -> str:
        """Variable holding the value of ``net_name`` *at* ``time``.

        Used by the output routine (latest change at or before).
        """
        latest = self.pc_sets.latest_change_at_or_before(net_name, time)
        return self.var(net_name, latest)

    def final_var(self, net_name: str) -> str:
        """Variable holding the net's settled (final) value.

        "This value can always be found in the variable that corresponds
        to the maximum PC-set value." (§2)
        """
        pc = self.pc_sets.net_pc_set(net_name)
        return self.var(net_name, pc[-1])

    def __len__(self) -> int:
        return len(self.ordered)
