"""Dense-index view of a circuit for the interpreted simulators.

Name-keyed dictionaries are convenient for construction and analysis but
slow to simulate with.  :class:`IndexedCircuit` assigns dense integer
ids to nets and gates once, and exposes flat parallel arrays the
interpreter loops read without hashing.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import VectorError
from repro.logic import GateType
from repro.netlist.circuit import Circuit

__all__ = ["IndexedCircuit"]


class IndexedCircuit:
    """Flat arrays describing a circuit.

    Attributes
    ----------
    net_ids / net_names:
        Name -> id and id -> name mappings (ids are dense, 0-based).
    gate_types:
        Per gate id, its :class:`GateType`.
    gate_inputs:
        Per gate id, a tuple of input net ids (order and duplicates
        preserved).
    gate_output:
        Per gate id, the output net id.
    net_fanout:
        Per net id, a tuple of gate ids reading the net (deduplicated —
        a gate is evaluated once however many pins a net feeds).
    input_ids / output_ids:
        Net ids of the primary inputs / monitored outputs, in
        declaration order.
    topo_gate_ids:
        Gate ids in topological order.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self.net_names = list(circuit.nets)
        self.net_ids = {name: i for i, name in enumerate(self.net_names)}
        gate_order = circuit.topological_gates()
        self.gate_names = [g.name for g in gate_order]
        self.gate_ids = {name: i for i, name in enumerate(self.gate_names)}
        self.gate_types: list[GateType] = [g.gate_type for g in gate_order]
        self.gate_inputs: list[tuple[int, ...]] = [
            tuple(self.net_ids[n] for n in g.inputs) for g in gate_order
        ]
        self.gate_output: list[int] = [
            self.net_ids[g.output] for g in gate_order
        ]
        fanout: list[list[int]] = [[] for _ in self.net_names]
        for gate_id, gate in enumerate(gate_order):
            seen: set[int] = set()
            for in_name in gate.inputs:
                net_id = self.net_ids[in_name]
                if net_id not in seen:
                    seen.add(net_id)
                    fanout[net_id].append(gate_id)
        self.net_fanout: list[tuple[int, ...]] = [tuple(f) for f in fanout]
        self.input_ids = [self.net_ids[n] for n in circuit.inputs]
        self.output_ids = [self.net_ids[n] for n in circuit.outputs]
        self.topo_gate_ids = list(range(len(gate_order)))

    @property
    def num_nets(self) -> int:
        return len(self.net_names)

    @property
    def num_gates(self) -> int:
        return len(self.gate_types)

    def input_values(
        self, vector: Mapping[str, int] | Sequence[int]
    ) -> list[int]:
        """Normalize a vector to a list ordered like ``input_ids``.

        Accepts a mapping keyed by primary-input name, or a sequence in
        primary-input declaration order.
        """
        inputs = self.circuit.inputs
        if isinstance(vector, Mapping):
            missing = [n for n in inputs if n not in vector]
            if missing:
                raise VectorError(f"vector missing inputs: {missing}")
            return [vector[n] for n in inputs]
        values = list(vector)
        if len(values) != len(inputs):
            raise VectorError(
                f"vector has {len(values)} values, circuit has "
                f"{len(inputs)} primary inputs"
            )
        return values
