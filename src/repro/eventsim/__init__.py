"""Interpreted simulators: the baselines of the paper's evaluation.

- :mod:`repro.eventsim.simulator` — interpreted event-driven *unit-delay*
  simulation, two-valued and three-valued (the first two columns of
  Fig. 19).
- :mod:`repro.eventsim.zerodelay` — interpreted zero-delay evaluation,
  also used everywhere to compute steady states that seed unit-delay
  runs.
"""

from repro.eventsim.simulator import EventDrivenSimulator
from repro.eventsim.zerodelay import ZeroDelaySimulator, steady_state

__all__ = ["EventDrivenSimulator", "ZeroDelaySimulator", "steady_state"]
