"""Event scheduling for unit-delay interpreted simulation.

With every gate delay equal to one time unit, a full event queue is
overkill: an event scheduled at time ``t`` can only spawn events at
``t + 1``.  The classic structure is therefore a two-slot *time wheel*:
the set of gates to evaluate now, and the set being accumulated for the
next instant.  :class:`TimeWheel` implements exactly that, with
deduplication so a gate fed by several changed nets is evaluated once.

A general multi-delay wheel (:class:`DeltaWheel`) is included as well;
the unit-delay simulator does not need it, but the sequential-circuit
example and the tests use it to check that unit delay is the special
case it should be.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["TimeWheel", "DeltaWheel"]


class TimeWheel:
    """Two-phase scheduler for unit-delay simulation.

    Gates are identified by dense integer ids.  ``schedule`` enqueues a
    gate for the *next* time step; ``advance`` swaps phases and returns
    the gates due now.
    """

    __slots__ = ("_current", "_next", "_pending_now", "_pending_next", "time")

    def __init__(self, num_gates: int) -> None:
        self._current: list[int] = []
        self._next: list[int] = []
        self._pending_now = bytearray(num_gates)
        self._pending_next = bytearray(num_gates)
        #: The time step of the slot returned by the last ``advance``.
        self.time = 0

    def schedule(self, gate_id: int) -> None:
        """Enqueue ``gate_id`` for evaluation at the next time step."""
        if not self._pending_next[gate_id]:
            self._pending_next[gate_id] = 1
            self._next.append(gate_id)

    def advance(self) -> list[int]:
        """Move to the next time step; return gates due for evaluation."""
        self._current, self._next = self._next, self._current
        self._pending_now, self._pending_next = (
            self._pending_next,
            self._pending_now,
        )
        for gate_id in self._next:
            self._pending_next[gate_id] = 0
        self._next.clear()
        self.time += 1
        return self._current

    @property
    def has_events(self) -> bool:
        return bool(self._next)

    def clear(self) -> None:
        for gate_id in self._next:
            self._pending_next[gate_id] = 0
        self._next.clear()
        for gate_id in self._current:
            self._pending_now[gate_id] = 0
        self._current.clear()
        self.time = 0


class DeltaWheel:
    """A ring-buffer time wheel for small bounded gate delays.

    ``schedule(gate_id, delta)`` enqueues an evaluation ``delta`` time
    units in the future (1 <= delta <= horizon).  With ``horizon == 1``
    this degenerates to :class:`TimeWheel` behaviour.
    """

    def __init__(self, num_gates: int, horizon: int) -> None:
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        self.horizon = horizon
        self._slots: list[list[int]] = [[] for _ in range(horizon + 1)]
        self._pending: list[bytearray] = [
            bytearray(num_gates) for _ in range(horizon + 1)
        ]
        self._head = 0
        self.time = 0
        self._population = 0

    def _slot_index(self, delta: int) -> int:
        return (self._head + delta) % (self.horizon + 1)

    def schedule(self, gate_id: int, delta: int = 1) -> None:
        if not 1 <= delta <= self.horizon:
            raise ValueError(
                f"delta {delta} outside wheel horizon 1..{self.horizon}"
            )
        idx = self._slot_index(delta)
        if not self._pending[idx][gate_id]:
            self._pending[idx][gate_id] = 1
            self._slots[idx].append(gate_id)
            self._population += 1

    def advance(self) -> list[int]:
        """Step one time unit; return (and consume) the gates now due."""
        self._head = (self._head + 1) % (self.horizon + 1)
        self.time += 1
        due = self._slots[self._head]
        self._slots[self._head] = []
        pending = self._pending[self._head]
        for gate_id in due:
            pending[gate_id] = 0
        self._population -= len(due)
        return due

    @property
    def has_events(self) -> bool:
        return self._population > 0

    def drain(self) -> Iterator[tuple[int, list[int]]]:
        """Yield ``(time, due_gates)`` until the wheel empties."""
        while self.has_events:
            due = self.advance()
            if due:
                yield self.time, due
