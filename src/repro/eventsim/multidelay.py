"""Interpreted event-driven simulation with per-gate integer delays.

§6 of the paper lists "more accurate timing models" as future work for
the compiled techniques; this module provides the interpreted reference
point for that direction: transport-delay simulation where every gate
carries its own integer delay (unit delay is the special case where
every delay is 1, and the test suite checks that this simulator then
reproduces :class:`~repro.eventsim.simulator.EventDrivenSimulator`
exactly).

Semantics (transport delay): when a gate's inputs change at time ``t``,
the gate is evaluated on the values at ``t`` and the result is
scheduled to appear on its output at ``t + delay``.  A scheduled value
that equals the net's value at arrival time is dropped (no event).
Because each gate's delay is fixed, two pending updates of one gate can
only collide when scheduled from the same instant — with equal values —
so a per-slot last-write table is sufficient bookkeeping.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Union

from repro.errors import SimulationError
from repro.eventsim.indexed import IndexedCircuit
from repro.eventsim.simulator import SimulationStats
from repro.logic import X, eval_gate, eval_gate3
from repro.netlist.circuit import Circuit

__all__ = ["MultiDelaySimulator"]


class _ValueWheel:
    """Ring buffer of {gate_id: value} slots for bounded delays."""

    def __init__(self, horizon: int) -> None:
        self.horizon = horizon
        self._slots: list[dict[int, int]] = [
            {} for _ in range(horizon + 1)
        ]
        self._head = 0
        self._population = 0
        self.time = 0

    def schedule(self, gate_id: int, value: int, delta: int) -> None:
        slot = self._slots[(self._head + delta) % (self.horizon + 1)]
        if gate_id not in slot:
            self._population += 1
        slot[gate_id] = value

    def advance(self) -> dict[int, int]:
        self._head = (self._head + 1) % (self.horizon + 1)
        self.time += 1
        due = self._slots[self._head]
        self._slots[self._head] = {}
        self._population -= len(due)
        return due

    @property
    def has_events(self) -> bool:
        return self._population > 0

    def clear(self) -> None:
        for slot in self._slots:
            slot.clear()
        self._population = 0
        self.time = 0


class MultiDelaySimulator:
    """Event-driven simulation with per-gate transport delays.

    Parameters
    ----------
    circuit:
        An acyclic combinational circuit.
    delays:
        Either one integer applied to every gate, or a mapping
        ``gate name -> delay`` (missing gates default to 1).  Delays
        must be >= 1.
    logic:
        ``"two"`` or ``"three"``.
    """

    def __init__(
        self,
        circuit: Circuit,
        delays: Union[int, Mapping[str, int]] = 1,
        logic: str = "two",
    ) -> None:
        if logic not in ("two", "three"):
            raise SimulationError(f"unknown logic model: {logic!r}")
        self.circuit = circuit
        self.logic = logic
        self.indexed = IndexedCircuit(circuit)
        if isinstance(delays, int):
            delay_of = {name: delays for name in self.indexed.gate_names}
        else:
            delay_of = {
                name: delays.get(name, 1)
                for name in self.indexed.gate_names
            }
        bad = [g for g, d in delay_of.items() if d < 1]
        if bad:
            raise SimulationError(
                f"delays must be >= 1; offending gates: {bad[:5]}"
            )
        self.delays = [
            delay_of[name] for name in self.indexed.gate_names
        ]
        self.max_delay = max(self.delays, default=1)
        initial = 0 if logic == "two" else X
        self.values: list[int] = [initial] * self.indexed.num_nets
        self.stats = SimulationStats()
        self._wheel = _ValueWheel(self.max_delay)
        self._settled = False

    # ------------------------------------------------------------------
    def reset(
        self, vector: Mapping[str, int] | Sequence[int] | None = None
    ) -> None:
        """Settle on ``vector`` (or all zeros) to a steady state."""
        idx = self.indexed
        if vector is not None:
            for net_id, value in zip(
                idx.input_ids, idx.input_values(vector)
            ):
                self.values[net_id] = value
        evaluate = eval_gate if self.logic == "two" else eval_gate3
        for gate_id in idx.topo_gate_ids:
            operands = [self.values[i] for i in idx.gate_inputs[gate_id]]
            result = evaluate(idx.gate_types[gate_id], operands)
            if self.logic == "two":
                result &= 1
            self.values[idx.gate_output[gate_id]] = result
        self._wheel.clear()
        self._settled = True

    # ------------------------------------------------------------------
    def _evaluate(self, gate_id: int) -> int:
        idx = self.indexed
        operands = [self.values[i] for i in idx.gate_inputs[gate_id]]
        evaluate = eval_gate if self.logic == "two" else eval_gate3
        result = evaluate(idx.gate_types[gate_id], operands)
        if self.logic == "two":
            result &= 1
        self.stats.gate_evaluations += 1
        return result

    def apply_vector(
        self,
        vector: Mapping[str, int] | Sequence[int],
        record: bool = False,
    ) -> Optional[dict[str, list[tuple[int, int]]]]:
        """Simulate one vector; optionally record all change histories."""
        if not self._settled:
            raise SimulationError("call reset() before apply_vector()")
        idx = self.indexed
        values = self.values
        wheel = self._wheel
        wheel.clear()

        history: Optional[list[list[tuple[int, int]]]] = None
        if record:
            history = [[(0, v)] for v in values]

        changed: list[int] = []
        for net_id, value in zip(idx.input_ids, idx.input_values(vector)):
            if values[net_id] != value:
                values[net_id] = value
                self.stats.events += 1
                if history is not None:
                    history[net_id][0] = (0, value)
                changed.append(net_id)
        scheduled_gates: set[int] = set()
        for net_id in changed:
            scheduled_gates.update(idx.net_fanout[net_id])
        for gate_id in scheduled_gates:
            wheel.schedule(
                gate_id, self._evaluate(gate_id), self.delays[gate_id]
            )

        while wheel.has_events:
            due = wheel.advance()
            time = wheel.time
            arrivals = []
            for gate_id, value in due.items():
                out_id = idx.gate_output[gate_id]
                if values[out_id] != value:
                    arrivals.append((out_id, value))
            to_schedule: set[int] = set()
            for out_id, value in arrivals:
                values[out_id] = value
                self.stats.events += 1
                if history is not None:
                    history[out_id].append((time, value))
                to_schedule.update(idx.net_fanout[out_id])
            for gate_id in to_schedule:
                wheel.schedule(
                    gate_id, self._evaluate(gate_id),
                    self.delays[gate_id],
                )
            if time > self.stats.max_time:
                self.stats.max_time = time
        self.stats.vectors += 1

        if history is None:
            return None
        return {
            idx.net_names[i]: changes
            for i, changes in enumerate(history)
        }

    def value_of(self, net_name: str) -> int:
        return self.values[self.indexed.net_ids[net_name]]

    def output_values(self) -> dict[str, int]:
        idx = self.indexed
        return {idx.net_names[i]: self.values[i] for i in idx.output_ids}
