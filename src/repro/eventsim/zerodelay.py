"""Interpreted zero-delay simulation and steady-state computation.

Zero-delay evaluation visits every gate once in topological order; for
an acyclic circuit the result is the unique fixed point of the network
equations — the *steady state*.  Unit-delay simulation of a new vector
always starts from the previous vector's steady state, so this module
backs every other simulator in the library in addition to providing the
interpreted half of the paper's zero-delay comparison ("a compiled
simulation runs in 1/23 the time of an interpreted simulation", §5).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import SimulationError
from repro.eventsim.indexed import IndexedCircuit
from repro.logic import X, eval_gate, eval_gate3
from repro.netlist.circuit import Circuit

__all__ = ["ZeroDelaySimulator", "steady_state"]


class ZeroDelaySimulator:
    """Interpreted zero-delay simulator (one gate visit per vector).

    ``logic`` selects ``"two"``-valued (0/1) or ``"three"``-valued
    (0/1/X) evaluation.
    """

    def __init__(self, circuit: Circuit, logic: str = "two") -> None:
        if logic not in ("two", "three"):
            raise SimulationError(f"unknown logic model: {logic!r}")
        self.circuit = circuit
        self.logic = logic
        self.indexed = IndexedCircuit(circuit)
        self.values = [0 if logic == "two" else X] * self.indexed.num_nets

    def evaluate(
        self, vector: Mapping[str, int] | Sequence[int]
    ) -> dict[str, int]:
        """Settle the circuit on ``vector``; return all net values."""
        self.evaluate_into_state(vector)
        names = self.indexed.net_names
        return {names[i]: v for i, v in enumerate(self.values)}

    def evaluate_into_state(
        self, vector: Mapping[str, int] | Sequence[int]
    ) -> list[int]:
        """Settle the circuit; return the internal dense value array."""
        idx = self.indexed
        values = self.values
        for net_id, value in zip(idx.input_ids, idx.input_values(vector)):
            values[net_id] = value
        if self.logic == "two":
            for gate_id in idx.topo_gate_ids:
                operands = [values[i] for i in idx.gate_inputs[gate_id]]
                values[idx.gate_output[gate_id]] = (
                    eval_gate(idx.gate_types[gate_id], operands) & 1
                )
        else:
            for gate_id in idx.topo_gate_ids:
                operands = [values[i] for i in idx.gate_inputs[gate_id]]
                values[idx.gate_output[gate_id]] = eval_gate3(
                    idx.gate_types[gate_id], operands
                )
        return values

    def run_batch(
        self, vectors: Sequence[Sequence[int]]
    ) -> int:
        """Simulate many vectors; return a fold of the monitored outputs.

        The checksum lets benchmarks verify that two simulators computed
        the same thing without storing full traces.
        """
        checksum = 0
        out_ids = self.indexed.output_ids
        for vector in vectors:
            values = self.evaluate_into_state(vector)
            folded = 0
            for net_id in out_ids:
                folded = ((folded << 1) | (folded >> 61)) & (2**62 - 1)
                folded ^= values[net_id]
            checksum ^= folded
        return checksum


def steady_state(
    circuit: Circuit,
    vector: Mapping[str, int] | Sequence[int],
    logic: str = "two",
) -> dict[str, int]:
    """Zero-delay settled values of every net for one input vector."""
    return ZeroDelaySimulator(circuit, logic=logic).evaluate(vector)
