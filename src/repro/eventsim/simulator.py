"""Interpreted event-driven unit-delay simulation.

This is the baseline the paper measures against (first two columns of
Fig. 19): a conventional event-driven simulator with every gate delay
equal to one time unit, in a three-valued (0/1/X) and a two-valued (0/1)
flavour.

The simulator keeps the circuit's *steady state* between vectors.  A new
vector is applied at time 0; each primary-input change schedules the
fanout gates for time 1; a gate evaluation whose result differs from the
output net's current value is an *event* that schedules the net's
fanout for the next instant.  Acyclicity bounds activity at the circuit
depth, so the run always terminates.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.errors import SimulationError
from repro.eventsim.events import TimeWheel
from repro.eventsim.indexed import IndexedCircuit
from repro.logic import X, eval_gate, eval_gate3
from repro.netlist.circuit import Circuit

__all__ = ["EventDrivenSimulator", "SimulationStats"]


class SimulationStats:
    """Activity counters for one run (events are what the baseline pays for)."""

    __slots__ = ("vectors", "gate_evaluations", "events", "max_time")

    def __init__(self) -> None:
        self.vectors = 0
        self.gate_evaluations = 0
        self.events = 0
        self.max_time = 0

    def __repr__(self) -> str:
        return (
            f"SimulationStats(vectors={self.vectors}, "
            f"gate_evals={self.gate_evaluations}, events={self.events})"
        )


class EventDrivenSimulator:
    """Interpreted event-driven unit-delay simulator.

    Parameters
    ----------
    circuit:
        An acyclic combinational circuit.
    logic:
        ``"two"`` for 0/1 simulation, ``"three"`` for 0/1/X.

    Use :meth:`reset` to establish the initial steady state, then
    :meth:`apply_vector` per input vector.  Histories returned by
    ``apply_vector(record=True)`` are mappings ``net name -> [(time,
    value), ...]`` starting with the time-0 value; they are the ground
    truth the compiled techniques are validated against.
    """

    def __init__(self, circuit: Circuit, logic: str = "two") -> None:
        if logic not in ("two", "three"):
            raise SimulationError(f"unknown logic model: {logic!r}")
        self.circuit = circuit
        self.logic = logic
        self.indexed = IndexedCircuit(circuit)
        initial = 0 if logic == "two" else X
        self.values: list[int] = [initial] * self.indexed.num_nets
        self.stats = SimulationStats()
        self._wheel = TimeWheel(self.indexed.num_gates)
        self._settled = False

    # ------------------------------------------------------------------
    def reset(
        self, vector: Mapping[str, int] | Sequence[int] | None = None
    ) -> None:
        """Establish the initial steady state.

        With a vector, settles the circuit on it (zero-delay); without,
        every net is set to 0 (two-valued) or X (three-valued).
        """
        idx = self.indexed
        if vector is None:
            fill = 0 if self.logic == "two" else X
            self.values = [fill] * idx.num_nets
            if self.logic == "two":
                # An all-0 state is not a fixed point (e.g. NOT gates), so
                # settle it: evaluate every gate once in topological order.
                self._settle_all()
            self._settled = True
            return
        values = self.values
        for net_id, value in zip(idx.input_ids, idx.input_values(vector)):
            values[net_id] = value
        self._settle_all()
        self._settled = True

    def _settle_all(self) -> None:
        idx = self.indexed
        values = self.values
        evaluate = eval_gate if self.logic == "two" else eval_gate3
        mask = 1 if self.logic == "two" else None
        for gate_id in idx.topo_gate_ids:
            operands = [values[i] for i in idx.gate_inputs[gate_id]]
            result = evaluate(idx.gate_types[gate_id], operands)
            if mask is not None:
                result &= 1
            values[idx.gate_output[gate_id]] = result

    # ------------------------------------------------------------------
    def apply_vector(
        self,
        vector: Mapping[str, int] | Sequence[int],
        record: bool = False,
    ) -> Optional[dict[str, list[tuple[int, int]]]]:
        """Simulate one input vector starting from the current steady state.

        Returns the full per-net change history when ``record`` is true,
        otherwise ``None`` (the fast path used for timing).
        """
        if not self._settled:
            raise SimulationError("call reset() before apply_vector()")
        idx = self.indexed
        values = self.values
        wheel = self._wheel
        wheel.clear()
        evaluate = eval_gate if self.logic == "two" else eval_gate3
        two_valued = self.logic == "two"

        history: Optional[list[list[tuple[int, int]]]] = None
        if record:
            history = [[(0, v)] for v in values]

        # Time 0: apply the primary inputs.
        for net_id, value in zip(idx.input_ids, idx.input_values(vector)):
            if values[net_id] != value:
                values[net_id] = value
                self.stats.events += 1
                if history is not None:
                    history[net_id][0] = (0, value)
                for gate_id in idx.net_fanout[net_id]:
                    wheel.schedule(gate_id)

        gate_inputs = idx.gate_inputs
        gate_output = idx.gate_output
        gate_types = idx.gate_types
        net_fanout = idx.net_fanout
        stats = self.stats
        # Two-phase stepping: all gates due at time t read the values the
        # nets held at t-1 (evaluate phase), then the changed outputs are
        # committed together.  Without the barrier, a gate evaluated
        # later in the same step could observe a same-instant update and
        # the simulation would not be unit-delay any more.
        updates: list[tuple[int, int]] = []
        while wheel.has_events:
            due = wheel.advance()
            time = wheel.time
            updates.clear()
            for gate_id in due:
                operands = [values[i] for i in gate_inputs[gate_id]]
                result = evaluate(gate_types[gate_id], operands)
                if two_valued:
                    result &= 1
                stats.gate_evaluations += 1
                out_id = gate_output[gate_id]
                if values[out_id] != result:
                    updates.append((out_id, result))
            for out_id, result in updates:
                values[out_id] = result
                stats.events += 1
                if history is not None:
                    history[out_id].append((time, result))
                for reader in net_fanout[out_id]:
                    wheel.schedule(reader)
            if time > stats.max_time:
                stats.max_time = time
        stats.vectors += 1

        if history is None:
            return None
        names = idx.net_names
        return {names[i]: changes for i, changes in enumerate(history)}

    # ------------------------------------------------------------------
    def value_of(self, net_name: str) -> int:
        """Current (settled) value of a net."""
        return self.values[self.indexed.net_ids[net_name]]

    def output_values(self) -> dict[str, int]:
        """Current settled values of the monitored outputs."""
        idx = self.indexed
        return {
            idx.net_names[i]: self.values[i] for i in idx.output_ids
        }

    def run_batch(self, vectors: Sequence[Sequence[int]]) -> int:
        """Simulate many vectors; return a fold of the monitored outputs.

        The first call must be preceded by :meth:`reset`.  The checksum
        is computed identically across all simulators in the library so
        results can be cross-checked cheaply.
        """
        checksum = 0
        out_ids = self.indexed.output_ids
        values = self.values
        for vector in vectors:
            self.apply_vector(vector)
            folded = 0
            for net_id in out_ids:
                folded = ((folded << 1) | (folded >> 61)) & (2**62 - 1)
                folded ^= values[net_id] & 1
            checksum ^= folded
        return checksum
