"""Render a :class:`~repro.codegen.program.Program` as Python source.

The generated artifact is a *generator function* (a coroutine machine):
all persistent variables live as locals of a suspended frame, so every
access compiles to ``LOAD_FAST``/``STORE_FAST`` and no per-step
packing/unpacking of state is needed.  The protocol:

- prime with ``next(gen)``;
- ``gen.send((0, V))`` runs one vector and returns the output list;
- ``gen.send((1,))`` returns the persistent state (masked words);
- ``gen.send((2, values))`` loads persistent state;
- ``gen.send((3, VS, OUT))`` runs the whole batch ``VS`` with the
  vector loop *inside* the generated code, appending every emitted
  word to the caller-supplied list ``OUT`` (flat, in vector order) and
  returning ``OUT``;
- ``gen.send((4, GS, OUT))`` is the pattern-packed batch entry
  (``run_packed_block``): each element of ``GS`` is a *group* of
  per-input lane words — bit ``j`` of word ``k`` carrying input ``k``
  of packed vector ``j`` — so one pass through the statement body
  evaluates up to ``word_width`` vectors.  The loop itself is the
  op-3 loop (packing is a data-layout contract, not different code);
  the distinct opcode keeps the entry point explicit and lets the
  runtime account lanes rather than passes.

The batch opcode is what makes ``Machine.step_many`` cheap on this
backend: one ``send`` drives thousands of vectors, so the per-vector
generator-protocol round trip (tuple allocation, resume, yield,
output-list allocation) disappears from the hot path.  Both opcodes
share a single copy of the statement body — opcode 0 is just a batch
of one — so generated source size (and ``compile()`` time) does not
grow.

Python ints are unbounded, so programs that shift left must mask each
assignment to the word width (``Program.mask_assignments``); purely
bit-wise programs (the PC-set method generates no shifts at all) skip
the masks and only mask at the observation points, exactly as a C
implementation's fixed-width variables would.
"""

from __future__ import annotations

from repro.codegen.program import (
    OPCODES,
    Assign,
    Bin,
    Comment,
    Const,
    Emit,
    Expr,
    Input,
    Program,
    Stmt,
    Un,
    Var,
    retarget_stmt,
)
from repro.errors import CodegenError

__all__ = ["emit_python", "render_expr_python"]


def render_expr_python(expr: Expr, masked: bool = False) -> str:
    """Render an expression with conservative parenthesization.

    With ``masked`` (used when the program masks assignments), the
    results of unary ``~`` and ``-`` are masked inline: Python ints are
    signed and unbounded, so a bare ``-x`` would right-shift
    *arithmetically* and smear its sign bit over the whole word —
    unlike the unsigned machine words the programs are written for.
    """
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, Input):
        return f"V[{expr.slot}]"
    if isinstance(expr, Un):
        if expr.op == "popcount":
            # Mask the argument (unbounded Python ints may carry
            # overflow bits the C word would have dropped); the result
            # is at most word_width, so it needs no mask of its own.
            return f"_popcount({_child(expr.a, masked)} & MASK)"
        body = f"{expr.op}{_child(expr.a, masked)}"
        if masked:
            return f"({body}) & MASK"
        return body
    if isinstance(expr, Bin):
        if expr.op == "sar":
            # Arithmetic right shift: convert to the signed value with
            # the (x ^ H) - H identity, then use Python's (arithmetic)
            # shift; the surrounding assignment mask truncates again.
            if not isinstance(expr.a, Var):
                raise CodegenError(
                    f"sar is only generated over plain variables: {expr!r}"
                )
            assert isinstance(expr.b, Const)
            return (
                f"(({expr.a.name} ^ HBIT) - HBIT) >> {expr.b.value}"
            )
        if masked and expr.op == ">>" and _contains_lshift(expr.a):
            raise CodegenError(
                "right shift over an unmasked left shift would leak "
                f"high bits: {expr!r}"
            )
        return (
            f"{_child(expr.a, masked)} {expr.op} {_child(expr.b, masked)}"
        )
    raise CodegenError(f"unknown expression node: {expr!r}")


def _contains_lshift(expr: Expr) -> bool:
    if isinstance(expr, Bin):
        if expr.op == "<<":
            return True
        return _contains_lshift(expr.a) or _contains_lshift(expr.b)
    if isinstance(expr, Un):
        # Unary results are masked inline in masked mode.
        return False
    return False


def _child(expr: Expr, masked: bool = False) -> str:
    text = render_expr_python(expr, masked)
    if isinstance(expr, (Bin, Un)):
        return f"({text})"
    return text


def _check_shifts(expr: Expr, width: int) -> None:
    if isinstance(expr, Bin):
        if expr.op in ("<<", ">>", "sar"):
            amount = expr.b
            assert isinstance(amount, Const)
            if not 0 <= amount.value < width:
                raise CodegenError(
                    f"shift by {amount.value} outside word width {width}"
                )
        _check_shifts(expr.a, width)
        _check_shifts(expr.b, width)
    elif isinstance(expr, Un):
        _check_shifts(expr.a, width)


def _statement_lines(
    stmts: list[Stmt], program: Program, indent: str
) -> list[str]:
    lines: list[str] = []
    mask = program.mask_assignments
    for stmt in stmts:
        if isinstance(stmt, Comment):
            lines.append(f"{indent}# {stmt.text}")
        elif isinstance(stmt, Assign):
            _check_shifts(stmt.expr, program.word_width)
            rhs = render_expr_python(stmt.expr, masked=mask)
            if mask and not isinstance(stmt.expr, Un):
                # Unary expressions are already masked inline.
                lines.append(f"{indent}{stmt.dest} = ({rhs}) & MASK")
            else:
                lines.append(f"{indent}{stmt.dest} = {rhs}")
        elif isinstance(stmt, Emit):
            _check_shifts(stmt.expr, program.word_width)
            rhs = render_expr_python(stmt.expr, masked=mask)
            lines.append(f"{indent}_append(({rhs}) & OUTMASK)")
        else:
            raise CodegenError(f"unknown statement: {stmt!r}")
    return lines


def _tiled_statements(stmts: list[Stmt], tiles: int) -> list[Stmt]:
    """Unroll each statement over the tiles (tile-minor order).

    Every tile gets its own suffixed local (``n12__t3``) and its own
    vector slice (slot-major: slot ``s`` tile ``t`` reads ``V[s*K+t]``),
    so the unrolled statements stay independent word programs — exactly
    the layout :class:`~repro.codegen.program.MachineInterface` declares.
    """
    out: list[Stmt] = []
    for stmt in stmts:
        if isinstance(stmt, Comment):
            out.append(stmt)
            continue
        for t in range(tiles):
            out.append(retarget_stmt(
                stmt,
                lambda name, t=t: f"{name}__t{t}",
                lambda slot, t=t: f"V[{slot * tiles + t}]",
            ))
    return out


def emit_python(program: Program, tiles: int = 1) -> str:
    """Produce the full Python source of the coroutine machine.

    ``tiles=K`` unrolls every statement K times over per-tile locals,
    so one pass carries ``word_width * K`` pattern lanes (or K
    independent per-lane shift words); ``tiles=1`` is byte-identical
    to the historical single-word emitter output.
    """
    program.validate()
    if tiles < 1:
        raise CodegenError(f"tiles must be >= 1, got {tiles}")
    if tiles == 1:
        state_names = list(program.state_vars)
        inits = program.state_init
        init, body, output = program.init, program.body, program.output
    else:
        state_names = [
            f"{name}__t{t}"
            for name in program.state_vars
            for t in range(tiles)
        ]
        inits = {
            f"{name}__t{t}": program.state_init[name]
            for name in program.state_vars
            for t in range(tiles)
        }
        init = _tiled_statements(program.init, tiles)
        body = _tiled_statements(program.body, tiles)
        output = _tiled_statements(program.output, tiles)
    lines: list[str] = [
        f"# generated by repro - program {program.name!r}",
        f"# word width {program.word_width}, "
        f"{len(program.state_vars)} state vars",
    ]
    if tiles > 1:
        lines.append(f"# tiles {tiles}")
    lines += [
        "def machine():",
        f"    MASK = {program.word_mask}",
        f"    OUTMASK = {program.output_mask}",
        f"    HBIT = {1 << (program.word_width - 1)}",
    ]
    if program.stats().popcounts:
        lines.append(
            "    _popcount = getattr(int, 'bit_count', None) or "
            "(lambda x: bin(x).count('1'))"
        )
    for name in state_names:
        lines.append(f"    {name} = {inits[name]}")
    op = OPCODES
    lines.append("    cmd = yield None")
    lines.append("    while 1:")
    lines.append("        op = cmd[0]")
    lines.append(f"        if op == {op['step']} or op == {op['run_block']}"
                 f" or op == {op['run_packed_block']}:")
    lines.append(f"            if op == {op['step']}:")
    lines.append("                VS = (cmd[1],)")
    lines.append("                OUT = []")
    lines.append("            else:")
    lines.append("                VS = cmd[1]")
    lines.append("                OUT = cmd[2]")
    lines.append("            _append = OUT.append")
    lines.append("            for V in VS:")
    body_indent = "                "
    lines += _statement_lines(init, program, body_indent)
    lines += _statement_lines(body, program, body_indent)
    lines += _statement_lines(output, program, body_indent)
    # A bare ``pass`` keeps the loop syntactically valid when every
    # section is empty (or holds only comments); it compiles to no
    # bytecode, so populated programs pay nothing for it.
    lines.append(f"{body_indent}pass")
    lines.append("            cmd = yield OUT")
    lines.append(f"        elif op == {op['dump_state']}:")
    if state_names:
        dump = ", ".join(f"{name} & MASK" for name in state_names)
        lines.append(f"            cmd = yield [{dump}]")
    else:
        lines.append("            cmd = yield []")
    lines.append("        else:")
    lines.append("            _s = cmd[1]")
    for i, name in enumerate(state_names):
        lines.append(f"            {name} = _s[{i}]")
    lines.append("            cmd = yield None")
    lines.append("")
    return "\n".join(lines)
