"""A tiny IR for straight-line word programs.

Every compiled-simulation technique in the paper generates code of the
same restricted shape: a sequence of assignments of bit-wise expressions
over fixed-width unsigned words, "executing in straight-line fashion
without tests or branches" (§1).  This module models exactly that —
variables, constants, unary ``~``/``-``, binary ``&``/``|``/``^`` and
shifts by constant amounts — and nothing more.  Keeping the IR this
small is what lets one program run identically on the Python backend
and on the gcc backend.

A :class:`Program` has three sections, mirroring the paper's code
layout:

``init``
    Executed first for each vector: reads primary-input words from the
    vector ``V`` and re-initializes whatever must carry over from the
    previous vector (§2's zero-element moves, §3's bit-0 shifts).
``body``
    The gate simulations, in levelized order.
``output``
    The output routine: :class:`Emit` statements appending sampled
    values to the output list.  Benchmarks compile programs without
    this section, matching the paper's timing methodology ("none of the
    execution times include ... printing output", §5).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import CodegenError

__all__ = [
    "Expr",
    "Var",
    "Const",
    "Input",
    "Un",
    "Bin",
    "Stmt",
    "Assign",
    "Emit",
    "Comment",
    "Program",
    "ProgramStats",
    "EntryPoint",
    "ENTRY_POINTS",
    "MachineInterface",
    "retarget_expr",
    "retarget_stmt",
    "v",
    "c",
]


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
class Expr:
    """Base class of expression nodes."""

    __slots__ = ()

    # Convenience constructors so generator code reads like the paper's
    # listings: ``(a & b) << 1`` etc.
    def __and__(self, other: "Expr") -> "Bin":
        return Bin("&", self, other)

    def __or__(self, other: "Expr") -> "Bin":
        return Bin("|", self, other)

    def __xor__(self, other: "Expr") -> "Bin":
        return Bin("^", self, other)

    def __lshift__(self, amount: int) -> "Bin":
        return Bin("<<", self, Const(amount))

    def __rshift__(self, amount: int) -> "Bin":
        return Bin(">>", self, Const(amount))

    def __invert__(self) -> "Un":
        return Un("~", self)

    def __neg__(self) -> "Un":
        return Un("-", self)

    def __add__(self, other: "Expr") -> "Bin":
        return Bin("+", self, other)


class Var(Expr):
    """A reference to a state variable or a vector slot (``V[k]``)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"Var({self.name})"


class Const(Expr):
    """An integer literal (always non-negative in well-formed programs)."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Const({self.value})"


class Input(Expr):
    """A read of vector slot ``V[slot]`` (a primary-input word)."""

    __slots__ = ("slot",)

    def __init__(self, slot: int) -> None:
        self.slot = slot

    def __repr__(self) -> str:
        return f"Input(V[{self.slot}])"


class Un(Expr):
    """Unary ``~`` (NOT), ``-`` (negate) or ``popcount``.

    ``-x`` on a 0/1 word is the "replicate this bit through the whole
    word" idiom used by the parallel technique's initialization code.
    ``popcount`` counts the set bits of a word — the probe-lowering
    pass uses it to charge a whole lane word of transitions to a
    toggle counter in one operation.
    """

    __slots__ = ("op", "a")

    def __init__(self, op: str, a: Expr) -> None:
        if op not in ("~", "-", "popcount"):
            raise CodegenError(f"bad unary operator: {op!r}")
        self.op = op
        self.a = a

    def __repr__(self) -> str:
        return f"Un({self.op}, {self.a!r})"


class Bin(Expr):
    """Binary ``&``, ``|``, ``^``, ``+``, ``<<``, ``>>`` or ``sar``.

    ``+`` is modular word addition — probe counters accumulate with
    it; the emitters mask (or rely on fixed-width wrap) so all
    backends agree at every word width.

    ``sar`` is the arithmetic (sign-replicating) right shift: vacated
    high-order positions replicate the word's top bit.  The paper's
    right shifts "simply replicate from the high-order bit" — on the
    original hardware that is one signed-shift instruction, and the C
    backend emits exactly that; the Python backend synthesizes it.

    Shift amounts must be constants: the generated code is straight-line
    and every shift distance is known at code-generation time.
    """

    __slots__ = ("op", "a", "b")

    def __init__(self, op: str, a: Expr, b: Expr) -> None:
        if op not in ("&", "|", "^", "+", "<<", ">>", "sar"):
            raise CodegenError(f"bad binary operator: {op!r}")
        if op in ("<<", ">>", "sar") and not isinstance(b, Const):
            raise CodegenError("shift amounts must be constant")
        self.op = op
        self.a = a
        self.b = b

    def __repr__(self) -> str:
        return f"Bin({self.op}, {self.a!r}, {self.b!r})"


def v(name: str) -> Var:
    """Shorthand for :class:`Var`."""
    return Var(name)


def c(value: int) -> Const:
    """Shorthand for :class:`Const`."""
    return Const(value)


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------
class Stmt:
    __slots__ = ()


class Assign(Stmt):
    """``dest = expr``."""

    __slots__ = ("dest", "expr")

    def __init__(self, dest: str, expr: Expr) -> None:
        self.dest = dest
        self.expr = expr

    def __repr__(self) -> str:
        return f"Assign({self.dest} = {self.expr!r})"


class Emit(Stmt):
    """Append ``expr`` (masked to the output mask) to the output list.

    ``label`` documents what the value is — typically ``(net, time)``
    or ``(net, word_index)`` — so callers can decode the output list.
    """

    __slots__ = ("expr", "label")

    def __init__(self, expr: Expr, label: tuple) -> None:
        self.expr = expr
        self.label = label

    def __repr__(self) -> str:
        return f"Emit({self.label}: {self.expr!r})"


class Comment(Stmt):
    """A source comment; emitters may render or drop it."""

    __slots__ = ("text",)

    def __init__(self, text: str) -> None:
        self.text = text

    def __repr__(self) -> str:
        return f"Comment({self.text!r})"


# ----------------------------------------------------------------------
# programs
# ----------------------------------------------------------------------
class ProgramStats:
    """Operation counts of a program — the backend-independent cost model.

    ``shifts`` counts ``<<``/``>>`` nodes; ``logic_ops`` counts
    ``&``/``|``/``^``/``~``; ``assignments`` counts assignment
    statements.  Benchmarks report these next to wall-clock times so the
    optimization effects (Figs. 20-24) are visible even where the host's
    constant factors differ from a SUN 3/260's.
    """

    __slots__ = ("assignments", "logic_ops", "shifts", "negates", "adds",
                 "popcounts", "emits", "source_lines")

    def __init__(self) -> None:
        self.assignments = 0
        self.logic_ops = 0
        self.shifts = 0
        self.negates = 0
        self.adds = 0
        self.popcounts = 0
        self.emits = 0
        self.source_lines = 0

    @property
    def total_ops(self) -> int:
        return (self.logic_ops + self.shifts + self.negates + self.adds
                + self.popcounts)

    def as_dict(self) -> dict[str, int]:
        return {
            "assignments": self.assignments,
            "logic_ops": self.logic_ops,
            "shifts": self.shifts,
            "negates": self.negates,
            "adds": self.adds,
            "popcounts": self.popcounts,
            "emits": self.emits,
            "source_lines": self.source_lines,
        }

    def __repr__(self) -> str:
        return (
            f"ProgramStats(assign={self.assignments}, logic={self.logic_ops},"
            f" shifts={self.shifts}, neg={self.negates}, lines="
            f"{self.source_lines})"
        )


class Program:
    """A complete straight-line simulation program.

    Parameters
    ----------
    name:
        Used in generated source and diagnostics.
    word_width:
        Bits per word (the paper's implementation used 32-bit words).
    inputs:
        Labels for the vector slots ``V[0..k-1]``; generators use the
        primary-input net names.
    mask_assignments:
        When true, the Python backend masks every assignment to
        ``word_width`` bits (needed whenever the program shifts left,
        since Python ints are unbounded).  The C backend gets masking
        for free from its fixed-width types.
    output_mask:
        Mask applied to emitted values (1 for single-bit programs, the
        full word mask for bit-field or multi-vector programs).
    state_carry:
        How the persistent state depends on the previous vector.
        ``"opaque"`` (the default) promises nothing.  ``"finals"``
        declares that re-seeding the state with the technique's
        ``_encode_state(settled(previous vector))`` reproduces — bit
        for bit — both the outputs and the full post-pass state of a
        pass run from the true chained state; i.e. cross-vector
        dependence flows only through the previous settled finals.
        This is the eligibility flag for the per-lane packed execution
        of shift programs (see :mod:`repro.codegen.packing`).
    """

    def __init__(
        self,
        name: str,
        *,
        word_width: int = 32,
        inputs: Optional[list[str]] = None,
        mask_assignments: bool = False,
        output_mask: Optional[int] = None,
        state_carry: str = "opaque",
    ) -> None:
        if word_width not in (8, 16, 32, 64):
            raise CodegenError(
                f"word_width must be 8, 16, 32 or 64, got {word_width}"
            )
        if state_carry not in ("opaque", "finals"):
            raise CodegenError(
                f"state_carry must be 'opaque' or 'finals', "
                f"got {state_carry!r}"
            )
        self.name = name
        self.word_width = word_width
        self.inputs: list[str] = list(inputs) if inputs else []
        self.mask_assignments = mask_assignments
        self.state_carry = state_carry
        self.word_mask = (1 << word_width) - 1
        self.output_mask = (
            output_mask if output_mask is not None else self.word_mask
        )
        self.state_vars: list[str] = []
        self._state_set: set[str] = set()
        self.state_init: dict[str, int] = {}
        self.temp_vars: list[str] = []
        self._temp_set: set[str] = set()
        self.init: list[Stmt] = []
        self.body: list[Stmt] = []
        self.output: list[Stmt] = []
        #: Optional semantic content hash.  When set, the runtime keys
        #: the process-wide program cache on it (plus backend/opt/tile
        #: qualifiers) instead of hashing the generated source text —
        #: generators that can fingerprint their *input* (e.g. a fanin
        #: cone of the netlist) get cache hits without paying for
        #: source generation twice, and unchanged cones survive edits
        #: elsewhere in the circuit.  Must uniquely determine the
        #: generated source for every backend.
        self.content_key: Optional[str] = None

    # ------------------------------------------------------------------
    def declare(self, name: str, initial: int = 0) -> str:
        """Declare a persistent state variable; returns its name."""
        if name in self._state_set:
            raise CodegenError(f"duplicate state variable: {name!r}")
        self._state_set.add(name)
        self.state_vars.append(name)
        self.state_init[name] = initial & self.word_mask
        return name

    def declare_temp(self, name: str) -> str:
        """Declare a per-step temporary (not part of persistent state).

        Idempotent: generators reuse a small pool of temp names across
        gates, so re-declaring an existing temp returns it unchanged.
        """
        if name in self._state_set:
            raise CodegenError(f"temp {name!r} clashes with a state var")
        if name not in self._temp_set:
            self._temp_set.add(name)
            self.temp_vars.append(name)
        return name

    def is_state(self, name: str) -> bool:
        return name in self._state_set

    def input_slot(self, label: str) -> int:
        """Index of an input label in the vector ``V``."""
        return self.inputs.index(label)

    # ------------------------------------------------------------------
    def statements(self) -> Iterator[Stmt]:
        yield from self.init
        yield from self.body
        yield from self.output

    def output_labels(self) -> list[tuple]:
        """Labels of the Emit statements, in emission order."""
        return [s.label for s in self.output if isinstance(s, Emit)]

    def stats(self) -> ProgramStats:
        """Count operations across all sections."""
        stats = ProgramStats()
        for stmt in self.statements():
            if isinstance(stmt, Comment):
                continue
            stats.source_lines += 1
            if isinstance(stmt, Assign):
                stats.assignments += 1
                _count(stmt.expr, stats)
            elif isinstance(stmt, Emit):
                stats.emits += 1
                _count(stmt.expr, stats)
        return stats

    def validate(self) -> None:
        """Check that every referenced variable is a state var or input.

        Temporaries must be declared too (generators declare them with
        ``declare``); this catches typos in generated code early, where
        they are cheap to debug.  Input slots must lie inside the
        declared vector width — an out-of-range slot would read past
        the vector buffer on the C backend.
        """
        for stmt in self.statements():
            if isinstance(stmt, (Assign, Emit)):
                for slot in _input_slots(stmt.expr):
                    if not 0 <= slot < max(1, len(self.inputs)):
                        raise CodegenError(
                            f"{self.name}: input slot {slot} outside "
                            f"vector of {len(self.inputs)} inputs"
                        )
        known = set(self.state_vars) | set(self.temp_vars)
        for stmt in self.statements():
            if isinstance(stmt, Assign):
                for ref in _variables(stmt.expr):
                    if ref not in known:
                        raise CodegenError(
                            f"{self.name}: use of undeclared variable "
                            f"{ref!r} in {stmt!r}"
                        )
                if stmt.dest not in known:
                    raise CodegenError(
                        f"{self.name}: assignment to undeclared variable "
                        f"{stmt.dest!r}"
                    )
            elif isinstance(stmt, Emit):
                for ref in _variables(stmt.expr):
                    if ref not in known:
                        raise CodegenError(
                            f"{self.name}: emit of undeclared variable "
                            f"{ref!r}"
                        )

    def without_output(self) -> "Program":
        """A shallow copy with the output section dropped (timing runs)."""
        clone = Program(
            self.name + "_noout",
            word_width=self.word_width,
            inputs=self.inputs,
            mask_assignments=self.mask_assignments,
            output_mask=self.output_mask,
            state_carry=self.state_carry,
        )
        clone.state_vars = self.state_vars
        clone._state_set = self._state_set
        clone.state_init = self.state_init
        clone.temp_vars = self.temp_vars
        clone._temp_set = self._temp_set
        clone.init = self.init
        clone.body = self.body
        clone.output = []
        return clone

    def interface(self, tiles: int = 1) -> "MachineInterface":
        """The per-pass ABI of this program at a given tile count."""
        return MachineInterface(self, tiles)

    # Rendering ---------------------------------------------------------
    def python_source(self, tiles: int = 1) -> str:
        from repro.codegen.python_emitter import emit_python

        return emit_python(self, tiles=tiles)

    def c_source(self, tiles: int = 1) -> str:
        from repro.codegen.c_emitter import emit_c

        return emit_c(self, tiles=tiles)

    def numpy_source(self, tiles: int = 1) -> str:
        from repro.codegen.numpy_emitter import emit_numpy

        return emit_numpy(self, tiles=tiles)

    def __repr__(self) -> str:
        return (
            f"Program({self.name!r}, W={self.word_width}, "
            f"{len(self.state_vars)} vars, "
            f"{len(self.init)}+{len(self.body)}+{len(self.output)} stmts)"
        )


def _count(expr: Expr, stats: ProgramStats) -> None:
    if isinstance(expr, Bin):
        if expr.op in ("<<", ">>", "sar"):
            stats.shifts += 1
        elif expr.op == "+":
            stats.adds += 1
        else:
            stats.logic_ops += 1
        _count(expr.a, stats)
        _count(expr.b, stats)
    elif isinstance(expr, Un):
        if expr.op == "~":
            stats.logic_ops += 1
        elif expr.op == "popcount":
            stats.popcounts += 1
        else:
            stats.negates += 1
        _count(expr.a, stats)


def _input_slots(expr: Expr) -> Iterator[int]:
    if isinstance(expr, Input):
        yield expr.slot
    elif isinstance(expr, Bin):
        yield from _input_slots(expr.a)
        yield from _input_slots(expr.b)
    elif isinstance(expr, Un):
        yield from _input_slots(expr.a)


def _variables(expr: Expr) -> Iterator[str]:
    if isinstance(expr, Var):
        yield expr.name
    elif isinstance(expr, Bin):
        yield from _variables(expr.a)
        yield from _variables(expr.b)
    elif isinstance(expr, Un):
        yield from _variables(expr.a)


# ----------------------------------------------------------------------
# the machine interface (shared entry-point surface)
# ----------------------------------------------------------------------
class EntryPoint:
    """One entry point of a compiled program.

    ``opcode`` is the request code of the Python backend's generator
    protocol; ``c_symbol`` is the exported function name on the C
    backend.  Both emitters and the runtime lower from this single
    table, so adding an entry point is a one-line change here instead
    of three parallel edits.
    """

    __slots__ = ("name", "opcode", "c_symbol")

    def __init__(self, name: str, opcode: int, c_symbol: str) -> None:
        self.name = name
        self.opcode = opcode
        self.c_symbol = c_symbol

    def __repr__(self) -> str:
        return f"EntryPoint({self.name}, op={self.opcode})"


#: The complete entry-point surface every backend must provide.
ENTRY_POINTS = (
    EntryPoint("step", 0, "step"),
    EntryPoint("dump_state", 1, "dump_state"),
    EntryPoint("load_state", 2, "load_state"),
    EntryPoint("run_block", 3, "run_block"),
    EntryPoint("run_packed_block", 4, "run_packed_block"),
)

OPCODES = {ep.name: ep.opcode for ep in ENTRY_POINTS}


class MachineInterface:
    """The per-pass ABI of a program compiled at a given tile count.

    With ``tiles=K`` every net holds an array of K words, so one pass
    consumes ``len(inputs) * K`` vector words (slot-major: slot ``s``
    tile ``t`` lives at index ``s*K + t``), carries
    ``len(state_vars) * K`` state words, and produces one word per
    (Emit, tile) — again emit-major.  All three emitters and the
    runtime's buffer sizing derive from this one object, which is what
    keeps the tiled layouts bit-compatible across backends.
    """

    __slots__ = ("tiles", "word_width", "num_inputs", "num_state_vars",
                 "num_emits", "vector_words", "state_words",
                 "output_words", "entry_points", "_labels")

    def __init__(self, program: Program, tiles: int = 1) -> None:
        if tiles < 1:
            raise CodegenError(f"tiles must be >= 1, got {tiles}")
        self.tiles = tiles
        self.word_width = program.word_width
        self.num_inputs = len(program.inputs)
        self.num_state_vars = len(program.state_vars)
        self.num_emits = len(program.output_labels())
        self.vector_words = self.num_inputs * tiles
        self.state_words = self.num_state_vars * tiles
        self.output_words = self.num_emits * tiles
        self.entry_points = ENTRY_POINTS
        self._labels = program.output_labels()

    def output_labels(self) -> list[tuple]:
        """Emission-order labels; tiled labels gain a tile suffix."""
        if self.tiles == 1:
            return list(self._labels)
        return [
            label + (t,)
            for label in self._labels
            for t in range(self.tiles)
        ]

    def __repr__(self) -> str:
        return (
            f"MachineInterface(K={self.tiles}, V={self.vector_words}, "
            f"S={self.state_words}, O={self.output_words})"
        )


# ----------------------------------------------------------------------
# retargeting (the shared tiled-lowering rewriter)
# ----------------------------------------------------------------------
def retarget_expr(expr, var_ref, input_ref):
    """Rewrite an expression for a different storage layout.

    ``var_ref(name)`` and ``input_ref(slot)`` return replacement
    *names* rendered verbatim by every emitter (e.g. ``"n12[t]"`` for
    the C tile loop, ``"n12__t3"`` for the unrolled Python body).
    Structure is preserved — in particular a ``sar`` operand stays a
    :class:`Var`, so each backend's sign-replication idiom still
    applies.  Called at emit time on validated programs; the rewritten
    nodes are rendered, never re-validated.
    """
    if isinstance(expr, Var):
        return Var(var_ref(expr.name))
    if isinstance(expr, Input):
        return Var(input_ref(expr.slot))
    if isinstance(expr, Un):
        return Un(expr.op, retarget_expr(expr.a, var_ref, input_ref))
    if isinstance(expr, Bin):
        return Bin(
            expr.op,
            retarget_expr(expr.a, var_ref, input_ref),
            retarget_expr(expr.b, var_ref, input_ref),
        )
    return expr


def retarget_stmt(stmt, var_ref, input_ref, label=None):
    """Statement-level counterpart of :func:`retarget_expr`."""
    if isinstance(stmt, Assign):
        return Assign(
            var_ref(stmt.dest),
            retarget_expr(stmt.expr, var_ref, input_ref),
        )
    if isinstance(stmt, Emit):
        return Emit(
            retarget_expr(stmt.expr, var_ref, input_ref),
            stmt.label if label is None else label,
        )
    return stmt
