"""Render a :class:`~repro.codegen.program.Program` as C source.

The original work generated C and compiled it with the system compiler;
this emitter restores that: the program becomes a shared library with a
``step`` entry point operating on fixed-width unsigned words
(``uint8_t``..``uint64_t`` according to the program's word width),
batch drivers ``run_block`` (one vector per pass) and
``run_packed_block`` (pattern-lane packed: one pass per ``word_width``
vectors, see :mod:`repro.codegen.packing`), plus
``dump_state``/``load_state`` accessors used to seed and inspect the
persistent variables.  Masking is free — the C types wrap naturally —
so the emitted expressions match the paper's listings one for one.
"""

from __future__ import annotations

from repro.codegen.program import (
    ENTRY_POINTS,
    Assign,
    Bin,
    Comment,
    Const,
    Emit,
    Expr,
    Input,
    Program,
    Stmt,
    Un,
    Var,
    retarget_stmt,
)
from repro.errors import CodegenError

__all__ = ["emit_c", "render_expr_c", "C_WORD_TYPES"]

C_WORD_TYPES = {
    8: "uint8_t",
    16: "uint16_t",
    32: "uint32_t",
    64: "uint64_t",
}

#: Signed counterparts, used to render the arithmetic shift ``sar``.
C_SWORD_TYPES = {
    8: "int8_t",
    16: "int16_t",
    32: "int32_t",
    64: "int64_t",
}


def render_expr_c(expr: Expr, word_type: str) -> str:
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Const):
        suffix = "ULL" if word_type == "uint64_t" else "U"
        return f"{expr.value}{suffix}"
    if isinstance(expr, Input):
        return f"V[{expr.slot}]"
    if isinstance(expr, Un):
        child = _child(expr.a, word_type)
        if expr.op == "~":
            # Cast back: C integer promotion widens uint8/uint16 to int.
            return f"({word_type})~{child}"
        if expr.op == "popcount":
            return f"popcount_w({child})"
        return f"({word_type})(0 - {child})"
    if isinstance(expr, Bin):
        a = _child(expr.a, word_type)
        b = _child(expr.b, word_type)
        if expr.op == "sar":
            # One signed-shift instruction: the high-order bit
            # replicates into the vacated positions.
            return f"({word_type})((sword){a} >> {b})"
        if expr.op in ("<<", ">>", "+"):
            # Promotion again: keep sub-int widths honest.
            return f"({word_type})({a} {expr.op} {b})"
        return f"{a} {expr.op} {b}"
    raise CodegenError(f"unknown expression node: {expr!r}")


def _child(expr: Expr, word_type: str) -> str:
    text = render_expr_c(expr, word_type)
    if isinstance(expr, (Bin, Un)):
        return f"({text})"
    return text


def _statement_lines(
    stmts: list[Stmt], program: Program, word_type: str, indent: str
) -> list[str]:
    lines: list[str] = []
    for stmt in stmts:
        if isinstance(stmt, Comment):
            lines.append(f"{indent}/* {stmt.text} */")
        elif isinstance(stmt, Assign):
            rhs = render_expr_c(stmt.expr, word_type)
            lines.append(f"{indent}{stmt.dest} = {rhs};")
        elif isinstance(stmt, Emit):
            rhs = render_expr_c(stmt.expr, word_type)
            lines.append(f"{indent}*OUT++ = ({rhs}) & OUTMASK;")
        else:
            raise CodegenError(f"unknown statement: {stmt!r}")
    return lines


def _tile_index(program: Program) -> str:
    """A loop-index name no program variable shadows."""
    used = set(program.state_vars) | set(program.temp_vars)
    name = "t"
    while name in used:
        name = "_" + name
    return name


def _tiled_statement_lines(
    stmts: list[Stmt], word_type: str, tiles: int, indent: str, idx: str
) -> list[str]:
    """Each statement becomes one tight ``for (t...)`` loop over the tiles.

    All per-net storage is an array of ``tiles`` words and the loops
    are independent per iteration, which is the shape gcc's
    auto-vectorizer turns into SIMD — the super-word scaling the tiled
    path is after.  Vector reads are slot-major (``V[s*K + t]``).
    """
    lines: list[str] = []
    for stmt in stmts:
        if isinstance(stmt, Comment):
            lines.append(f"{indent}/* {stmt.text} */")
            continue
        tiled = retarget_stmt(
            stmt,
            lambda name: f"{name}[{idx}]",
            lambda slot: f"V[{slot * tiles} + {idx}]",
        )
        lines.append(f"{indent}for ({idx} = 0; {idx} < {tiles}; {idx}++) {{")
        if isinstance(tiled, Assign):
            rhs = render_expr_c(tiled.expr, word_type)
            lines.append(f"{indent}    {tiled.dest} = {rhs};")
        elif isinstance(tiled, Emit):
            rhs = render_expr_c(tiled.expr, word_type)
            lines.append(f"{indent}    OUT[{idx}] = ({rhs}) & OUTMASK;")
        else:
            raise CodegenError(f"unknown statement: {stmt!r}")
        lines.append(f"{indent}}}")
        if isinstance(tiled, Emit):
            lines.append(f"{indent}OUT += {tiles};")
    return lines


def emit_c(program: Program, tiles: int = 1) -> str:
    """Produce the full C source of the shared-library machine.

    ``tiles=K`` turns every net into an array of K words and every
    statement into a K-iteration loop (see
    :func:`_tiled_statement_lines`); ``tiles=1`` is byte-identical to
    the historical single-word emitter output.
    """
    program.validate()
    if tiles < 1:
        raise CodegenError(f"tiles must be >= 1, got {tiles}")
    word_type = C_WORD_TYPES[program.word_width]
    suffix = "ULL" if word_type == "uint64_t" else "U"
    idx = _tile_index(program)
    interface = program.interface(tiles)
    lines: list[str] = [
        f"/* generated by repro - program {program.name!r} */",
        "#include <stdint.h>",
        "",
        f"#define OUTMASK {program.output_mask}{suffix}",
        f"typedef {word_type} word;",
        f"typedef {C_SWORD_TYPES[program.word_width]} sword;",
        "",
    ]
    if program.stats().popcounts:
        lines += [
            "#if defined(__GNUC__) || defined(__clang__)",
            "static inline word popcount_w(word x) {",
            "    return (word)__builtin_popcountll("
            "(unsigned long long)x);",
            "}",
            "#else",
            "static inline word popcount_w(word x) {",
            "    word n = 0;",
            "    while (x) { x &= (word)(x - 1); n++; }",
            "    return n;",
            "}",
            "#endif",
            "",
        ]
    for name in program.state_vars:
        init = f"{program.state_init[name]}{suffix}"
        if tiles == 1:
            lines.append(f"static word {name} = {init};")
        else:
            fill = ", ".join([init] * tiles)
            lines.append(f"static word {name}[{tiles}] = {{{fill}}};")
    lines.append("")
    num_outputs = interface.output_words
    lines.append(f"int num_state(void) {{ return {interface.state_words}; }}")
    lines.append(f"int num_outputs(void) {{ return {num_outputs}; }}")
    lines.append("")
    if tiles == 1:
        lines.append("void step(const word *V, word *OUT) {")
    else:
        # restrict lets the vectorizer assume V/OUT never alias the
        # static state arrays — without it every 8-iteration tile loop
        # gets a runtime overlap check that eats the SIMD win.
        lines.append(
            "void step(const word *restrict V, word *restrict OUT) {"
        )
    if program.temp_vars:
        if tiles == 1:
            decl = ", ".join(program.temp_vars)
        else:
            decl = ", ".join(f"{t}[{tiles}]" for t in program.temp_vars)
        lines.append(f"    word {decl};")
    if tiles > 1:
        lines.append(f"    int {idx};")
    lines.append("    (void)V; (void)OUT;")
    if tiles == 1:
        lines += _statement_lines(program.init, program, word_type, "    ")
        lines += _statement_lines(program.body, program, word_type, "    ")
        lines += _statement_lines(program.output, program, word_type, "    ")
    else:
        for section in (program.init, program.body, program.output):
            lines += _tiled_statement_lines(
                section, word_type, tiles, "    ", idx
            )
    lines.append("}")
    lines.append("")
    num_inputs = max(1, interface.vector_words)
    lines.append(f"#define NUM_INPUTS {num_inputs}")
    symbol = {ep.name: ep.c_symbol for ep in ENTRY_POINTS}
    lines.append(f"#define NUM_OUTPUTS {num_outputs}")
    lines.append(f"static word OUT_SCRATCH[{max(1, num_outputs)}];")
    # The batch driver: the whole vector loop stays inside the shared
    # library.  OUT == NULL discards outputs (the timing fast path);
    # otherwise each vector's emitted words land at OUT + i*NUM_OUTPUTS
    # in the caller-supplied buffer.
    lines.append(f"void {symbol['run_block']}(const word *V, long n,"
                 " word *OUT) {")
    lines.append("    long i;")
    lines.append("    if (OUT) {")
    lines.append("        for (i = 0; i < n; i++) {")
    lines.append("            step(V + i * NUM_INPUTS,"
                 " OUT + i * NUM_OUTPUTS);")
    lines.append("        }")
    lines.append("    } else {")
    lines.append("        for (i = 0; i < n; i++) {")
    lines.append("            step(V + i * NUM_INPUTS, OUT_SCRATCH);")
    lines.append("        }")
    lines.append("    }")
    lines.append("}")
    lines.append("")
    # Pattern-packed batch entry: each of the n "vectors" is a group of
    # per-input lane words (bit j of word k = input k of packed vector
    # j), so one step evaluates up to a whole word of vectors.  Packing
    # is a data-layout contract — the per-pass code is the same — but
    # the named entry point keeps the ABI explicit and mirrors the
    # Python backend's packed opcode.
    lines.append(f"void {symbol['run_packed_block']}(const word *V, long n,"
                 " word *OUT) {")
    lines.append(f"    {symbol['run_block']}(V, n, OUT);")
    lines.append("}")
    lines.append("")
    lines.append(f"void {symbol['dump_state']}(word *S) {{")
    if tiles > 1 and program.state_vars:
        lines.append(f"    int {idx};")
    lines.append("    (void)S;")
    for i, name in enumerate(program.state_vars):
        if tiles == 1:
            lines.append(f"    S[{i}] = {name};")
        else:
            lines.append(f"    for ({idx} = 0; {idx} < {tiles}; {idx}++)"
                         f" S[{i * tiles} + {idx}] = {name}[{idx}];")
    lines.append("}")
    lines.append("")
    lines.append(f"void {symbol['load_state']}(const word *S) {{")
    if tiles > 1 and program.state_vars:
        lines.append(f"    int {idx};")
    lines.append("    (void)S;")
    for i, name in enumerate(program.state_vars):
        if tiles == 1:
            lines.append(f"    {name} = S[{i}];")
        else:
            lines.append(f"    for ({idx} = 0; {idx} < {tiles}; {idx}++)"
                         f" {name}[{idx}] = S[{i * tiles} + {idx}];")
    lines.append("}")
    lines.append("")
    return "\n".join(lines)
