"""Gate functions as IR expression trees.

Shared by every code generator: renders AND/OR/... over operand
expressions using only bit-wise operators, so the same builder serves
scalar simulation, bit-parallel multi-vector simulation, and the
parallel technique's bit-field simulation.
"""

from __future__ import annotations

from functools import reduce

from repro.codegen.program import Bin, Const, Expr, Un
from repro.errors import CodegenError
from repro.logic import GateType

__all__ = ["gate_expression"]


def _fold(op: str, operands: list[Expr]) -> Expr:
    return reduce(lambda a, b: Bin(op, a, b), operands)


def gate_expression(gate_type: GateType, operands: list[Expr]) -> Expr:
    """Expression computing ``gate_type`` over ``operands`` bit-wise."""
    n = len(operands)
    if n < gate_type.min_inputs:
        raise CodegenError(
            f"{gate_type.value} needs {gate_type.min_inputs}+ operands, "
            f"got {n}"
        )
    if gate_type is GateType.AND:
        return _fold("&", operands)
    if gate_type is GateType.NAND:
        return Un("~", _fold("&", operands))
    if gate_type is GateType.OR:
        return _fold("|", operands)
    if gate_type is GateType.NOR:
        return Un("~", _fold("|", operands))
    if gate_type is GateType.XOR:
        return _fold("^", operands)
    if gate_type is GateType.XNOR:
        return Un("~", _fold("^", operands))
    if gate_type is GateType.NOT:
        return Un("~", operands[0])
    if gate_type is GateType.BUF:
        return operands[0]
    if gate_type is GateType.CONST0:
        return Const(0)
    if gate_type is GateType.CONST1:
        return Un("~", Const(0))
    raise CodegenError(f"unknown gate type: {gate_type!r}")
