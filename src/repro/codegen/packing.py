"""Pattern-lane packing: bit-matrix transposition for compiled passes.

The paper observes (§3) that the generated straight-line code is
"amenable to bit-parallel simulation": every operator the generators
emit except the shifts acts on each bit position independently, so one
pass through the compiled code can evaluate ``word_width`` *different*
input vectors at once if the inputs are transposed — bit ``j`` of input
word ``k`` carries the value of primary input ``k`` in vector ``j``.
This module owns that transposition (packing scalar vectors into lane
words and unpacking lane words back into scalar outputs) and the
eligibility analysis that decides when a program may be driven packed.

Eligibility — the shift-free rule
---------------------------------
Lane independence holds exactly for ``&``, ``|``, ``^`` and ``~``.
Two IR operators cross lanes and disqualify a program:

- shifts (``<<``, ``>>``, ``sar``) — the §3 parallel technique's
  time-shift operations deliberately move history *across* bit
  positions, which is the opposite of keeping lanes independent;
- unary ``-`` (two's-complement negate) — borrow propagation smears
  lane 0 into every higher lane (that is precisely why the parallel
  technique uses it to replicate a bit through the word).

:func:`packing_mode` classifies a program:

``"full"``
    Shift-free *and* memoryless: every variable an expression reads has
    already been written earlier in the same pass.  Packed evaluation
    is bit-identical to a scalar pass in every lane, for every emitted
    output and every state word.  Zero-delay LCC programs are of this
    kind.
``"settled"``
    Shift-free but stateful: some variable is read before it is written
    (the PC-set method's zero-element moves read the *previous*
    vector's final values).  Lanes still evolve independently, but a
    lane's intermediate-time values depend on state the scalar chain
    would have threaded vector-by-vector.  Only the *settled final*
    values — which in an acyclic circuit depend on the current inputs
    alone — are reproduced exactly; callers may pack only when they
    observe nothing else (fault grading does: it compares settled
    monitored outputs).
``"none"``
    The program contains shifts or negates; one word cannot carry
    multiple lanes.  Such *shift programs* still pack — but with one
    word per (net, lane), so the time-shift operations move history
    within a lane instead of across lanes: see `Per-lane packing`_.

Tiling — past the word_width ceiling
------------------------------------
Lane packing caps at ``word_width`` vectors per dispatch.  Compiling a
program with ``tiles=K`` (see :func:`~repro.codegen.runtime\
.compile_program`) turns every net into an array of K words, so one
pass carries ``word_width * K`` pattern lanes.  The layout is
*slot-major* everywhere — input slot ``s`` tile ``t`` at vector index
``s*K + t``, and likewise for state and output words — which is what
:class:`~repro.codegen.program.MachineInterface` declares and all
three emitters honor.  :func:`select_tiles` picks K from the batch
size (the single-word path is the K=1 special case);
:func:`packed_apply`/:func:`packed_bits` transparently drive tiled
machines.

Per-lane packing (shift programs)
---------------------------------
A tiled machine also unlocks the §3 parallel technique: give each of
the K tiles its *own* scalar lane — one word per (net, lane) — and the
shifts move history within that lane exactly as the scalar chain
would.  Correctness needs one more property, declared by the program
as ``state_carry="finals"``: cross-vector dependence flows only
through the previous vector's settled finals.  Then a batch of n
vectors splits into K contiguous segments (:func:`lane_segments`),
lane t seeded from the settled state after the last vector of segment
t-1, and every lane's passes are bit-identical to the scalar chain —
outputs *and* final state.  The simulator layer
(:meth:`repro.simbase.CompiledSimulator.apply_vectors`) owns the
seeding; this module owns the segmentation and eligibility.

All packing entry points validate their words against the program's
word width and raise :class:`~repro.errors.SimulationError` on overflow
rather than relying on backend-dependent truncation (ctypes truncates
silently; Python ints do not truncate at all).
"""

from __future__ import annotations

from typing import Sequence

from repro import telemetry
from repro.codegen.program import (
    Assign,
    Bin,
    Emit,
    Expr,
    Program,
    Un,
    Var,
)
from repro.errors import SimulationError

__all__ = [
    "MAX_TILES",
    "is_shift_free",
    "packing_mode",
    "validate_packed_words",
    "pack_patterns",
    "unpack_patterns",
    "packed_apply",
    "packed_bits",
    "select_tiles",
    "select_lanes",
    "tile_groups",
    "lane_segments",
]

#: Ceiling of the automatic tile/lane selection.  Prototyped on gcc:
#: per-statement tile loops auto-vectorize well up to 8 words, while
#: compile time grows linearly — past 8 the marginal speedup no longer
#: pays for the longer compiles.
MAX_TILES = 8


# ----------------------------------------------------------------------
# eligibility analysis
# ----------------------------------------------------------------------
def is_shift_free(program: Program) -> bool:
    """True when no operator of ``program`` crosses bit lanes.

    Shifts move bits between lanes by construction; unary negate does
    too (borrow propagation), as do ``+`` (carry propagation) and
    ``popcount`` (collapses the whole word).  Everything else the IR
    can express is lane-wise.
    """
    stats = program.stats()
    return (stats.shifts == 0 and stats.negates == 0
            and stats.adds == 0 and stats.popcounts == 0)


def _reads(expr: Expr):
    if isinstance(expr, Var):
        yield expr.name
    elif isinstance(expr, Bin):
        yield from _reads(expr.a)
        yield from _reads(expr.b)
    elif isinstance(expr, Un):
        yield from _reads(expr.a)


def _reads_state_before_write(program: Program) -> bool:
    """Does any expression read a variable not yet assigned this pass?

    Such a read observes the *previous* vector's value (or the declared
    initial value) — the program carries state between passes.
    """
    written: set[str] = set()
    for stmt in program.statements():
        if isinstance(stmt, (Assign, Emit)):
            for name in _reads(stmt.expr):
                if name not in written:
                    return True
        if isinstance(stmt, Assign):
            written.add(stmt.dest)
    return False


def packing_mode(program: Program) -> str:
    """``"full"``, ``"settled"`` or ``"none"`` (see module docstring)."""
    if not is_shift_free(program):
        return "none"
    if _reads_state_before_write(program):
        return "settled"
    return "full"


# ----------------------------------------------------------------------
# transposition
# ----------------------------------------------------------------------
def validate_packed_words(
    words: Sequence[int], word_width: int, *, context: str = "packed word"
) -> None:
    """Raise :class:`SimulationError` unless every word fits the width."""
    limit = 1 << word_width
    for index, word in enumerate(words):
        if not 0 <= word < limit:
            raise SimulationError(
                f"{context} {index} = {word:#x} does not fit "
                f"word_width={word_width}"
            )


def pack_patterns(
    vectors: Sequence[Sequence[int]], word_width: int
) -> tuple[list[list[int]], list[int]]:
    """Transpose scalar 0/1 vectors into per-input lane words.

    Returns ``(groups, lane_counts)``: ``groups[g][k]`` is the packed
    word for input ``k`` of pattern group ``g`` — bit ``j`` holds the
    value of input ``k`` in vector ``g * word_width + j`` — and
    ``lane_counts[g]`` is how many real vectors group ``g`` carries
    (only the last group may be partial; its unused high lanes are
    zero, i.e. they simulate the all-zeros vector).

    Every vector value must be 0 or 1 — a wider value cannot occupy a
    single lane — and every vector must have the same length.
    """
    with telemetry.span("pack"):
        return _pack_patterns(vectors, word_width)


def _pack_patterns(
    vectors: Sequence[Sequence[int]], word_width: int
) -> tuple[list[list[int]], list[int]]:
    groups: list[list[int]] = []
    lane_counts: list[int] = []
    total = len(vectors)
    if total == 0:
        return groups, lane_counts
    num_inputs = len(vectors[0])
    for start in range(0, total, word_width):
        chunk = vectors[start:start + word_width]
        words = [0] * num_inputs
        for j, vector in enumerate(chunk):
            if len(vector) != num_inputs:
                raise SimulationError(
                    f"vector {start + j} has {len(vector)} values, "
                    f"expected {num_inputs}"
                )
            bit = 1 << j
            for k, value in enumerate(vector):
                if value == 1:
                    words[k] |= bit
                elif value != 0:
                    raise SimulationError(
                        f"vector {start + j}, input {k}: pattern value "
                        f"{value!r} is not a single bit (pack one "
                        f"vector per lane, values must be 0/1)"
                    )
        groups.append(words)
        lane_counts.append(len(chunk))
    return groups, lane_counts


def unpack_patterns(
    flat: Sequence[int], num_outputs: int, lane_counts: Sequence[int]
) -> list[list[int]]:
    """Inverse transposition of packed output words.

    ``flat`` holds ``len(lane_counts) * num_outputs`` packed words in
    group order (what ``run_packed_block`` appended).  Returns one
    0/1 output list per original scalar vector, in vector order.
    """
    with telemetry.span("unpack"):
        return _unpack_patterns(flat, num_outputs, lane_counts)


def _unpack_patterns(
    flat: Sequence[int], num_outputs: int, lane_counts: Sequence[int]
) -> list[list[int]]:
    results: list[list[int]] = []
    for g, lanes in enumerate(lane_counts):
        base = g * num_outputs
        words = flat[base:base + num_outputs]
        for j in range(lanes):
            results.append([(word >> j) & 1 for word in words])
    return results


# ----------------------------------------------------------------------
# tiling
# ----------------------------------------------------------------------
def select_tiles(
    num_vectors: int,
    word_width: int,
    *,
    backend: str = "python",
    max_tiles: int = MAX_TILES,
) -> int:
    """Pick the tile count K for a pattern-packed batch.

    Never more tiles than pattern groups (a pass must not be mostly
    padding), capped at ``max_tiles``.  The Python backend gets K=1:
    its tiled source is unrolled K-fold, so wider passes only trade
    interpreter dispatch for identical bytecode volume — the tile win
    is the C auto-vectorizer's.  An explicit ``tiles=K`` at the
    simulator layer overrides this policy on any backend.
    """
    if backend != "c" or num_vectors <= 0:
        selected = 1
    else:
        groups = -(-num_vectors // word_width)
        selected = max(1, min(max_tiles, groups))
    if telemetry.enabled() and selected > 1:
        telemetry.counter("pack.tile.selected")
        telemetry.gauge("pack.tile.max_k", selected)
    return selected


def select_lanes(
    num_vectors: int,
    *,
    backend: str = "python",
    max_lanes: int = MAX_TILES,
) -> int:
    """Pick the lane count for per-lane (shift-program) packing.

    Each lane costs one interpreted steady-state settle for its seed,
    so short batches stay scalar; the floor of 16 vectors per lane
    keeps the seeding overhead under a few percent of the compiled
    passes it saves.  Python backend: 1, as for :func:`select_tiles`.
    """
    if backend != "c" or num_vectors < 32:
        selected = 1
    else:
        selected = max(1, min(max_lanes, num_vectors // 16))
    if telemetry.enabled() and selected > 1:
        telemetry.counter("pack.shift.selected")
        telemetry.gauge("pack.shift.max_k", selected)
    return selected


def tile_groups(
    groups: Sequence[Sequence[int]], num_inputs: int, tiles: int
) -> list[list[int]]:
    """Flatten K consecutive scalar groups into one slot-major pass row.

    Row ``p`` carries groups ``p*K .. p*K+K-1`` with input slot ``s``
    tile ``t`` at index ``s*K + t`` — the vector layout a machine
    compiled with ``tiles=K`` consumes.  The tail is padded with
    all-zeros groups (they simulate the all-zeros vector and their
    outputs are never read back).
    """
    rows: list[list[int]] = []
    for base in range(0, len(groups), tiles):
        chunk = list(groups[base:base + tiles])
        while len(chunk) < tiles:
            chunk.append([0] * num_inputs)
        rows.append([
            chunk[t][k]
            for k in range(num_inputs)
            for t in range(tiles)
        ])
    return rows


def lane_segments(total: int, lanes: int) -> list[tuple[int, int]]:
    """Contiguous ``(start, length)`` per lane for a batch of ``total``.

    The remainder goes to the *last* lanes, so lane ``lanes-1`` always
    ends at vector ``total-1`` — its final state is the batch's final
    state, which is what the laned runner hands back to the scalar
    machine for exact chain continuity.
    """
    if lanes < 1:
        raise SimulationError(f"lanes must be >= 1, got {lanes}")
    base, rem = divmod(total, lanes)
    segments: list[tuple[int, int]] = []
    start = 0
    for t in range(lanes):
        length = base + (1 if t >= lanes - rem else 0)
        segments.append((start, length))
        start += length
    return segments


# ----------------------------------------------------------------------
# machine drivers
# ----------------------------------------------------------------------
def _run_tiled(machine, groups, lane_counts, num_vectors, *, fill=False):
    """Drive scalar pattern groups through a tiled machine.

    Returns ``(word, emits)`` where ``word(g, o)`` looks up the packed
    word of scalar group ``g``, output ``o`` in the flat tiled output
    and ``emits`` is the per-group output count.  With ``fill`` an
    all-zeros group is appended first (the :func:`packed_apply`
    reconstruction source) and its index is returned third.
    """
    tiles = machine.tiles
    num_inputs = len(groups[0])
    fill_index = None
    if fill:
        groups = list(groups) + [[0] * num_inputs]
        fill_index = len(groups) - 1
    rows = tile_groups(groups, num_inputs, tiles)
    flat: list[int] = []
    with telemetry.span("pack.tile", tiles=tiles):
        machine.run_packed_block(
            rows, flat, vectors_represented=num_vectors
        )
    if telemetry.enabled():
        telemetry.counter("pack.tile.batches")
        telemetry.counter("pack.tile.vectors", num_vectors)
    emits = machine.num_outputs // tiles

    def word(g: int, o: int) -> int:
        p, t = divmod(g, tiles)
        return flat[(p * emits + o) * tiles + t]

    return word, emits, fill_index


def packed_bits(machine, vectors: Sequence[Sequence[int]]) -> list[list[int]]:
    """Run ``vectors`` pattern-packed; return per-vector output *bits*.

    One compiled pass per ``word_width`` vectors.  Each returned list
    holds the low bit of every emitted output word — the logical values
    a scalar pass would produce in lane 0.  The caller is responsible
    for eligibility (``packing_mode`` full, or settled with final-value
    outputs only).
    """
    width = machine.program.word_width
    groups, lane_counts = pack_patterns(vectors, width)
    if not groups:
        return []
    if getattr(machine, "tiles", 1) > 1:
        word, emits, _fill = _run_tiled(
            machine, groups, lane_counts, len(vectors)
        )
        with telemetry.span("unpack"):
            return [
                [(word(g, o) >> j) & 1 for o in range(emits)]
                for g, lanes in enumerate(lane_counts)
                for j in range(lanes)
            ]
    flat: list[int] = []
    machine.run_packed_block(groups, flat, vectors_represented=len(vectors))
    return unpack_patterns(flat, machine.num_outputs, lane_counts)


def packed_apply(machine, vectors: Sequence[Sequence[int]]) -> list[list[int]]:
    """Run ``vectors`` packed; return *scalar-identical* raw output words.

    Requires a ``"full"``-mode program.  A scalar pass on vector ``v``
    feeds input words with bit 0 = the input's value and all higher
    bits 0 — exactly a packed pass over lanes ``[v, 0, 0, ...]``.  So
    the raw word a scalar pass emits is the packed lane-``j`` bit in
    bit 0 plus the all-zeros vector's emitted word in the high bits.
    One extra all-zeros group appended to the batch supplies that fill
    word, making the reconstruction exact for every word width and
    backend.
    """
    width = machine.program.word_width
    groups, lane_counts = pack_patterns(vectors, width)
    if not groups:
        return []
    mask = machine.program.word_mask
    high = mask ^ 1
    if getattr(machine, "tiles", 1) > 1:
        word, emits, fill_index = _run_tiled(
            machine, groups, lane_counts, len(vectors), fill=True
        )
        fill = [word(fill_index, o) for o in range(emits)]
        with telemetry.span("unpack"):
            return [
                [
                    ((word(g, o) >> j) & 1) | (fill[o] & high)
                    for o in range(emits)
                ]
                for g, lanes in enumerate(lane_counts)
                for j in range(lanes)
            ]
    num_inputs = len(groups[0])
    groups.append([0] * num_inputs)  # fill group: every lane all-zeros
    flat: list[int] = []
    machine.run_packed_block(groups, flat, vectors_represented=len(vectors))
    n = machine.num_outputs
    fill = flat[len(lane_counts) * n:]
    results: list[list[int]] = []
    for g, lanes in enumerate(lane_counts):
        words = flat[g * n:(g + 1) * n]
        for j in range(lanes):
            results.append([
                ((word >> j) & 1) | (fill[o] & high)
                for o, word in enumerate(words)
            ])
    return results
