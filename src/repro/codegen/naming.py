"""Mapping net names to program variable identifiers.

``.bench`` net names ("G17", "118gat", "I<3>") are not always legal
C/Python identifiers.  :class:`NameAllocator` maps arbitrary net names
to sanitized, collision-free identifiers deterministically, so the same
circuit always yields the same generated source.
"""

from __future__ import annotations

import re

__all__ = ["NameAllocator", "sanitize_identifier"]

_INVALID = re.compile(r"[^0-9A-Za-z_]")

#: Words that may not be used bare as identifiers in the generated code.
_RESERVED = {
    # Python keywords that plausibly collide with short net names,
    # plus names the emitters use internally.
    "V", "OUT", "S", "MASK", "OUTMASK", "cmd", "machine", "word", "step",
    "if", "else", "while", "yield", "not", "and", "or", "in", "is",
    "def", "return", "int", "char", "for", "do", "case", "switch",
    "static", "void", "const", "unsigned", "signed", "long", "short",
}


def sanitize_identifier(name: str) -> str:
    """A best-effort legal identifier derived from ``name``."""
    cleaned = _INVALID.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "n" + cleaned
    if cleaned in _RESERVED:
        cleaned += "_"
    return cleaned


class NameAllocator:
    """Deterministic, collision-free identifier allocation."""

    def __init__(self) -> None:
        self._by_key: dict[str, str] = {}
        self._taken: set[str] = set(_RESERVED)

    def get(self, key: str, suggestion: str | None = None) -> str:
        """Identifier for ``key``; allocates on first use.

        ``suggestion`` defaults to the sanitized key.  Collisions get a
        numeric suffix.
        """
        existing = self._by_key.get(key)
        if existing is not None:
            return existing
        base = sanitize_identifier(suggestion if suggestion is not None else key)
        candidate = base
        counter = 1
        while candidate in self._taken:
            candidate = f"{base}_{counter}"
            counter += 1
        self._taken.add(candidate)
        self._by_key[key] = candidate
        return candidate

    def __contains__(self, key: str) -> bool:
        return key in self._by_key
