"""Per-fanin-cone incremental compilation.

The monolithic compiled simulators fingerprint the *whole* generated
source: touch one gate and the entire program misses the cache and
recompiles.  CVC's lesson (see PAPERS.md) is that compiled simulators
live or die on compile turnaround, so this module splits a circuit
into one small program per primary output — the output's fanin cone —
and keys each in the process-wide :class:`ProgramCache` by a *content
hash of the cone itself* (``Program.content_key``).  Editing one gate
re-fingerprints only the cones that contain it; every untouched cone
is a cache hit, on the C backend skipping the ``cc`` invocation
entirely.

The trade-off is steady-state speed: logic shared by several cones is
duplicated into each, so a cone-partitioned evaluation does more gate
work per vector than the monolithic program.  Use it where recompile
latency dominates (edit/simulate loops); use the monolithic engines
where throughput dominates.
"""

from __future__ import annotations

import hashlib
import json
from typing import Mapping, Optional, Sequence

from repro import telemetry
from repro.analysis.levelize import levelize
from repro.codegen.gates import gate_expression
from repro.codegen.naming import NameAllocator
from repro.codegen.program import Assign, Emit, Input, Program, Var
from repro.codegen.runtime import compile_program, program_cache
from repro.errors import SimulationError
from repro.netlist.circuit import Circuit

__all__ = [
    "Cone",
    "output_cones",
    "cone_fingerprint",
    "generate_cone_program",
    "ConeSimulator",
]


class Cone:
    """The fanin cone of one primary output.

    ``gates`` are in the levelized order of the *parent* circuit
    restricted to the cone (deterministic, and identical for identical
    cones); ``inputs`` are the primary inputs the cone reads, in the
    parent circuit's input declaration order.
    """

    __slots__ = ("output", "gates", "inputs")

    def __init__(self, output, gates, inputs) -> None:
        self.output = output
        self.gates = gates
        self.inputs = inputs

    def __repr__(self) -> str:
        return (
            f"Cone({self.output!r}: {len(self.gates)} gates, "
            f"{len(self.inputs)} inputs)"
        )


def output_cones(circuit: Circuit) -> dict[str, Cone]:
    """One :class:`Cone` per primary output, in output order."""
    levels = levelize(circuit)
    ordered = sorted(
        circuit.topological_gates(),
        key=lambda g: (levels.gate_levels[g.name], g.name),
    )
    cones: dict[str, Cone] = {}
    for out in circuit.outputs:
        member: set[str] = set()
        stack = [out]
        while stack:
            net = stack.pop()
            if net in member:
                continue
            member.add(net)
            driver = circuit.driver_of(net)
            if driver is not None:
                stack.extend(driver.inputs)
        cones[out] = Cone(
            out,
            [g for g in ordered if g.output in member],
            [n for n in circuit.inputs if n in member],
        )
    return cones


def cone_fingerprint(cone: Cone, word_width: int) -> str:
    """Content hash of a cone — the incremental cache key.

    Hashes exactly what determines the generated source: the output
    name, the cone's input names in slot order, the gate list (name,
    type, inputs) in emission order, and the word width.  Two
    structurally identical cones in different circuits therefore share
    one cache entry.
    """
    payload = json.dumps(
        [
            cone.output,
            cone.inputs,
            [
                [g.output, g.gate_type.value, list(g.inputs)]
                for g in cone.gates
            ],
            word_width,
        ],
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def generate_cone_program(
    cone: Cone, *, word_width: int = 32
) -> Program:
    """An LCC-style program computing one output from its cone inputs.

    The program's ``content_key`` is the cone fingerprint, so the
    runtime caches it by cone content rather than by source text.
    """
    fingerprint = cone_fingerprint(cone, word_width)
    program = Program(
        f"cone_{fingerprint[:12]}",
        word_width=word_width,
        inputs=list(cone.inputs),
        mask_assignments=False,
    )
    names = NameAllocator()
    for net in cone.inputs:
        program.declare(names.get(net))
    for gate in cone.gates:
        program.declare(names.get(gate.output))
    for slot, net in enumerate(cone.inputs):
        program.init.append(Assign(names.get(net), Input(slot)))
    for gate in cone.gates:
        operands = [Var(names.get(i)) for i in gate.inputs]
        program.body.append(
            Assign(names.get(gate.output),
                   gate_expression(gate.gate_type, operands))
        )
    program.output.append(
        Emit(Var(names.get(cone.output)), (cone.output,))
    )
    program.validate()
    program.content_key = fingerprint
    return program


class ConeSimulator:
    """Zero-delay evaluation through per-output cone programs.

    Construction compiles (or cache-hits) one machine per output cone
    and records the program-cache delta it caused in ``cache_delta``:
    after a single-gate edit, ``hits`` counts the cones that were
    reused verbatim and ``misses`` the ones that actually recompiled.

    ``evaluate`` / ``apply_vectors`` are bit-identical to the
    monolithic :class:`~repro.lcc.zerodelay.LCCSimulator` on the
    primary outputs (each cone computes the same levelized gate
    cascade, just restricted to its support).
    """

    def __init__(
        self,
        circuit: Circuit,
        *,
        backend: str = "python",
        word_width: int = 32,
    ) -> None:
        self.circuit = circuit
        self.backend = backend
        self.word_width = word_width
        cache = program_cache()
        before = cache.stats()
        with telemetry.span("emit", technique="cones",
                            circuit=circuit.name):
            self.cones = output_cones(circuit)
            self._programs = {
                out: generate_cone_program(
                    cone, word_width=word_width
                )
                for out, cone in self.cones.items()
            }
        self._machines = {
            out: compile_program(program, backend)
            for out, program in self._programs.items()
        }
        after = cache.stats()
        #: Program-cache traffic caused by building this simulator.
        self.cache_delta = {
            "hits": after["hits"] - before["hits"],
            "misses": after["misses"] - before["misses"],
        }
        #: Cone fingerprint per output (the cache keys used).
        self.cone_keys = {
            out: program.content_key
            for out, program in self._programs.items()
        }
        input_index = {n: i for i, n in enumerate(circuit.inputs)}
        self._cone_slots = {
            out: [input_index[n] for n in cone.inputs]
            for out, cone in self.cones.items()
        }
        self._inputs = circuit.inputs
        self._outputs = circuit.outputs

    # ------------------------------------------------------------------
    @property
    def num_cones(self) -> int:
        return len(self.cones)

    def _vector_list(
        self, vector: "Mapping[str, int] | Sequence[int]"
    ) -> list[int]:
        if isinstance(vector, Mapping):
            missing = [n for n in self._inputs if n not in vector]
            if missing:
                raise SimulationError(f"inputs missing: {missing[:5]}")
            return [vector[n] for n in self._inputs]
        values = list(vector)
        if len(values) != len(self._inputs):
            raise SimulationError(
                f"vector has {len(values)} values for "
                f"{len(self._inputs)} inputs"
            )
        return values

    def evaluate(
        self, vector: "Mapping[str, int] | Sequence[int]"
    ) -> dict[str, int]:
        """Settle one vector; returns all primary output values."""
        values = self._vector_list(vector)
        out: dict[str, int] = {}
        for name, machine in self._machines.items():
            slots = self._cone_slots[name]
            out[name] = machine.step([values[s] for s in slots])[0] & 1
        return out

    def apply_vectors(
        self,
        vectors: "Sequence[Mapping[str, int] | Sequence[int]]",
    ) -> list[dict[str, int]]:
        """Settle a batch; per-vector output dicts, cone-batched."""
        rows = [self._vector_list(v) for v in vectors]
        results: list[dict[str, int]] = [{} for _ in rows]
        for name, machine in self._machines.items():
            slots = self._cone_slots[name]
            cone_rows = [[row[s] for s in slots] for row in rows]
            for result, out in zip(
                results, machine.step_many(cone_rows)
            ):
                result[name] = out[0] & 1
        return results
