"""Straight-line generated programs and their execution backends.

All of the paper's code generators (zero-delay LCC, the PC-set method,
the parallel technique and its optimized variants) produce the same
thing: a *straight-line* program over fixed-width unsigned words with no
tests or branches.  :mod:`repro.codegen.program` defines a small typed
IR for such programs; :mod:`repro.codegen.python_emitter` and
:mod:`repro.codegen.c_emitter` render it to Python or C source; and
:mod:`repro.codegen.runtime` compiles and runs either form behind one
:class:`~repro.codegen.runtime.Machine` interface (the C path uses the
system ``gcc`` plus ``ctypes``, restoring the genuinely *compiled*
character of the original work).
"""

from repro.codegen.program import (
    Assign,
    Bin,
    Comment,
    Const,
    Emit,
    Expr,
    Program,
    ProgramStats,
    Un,
    Var,
)
from repro.codegen.runtime import (
    Machine,
    PythonMachine,
    CMachine,
    compile_program,
    have_c_compiler,
)

__all__ = [
    "Assign",
    "Bin",
    "Comment",
    "Const",
    "Emit",
    "Expr",
    "Program",
    "ProgramStats",
    "Un",
    "Var",
    "Machine",
    "PythonMachine",
    "CMachine",
    "compile_program",
    "have_c_compiler",
]
