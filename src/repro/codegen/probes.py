"""Probe lowering: compiled-in toggle counters on the fast paths.

Observability pass over the shared program IR.  Given a generated
simulation program and a :class:`ProbeSpec`, the ``instrument_*``
functions append *probe statements* to the program body: per-net
toggle counters accumulated with ``popcount`` over whole lane words,
so counting costs one or two extra instructions per net per pass on
every backend (Python, C, numpy) instead of a host-side decode of the
full history.

Per technique:

LCC (zero-delay)
    One extra pseudo-input ``__probe_en`` carries the lane-occupancy
    mask: bit ``j`` set iff lane ``j`` of the pass holds a real
    vector.  The scalar path passes 1 (lane 0 only); the pattern-lane
    packed path gets the mask *for free* — appending 1 to every
    scalar vector before :func:`~repro.codegen.packing.pack_patterns`
    transposes into exactly the occupancy word, with partial last
    groups, the ``packed_apply`` fill group and tile padding all
    landing on 0.  Per net with value word ``x`` and persistent
    previous-value bit ``pv``::

        d   = (x ^ ((x << 1) | pv)) & en      # lane j vs lane j-1
        cnt = cnt + popcount(d)
        pv  = (pv & ~sel) | popcount(x & top) # last occupied lane

    where ``sel = -(en & 1)`` (all-ones iff the pass is non-empty;
    occupancy is contiguous from lane 0) and ``top = en & ~(en >> 1)``
    isolates the highest occupied lane.  Consecutive lanes are
    consecutive vectors, so the in-word shift chains the vector
    sequence and ``pv`` carries it across passes.  Zero-delay sees at
    most one transition per net per vector, so functional toggles
    equal total toggles and no second counter is generated.

Parallel technique (§3, optimizations ``none``/``trim``)
    A net's bit-field already *is* its settling history — bit ``i``
    holds the value at time ``i``, bit 0 the previous vector's final
    value — so toggles are adjacent-bit differences::

        cnt  = cnt + popcount((w ^ (w >> 1)) & (mask >> 1)) + ...
             (+ one boundary bit per adjacent word pair)
        fcnt = fcnt + ((w0 ^ (top >> (W-1))) & 1)

    Trimmed GAP/LOW_FINAL words replicate the true constant value
    (that is what makes trimming exact), so the same formula holds.
    Primary-input fields are fully replicated and contribute 0 —
    matching the history-based reference, which sees a single-sample
    history for inputs.

PC-set method (§2)
    The per-net PC-set variables hold the settling samples; counters
    sum ``(s_i ^ s_(i+1)) & 1`` over the sample chain (start value
    first: the time-0 variable when the PC-set contains 0, otherwise
    the final-time variable captured into a temp at the top of the
    pass, before the body reassigns it).  The ``& 1`` restricts
    counting to lane 0 — PC-set probes are scalar-path only.

Counters are persistent state variables *appended after* the
technique's own state, so a steady-state encoding extends with zero
padding, and they accumulate modulo ``2**word_width`` identically on
every backend (Python masks at ``dump_state``; C and numpy wrap).
:class:`ProbeRuntime` drains them into unbounded Python accumulators
often enough that no counter can wrap between drains.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping, Optional, Sequence

from repro import telemetry
from repro.codegen.program import (
    Assign,
    Bin,
    Comment,
    Const,
    Expr,
    Input,
    Program,
    Un,
    Var,
)
from repro.errors import SimulationError

__all__ = [
    "ProbeSpec",
    "ProbePlan",
    "ProbeRuntime",
    "instrument_lcc_program",
    "instrument_parallel_program",
    "instrument_pcset_program",
]


class ProbeSpec:
    """What to observe: toggle-counted nets and trace-captured nets.

    Parameters
    ----------
    nets:
        Net names to count toggles on; ``None`` means every net.
    trace_nets:
        Nets whose settling histories should be streamed to a
        waveform writer (bounded capture: decoded per vector, never
        materialized as a full batch history).
    """

    def __init__(
        self,
        nets: Optional[Iterable[str]] = None,
        *,
        trace_nets: Iterable[str] = (),
    ) -> None:
        self.nets = None if nets is None else tuple(dict.fromkeys(nets))
        self.trace_nets = tuple(dict.fromkeys(trace_nets))

    @classmethod
    def coerce(cls, probes) -> Optional["ProbeSpec"]:
        """Normalize a facade's ``probes=`` argument.

        ``None``/``False`` -> no probes; ``True`` -> all nets; an
        iterable of names -> those nets; a spec passes through.
        """
        if probes is None or probes is False:
            return None
        if probes is True:
            return cls()
        if isinstance(probes, cls):
            return probes
        if isinstance(probes, str):
            return cls([probes])
        return cls(probes)

    def resolve(self, circuit) -> tuple[str, ...]:
        """Counted nets in circuit order (deterministic across runs)."""
        if self.nets is None:
            return tuple(circuit.nets)
        known = set(circuit.nets)
        missing = [n for n in self.nets if n not in known]
        if missing:
            raise SimulationError(f"probe nets not in circuit: {missing}")
        chosen = set(self.nets)
        return tuple(n for n in circuit.nets if n in chosen)

    def as_dict(self) -> dict:
        """Corpus-stable dict form (sorted, JSON-ready)."""
        return {
            "nets": "all" if self.nets is None else sorted(self.nets),
            "trace_nets": sorted(self.trace_nets),
        }

    def fingerprint(self) -> str:
        text = repr(sorted(self.as_dict().items()))
        return hashlib.sha256(text.encode()).hexdigest()[:16]

    def __repr__(self) -> str:
        nets = "all" if self.nets is None else list(self.nets)
        return f"ProbeSpec(nets={nets}, trace_nets={list(self.trace_nets)})"


class ProbePlan:
    """The lowered form of a :class:`ProbeSpec` for one program.

    Attributes
    ----------
    technique:
        ``"lcc"``, ``"parallel"`` or ``"pcset"``.
    nets:
        Counted nets, in declaration order.
    toggle_slots / functional_slots:
        net -> state-word index of its counter.  ``functional_slots``
        is ``None`` for zero-delay programs, where functional toggles
        equal total toggles by construction.
    state_pad:
        Probe state words appended after the technique's own state
        (a steady-state encoding extends with this many zeros).
    max_increment:
        Upper bound on any single counter's growth per *vector* —
        drives the drain cadence that prevents counter wrap.
    en_slot:
        Vector slot of the LCC occupancy input (``None`` elsewhere).
    """

    __slots__ = ("technique", "spec", "nets", "toggle_slots",
                 "functional_slots", "state_pad", "max_increment",
                 "en_slot", "probe_key")

    def __init__(
        self,
        technique: str,
        spec: ProbeSpec,
        nets: tuple[str, ...],
        toggle_slots: dict[str, int],
        functional_slots: Optional[dict[str, int]],
        state_pad: int,
        max_increment: int,
        en_slot: Optional[int] = None,
    ) -> None:
        self.technique = technique
        self.spec = spec
        self.nets = nets
        self.toggle_slots = toggle_slots
        self.functional_slots = functional_slots
        self.state_pad = state_pad
        self.max_increment = max(1, max_increment)
        self.en_slot = en_slot
        self.probe_key = f"{technique}-{spec.fingerprint()}"

    def __repr__(self) -> str:
        return (
            f"ProbePlan({self.technique}, {len(self.nets)} nets, "
            f"pad={self.state_pad})"
        )


class ProbeRuntime:
    """Accumulates drained counter values across batches.

    The compiled counters wrap at ``2**word_width``; this object
    drains them into unbounded Python integers.  Facades call
    :meth:`chunk_vectors` to split batches so no counter can wrap
    between drains, :meth:`note_vectors` after each run, and
    :meth:`drain` before reading machine state that the counters ride
    in (checkpoints, lane handoffs) or building a report.
    """

    def __init__(
        self,
        plan: ProbePlan,
        program: Program,
        *,
        emit_vectors: bool = True,
    ) -> None:
        self.plan = plan
        self.word_mask = program.word_mask
        #: The partition executor runs one runtime per segment over the
        #: same vector stream; only one party may report the stream's
        #: vector count to telemetry.
        self._emit_vectors = emit_vectors
        self.toggles: dict[str, int] = {net: 0 for net in plan.nets}
        self.functional: Optional[dict[str, int]] = (
            None if plan.functional_slots is None
            else {net: 0 for net in plan.nets}
        )
        self.vectors = 0
        #: Vectors a counter can absorb before it might wrap.
        self.chunk = max(1, self.word_mask // plan.max_increment)
        self._since_drain = 0
        self._vectors_reported = 0

    def chunk_vectors(self, total: int) -> list[tuple[int, int]]:
        """``(start, length)`` slices that keep counters wrap-free."""
        budget = self.chunk - min(self._since_drain, self.chunk - 1)
        bounds: list[tuple[int, int]] = []
        start = 0
        while start < total:
            length = min(budget, total - start)
            bounds.append((start, length))
            start += length
            budget = self.chunk
        return bounds or [(0, 0)]

    def note_vectors(self, machine, count: int) -> None:
        self.vectors += count
        self._since_drain += count
        if self._since_drain >= self.chunk:
            self.drain(machine)

    def drain(self, machine) -> None:
        """Move counter values out of machine state, zeroing the slots."""
        if getattr(machine, "tiles", 1) != 1:
            raise SimulationError(
                "probe counters live in scalar machine state; "
                "tiled machines are not drained"
            )
        self._since_drain = 0
        state = machine.dump_state()
        dirty = False
        plan = self.plan
        emit = telemetry.enabled()
        toggle_delta = 0
        functional_delta = 0
        for net, slot in plan.toggle_slots.items():
            value = state[slot]
            if value:
                self.toggles[net] += value
                state[slot] = 0
                dirty = True
                toggle_delta += value
                if emit:
                    telemetry.counter(f"activity.net.{net}.toggles", value)
        if plan.functional_slots is not None:
            assert self.functional is not None
            for net, slot in plan.functional_slots.items():
                value = state[slot]
                if value:
                    self.functional[net] += value
                    state[slot] = 0
                    dirty = True
                    functional_delta += value
        else:
            # Zero-delay: functional toggles are total toggles.
            functional_delta = toggle_delta
        if dirty:
            machine.load_state(state)
        if emit:
            vectors_delta = self.vectors - self._vectors_reported
            self._vectors_reported = self.vectors
            if vectors_delta and self._emit_vectors:
                telemetry.counter("activity.vectors", vectors_delta)
            if toggle_delta:
                telemetry.counter("activity.toggles", toggle_delta)
            if functional_delta:
                telemetry.counter("activity.functional", functional_delta)
            glitches = toggle_delta - functional_delta
            if glitches:
                telemetry.counter("activity.glitches", glitches)

    def discard(self, machine) -> None:
        """Zero compiled counters *and* accumulators (baseline seed).

        Used after an uncounted seeding step: whatever the counters
        absorbed is thrown away rather than accumulated, and nothing
        reaches the telemetry counters.
        """
        if getattr(machine, "tiles", 1) != 1:
            raise SimulationError(
                "probe counters live in scalar machine state; "
                "tiled machines are not drained"
            )
        state = machine.dump_state()
        slots = list(self.plan.toggle_slots.values())
        if self.plan.functional_slots is not None:
            slots.extend(self.plan.functional_slots.values())
        dirty = False
        for slot in slots:
            if state[slot]:
                state[slot] = 0
                dirty = True
        if dirty:
            machine.load_state(state)
        for net in self.toggles:
            self.toggles[net] = 0
        if self.functional is not None:
            for net in self.functional:
                self.functional[net] = 0
        self.vectors = 0
        self._since_drain = 0
        self._vectors_reported = 0

    def snapshot(self) -> dict:
        """Checkpointable accumulator state (drain first)."""
        return {
            "toggles": dict(self.toggles),
            "functional": (
                None if self.functional is None else dict(self.functional)
            ),
            "vectors": self.vectors,
        }

    def restore(self, saved: Mapping) -> None:
        self.toggles.update(saved["toggles"])
        functional = saved.get("functional")
        if functional is not None and self.functional is not None:
            self.functional.update(functional)
        self.vectors = saved["vectors"]
        # Restored totals were counted by the run that checkpointed
        # them; only new work should reach the telemetry counters.
        self._vectors_reported = self.vectors

    def report(self):
        """Build an :class:`~repro.activity.ActivityReport` (drained)."""
        from repro.activity import ActivityReport

        toggles = dict(self.toggles)
        functional = (
            dict(toggles) if self.functional is None
            else dict(self.functional)
        )
        return ActivityReport(toggles, functional, self.vectors)


def _bit(expr: Expr) -> Expr:
    return Bin("&", expr, Const(1))


def _sum_into(counter: str, terms: Sequence[Expr]) -> Assign:
    expr: Expr = Var(counter)
    for term in terms:
        expr = Bin("+", expr, term)
    return Assign(counter, expr)


# ----------------------------------------------------------------------
# LCC (zero-delay) lowering
# ----------------------------------------------------------------------
def instrument_lcc_program(
    program: Program,
    circuit,
    spec: ProbeSpec,
    *,
    nets: Optional[Sequence[str]] = None,
    net_vars: Optional[Mapping[str, str]] = None,
) -> ProbePlan:
    """Append lane-word toggle counting to a zero-delay LCC program.

    Mutates ``program`` in place (declares the ``__probe_en`` input,
    the per-net ``pv``/``cnt`` state and the probe statements) and
    must run *before* the program is compiled.  The caller records
    the uninstrumented program's packing mode first — the probe
    statements use shifts and popcounts, which are lane-safe here by
    construction but would classify the program ``"none"``.

    ``nets``/``net_vars`` override the monolithic defaults for segment
    programs (the partition executor), which cover only a subset of
    the circuit under their own variable names.
    """
    if nets is None:
        nets = spec.resolve(circuit)
    if net_vars is None:
        # State order is one variable per net in circuit order (that
        # is what LCCSimulator.evaluate_all_nets already relies on).
        net_vars = dict(zip(circuit.nets, program.state_vars))
    en_slot = len(program.inputs)
    program.inputs.append("__probe_en")
    en: Expr = Input(en_slot)
    sel = program.declare_temp("__pr_sel")
    top = program.declare_temp("__pr_top")
    diff = program.declare_temp("__pr_d")
    body = program.body
    body.append(Comment("probe pass: lane-occupancy masks"))
    body.append(Assign(sel, Un("-", _bit(en))))
    body.append(Assign(top, Bin("&", en, Un("~", Bin(">>", en, Const(1))))))
    toggle_slots: dict[str, int] = {}
    for net in nets:
        base = net_vars[net]
        pv = program.declare(f"__pr_pv_{base}")
        cnt = program.declare(f"__pr_cnt_{base}")
        toggle_slots[net] = len(program.state_vars) - 1
        x = Var(base)
        # Lane j toggles iff it differs from lane j-1 (lane 0: from pv).
        body.append(Assign(diff, Bin(
            "&",
            Bin("^", x, Bin("|", Bin("<<", x, Const(1)), Var(pv))),
            en,
        )))
        body.append(_sum_into(cnt, [Un("popcount", Var(diff))]))
        body.append(Assign(pv, Bin(
            "|",
            Bin("&", Var(pv), Un("~", Var(sel))),
            Un("popcount", Bin("&", x, Var(top))),
        )))
    program.validate()
    plan = ProbePlan(
        "lcc", spec, tuple(nets), toggle_slots, None,
        state_pad=2 * len(nets),
        # Scalar passes count one lane, packed passes up to word_width
        # lanes — but never more than one toggle per net per *vector*.
        max_increment=1,
        en_slot=en_slot,
    )
    program.probe_key = plan.probe_key
    return plan


# ----------------------------------------------------------------------
# parallel-technique lowering
# ----------------------------------------------------------------------
def instrument_parallel_program(
    program: Program, layout, circuit, spec: ProbeSpec
) -> ProbePlan:
    """Append bit-field toggle counting to a §3 parallel program.

    Supports the time-aligned layouts (optimizations ``none`` and
    ``trim``): bit ``i`` of a field holds the net's value at time
    ``i``, bit 0 the previous final value, so adjacent-bit popcounts
    count exactly the transitions the history decode would report.
    """
    if not layout.uniform:
        raise SimulationError(
            "probes require the time-aligned field layout "
            "(optimization 'none' or 'trim')"
        )
    nets = spec.resolve(circuit)
    w = layout.word_width
    half_mask = program.word_mask >> 1
    body = program.body
    body.append(Comment("probe pass: bit-field toggle counters"))
    toggle_slots: dict[str, int] = {}
    functional_slots: dict[str, int] = {}
    max_bits = 1
    for net in nets:
        field = layout.field(net)
        words = field.words
        cnt = program.declare(f"__pr_cnt_{words[0]}")
        toggle_slots[net] = len(program.state_vars) - 1
        fcnt = program.declare(f"__pr_fn_{words[0]}")
        functional_slots[net] = len(program.state_vars) - 1
        terms: list[Expr] = []
        for word in words:
            # In-word adjacent transitions (top bit pairs with the
            # next word's bit 0, handled below).
            terms.append(Un("popcount", Bin(
                "&",
                Bin("^", Var(word), Bin(">>", Var(word), Const(1))),
                Const(half_mask),
            )))
        for j in range(1, field.num_words):
            terms.append(_bit(Bin(
                "^",
                Bin(">>", Var(words[j - 1]), Const(w - 1)),
                Var(words[j]),
            )))
        body.append(_sum_into(cnt, terms))
        # Functional: previous final (bit 0) vs new final (top bit).
        body.append(_sum_into(fcnt, [_bit(Bin(
            "^",
            Var(words[0]),
            Bin(">>", Var(field.top), Const(w - 1)),
        ))]))
        max_bits = max(max_bits, field.num_words * w)
    program.validate()
    plan = ProbePlan(
        "parallel", spec, nets, toggle_slots, functional_slots,
        state_pad=2 * len(nets),
        max_increment=max_bits,
    )
    program.probe_key = plan.probe_key
    return plan


# ----------------------------------------------------------------------
# PC-set method lowering
# ----------------------------------------------------------------------
def instrument_pcset_program(
    program: Program, variables, spec: ProbeSpec
) -> ProbePlan:
    """Append sample-chain toggle counting to a PC-set program.

    Every counting expression is masked to bit 0, so the counters
    observe lane 0 only — the facade keeps PC-set probes on the
    scalar path (packed lanes carry unrelated vector streams).
    """
    pc = variables.pc_sets
    circuit = pc.circuit
    nets = spec.resolve(circuit)
    body = program.body
    body.append(Comment("probe pass: PC-set sample-chain counters"))
    toggle_slots: dict[str, int] = {}
    functional_slots: dict[str, int] = {}
    prelude: list = []
    max_samples = 2
    for index, net in enumerate(nets):
        raw = pc.raw_net_pc_sets[net]
        full = pc.net_pc_set(net)
        if full[0] == 0:
            # The time-0 variable holds the start value after init
            # (zero-element move or primary-input read) and the body
            # never reassigns it.
            start: Expr = Var(variables.var(net, 0))
        else:
            # No time-0 variable: capture the previous final value
            # before the body overwrites the final-time variable.
            pf = program.declare_temp(f"__pr_pf{index}")
            prelude.append(
                Assign(pf, Var(variables.var(net, raw[-1])))
            )
            start = Var(pf)
        samples: list[Expr] = [start]
        samples.extend(
            Var(variables.var(net, time)) for time in raw if time > 0
        )
        cnt = program.declare(f"__pr_cnt{index}")
        toggle_slots[net] = len(program.state_vars) - 1
        fcnt = program.declare(f"__pr_fn{index}")
        functional_slots[net] = len(program.state_vars) - 1
        terms = [
            _bit(Bin("^", samples[i], samples[i + 1]))
            for i in range(len(samples) - 1)
        ]
        if terms:
            body.append(_sum_into(cnt, terms))
            body.append(_sum_into(fcnt, [
                _bit(Bin("^", samples[0], samples[-1]))
            ]))
        max_samples = max(max_samples, len(samples))
    # Final-value captures run before everything else in the pass.
    program.init[:0] = prelude
    program.validate()
    plan = ProbePlan(
        "pcset", spec, nets, toggle_slots, functional_slots,
        state_pad=2 * len(nets),
        max_increment=max_samples - 1,
    )
    program.probe_key = plan.probe_key
    return plan
