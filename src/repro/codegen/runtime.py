"""Compile and execute generated programs.

Two backends share the :class:`Machine` interface:

- :class:`PythonMachine` — ``compile()``/``exec`` of the generated
  Python coroutine.  Always available; this is what the test suite and
  the default benchmarks use.
- :class:`CMachine` — writes the generated C, compiles it with the
  system C compiler into a shared library, and calls it through
  ``ctypes``.  This restores the genuinely compiled character of the
  original work; use it for absolute performance numbers.

``compile_program(program, backend=...)`` picks one.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import tempfile
import uuid
from typing import Optional, Sequence

from repro.codegen.program import Program
from repro.errors import BackendError

__all__ = [
    "Machine",
    "PythonMachine",
    "CMachine",
    "compile_program",
    "have_c_compiler",
]

_C_COMPILER: Optional[str] = None
_C_COMPILER_PROBED = False


def have_c_compiler() -> Optional[str]:
    """Path of a usable C compiler, or ``None``.

    Checks ``$CC`` then ``cc`` then ``gcc`` then ``clang``; probes once
    and caches.
    """
    global _C_COMPILER, _C_COMPILER_PROBED
    if _C_COMPILER_PROBED:
        return _C_COMPILER
    _C_COMPILER_PROBED = True
    candidates = [os.environ.get("CC"), "cc", "gcc", "clang"]
    for candidate in candidates:
        if not candidate:
            continue
        path = shutil.which(candidate)
        if path:
            _C_COMPILER = path
            return path
    _C_COMPILER = None
    return None


class Machine:
    """A compiled straight-line simulation program, ready to run.

    ``step(V)`` runs one vector (``V`` is a sequence of input words in
    the program's input order) and returns the emitted output words.
    ``dump_state()``/``load_state()`` expose the persistent variables in
    declaration order — this is how simulators seed the previous-vector
    steady state.
    """

    program: Program

    @property
    def num_inputs(self) -> int:
        return len(self.program.inputs)

    @property
    def num_state(self) -> int:
        return len(self.program.state_vars)

    def output_labels(self) -> list[tuple]:
        return self.program.output_labels()

    def step(self, vector: Sequence[int]) -> list[int]:
        raise NotImplementedError

    def dump_state(self) -> list[int]:
        raise NotImplementedError

    def load_state(self, values: Sequence[int]) -> None:
        raise NotImplementedError

    def state_dict(self) -> dict[str, int]:
        """Persistent state keyed by variable name."""
        return dict(zip(self.program.state_vars, self.dump_state()))


class PythonMachine(Machine):
    """Generated Python coroutine backend."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.source = program.python_source()
        namespace: dict = {}
        code = compile(self.source, f"<repro:{program.name}>", "exec")
        exec(code, namespace)
        self._gen = namespace["machine"]()
        next(self._gen)  # prime

    def step(self, vector: Sequence[int]) -> list[int]:
        return self._gen.send((0, vector))

    def dump_state(self) -> list[int]:
        return self._gen.send((1,))

    def load_state(self, values: Sequence[int]) -> None:
        if len(values) != self.num_state:
            raise BackendError(
                f"state has {self.num_state} words, got {len(values)}"
            )
        mask = self.program.word_mask
        self._gen.send((2, [value & mask for value in values]))


class CMachine(Machine):
    """Generated C + system compiler + ctypes backend."""

    _CTYPE = {
        8: ctypes.c_uint8,
        16: ctypes.c_uint16,
        32: ctypes.c_uint32,
        64: ctypes.c_uint64,
    }

    #: Programs beyond this many generated lines compile at -O0: C
    #: optimizers behave superlinearly on huge straight-line functions
    #: (amusingly, the paper hit a compiler bug on exactly the same two
    #: circuits' cycle-breaking programs).
    O0_LINE_THRESHOLD = 60_000

    def __init__(
        self,
        program: Program,
        *,
        opt_level: Optional[str] = None,
        keep_artifacts: bool = False,
        work_dir: Optional[str] = None,
    ) -> None:
        compiler = have_c_compiler()
        if compiler is None:
            raise BackendError(
                "no C compiler found; use the python backend instead"
            )
        self.program = program
        self.source = program.c_source()
        if opt_level is None:
            big = program.stats().source_lines > self.O0_LINE_THRESHOLD
            opt_level = "-O0" if big else "-O1"
        self.opt_level = opt_level
        self._dir = work_dir or tempfile.mkdtemp(prefix="repro_c_")
        self._keep = keep_artifacts
        tag = uuid.uuid4().hex[:8]
        c_path = os.path.join(self._dir, f"{program.name}_{tag}.c")
        so_path = os.path.join(self._dir, f"{program.name}_{tag}.so")
        with open(c_path, "w") as handle:
            handle.write(self.source)
        # -Bsymbolic binds the intra-library run_block -> step call at
        # link time; some sandboxed loaders cannot lazily resolve PLT
        # entries of dlopen'd libraries and would crash otherwise.
        cmd = [
            compiler, opt_level, "-shared", "-fPIC",
            "-Wl,-Bsymbolic", "-Wl,-z,now",
            c_path, "-o", so_path,
        ]
        result = subprocess.run(cmd, capture_output=True, text=True)
        if result.returncode != 0:
            raise BackendError(
                f"C compilation failed ({' '.join(cmd)}):\n{result.stderr}"
            )
        self._lib = ctypes.CDLL(so_path)
        word = self._CTYPE[program.word_width]
        self._word = word
        self._lib.step.argtypes = [
            ctypes.POINTER(word), ctypes.POINTER(word)
        ]
        self._lib.dump_state.argtypes = [ctypes.POINTER(word)]
        self._lib.load_state.argtypes = [ctypes.POINTER(word)]
        self._lib.run_block.argtypes = [
            ctypes.POINTER(word), ctypes.c_long
        ]
        self._num_outputs = int(self._lib.num_outputs())
        self._v_buffer = (word * max(1, self.num_inputs))()
        self._out_buffer = (word * max(1, self._num_outputs))()
        self._state_buffer = (word * max(1, self.num_state))()
        self._c_path = c_path
        self._so_path = so_path

    def step(self, vector: Sequence[int]) -> list[int]:
        buf = self._v_buffer
        for i, value in enumerate(vector):
            buf[i] = value
        self._lib.step(buf, self._out_buffer)
        return list(self._out_buffer[: self._num_outputs])

    def step_many(self, vectors: Sequence[Sequence[int]]) -> None:
        """Run many vectors, discarding outputs (timing fast path)."""
        self.run_block(self.pack_block(vectors), len(vectors))

    def pack_block(self, vectors: Sequence[Sequence[int]]):
        """Marshal a vector batch into one contiguous C buffer.

        Do this once outside the timed region; the generated
        ``run_block`` then drives the whole batch from inside the
        shared library with no per-vector interpreter work — matching
        the paper's timing, whose per-vector loop was compiled too.
        """
        width = max(1, self.num_inputs)
        flat = (self._word * (width * max(1, len(vectors))))()
        pos = 0
        for vector in vectors:
            for value in vector:
                flat[pos] = value
                pos += 1
            pos += width - len(vector)
        return flat

    def run_block(self, packed, count: int) -> None:
        """Run ``count`` packed vectors entirely inside the library."""
        self._lib.run_block(packed, count)

    def dump_state(self) -> list[int]:
        self._lib.dump_state(self._state_buffer)
        return list(self._state_buffer[: self.num_state])

    def load_state(self, values: Sequence[int]) -> None:
        if len(values) != self.num_state:
            raise BackendError(
                f"state has {self.num_state} words, got {len(values)}"
            )
        mask = self.program.word_mask
        buf = self._state_buffer
        for i, value in enumerate(values):
            buf[i] = value & mask
        self._lib.load_state(buf)

    def cleanup(self) -> None:
        """Remove generated artifacts (no-op with keep_artifacts)."""
        if self._keep:
            return
        for path in (self._c_path, self._so_path):
            try:
                os.unlink(path)
            except OSError:
                pass


def compile_program(
    program: Program,
    backend: str = "python",
    **kwargs,
) -> Machine:
    """Compile a program with the chosen backend (``python`` or ``c``)."""
    if backend == "python":
        return PythonMachine(program)
    if backend == "c":
        return CMachine(program, **kwargs)
    raise BackendError(f"unknown backend: {backend!r}")
