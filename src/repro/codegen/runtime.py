"""Compile and execute generated programs.

Three backends share the :class:`Machine` interface:

- :class:`PythonMachine` — ``compile()``/``exec`` of the generated
  Python coroutine.  Always available; this is what the test suite and
  the default benchmarks use.
- :class:`CMachine` — writes the generated C, compiles it with the
  system C compiler into a shared library, and calls it through
  ``ctypes``.  This restores the genuinely compiled character of the
  original work; use it for absolute performance numbers.
- :class:`NumpyMachine` — evaluates the same program IR over
  fixed-width numpy arrays (optional: present only when numpy is
  importable, see :func:`have_numpy`).

``compile_program(program, backend=...)`` picks one.  Every backend
accepts ``tiles=K`` (tiled execution: each net holds K words, one pass
carries ``word_width * K`` lanes; see :mod:`repro.codegen.packing`).

Batched execution
-----------------
Both machines expose the same batch entry points, mirroring the
generated ``run_block`` routine each backend compiles in:

- ``run_block(vectors, out=None)`` drives the whole batch from inside
  the generated code (the C library's compiled loop, or the Python
  coroutine's in-frame loop); emitted words are appended flat to the
  caller-supplied list ``out``, or discarded when ``out`` is ``None``
  (the timing fast path).
- ``step_many(vectors)`` returns per-vector output lists, bit-identical
  to an equivalent per-vector ``step()`` loop.
- ``run_packed_block(groups, out=None)`` drives *pattern-packed*
  groups — per-input lane words carrying up to ``word_width`` scalar
  vectors each (see :mod:`repro.codegen.packing`) — through the
  generated packed entry point (Python opcode 4, C
  ``run_packed_block``).  Packed words are validated against the word
  width up front (silent ctypes truncation would corrupt whole lanes,
  not just one vector).

Every batch updates ``machine.counters`` (vectors run, wall time,
vectors/second) so harness and benchmark reports can quote throughput
without re-instrumenting call sites.  Packed batches record the number
of *scalar vectors represented*, not passes, so ``vectors_per_second``
states true pattern throughput.

Program cache
-------------
Repeated harness/benchmark runs rebuild identical programs; the
module-level :class:`ProgramCache` memoizes the expensive compilation
step keyed by ``(program fingerprint, backend, opt_level)``.  The
fingerprint is a hash of the generated source, so any change to the
program invalidates the entry.  Python entries cache the ``compile()``d
code object; C entries cache the built artifacts, and every cache hit
*copies* the shared library to a fresh path before ``dlopen`` — the
dynamic loader dedupes loaded objects by inode, and a shared handle
would alias the per-machine static state.
"""

from __future__ import annotations

import atexit
import ctypes
import hashlib
import os
import re
import shutil
import subprocess
import tempfile
import time
import uuid
import weakref
from collections import OrderedDict
from typing import Optional, Sequence

from repro import telemetry
from repro.codegen.packing import validate_packed_words
from repro.codegen.program import Program
from repro.errors import BackendError

__all__ = [
    "Machine",
    "PythonMachine",
    "CMachine",
    "NumpyMachine",
    "BatchCounters",
    "ProgramCache",
    "program_cache",
    "clear_program_cache",
    "program_fingerprint",
    "cache_fingerprint",
    "compile_program",
    "have_c_compiler",
    "have_numpy",
]

_C_COMPILER: Optional[str] = None
_C_COMPILER_PROBED = False

_NUMPY = None
_NUMPY_PROBED = False


def have_numpy(force: bool = False):
    """The ``numpy`` module if importable, else ``None`` (cached probe).

    The numpy backend is optional: nothing in the core library imports
    numpy at module level, so environments without it lose only
    ``backend="numpy"``.
    """
    global _NUMPY, _NUMPY_PROBED
    if _NUMPY_PROBED and not force:
        return _NUMPY
    _NUMPY_PROBED = True
    try:
        import numpy
    except ImportError:
        _NUMPY = None
    else:
        _NUMPY = numpy
    return _NUMPY


def have_c_compiler(force: bool = False) -> Optional[str]:
    """Path of a usable C compiler, or ``None``.

    Checks ``$CC`` then ``cc`` then ``gcc`` then ``clang``; probes once
    and caches.  Pass ``force=True`` to reprobe — needed when ``$CC``
    changes after the first call (test fixtures and CI matrix jobs do
    this), since the cached negative would otherwise stick forever.
    """
    global _C_COMPILER, _C_COMPILER_PROBED
    if _C_COMPILER_PROBED and not force:
        return _C_COMPILER
    _C_COMPILER_PROBED = True
    _C_COMPILER = None
    candidates = [os.environ.get("CC"), "cc", "gcc", "clang"]
    for candidate in candidates:
        if not candidate:
            continue
        path = shutil.which(candidate)
        if path:
            _C_COMPILER = path
            return path
    return None


_NATIVE_ARCH: Optional[bool] = None


def _have_native_arch(compiler: str) -> bool:
    """Whether the compiler accepts ``-march=native`` (cached probe).

    Tiled machines want the host's full SIMD width — the baseline
    x86-64 target is SSE2, which lacks even a 64-bit arithmetic shift.
    The generated libraries are compiled on the host they run on, so
    targeting it exactly is safe.
    """
    global _NATIVE_ARCH
    if _NATIVE_ARCH is None:
        with tempfile.TemporaryDirectory(prefix="repro_cc_") as probe:
            c_path = os.path.join(probe, "probe.c")
            with open(c_path, "w") as handle:
                handle.write("int probe(int x) { return x + 1; }\n")
            result = subprocess.run(
                [compiler, "-march=native", "-c", c_path,
                 "-o", os.path.join(probe, "probe.o")],
                capture_output=True,
            )
            _NATIVE_ARCH = result.returncode == 0
    return _NATIVE_ARCH


def program_fingerprint(source: str) -> str:
    """Content hash of a generated source text (the cache key core)."""
    return hashlib.sha256(source.encode()).hexdigest()


def cache_fingerprint(program: "Program", source: str, tiles: int) -> str:
    """The fingerprint half of a program-cache key.

    Programs carrying a semantic ``content_key`` (e.g. per-fanin-cone
    hashes from :mod:`repro.codegen.incremental`) are keyed on it
    directly — the key already determines the source, so hashing the
    text again would only slow the hit path.  Tiled lowerings change
    the source for the same program, hence the ``-t{K}`` qualifier
    (the backend name and opt level are separate key components).
    Probe-instrumented programs carry a ``probe_key`` (set by
    :mod:`repro.codegen.probes`); it qualifies the key the same way,
    so an instrumented program never aliases its uninstrumented twin —
    and a probes-off program keeps its historical fingerprint exactly.
    """
    content_key = getattr(program, "content_key", None)
    probe_key = getattr(program, "probe_key", None)
    if content_key is None:
        fingerprint = program_fingerprint(source)
        if probe_key is not None:
            return f"{fingerprint}-p{probe_key}"
        return fingerprint
    key = content_key
    if tiles != 1:
        key = f"{key}-t{tiles}"
    if probe_key is not None:
        key = f"{key}-p{probe_key}"
    return key


class BatchCounters:
    """Running totals of batched execution on one machine.

    Updated by every ``run_block``/``step_many`` call; benchmark and
    harness reports read ``vectors_per_second`` instead of timing the
    call sites themselves.
    """

    __slots__ = ("batches", "vectors", "seconds")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.batches = 0
        self.vectors = 0
        self.seconds = 0.0

    def record(self, vectors: int, seconds: float) -> None:
        self.batches += 1
        self.vectors += vectors
        self.seconds += seconds

    @property
    def vectors_per_second(self) -> float:
        if self.seconds <= 0.0:
            return 0.0
        return self.vectors / self.seconds

    def as_dict(self) -> dict:
        return {
            "batches": self.batches,
            "vectors": self.vectors,
            "seconds": self.seconds,
            "vectors_per_second": self.vectors_per_second,
        }

    def __repr__(self) -> str:
        return (
            f"BatchCounters({self.vectors} vectors in {self.batches} "
            f"batches, {self.seconds:.4f}s, "
            f"{self.vectors_per_second:.0f} vec/s)"
        )


def _remove_cache_dir(path: str, owner_pid: int) -> None:
    """``atexit`` hook for a cache directory — creator-process only.

    ``atexit`` registrations are inherited across ``fork``; without the
    pid guard a forked worker exiting would delete the *parent's*
    cached ``.so``/``.c`` artifacts out from under it.
    """
    if os.getpid() == owner_pid:
        shutil.rmtree(path, ignore_errors=True)


#: Every live cache, so the fork hook can reset inherited state in the
#: child (weak: short-lived test caches must stay collectable).
_FORK_AWARE_CACHES: "weakref.WeakSet[ProgramCache]" = weakref.WeakSet()


def _reset_caches_after_fork() -> None:
    for cache in list(_FORK_AWARE_CACHES):
        cache._forget_inherited()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX only
    os.register_at_fork(after_in_child=_reset_caches_after_fork)


class ProgramCache:
    """LRU cache of compiled artifacts keyed by program content.

    Keys are ``(fingerprint, backend, opt_level)``.  Python entries are
    code objects (each machine still ``exec``s its own namespace, so
    machines never share state).  C entries are ``(c_path, so_path)``
    pairs living in a cache-owned directory; machines copy the library
    out before loading it, so each instance gets private statics.

    The cache is *fork-safe*: an ``os.register_at_fork`` hook drops the
    child's inherited entries, directory and counters (the artifacts on
    disk belong to the parent), and the directory's ``atexit`` removal
    handler — registered at most once per directory — only fires in the
    process that created it.
    """

    def __init__(self, capacity: int = 64) -> None:
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._dir: Optional[str] = None
        self._registered_dirs: set[str] = set()
        _FORK_AWARE_CACHES.add(self)

    # ------------------------------------------------------------------
    def artifact_dir(self) -> str:
        """The cache-owned directory for C artifacts (lazily created)."""
        if self._dir is None:
            self._dir = tempfile.mkdtemp(prefix="repro_cache_")
        elif not os.path.isdir(self._dir):
            # Recreate the *same* path after an external wipe so the
            # already-registered atexit handler keeps covering it.
            os.makedirs(self._dir, exist_ok=True)
        if self._dir not in self._registered_dirs:
            self._registered_dirs.add(self._dir)
            atexit.register(_remove_cache_dir, self._dir, os.getpid())
        return self._dir

    def _forget_inherited(self) -> None:
        """Reset state inherited across ``fork``.

        The entries, the artifact directory and the hit/miss history
        all belong to the parent; the child starts cold and lazily
        creates its own directory on first miss.  Nothing is discarded
        from disk — that would destroy the parent's artifacts.
        """
        self._entries.clear()
        self._dir = None
        self._registered_dirs.clear()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple):
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple, entry) -> None:
        prior = self._entries.get(key)
        if prior is not None and prior != entry:
            # Re-inserting a key must not leak the replaced C artifact
            # pair on disk (equal paths are kept — they are the entry).
            self._discard(prior)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            _key, evicted = self._entries.popitem(last=False)
            self._discard(evicted)

    def _discard(self, entry) -> None:
        if isinstance(entry, tuple):
            for path in entry:
                try:
                    os.unlink(path)
                except OSError:
                    pass

    def clear(self) -> None:
        for entry in self._entries.values():
            self._discard(entry)
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
        }

    def __len__(self) -> int:
        return len(self._entries)


_PROGRAM_CACHE = ProgramCache()


def program_cache() -> ProgramCache:
    """The process-wide compiled-program cache."""
    return _PROGRAM_CACHE


def clear_program_cache() -> None:
    """Drop every cached artifact (mainly for tests)."""
    _PROGRAM_CACHE.clear()


class Machine:
    """A compiled straight-line simulation program, ready to run.

    ``step(V)`` runs one vector (``V`` is a sequence of input words in
    the program's input order) and returns the emitted output words.
    ``step_many(VS)``/``run_block(VS, out)`` run whole batches with the
    vector loop inside the generated code (see the module docstring).
    ``dump_state()``/``load_state()`` expose the persistent variables in
    declaration order — this is how simulators seed the previous-vector
    steady state.

    Machines are context managers: ``with compile_program(...) as m:``
    guarantees backend artifacts are cleaned up (a no-op on the Python
    backend).
    """

    program: Program

    def __init__(self, program: Program, tiles: int = 1) -> None:
        self.program = program
        self.tiles = tiles
        self.interface = program.interface(tiles)
        self.counters = BatchCounters()

    def _record_batch(self, vectors: int, seconds: float) -> None:
        """One hook behind every batch: counters + the ``run`` phase.

        The duration is measured once by the caller; telemetry reuses
        it (``record_phase``) instead of wrapping a second timer, so
        the disabled path costs a single flag check.
        """
        self.counters.record(vectors, seconds)
        if telemetry.enabled():
            telemetry.record_phase("run", seconds)
            telemetry.counter("run.batches")
            telemetry.counter("run.vectors", vectors)

    @property
    def num_inputs(self) -> int:
        return self.interface.vector_words

    @property
    def num_state(self) -> int:
        return self.interface.state_words

    @property
    def num_outputs(self) -> int:
        return self.interface.output_words

    def output_labels(self) -> list[tuple]:
        return self.interface.output_labels()

    def step(self, vector: Sequence[int]) -> list[int]:
        raise NotImplementedError

    def run_block(
        self,
        vectors: Sequence[Sequence[int]],
        out: Optional[list[int]] = None,
        *,
        masked: bool = False,
    ) -> Optional[list[int]]:
        """Run a batch inside the generated code.

        Emitted words are appended flat (vector order) to ``out``;
        ``out=None`` discards them — the timing fast path.  ``masked``
        promises the vectors are already word-masked lists of the right
        length (the simulator layer marshals once, outside any timed
        region) and skips re-validation.
        """
        raise NotImplementedError

    def run_packed_block(
        self,
        groups: Sequence[Sequence[int]],
        out: Optional[list[int]] = None,
        *,
        vectors_represented: Optional[int] = None,
    ) -> Optional[list[int]]:
        """Run pattern-packed groups inside the generated code.

        Each group is a list of ``num_inputs`` lane words (bit ``j`` of
        word ``k`` = input ``k`` of packed vector ``j``); emitted packed
        words are appended flat to ``out`` in group order.  Every word
        is validated against the word width (:class:`SimulationError`
        on overflow) — an oversized lane word would silently corrupt
        every lane on the C backend.  ``vectors_represented`` is what
        the throughput counters record (default: full groups,
        ``len(groups) * word_width``).
        """
        raise NotImplementedError

    def _packed_count(
        self,
        groups: Sequence[Sequence[int]],
        vectors_represented: Optional[int],
    ) -> int:
        if vectors_represented is not None:
            return vectors_represented
        return len(groups) * self.program.word_width * self.tiles

    def _validate_group(self, index: int, group: Sequence[int]) -> None:
        if len(group) != self.num_inputs:
            raise BackendError(
                f"packed group {index} has {len(group)} words, expected "
                f"{self.num_inputs}"
            )
        # Name the scalar vectors an overflowing lane word would
        # corrupt, not just the width limit.
        lanes = self.program.word_width * self.tiles
        first = index * lanes
        validate_packed_words(
            group, self.program.word_width,
            context=(
                f"packed group {index} (vectors {first}.."
                f"{first + lanes - 1}), input word"
            ),
        )

    def step_many(
        self,
        vectors: Sequence[Sequence[int]],
        *,
        masked: bool = False,
    ) -> list[list[int]]:
        """Run a batch; return per-vector output lists.

        Bit-identical to ``[self.step(v) for v in vectors]``, minus the
        per-vector dispatch overhead.
        """
        flat: list[int] = []
        self.run_block(vectors, flat, masked=masked)
        n = self.num_outputs
        if n == 0:
            return [[] for _ in vectors]
        return [flat[i:i + n] for i in range(0, len(flat), n)]

    def dump_state(self) -> list[int]:
        raise NotImplementedError

    def load_state(self, values: Sequence[int]) -> None:
        raise NotImplementedError

    def state_dict(self) -> dict[str, int]:
        """Persistent state keyed by variable name.

        Tiled machines key each tile separately (``name@t``), keeping
        the flat tile-minor dump order.
        """
        if self.tiles == 1:
            return dict(zip(self.program.state_vars, self.dump_state()))
        names = [
            f"{name}@{t}"
            for name in self.program.state_vars
            for t in range(self.tiles)
        ]
        return dict(zip(names, self.dump_state()))

    def cleanup(self) -> None:
        """Release backend artifacts (no-op unless a backend overrides)."""

    def __enter__(self) -> "Machine":
        return self

    def __exit__(self, *exc) -> None:
        self.cleanup()


class PythonMachine(Machine):
    """Generated Python coroutine backend."""

    def __init__(
        self, program: Program, *, tiles: int = 1, use_cache: bool = True
    ) -> None:
        super().__init__(program, tiles)
        self.source = program.python_source(tiles=tiles)
        filename = f"<repro:{program.name}>"
        code = None
        key = None
        if use_cache:
            key = (cache_fingerprint(program, self.source, tiles),
                   "python", "")
            code = _PROGRAM_CACHE.get(key)
        if code is None:
            with telemetry.span("cc", backend="python",
                                program=program.name):
                code = compile(self.source, filename, "exec")
            if key is not None:
                _PROGRAM_CACHE.put(key, code)
        namespace: dict = {}
        exec(code, namespace)
        self._gen = namespace["machine"]()
        next(self._gen)  # prime

    def _marshal(self, vector: Sequence[int]) -> list[int]:
        # Mask to the word width: Python ints are unbounded, while the
        # C backend's ctypes buffers truncate silently — without this
        # the two backends diverge on oversized inputs.
        if len(vector) != self.num_inputs:
            raise BackendError(
                f"vector has {len(vector)} words, expected "
                f"{self.num_inputs}"
            )
        mask = self.program.word_mask
        return [value & mask for value in vector]

    def step(self, vector: Sequence[int]) -> list[int]:
        return self._gen.send((0, self._marshal(vector)))

    def run_block(
        self,
        vectors: Sequence[Sequence[int]],
        out: Optional[list[int]] = None,
        *,
        masked: bool = False,
    ) -> Optional[list[int]]:
        if not masked:
            vectors = [self._marshal(vector) for vector in vectors]
        sink = [] if out is None else out
        start = time.perf_counter()
        self._gen.send((3, vectors, sink))
        self._record_batch(len(vectors), time.perf_counter() - start)
        return out

    def run_packed_block(
        self,
        groups: Sequence[Sequence[int]],
        out: Optional[list[int]] = None,
        *,
        vectors_represented: Optional[int] = None,
    ) -> Optional[list[int]]:
        for index, group in enumerate(groups):
            self._validate_group(index, group)
        sink = [] if out is None else out
        start = time.perf_counter()
        self._gen.send((4, groups, sink))
        self._record_batch(
            self._packed_count(groups, vectors_represented),
            time.perf_counter() - start,
        )
        return out

    def dump_state(self) -> list[int]:
        return self._gen.send((1,))

    def load_state(self, values: Sequence[int]) -> None:
        if len(values) != self.num_state:
            raise BackendError(
                f"state has {self.num_state} words, got {len(values)}"
            )
        mask = self.program.word_mask
        self._gen.send((2, [value & mask for value in values]))


class NumpyMachine(PythonMachine):
    """Generated numpy backend: the IR evaluated over fixed-width arrays.

    Shares the coroutine protocol (and therefore every driver method)
    with :class:`PythonMachine`; only the generated source differs —
    each state variable is an array of ``tiles`` unsigned words, so
    the array operations carry the tile loop.  State crosses the
    boundary as flat Python-int lists, keeping the ``Machine``
    interface backend-agnostic.
    """

    def __init__(
        self, program: Program, *, tiles: int = 1, use_cache: bool = True
    ) -> None:
        np = have_numpy()
        if np is None:
            raise BackendError(
                "numpy is not installed; use the python or c backend"
            )
        Machine.__init__(self, program, tiles)
        self.source = program.numpy_source(tiles=tiles)
        filename = f"<repro:{program.name}:numpy>"
        code = None
        key = None
        if use_cache:
            key = (cache_fingerprint(program, self.source, tiles),
                   "numpy", "")
            code = _PROGRAM_CACHE.get(key)
        if code is None:
            with telemetry.span("cc", backend="numpy",
                                program=program.name):
                code = compile(self.source, filename, "exec")
            if key is not None:
                _PROGRAM_CACHE.put(key, code)
        namespace: dict = {}
        exec(code, namespace)
        self._gen = namespace["machine"](np)
        next(self._gen)  # prime

    def dump_state(self) -> list[int]:
        # tolist() of unsigned arrays already yields Python ints.
        return list(self._gen.send((1,)))


class CMachine(Machine):
    """Generated C + system compiler + ctypes backend.

    Owns a work directory holding the generated ``.c`` and the built
    ``.so``.  The lifecycle contract: ``cleanup()`` removes both and —
    when the directory was tool-created — the directory itself; it runs
    automatically on ``__del__`` and on context-manager exit, and is
    idempotent.  ``keep_artifacts=True`` disables all of it.
    """

    _CTYPE = {
        8: ctypes.c_uint8,
        16: ctypes.c_uint16,
        32: ctypes.c_uint32,
        64: ctypes.c_uint64,
    }

    #: Programs beyond this many generated lines compile at -O0: C
    #: optimizers behave superlinearly on huge straight-line functions
    #: (amusingly, the paper hit a compiler bug on exactly the same two
    #: circuits' cycle-breaking programs).
    O0_LINE_THRESHOLD = 60_000

    def __init__(
        self,
        program: Program,
        *,
        tiles: int = 1,
        opt_level: Optional[str] = None,
        keep_artifacts: bool = False,
        work_dir: Optional[str] = None,
        use_cache: bool = True,
    ) -> None:
        super().__init__(program, tiles)
        self._cleaned = True  # nothing to clean until paths exist
        compiler = have_c_compiler()
        if compiler is None:
            raise BackendError(
                "no C compiler found; use the python backend instead"
            )
        self.source = program.c_source(tiles=tiles)
        if opt_level is None:
            big = program.stats().source_lines > self.O0_LINE_THRESHOLD
            if big:
                opt_level = "-O0"
            elif tiles > 1:
                # The tiled emitter's per-statement loops only pay off
                # as SIMD: -O1 never vectorizes them, the baseline
                # x86-64 target caps the lanes at SSE2 widths, and
                # unrolling the constant-trip tile loops lets nets
                # live in vector registers across statements.
                opt_level = "-O2 -ftree-vectorize -funroll-loops"
                if _have_native_arch(compiler):
                    opt_level += " -march=native"
            else:
                opt_level = "-O1"
        self.opt_level = opt_level
        self._dir_owned = work_dir is None
        self._dir = work_dir or tempfile.mkdtemp(prefix="repro_c_")
        self._keep = keep_artifacts
        tag = uuid.uuid4().hex[:8]
        c_path = os.path.join(self._dir, f"{program.name}_{tag}.c")
        so_path = os.path.join(self._dir, f"{program.name}_{tag}.so")
        self._c_path = c_path
        self._so_path = so_path
        self._cleaned = False
        key = (cache_fingerprint(program, self.source, self.tiles),
               "c", opt_level)
        cached = _PROGRAM_CACHE.get(key) if use_cache else None
        if cached is not None:
            # Copy (never link): the dynamic loader dedupes by inode,
            # and a shared load would alias the static state words.
            shutil.copy(cached[0], c_path)
            shutil.copy(cached[1], so_path)
        else:
            with open(c_path, "w") as handle:
                handle.write(self.source)
            with telemetry.span("cc", backend="c", opt=opt_level,
                                program=program.name):
                self._compile(compiler, opt_level, c_path, so_path)
            if use_cache:
                cache_dir = _PROGRAM_CACHE.artifact_dir()
                cached_c = os.path.join(cache_dir, f"{key[0]}.c")
                opt_tag = re.sub(r"[^A-Za-z0-9]+", "_", opt_level).strip("_")
                cached_so = os.path.join(
                    cache_dir, f"{key[0]}_{opt_tag}.so"
                )
                shutil.copy(c_path, cached_c)
                shutil.copy(so_path, cached_so)
                _PROGRAM_CACHE.put(key, (cached_c, cached_so))
        self._lib = ctypes.CDLL(so_path)
        word = self._CTYPE[program.word_width]
        self._word = word
        # The callable per entry point, resolved from the interface's
        # shared table rather than hardcoded symbol names.
        entry = {
            ep.name: getattr(self._lib, ep.c_symbol)
            for ep in self.interface.entry_points
        }
        self._entry = entry
        entry["step"].argtypes = [
            ctypes.POINTER(word), ctypes.POINTER(word)
        ]
        entry["dump_state"].argtypes = [ctypes.POINTER(word)]
        entry["load_state"].argtypes = [ctypes.POINTER(word)]
        for batch_entry in ("run_block", "run_packed_block"):
            entry[batch_entry].argtypes = [
                ctypes.POINTER(word), ctypes.c_long, ctypes.POINTER(word)
            ]
        self._num_outputs = int(self._lib.num_outputs())
        self._v_buffer = (word * max(1, self.num_inputs))()
        self._out_buffer = (word * max(1, self._num_outputs))()
        self._state_buffer = (word * max(1, self.num_state))()

    def _compile(
        self, compiler: str, opt_level: str, c_path: str, so_path: str
    ) -> None:
        # -Bsymbolic binds the intra-library run_block -> step call at
        # link time; some sandboxed loaders cannot lazily resolve PLT
        # entries of dlopen'd libraries and would crash otherwise.
        cmd = [
            compiler, *opt_level.split(), "-shared", "-fPIC",
            "-Wl,-Bsymbolic", "-Wl,-z,now",
            c_path, "-o", so_path,
        ]
        result = subprocess.run(cmd, capture_output=True, text=True)
        if result.returncode != 0:
            raise BackendError(
                f"C compilation failed ({' '.join(cmd)}):\n{result.stderr}"
            )

    def step(self, vector: Sequence[int]) -> list[int]:
        if len(vector) != self.num_inputs:
            raise BackendError(
                f"vector has {len(vector)} words, expected "
                f"{self.num_inputs}"
            )
        buf = self._v_buffer
        for i, value in enumerate(vector):
            buf[i] = value  # ctypes truncates to the word width
        self._entry["step"](buf, self._out_buffer)
        return list(self._out_buffer[: self._num_outputs])

    def pack_block(self, vectors: Sequence[Sequence[int]]):
        """Marshal a vector batch into one contiguous C buffer.

        Do this once outside the timed region; the generated
        ``run_block`` then drives the whole batch from inside the
        shared library with no per-vector interpreter work — matching
        the paper's timing, whose per-vector loop was compiled too.

        Every vector must have exactly ``num_inputs`` words: a
        mismatched vector would silently overrun into (or underfill)
        the next vector's slot.
        """
        width = self.num_inputs
        count = max(1, len(vectors))
        flat = (self._word * (max(1, width) * count))()
        pos = 0
        for index, vector in enumerate(vectors):
            if len(vector) != width:
                raise BackendError(
                    f"vector {index} has {len(vector)} words, expected "
                    f"{width}"
                )
            for value in vector:
                flat[pos] = value
                pos += 1
        return flat

    def run_packed(
        self, packed, count: int, out_buffer=None,
        *, vectors_represented: Optional[int] = None,
    ) -> None:
        """Run ``count`` marshalled vectors entirely inside the library.

        ``out_buffer`` is an optional ctypes array of at least
        ``count * num_outputs`` words; ``None`` discards outputs.  When
        the buffer holds pattern-packed groups rather than scalar
        vectors, pass ``vectors_represented`` so the throughput
        counters record lanes instead of passes.
        """
        start = time.perf_counter()
        self._entry["run_block"](packed, count, out_buffer)
        self._record_batch(
            count if vectors_represented is None else vectors_represented,
            time.perf_counter() - start,
        )

    def run_block(
        self,
        vectors: Sequence[Sequence[int]],
        out: Optional[list[int]] = None,
        *,
        masked: bool = False,
    ) -> Optional[list[int]]:
        # ``masked`` is accepted for interface symmetry; the ctypes
        # buffer truncates to the word width either way.
        packed = self.pack_block(vectors)
        if out is None:
            self.run_packed(packed, len(vectors))
            return None
        buffer = (self._word * max(1, len(vectors) * self._num_outputs))()
        self.run_packed(packed, len(vectors), buffer)
        out.extend(buffer[: len(vectors) * self._num_outputs])
        return out

    def run_packed_block(
        self,
        groups: Sequence[Sequence[int]],
        out: Optional[list[int]] = None,
        *,
        vectors_represented: Optional[int] = None,
    ) -> Optional[list[int]]:
        for index, group in enumerate(groups):
            self._validate_group(index, group)
        buffer = self.pack_block(groups)
        count = self._packed_count(groups, vectors_represented)
        start = time.perf_counter()
        if out is None:
            self._entry["run_packed_block"](buffer, len(groups), None)
            self._record_batch(count, time.perf_counter() - start)
            return None
        out_buffer = (
            self._word * max(1, len(groups) * self._num_outputs)
        )()
        self._entry["run_packed_block"](buffer, len(groups), out_buffer)
        self._record_batch(count, time.perf_counter() - start)
        out.extend(out_buffer[: len(groups) * self._num_outputs])
        return out

    def dump_state(self) -> list[int]:
        self._entry["dump_state"](self._state_buffer)
        return list(self._state_buffer[: self.num_state])

    def load_state(self, values: Sequence[int]) -> None:
        if len(values) != self.num_state:
            raise BackendError(
                f"state has {self.num_state} words, got {len(values)}"
            )
        mask = self.program.word_mask
        buf = self._state_buffer
        for i, value in enumerate(values):
            buf[i] = value & mask
        self._entry["load_state"](buf)

    def cleanup(self) -> None:
        """Remove generated artifacts (no-op with keep_artifacts).

        Idempotent; called automatically by ``__del__`` and on context
        exit.  Tool-created work directories are removed outright.
        """
        if self._cleaned or self._keep:
            return
        self._cleaned = True
        for path in (self._c_path, self._so_path):
            try:
                os.unlink(path)
            except OSError:
                pass
        if self._dir_owned:
            shutil.rmtree(self._dir, ignore_errors=True)

    def __del__(self) -> None:
        try:
            self.cleanup()
        except Exception:
            pass


def compile_program(
    program: Program,
    backend: str = "python",
    **kwargs,
) -> Machine:
    """Compile a program with the chosen backend.

    ``python`` and ``c`` are always candidates; ``numpy`` needs the
    numpy module importable (see :func:`have_numpy`).  All backends
    accept ``tiles=K`` for tiled execution — every net becomes K words
    and one pass carries ``word_width * K`` lanes — and
    ``use_cache=False`` to bypass the process-wide
    :class:`ProgramCache`.
    """
    if backend == "python":
        return PythonMachine(program, **kwargs)
    if backend == "c":
        return CMachine(program, **kwargs)
    if backend == "numpy":
        return NumpyMachine(program, **kwargs)
    raise BackendError(f"unknown backend: {backend!r}")
