"""Render a :class:`~repro.codegen.program.Program` as numpy source.

The third backend, and the proof that the program IR abstraction
holds: the same validated IR the Python and C emitters lower from is
evaluated here over fixed-width numpy arrays.  Every net becomes an
array of ``tiles`` unsigned words (``uint8``..``uint64`` according to
the program's word width), one element per tile, so a single pass
carries ``word_width * tiles`` pattern lanes without any emitted
per-tile unrolling — the array operations *are* the tile loop.

The generated artifact mirrors the Python backend's coroutine
protocol (same opcodes, from the shared
:data:`~repro.codegen.program.ENTRY_POINTS` table) but takes the
``numpy`` module as a parameter, so the emitter itself never imports
numpy and the dependency stays optional at the runtime layer.

Masking is free — the fixed-width dtypes wrap like C's unsigned types
— so ``mask_assignments`` is ignored exactly as the C emitter ignores
it.  The arithmetic shift ``sar`` round-trips through the signed
dtype of the same width.
"""

from __future__ import annotations

from repro.codegen.program import (
    OPCODES,
    Assign,
    Bin,
    Comment,
    Const,
    Emit,
    Expr,
    Input,
    Program,
    Stmt,
    Un,
    Var,
)
from repro.errors import CodegenError

__all__ = ["emit_numpy", "render_expr_numpy", "NUMPY_DTYPES"]

NUMPY_DTYPES = {8: "uint8", 16: "uint16", 32: "uint32", 64: "uint64"}

#: Signed counterparts, used to render the arithmetic shift ``sar``.
NUMPY_SDTYPES = {8: "int8", 16: "int16", 32: "int32", 64: "int64"}


def render_expr_numpy(expr: Expr, tiles: int) -> str:
    """Render an expression over arrays of ``tiles`` words.

    Vector reads are slot-major slices (``V[s*K : s*K+K]``); integer
    literals broadcast, so constants render bare.  No statement ever
    mutates an array in place, which is what makes the occasional
    aliasing of a pure ``a = b`` assignment safe.
    """
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, Input):
        lo = expr.slot * tiles
        return f"V[{lo}:{lo + tiles}]"
    if isinstance(expr, Un):
        child = _child(expr.a, tiles)
        if expr.op == "~":
            return f"~{child}"
        if expr.op == "popcount":
            return f"_popcount({child})"
        # Unsigned dtypes wrap, so 0 - x is the bit-replication idiom
        # verbatim (no Python-int sign smearing to guard against).
        return f"(0 - {child})"
    if isinstance(expr, Bin):
        if expr.op == "sar":
            if not isinstance(expr.a, Var):
                raise CodegenError(
                    f"sar is only generated over plain variables: {expr!r}"
                )
            assert isinstance(expr.b, Const)
            return (
                f"(({expr.a.name}).astype(SDT) >> {expr.b.value})"
                f".astype(DT)"
            )
        a = _child(expr.a, tiles)
        b = _child(expr.b, tiles)
        return f"{a} {expr.op} {b}"
    raise CodegenError(f"unknown expression node: {expr!r}")


def _child(expr: Expr, tiles: int) -> str:
    text = render_expr_numpy(expr, tiles)
    if isinstance(expr, (Bin, Un)):
        return f"({text})"
    return text


def _check_shifts(expr: Expr, width: int) -> None:
    if isinstance(expr, Bin):
        if expr.op in ("<<", ">>", "sar"):
            amount = expr.b
            assert isinstance(amount, Const)
            if not 0 <= amount.value < width:
                raise CodegenError(
                    f"shift by {amount.value} outside word width {width}"
                )
        _check_shifts(expr.a, width)
        _check_shifts(expr.b, width)
    elif isinstance(expr, Un):
        _check_shifts(expr.a, width)


def _const_value(expr: Expr, width: int):
    """Evaluate an expression with no Var/Input reads, else ``None``.

    A constant-only right-hand side must not rebind a state array to a
    Python int, so such statements render through ``_full`` instead —
    the value is folded here, at emit time.
    """
    mask = (1 << width) - 1
    if isinstance(expr, Const):
        return expr.value & mask
    if isinstance(expr, Un):
        a = _const_value(expr.a, width)
        if a is None:
            return None
        if expr.op == "popcount":
            return bin(a).count("1")
        return (~a if expr.op == "~" else -a) & mask
    if isinstance(expr, Bin):
        a = _const_value(expr.a, width)
        b = _const_value(expr.b, width)
        if a is None or b is None:
            return None
        if expr.op == "&":
            return a & b
        if expr.op == "|":
            return a | b
        if expr.op == "^":
            return a ^ b
        if expr.op == "+":
            return (a + b) & mask
        if expr.op == "<<":
            return (a << b) & mask
        if expr.op == ">>":
            return a >> b
        # sar: replicate the top bit through the vacated positions.
        signed = a - (1 << width) if a >> (width - 1) else a
        return (signed >> b) & mask
    return None


def _statement_lines(
    stmts: list[Stmt], program: Program, tiles: int, indent: str
) -> list[str]:
    lines: list[str] = []
    width = program.word_width
    for stmt in stmts:
        if isinstance(stmt, Comment):
            lines.append(f"{indent}# {stmt.text}")
        elif isinstance(stmt, Assign):
            _check_shifts(stmt.expr, width)
            folded = _const_value(stmt.expr, width)
            if folded is not None:
                lines.append(f"{indent}{stmt.dest} = _full({folded})")
            else:
                rhs = render_expr_numpy(stmt.expr, tiles)
                lines.append(f"{indent}{stmt.dest} = {rhs}")
        elif isinstance(stmt, Emit):
            _check_shifts(stmt.expr, width)
            folded = _const_value(stmt.expr, width)
            if folded is not None:
                value = folded & program.output_mask
                lines.append(f"{indent}_extend([{value}] * {tiles})")
            else:
                rhs = render_expr_numpy(stmt.expr, tiles)
                lines.append(
                    f"{indent}_extend((({rhs}) & OUTMASK).tolist())"
                )
        else:
            raise CodegenError(f"unknown statement: {stmt!r}")
    return lines


def emit_numpy(program: Program, tiles: int = 1) -> str:
    """Produce the full numpy source of the coroutine machine.

    The emitted ``machine(np)`` generator speaks the exact protocol of
    the Python backend (prime with ``next``, then the opcodes of
    :data:`~repro.codegen.program.ENTRY_POINTS`), with state dumped and
    loaded as flat tile-minor Python-int lists so the runtime treats
    all three backends uniformly.
    """
    program.validate()
    if tiles < 1:
        raise CodegenError(f"tiles must be >= 1, got {tiles}")
    K = tiles
    op = OPCODES
    lines: list[str] = [
        f"# generated by repro - program {program.name!r} (numpy backend)",
        f"# word width {program.word_width}, "
        f"{len(program.state_vars)} state vars, tiles {K}",
        "def machine(np):",
        f"    DT = np.{NUMPY_DTYPES[program.word_width]}",
        f"    SDT = np.{NUMPY_SDTYPES[program.word_width]}",
        f"    OUTMASK = {program.output_mask}",
        "    def _full(value):",
        f"        return np.full({K}, value, dtype=DT)",
    ]
    if program.stats().popcounts:
        lines += [
            "    _bc = getattr(np, 'bitwise_count', None)",
            "    if _bc is not None:",
            "        def _popcount(a):",
            "            return _bc(a).astype(DT)",
            "    else:",
            "        def _popcount(a):",
            "            return np.array("
            "[bin(x).count('1') for x in a.tolist()], dtype=DT)",
        ]
    for name in program.state_vars:
        lines.append(f"    {name} = _full({program.state_init[name]})")
    lines.append("    cmd = yield None")
    lines.append("    while 1:")
    lines.append("        op = cmd[0]")
    lines.append(f"        if op == {op['step']} or op == {op['run_block']}"
                 f" or op == {op['run_packed_block']}:")
    lines.append(f"            if op == {op['step']}:")
    lines.append("                VS = (cmd[1],)")
    lines.append("                OUT = []")
    lines.append("            else:")
    lines.append("                VS = cmd[1]")
    lines.append("                OUT = cmd[2]")
    lines.append("            _extend = OUT.extend")
    lines.append("            for V in VS:")
    lines.append("                V = np.asarray(V, dtype=DT)")
    body_indent = "                "
    lines += _statement_lines(program.init, program, K, body_indent)
    lines += _statement_lines(program.body, program, K, body_indent)
    lines += _statement_lines(program.output, program, K, body_indent)
    lines.append(f"{body_indent}pass")
    lines.append("            cmd = yield OUT")
    lines.append(f"        elif op == {op['dump_state']}:")
    if program.state_vars:
        dump = " + ".join(f"{name}.tolist()" for name in program.state_vars)
        lines.append(f"            cmd = yield ({dump})")
    else:
        lines.append("            cmd = yield []")
    lines.append("        else:")
    lines.append("            _s = cmd[1]")
    for i, name in enumerate(program.state_vars):
        lo = i * K
        lines.append(
            f"            {name} = np.asarray(_s[{lo}:{lo + K}], dtype=DT)"
        )
    lines.append("            cmd = yield None")
    lines.append("")
    return "\n".join(lines)
