"""Shared behaviour of the compiled-simulator facades.

Every compiled technique (PC-set, parallel, and their optimized
variants) wraps a generated :class:`~repro.codegen.program.Program` the
same way: compile it on a backend, seed the persistent state from a
zero-delay steady state, feed vectors, decode outputs.  This module
hosts that common machinery; the technique-specific subclasses provide
only the program generation and the state encoding/decoding.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro import telemetry
from repro.codegen.packing import (
    lane_segments,
    packed_apply,
    packing_mode,
    select_lanes,
    select_tiles,
)
from repro.codegen.probes import ProbePlan, ProbeRuntime
from repro.codegen.program import Program
from repro.codegen.runtime import (
    BatchCounters,
    CMachine,
    Machine,
    compile_program,
)
from repro.errors import SimulationError
from repro.eventsim.zerodelay import steady_state
from repro.netlist.circuit import Circuit

__all__ = ["CompiledSimulator"]


class CompiledSimulator:
    """Base class for compiled unit-delay simulator facades.

    Parameters
    ----------
    circuit:
        The acyclic circuit being simulated.
    program:
        The generated program (built by the subclass).
    backend:
        ``"python"`` (default) or ``"c"``.
    with_outputs:
        When false, the program's output section is dropped before
        compilation — the configuration benchmarks time, matching the
        paper's methodology of excluding output handling from
        measurements.  Output-decoding APIs then raise.
    partitions / partition_workers:
        With ``partitions > 1`` the steady-state seeding of
        :meth:`reset` runs on the partitioned compiled engine
        (:class:`~repro.partition.executor.PartitionedSimulator`)
        instead of the interpreted zero-delay settle — bit-identical
        settled values, so every downstream result is unchanged.  The
        unit-delay program itself carries per-vector history and runs
        monolithically; :meth:`apply_vectors` records the declined
        request as a ``partition.fallback.<mode>`` counter, mirroring
        the packing-fallback idiom.
    tiles:
        Tiled/laned batch width: an explicit ``K >= 1`` forces K tiles
        (pattern-packable programs: ``word_width * K`` lanes per pass)
        or K lanes (shift programs with ``state_carry="finals"``: one
        word per lane, the batch split into K contiguous segments);
        ``"auto"`` picks per batch (see
        :func:`~repro.codegen.packing.select_tiles` /
        :func:`~repro.codegen.packing.select_lanes`).  ``1`` (default)
        is the historical single-word behaviour.  Results are
        bit-identical either way.
    """

    def __init__(
        self,
        circuit: Circuit,
        program: Program,
        *,
        backend: str = "python",
        with_outputs: bool = True,
        checksum_mask: Optional[int] = None,
        partitions: int = 1,
        partition_workers: Optional[int] = None,
        tiles: "int | str" = 1,
        probe_plan: Optional[ProbePlan] = None,
        packing_override: Optional[str] = None,
        **backend_kwargs,
    ) -> None:
        self.circuit = circuit
        self.program = program
        self.backend = backend
        self.with_outputs = with_outputs
        self.checksum_mask = (
            checksum_mask if checksum_mask is not None else program.word_mask
        )
        if tiles != "auto":
            tiles = int(tiles)
            if tiles < 1:
                raise SimulationError(f"tiles must be >= 1: {tiles}")
        self.tiles = tiles
        compiled = program if with_outputs else program.without_output()
        self._compiled_program = compiled
        self._backend_kwargs = backend_kwargs
        self._tiled_machines: dict[int, Machine] = {}
        self.machine: Machine = compile_program(
            compiled, backend, **backend_kwargs
        )
        #: Pattern-lane packing eligibility of the *compiled* program
        #: (``"full"``/``"settled"``/``"none"`` — see
        #: :mod:`repro.codegen.packing`).  Programs with shifts or
        #: negates (the §3 parallel technique's time-shift code) are
        #: ``"none"`` and always run scalar; the PC-set method is
        #: ``"settled"`` (its zero-element moves read previous-vector
        #: finals), so only settled-value observers may pack it.
        #: Probe-instrumented programs pass the *uninstrumented*
        #: program's mode via ``packing_override`` — the probe
        #: statements use popcounts and shifts that are lane-safe by
        #: construction but would classify the program ``"none"``.
        self.packing_mode = (
            packing_override if packing_override is not None
            else packing_mode(compiled)
        )
        self.probe_plan = probe_plan
        self._probe_runtime = (
            ProbeRuntime(probe_plan, program)
            if probe_plan is not None else None
        )
        self._inputs = circuit.inputs
        self._settled = False
        if partitions < 1:
            raise SimulationError(f"partitions must be >= 1: {partitions}")
        self.partitions = partitions
        self.partition_workers = partition_workers
        self._partition_settler = None

    # ------------------------------------------------------------------
    # state seeding
    # ------------------------------------------------------------------
    def reset(
        self, vector: Mapping[str, int] | Sequence[int] | None = None
    ) -> None:
        """Seed the previous-vector steady state.

        Settles the circuit on ``vector`` (default: all zeros) with a
        zero-delay evaluation and loads the resulting values into the
        persistent variables, encoded however the technique requires.
        """
        if vector is None:
            vector = [0] * len(self._inputs)
        with telemetry.span("seed"):
            if self.partitions > 1:
                settled = self._settle_partitioned(vector)
            else:
                settled = steady_state(self.circuit, vector)
            state = self._encode_state(settled)
            if self.probe_plan is not None:
                if self._settled and self._probe_runtime is not None:
                    # Keep whatever the counters accumulated so far;
                    # the reload below would silently discard it.
                    self._probe_runtime.drain(self.machine)
                state = state + [0] * self.probe_plan.state_pad
            self.machine.load_state(state)
        self._settled = True

    def _settle_partitioned(self, vector) -> Mapping[str, int]:
        """Steady state via the partitioned compiled engine.

        Bit-identical to the interpreted settle: in an acyclic circuit
        the zero-delay steady state is unique, and the partitioned
        engine's per-net values are asserted identical to the
        monolithic compiled ones, which the test suite anchors to the
        interpreted simulator.
        """
        if self._partition_settler is None:
            from repro.partition.executor import PartitionedSimulator

            self._partition_settler = PartitionedSimulator(
                self.circuit,
                partitions=self.partitions,
                partition_workers=self.partition_workers,
                backend=self.backend,
                word_width=self.program.word_width,
            )
        return self._partition_settler.evaluate_all_nets(vector)

    def _encode_state(self, settled: Mapping[str, int]) -> list[int]:
        """Persistent-state words for a constant-history steady state."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def _vector_words(
        self, vector: Mapping[str, int] | Sequence[int]
    ) -> list[int]:
        if isinstance(vector, Mapping):
            missing = [n for n in self._inputs if n not in vector]
            if missing:
                raise SimulationError(f"vector missing inputs: {missing}")
            return [vector[n] & 1 for n in self._inputs]
        values = list(vector)
        if len(values) != len(self._inputs):
            raise SimulationError(
                f"vector has {len(values)} values, expected "
                f"{len(self._inputs)}"
            )
        return [value & 1 for value in values]

    def apply_vector(
        self, vector: Mapping[str, int] | Sequence[int]
    ) -> list[int]:
        """Simulate one vector; returns the raw emitted output words."""
        if not self._settled:
            raise SimulationError("call reset() before apply_vector()")
        out = self.machine.step(self._vector_words(vector))
        if self._probe_runtime is not None:
            self._probe_runtime.note_vectors(self.machine, 1)
        return out

    def apply_vectors(
        self, vectors: Sequence[Mapping[str, int] | Sequence[int]]
    ) -> list[list[int]]:
        """Simulate a batch; returns per-vector raw output words.

        Bit-identical to ``[self.apply_vector(v) for v in vectors]``.
        When the compiled program is ``"full"``-mode packable
        (shift-free *and* memoryless), the batch is auto-packed —
        ``word_width`` vectors per compiled pass, times the tile count
        when ``tiles > 1`` — exact scalar words reconstructed on
        unpacking.  Shift programs (the §3 parallel technique) whose
        generator declares ``state_carry="finals"`` run *laned* when
        ``tiles`` allows: the batch splits into K contiguous segments,
        each lane owning its own word so the time-shift ops move
        history within the lane, with lanes 1..K-1 seeded from the
        steady state of the preceding segment's last vector (exactly
        what the finals contract guarantees reproduces the chain).
        ``"settled"`` programs (the PC-set method) emit
        intermediate-time values with opaque cross-pass state and keep
        the scalar ``run_block`` loop with no behavior change.
        """
        if not self._settled:
            raise SimulationError("call reset() before apply_vectors()")
        if self.partitions > 1:
            # The history-carrying program runs monolithically; the
            # partitioned engine already did its work in reset().
            telemetry.counter(f"partition.fallback.{self.packing_mode}")
        words = [self._vector_words(vector) for vector in vectors]
        if (self.packing_mode == "full" and self._inputs
                and self.probe_plan is None):
            telemetry.counter("packing.packed_batches")
            return packed_apply(self._packed_machine(len(words)), words)
        lanes = self._batch_lanes(len(words))
        if lanes > 1:
            telemetry.counter("packing.laned_batches")
            return self._run_laned(words, lanes, collect=True)
        telemetry.counter(f"packing.fallback.{self.packing_mode}")
        if self._probe_runtime is not None and words:
            # Chunked so no compiled counter can wrap between drains.
            out: list[list[int]] = []
            for start, length in self._probe_runtime.chunk_vectors(
                len(words)
            ):
                out.extend(self.machine.step_many(
                    words[start:start + length], masked=True
                ))
                self._probe_runtime.note_vectors(self.machine, length)
            return out
        return self.machine.step_many(words, masked=True)

    # ------------------------------------------------------------------
    # tiled / laned execution
    # ------------------------------------------------------------------
    def _tiled_machine(self, tiles: int) -> Machine:
        """The K-tile compilation of this program (memoized per K)."""
        machine = self._tiled_machines.get(tiles)
        if machine is None:
            machine = compile_program(
                self._compiled_program, self.backend, tiles=tiles,
                **self._backend_kwargs,
            )
            self._tiled_machines[tiles] = machine
        return machine

    def _packed_machine(self, num_vectors: int) -> Machine:
        """The machine for a pattern-packed batch of ``num_vectors``.

        Explicit ``tiles=K`` forces K on any backend; ``"auto"``
        consults :func:`~repro.codegen.packing.select_tiles`.  K is
        clamped to the number of packed groups the batch actually
        fills, so small batches never pay for idle tiles.
        """
        width = self.program.word_width
        if self.tiles == "auto":
            tiles = select_tiles(num_vectors, width, backend=self.backend)
        else:
            tiles = self.tiles
        if num_vectors:
            tiles = max(1, min(tiles, -(-num_vectors // width)))
        else:
            tiles = 1
        if tiles == 1:
            return self.machine
        return self._tiled_machine(tiles)

    def _batch_lanes(self, num_vectors: int) -> int:
        """Lane count for a shift-program batch (1 = scalar loop)."""
        if self.program.state_carry != "finals" or not self._inputs:
            return 1
        if self.probe_plan is not None:
            # The lane handoff keeps only the last lane's state, which
            # would discard every other lane's probe counters.
            return 1
        if self.tiles == "auto":
            lanes = select_lanes(num_vectors, backend=self.backend)
        else:
            lanes = self.tiles
        return max(1, min(lanes, num_vectors))

    def _lane_plan(self, words: list[list[int]], lanes: int):
        """Segments, padded slot-major pass rows, and lane seeds.

        Lane ``t`` owns the contiguous vector range
        ``starts[t] .. starts[t] + segs[t] - 1``; shorter lanes are
        padded by repeating their last vector (those passes' outputs
        are discarded and no other lane reads their state).  Seeds for
        lanes 1..K-1 are the technique's encoding of the steady state
        on the previous segment's last vector — by the
        ``state_carry="finals"`` contract this reproduces the true
        vector chain bit for bit.  Lane 0 continues from the live
        scalar state, which is read at *run* time.
        """
        segments = lane_segments(len(words), lanes)
        max_len = max(length for _start, length in segments)
        num_inputs = len(self._inputs)
        rows = []
        for p in range(max_len):
            row = []
            for k in range(num_inputs):
                for start, length in segments:
                    i = p if p < length else length - 1
                    row.append(words[start + i][k])
            rows.append(row)
        seeds = [
            self._encode_state(
                steady_state(self.circuit, words[start - 1])
            )
            for start, _length in segments[1:]
        ]
        return segments, rows, seeds

    def _seed_lanes(
        self, machine: Machine, seeds: list[list[int]]
    ) -> int:
        """Load per-lane state into a tiled machine; lane 0 = live state."""
        lanes = machine.tiles
        lane_states = [self.machine.dump_state()] + seeds
        num_state = len(lane_states[0])
        full = [0] * (num_state * lanes)
        for s in range(num_state):
            for t in range(lanes):
                full[s * lanes + t] = lane_states[t][s]
        machine.load_state(full)
        return num_state

    def _handoff_lanes(self, machine: Machine, num_state: int) -> None:
        """Continue the scalar chain from the last lane's final state."""
        lanes = machine.tiles
        after = machine.dump_state()
        self.machine.load_state(
            [after[s * lanes + lanes - 1] for s in range(num_state)]
        )

    def _run_laned(
        self, words: list[list[int]], lanes: int, *, collect: bool
    ) -> Optional[list[list[int]]]:
        """Run a shift-program batch K lanes at a time, bit-identically."""
        machine = self._tiled_machine(lanes)
        segments, rows, seeds = self._lane_plan(words, lanes)
        num_state = self._seed_lanes(machine, seeds)
        with telemetry.span("pack.shift", lanes=lanes):
            flat: Optional[list[int]] = [] if collect else None
            machine.run_block(rows, flat, masked=True)
            telemetry.counter("pack.shift.batches")
            telemetry.counter("pack.shift.vectors", len(words))
        # run_block counted passes; restate lanes actually represented.
        machine.counters.vectors += len(words) - len(rows)
        self._handoff_lanes(machine, num_state)
        if not collect:
            return None
        emits = machine.num_outputs // lanes
        per_row = machine.num_outputs
        out: list[list[int]] = []
        assert flat is not None
        for t, (_start, length) in enumerate(segments):
            for p in range(length):
                base = p * per_row
                out.append(
                    [flat[base + o * lanes + t] for o in range(emits)]
                )
        return out

    def prepare_batch(self, vectors: Sequence[Sequence[int]]):
        """Marshal a batch once, outside any timed region.

        On the C backend the batch becomes one contiguous native buffer
        driven by the generated ``run_block`` loop, so the timed region
        contains no interpreter work at all (the paper's timing loop
        was compiled too).  On the Python backend the vectors are
        pre-marshalled and the timed run is a single batched send into
        the generated coroutine's in-frame loop.  Laned shift programs
        (``tiles > 1`` on a ``state_carry="finals"`` program) also
        compute the segment rows and steady-state lane seeds here;
        only the lane-0 live state is read at run time.
        """
        with telemetry.span("pack"):
            words = [self._vector_words(vector) for vector in vectors]
            lanes = self._batch_lanes(len(words))
            if lanes > 1:
                machine = self._tiled_machine(lanes)
                _segs, rows, seeds = self._lane_plan(words, lanes)
                if isinstance(machine, CMachine):
                    return (
                        "lane-c", machine, machine.pack_block(rows),
                        len(rows), len(words), seeds,
                    )
                return ("lane-py", machine, rows, len(words), seeds)
            if isinstance(self.machine, CMachine):
                if self._probe_runtime is not None and words:
                    # Pre-pack in wrap-free chunks (one chunk at any
                    # realistic word width; tiny widths get several).
                    chunk = self._probe_runtime.chunk
                    parts = [
                        (
                            self.machine.pack_block(words[i:i + chunk]),
                            min(chunk, len(words) - i),
                        )
                        for i in range(0, len(words), chunk)
                    ]
                    return ("c-probe", parts)
                return ("c", self.machine.pack_block(words), len(words))
            return ("py", words)

    def run_prepared(self, prepared) -> None:
        """Run a batch produced by :meth:`prepare_batch`."""
        if not self._settled:
            raise SimulationError("call reset() before running")
        kind = prepared[0]
        if kind == "c":
            self.machine.run_packed(prepared[1], prepared[2])
            self._note_probe_vectors(prepared[2])
            return
        if kind == "c-probe":
            assert self._probe_runtime is not None
            # Start from zeroed counters so each pre-packed chunk has
            # the full wrap-free budget.
            self._probe_runtime.drain(self.machine)
            for packed, count in prepared[1]:
                self.machine.run_packed(packed, count)
                self._probe_runtime.note_vectors(self.machine, count)
            return
        if kind == "lane-c":
            _, machine, packed, passes, num_vectors, seeds = prepared
            num_state = self._seed_lanes(machine, seeds)
            with telemetry.span("pack.shift", lanes=machine.tiles):
                machine.run_packed(
                    packed, passes, vectors_represented=num_vectors
                )
                telemetry.counter("pack.shift.batches")
                telemetry.counter("pack.shift.vectors", num_vectors)
            self._handoff_lanes(machine, num_state)
            return
        if kind == "lane-py":
            _, machine, rows, num_vectors, seeds = prepared
            num_state = self._seed_lanes(machine, seeds)
            with telemetry.span("pack.shift", lanes=machine.tiles):
                machine.run_block(rows, masked=True)
                telemetry.counter("pack.shift.batches")
                telemetry.counter("pack.shift.vectors", num_vectors)
            machine.counters.vectors += num_vectors - len(rows)
            self._handoff_lanes(machine, num_state)
            return
        rows = prepared[1]
        if self._probe_runtime is not None and rows:
            for start, length in self._probe_runtime.chunk_vectors(len(rows)):
                self.machine.run_block(rows[start:start + length], masked=True)
                self._probe_runtime.note_vectors(self.machine, length)
            return
        self.machine.run_block(rows, masked=True)

    def _note_probe_vectors(self, count: int) -> None:
        if self._probe_runtime is not None and count:
            self._probe_runtime.note_vectors(self.machine, count)

    def run_batch(self, vectors: Sequence[Sequence[int]]) -> None:
        """Simulate many vectors back to back (the timing fast path)."""
        self.run_prepared(self.prepare_batch(vectors))

    def run_batch_checksum(self, vectors: Sequence[Sequence[int]]) -> int:
        """Simulate many vectors and fold all emitted outputs.

        Requires ``with_outputs=True``.  Used to cross-check that two
        backends (or two techniques with identical output routines)
        compute the same results.
        """
        if not self.with_outputs:
            raise SimulationError(
                "simulator was built without outputs; cannot checksum"
            )
        checksum = 0
        mask = self.checksum_mask
        for out in self.apply_vectors(vectors):
            folded = 0
            for value in out:
                folded = ((folded << 7) | (folded >> 55)) & (2**62 - 1)
                folded ^= value & mask
            checksum ^= folded
        return checksum

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------
    @property
    def probe_runtime(self) -> Optional[ProbeRuntime]:
        return self._probe_runtime

    def activity_report(self):
        """Drain the compiled-in probe counters into an ActivityReport.

        Requires the simulator to have been built with ``probes=``.
        The report is cumulative since construction (or the last
        checkpoint restore) and bit-identical to the history-based
        :func:`repro.activity.collect_activity` over the same vectors.
        """
        if self._probe_runtime is None:
            raise SimulationError(
                "simulator was built without probes=; no activity "
                "counters to report"
            )
        self._probe_runtime.drain(self.machine)
        return self._probe_runtime.report()

    def capture_trace(
        self,
        vectors: Sequence[Mapping[str, int] | Sequence[int]],
        writer,
        nets: Optional[Sequence[str]] = None,
    ) -> None:
        """Stream selected nets' settling histories into a VCD writer.

        One vector at a time: each history is decoded and handed to
        ``writer.add_vector`` immediately, so the batch's histories
        are never materialized together.  ``nets`` defaults to the
        probe spec's ``trace_nets`` (every net when unset).
        """
        if nets is None:
            if (self.probe_plan is not None
                    and self.probe_plan.spec.trace_nets):
                nets = self.probe_plan.spec.trace_nets
            else:
                nets = list(self.circuit.nets)
        for vector in vectors:
            history = self.apply_vector_history(vector)
            writer.add_vector({n: history[n] for n in nets})

    # ------------------------------------------------------------------
    @property
    def counters(self):
        """Per-batch throughput counters of the underlying machine(s).

        With no tiled machines instantiated this *is* the scalar
        machine's live counter object (so ``reset()`` on it works as
        before); once tiled/laned batches have run, an aggregate over
        every machine is returned.
        """
        if not self._tiled_machines:
            return self.machine.counters
        total = BatchCounters()
        for machine in (self.machine, *self._tiled_machines.values()):
            total.batches += machine.counters.batches
            total.vectors += machine.counters.vectors
            total.seconds += machine.counters.seconds
        return total

    def output_labels(self) -> list[tuple]:
        return self.machine.output_labels()

    def source(self) -> str:
        """The generated source the machine was compiled from."""
        return getattr(self.machine, "source", "")
