"""Shared behaviour of the compiled-simulator facades.

Every compiled technique (PC-set, parallel, and their optimized
variants) wraps a generated :class:`~repro.codegen.program.Program` the
same way: compile it on a backend, seed the persistent state from a
zero-delay steady state, feed vectors, decode outputs.  This module
hosts that common machinery; the technique-specific subclasses provide
only the program generation and the state encoding/decoding.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro import telemetry
from repro.codegen.packing import packed_apply, packing_mode
from repro.codegen.program import Program
from repro.codegen.runtime import CMachine, Machine, compile_program
from repro.errors import SimulationError
from repro.eventsim.zerodelay import steady_state
from repro.netlist.circuit import Circuit

__all__ = ["CompiledSimulator"]


class CompiledSimulator:
    """Base class for compiled unit-delay simulator facades.

    Parameters
    ----------
    circuit:
        The acyclic circuit being simulated.
    program:
        The generated program (built by the subclass).
    backend:
        ``"python"`` (default) or ``"c"``.
    with_outputs:
        When false, the program's output section is dropped before
        compilation — the configuration benchmarks time, matching the
        paper's methodology of excluding output handling from
        measurements.  Output-decoding APIs then raise.
    partitions / partition_workers:
        With ``partitions > 1`` the steady-state seeding of
        :meth:`reset` runs on the partitioned compiled engine
        (:class:`~repro.partition.executor.PartitionedSimulator`)
        instead of the interpreted zero-delay settle — bit-identical
        settled values, so every downstream result is unchanged.  The
        unit-delay program itself carries per-vector history and runs
        monolithically; :meth:`apply_vectors` records the declined
        request as a ``partition.fallback.<mode>`` counter, mirroring
        the packing-fallback idiom.
    """

    def __init__(
        self,
        circuit: Circuit,
        program: Program,
        *,
        backend: str = "python",
        with_outputs: bool = True,
        checksum_mask: Optional[int] = None,
        partitions: int = 1,
        partition_workers: Optional[int] = None,
        **backend_kwargs,
    ) -> None:
        self.circuit = circuit
        self.program = program
        self.backend = backend
        self.with_outputs = with_outputs
        self.checksum_mask = (
            checksum_mask if checksum_mask is not None else program.word_mask
        )
        compiled = program if with_outputs else program.without_output()
        self.machine: Machine = compile_program(
            compiled, backend, **backend_kwargs
        )
        #: Pattern-lane packing eligibility of the *compiled* program
        #: (``"full"``/``"settled"``/``"none"`` — see
        #: :mod:`repro.codegen.packing`).  Programs with shifts or
        #: negates (the §3 parallel technique's time-shift code) are
        #: ``"none"`` and always run scalar; the PC-set method is
        #: ``"settled"`` (its zero-element moves read previous-vector
        #: finals), so only settled-value observers may pack it.
        self.packing_mode = packing_mode(compiled)
        self._inputs = circuit.inputs
        self._settled = False
        if partitions < 1:
            raise SimulationError(f"partitions must be >= 1: {partitions}")
        self.partitions = partitions
        self.partition_workers = partition_workers
        self._partition_settler = None

    # ------------------------------------------------------------------
    # state seeding
    # ------------------------------------------------------------------
    def reset(
        self, vector: Mapping[str, int] | Sequence[int] | None = None
    ) -> None:
        """Seed the previous-vector steady state.

        Settles the circuit on ``vector`` (default: all zeros) with a
        zero-delay evaluation and loads the resulting values into the
        persistent variables, encoded however the technique requires.
        """
        if vector is None:
            vector = [0] * len(self._inputs)
        with telemetry.span("seed"):
            if self.partitions > 1:
                settled = self._settle_partitioned(vector)
            else:
                settled = steady_state(self.circuit, vector)
            self.machine.load_state(self._encode_state(settled))
        self._settled = True

    def _settle_partitioned(self, vector) -> Mapping[str, int]:
        """Steady state via the partitioned compiled engine.

        Bit-identical to the interpreted settle: in an acyclic circuit
        the zero-delay steady state is unique, and the partitioned
        engine's per-net values are asserted identical to the
        monolithic compiled ones, which the test suite anchors to the
        interpreted simulator.
        """
        if self._partition_settler is None:
            from repro.partition.executor import PartitionedSimulator

            self._partition_settler = PartitionedSimulator(
                self.circuit,
                partitions=self.partitions,
                partition_workers=self.partition_workers,
                backend=self.backend,
                word_width=self.program.word_width,
            )
        return self._partition_settler.evaluate_all_nets(vector)

    def _encode_state(self, settled: Mapping[str, int]) -> list[int]:
        """Persistent-state words for a constant-history steady state."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def _vector_words(
        self, vector: Mapping[str, int] | Sequence[int]
    ) -> list[int]:
        if isinstance(vector, Mapping):
            missing = [n for n in self._inputs if n not in vector]
            if missing:
                raise SimulationError(f"vector missing inputs: {missing}")
            return [vector[n] & 1 for n in self._inputs]
        values = list(vector)
        if len(values) != len(self._inputs):
            raise SimulationError(
                f"vector has {len(values)} values, expected "
                f"{len(self._inputs)}"
            )
        return [value & 1 for value in values]

    def apply_vector(
        self, vector: Mapping[str, int] | Sequence[int]
    ) -> list[int]:
        """Simulate one vector; returns the raw emitted output words."""
        if not self._settled:
            raise SimulationError("call reset() before apply_vector()")
        return self.machine.step(self._vector_words(vector))

    def apply_vectors(
        self, vectors: Sequence[Mapping[str, int] | Sequence[int]]
    ) -> list[list[int]]:
        """Simulate a batch; returns per-vector raw output words.

        Bit-identical to ``[self.apply_vector(v) for v in vectors]``.
        When the compiled program is ``"full"``-mode packable
        (shift-free *and* memoryless), the batch is auto-packed —
        ``word_width`` vectors per compiled pass, exact scalar words
        reconstructed on unpacking.  ``"settled"`` programs (the PC-set
        method) emit intermediate-time values that depend on the
        vector-to-vector state chain, and ``"none"`` programs (the §3
        parallel technique) shift across lanes; both fall back to the
        scalar ``run_block`` loop with no behavior change.
        """
        if not self._settled:
            raise SimulationError("call reset() before apply_vectors()")
        if self.partitions > 1:
            # The history-carrying program runs monolithically; the
            # partitioned engine already did its work in reset().
            telemetry.counter(f"partition.fallback.{self.packing_mode}")
        words = [self._vector_words(vector) for vector in vectors]
        if self.packing_mode == "full" and self._inputs:
            telemetry.counter("packing.packed_batches")
            return packed_apply(self.machine, words)
        telemetry.counter(f"packing.fallback.{self.packing_mode}")
        return self.machine.step_many(words, masked=True)

    def prepare_batch(self, vectors: Sequence[Sequence[int]]):
        """Marshal a batch once, outside any timed region.

        On the C backend the batch becomes one contiguous native buffer
        driven by the generated ``run_block`` loop, so the timed region
        contains no interpreter work at all (the paper's timing loop
        was compiled too).  On the Python backend the vectors are
        pre-marshalled and the timed run is a single batched send into
        the generated coroutine's in-frame loop.
        """
        with telemetry.span("pack"):
            words = [self._vector_words(vector) for vector in vectors]
            if isinstance(self.machine, CMachine):
                return ("c", self.machine.pack_block(words), len(words))
            return ("py", words)

    def run_prepared(self, prepared) -> None:
        """Run a batch produced by :meth:`prepare_batch`."""
        if not self._settled:
            raise SimulationError("call reset() before running")
        if prepared[0] == "c":
            self.machine.run_packed(prepared[1], prepared[2])
            return
        self.machine.run_block(prepared[1], masked=True)

    def run_batch(self, vectors: Sequence[Sequence[int]]) -> None:
        """Simulate many vectors back to back (the timing fast path)."""
        self.run_prepared(self.prepare_batch(vectors))

    def run_batch_checksum(self, vectors: Sequence[Sequence[int]]) -> int:
        """Simulate many vectors and fold all emitted outputs.

        Requires ``with_outputs=True``.  Used to cross-check that two
        backends (or two techniques with identical output routines)
        compute the same results.
        """
        if not self.with_outputs:
            raise SimulationError(
                "simulator was built without outputs; cannot checksum"
            )
        checksum = 0
        mask = self.checksum_mask
        for out in self.apply_vectors(vectors):
            folded = 0
            for value in out:
                folded = ((folded << 7) | (folded >> 55)) & (2**62 - 1)
                folded ^= value & mask
            checksum ^= folded
        return checksum

    # ------------------------------------------------------------------
    @property
    def counters(self):
        """Per-batch throughput counters of the underlying machine."""
        return self.machine.counters

    def output_labels(self) -> list[tuple]:
        return self.machine.output_labels()

    def source(self) -> str:
        """The generated source the machine was compiled from."""
        return getattr(self.machine, "source", "")
