"""Pipeline telemetry: phase spans, metrics, cross-process export.

The paper's whole argument is quantitative — compile time vs. run time
across techniques — so the library instruments itself end to end:

- **Phase spans** (:func:`span`, :func:`record_phase`) are nested
  ``perf_counter`` timings around the pipeline stages: compile-side
  ``levelize`` / ``pcset`` / ``align`` / ``emit`` / ``cc`` and
  execution-side ``seed`` / ``pack`` / ``run`` / fault screens.  Spans
  aggregate by *path* (``"emit/levelize"`` is levelization performed
  inside program generation), keeping one running
  ``(count, total, self)`` triple per path rather than a trace — the
  cost of an enabled span is two clock reads and a few dict operations
  per entry, and a *disabled* span is a single flag check returning a
  shared no-op singleton (the zero-allocation path).
- A **MetricsRegistry** of namespaced counters and gauges unifies the
  scattered ad-hoc counters: batched-execution totals
  (``run.batches``/``run.vectors``), program-cache hits/misses,
  pattern-packing eligibility and fallback reasons
  (``packing.fallback.settled``/``.none``), and sharded-grading events
  (``events.shard.retry``/``.timeout``/``.degraded``).  Counter merge
  is associative and commutative (sum); gauge merge takes the maximum.
- **Cross-process aggregation**: :func:`snapshot` serializes the whole
  state to a JSON-able dict, :func:`diff_snapshots` produces the delta
  a shard worker ships back in its ``ShardOutcome``, and
  :func:`merge_snapshot` folds child deltas into the parent — so
  ``workers=N`` runs report exactly what their workers did.
- **Export**: :func:`format_profile` renders the per-phase table the
  CLI's ``--profile`` flag and ``profile`` subcommand print;
  :func:`snapshot` backs ``--metrics-out``.

Everything is off by default (set ``REPRO_TELEMETRY=1`` or call
:func:`enable`), and log output goes to the stdlib ``repro.telemetry``
logger, which carries a ``NullHandler`` — attach your own handler to
see span/event records (structured fields ride in ``extra`` under
``repro_``-prefixed keys).

The module is intentionally not thread-safe: the concurrency unit of
this library is the *process* (sharded fault grading), and each process
owns its private telemetry state.
"""

from __future__ import annotations

import json
import logging
import os
import time
from contextlib import contextmanager
from typing import Mapping, Optional

__all__ = [
    "MetricsRegistry",
    "Span",
    "enabled",
    "enable",
    "disable",
    "reset",
    "scope",
    "span",
    "record_phase",
    "counter",
    "gauge",
    "event",
    "registry",
    "phase_rows",
    "phase_totals",
    "format_profile",
    "snapshot",
    "diff_snapshots",
    "merge_snapshots",
    "merge_snapshot",
    "write_metrics",
]

logger = logging.getLogger("repro.telemetry")
logger.addHandler(logging.NullHandler())


class MetricsRegistry:
    """Namespaced counters and gauges with an associative merge.

    Counters accumulate by summation; gauges record a level and merge
    by maximum — both operations are associative and commutative, so
    merging per-worker registries is order-independent (the
    cross-process contract sharded grading relies on).
    """

    __slots__ = ("counters", "gauges")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}

    def inc(self, name: str, amount: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def merge(self, other: "MetricsRegistry | Mapping") -> None:
        """Fold another registry (or its ``as_dict``) into this one."""
        if isinstance(other, MetricsRegistry):
            counters, gauges = other.counters, other.gauges
        else:
            counters = other.get("counters", {})
            gauges = other.get("gauges", {})
        for name, value in counters.items():
            self.inc(name, value)
        for name, value in gauges.items():
            prior = self.gauges.get(name)
            self.gauges[name] = value if prior is None else max(prior, value)

    def as_dict(self) -> dict:
        return {"counters": dict(self.counters), "gauges": dict(self.gauges)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "MetricsRegistry":
        registry = cls()
        registry.merge(data)
        return registry

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self.counters)} counters, "
            f"{len(self.gauges)} gauges)"
        )


class _NullSpan:
    """The shared no-op span handed out while telemetry is disabled.

    A single module-level instance serves every disabled ``span()``
    call — entering, exiting, and annotating it allocate nothing.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def annotate(self, **attrs) -> None:
        pass

    def count(self, name: str, amount: float = 1) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Span:
    """One live phase timing; use via ``with telemetry.span(name):``.

    On exit the duration is aggregated under the span's *path* — the
    ``/``-joined names of the enclosing spans — and the parent's child
    time grows by it, so every phase's *self* time (total minus
    children) falls out of the bookkeeping for free.
    """

    __slots__ = ("name", "path", "attrs", "child_seconds", "_start")

    def __init__(self, name: str, attrs: Optional[dict] = None) -> None:
        self.name = name
        self.path = name
        self.attrs = attrs or {}
        self.child_seconds = 0.0
        self._start = 0.0

    def annotate(self, **attrs) -> None:
        """Attach attributes, logged with the span's completion record."""
        self.attrs.update(attrs)

    def count(self, name: str, amount: float = 1) -> None:
        """Increment a counter namespaced under this span's name."""
        counter(f"{self.name}.{name}", amount)

    def __enter__(self) -> "Span":
        stack = _STACK
        if stack:
            self.path = f"{stack[-1].path}/{self.name}"
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        seconds = time.perf_counter() - self._start
        stack = _STACK
        # Pop defensively back to *this* span: an inner span abandoned
        # mid-body (e.g. held by a generator that is never resumed)
        # would otherwise stay on the stack forever, mis-attributing
        # every later phase's path and child time.  Stale frames above
        # ``self`` are discarded; only when ``self`` was actually on
        # the stack does the (new) parent get credited.
        if any(frame is self for frame in stack):
            while stack:
                if stack.pop() is self:
                    break
            if stack:
                stack[-1].child_seconds += seconds
        entry = _PHASES.get(self.path)
        if entry is None:
            entry = _PHASES[self.path] = [0, 0.0, 0.0]
        entry[0] += 1
        entry[1] += seconds
        entry[2] += seconds - self.child_seconds
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "phase %s: %.6fs", self.path, seconds,
                extra={
                    "repro_phase": self.path,
                    "repro_seconds": seconds,
                    "repro_attrs": dict(self.attrs),
                },
            )
        return False


# ----------------------------------------------------------------------
# module state
# ----------------------------------------------------------------------
_ENABLED = os.environ.get("REPRO_TELEMETRY", "").strip().lower() not in (
    "", "0", "off", "false", "no",
)
_REGISTRY = MetricsRegistry()
#: path -> [count, total_seconds, self_seconds]
_PHASES: dict[str, list] = {}
_STACK: list[Span] = []


def enabled() -> bool:
    """Is instrumentation collecting right now?"""
    return _ENABLED


def enable(*, reset_state: bool = False) -> None:
    """Turn instrumentation on (optionally from a clean slate)."""
    global _ENABLED
    if reset_state:
        reset()
    _ENABLED = True


def disable() -> None:
    """Stop collecting (already-recorded state is kept)."""
    global _ENABLED
    _ENABLED = False


def reset() -> None:
    """Drop every recorded phase, counter and gauge."""
    _REGISTRY.reset()
    _PHASES.clear()
    del _STACK[:]


@contextmanager
def scope(flag: bool = True):
    """Temporarily enable (or disable) telemetry — tests and the CLI."""
    global _ENABLED
    prior = _ENABLED
    _ENABLED = flag
    try:
        yield
    finally:
        _ENABLED = prior


def registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _REGISTRY


# ----------------------------------------------------------------------
# recording
# ----------------------------------------------------------------------
def span(name: str, **attrs):
    """A phase timing context; the shared no-op when disabled."""
    if not _ENABLED:
        return _NULL_SPAN
    return Span(name, attrs or None)


def record_phase(name: str, seconds: float, count: int = 1) -> None:
    """Fold an already-measured duration into the phase table.

    The batch runtimes measure their own wall time for the throughput
    counters; this entry point reuses that measurement instead of
    paying two more clock reads for a wrapping span.
    """
    if not _ENABLED:
        return
    path = f"{_STACK[-1].path}/{name}" if _STACK else name
    if _STACK:
        _STACK[-1].child_seconds += seconds
    entry = _PHASES.get(path)
    if entry is None:
        entry = _PHASES[path] = [0, 0.0, 0.0]
    entry[0] += count
    entry[1] += seconds
    entry[2] += seconds


def counter(name: str, amount: float = 1) -> None:
    """Increment a registry counter (no-op while disabled)."""
    if not _ENABLED:
        return
    _REGISTRY.inc(name, amount)


def gauge(name: str, value: float) -> None:
    """Record a registry gauge level (no-op while disabled)."""
    if not _ENABLED:
        return
    _REGISTRY.set_gauge(name, value)


def event(name: str, **fields) -> None:
    """Record a discrete occurrence: ``events.<name>`` counter + log.

    This is how silent decisions (packed->scalar fallback, shard
    retries, pool degradation) become visible; ``fields`` ride in the
    log record's ``extra``.
    """
    if not _ENABLED:
        return
    _REGISTRY.inc(f"events.{name}")
    logger.info(
        "event %s %s", name, fields,
        extra={"repro_event": name, "repro_fields": fields},
    )


# ----------------------------------------------------------------------
# snapshots (the cross-process currency)
# ----------------------------------------------------------------------
def _derived_sections(counters: Mapping, cache: Mapping) -> dict:
    """The convenience sections recomputed from raw counters."""
    return {
        "cache": {
            "entries": cache.get("entries", 0),
            "hits": cache.get("hits", 0),
            "misses": cache.get("misses", 0),
        },
        "packing": {
            "packed_batches": counters.get("packing.packed_batches", 0),
            "fallback": {
                "settled": counters.get("packing.fallback.settled", 0),
                "none": counters.get("packing.fallback.none", 0),
            },
        },
        "pack": {
            # Tiled packed passes (K words per net) and laned
            # shift-program batches — see repro.codegen.packing.
            "tile": {
                "selected": counters.get("pack.tile.selected", 0),
                "batches": counters.get("pack.tile.batches", 0),
                "vectors": counters.get("pack.tile.vectors", 0),
            },
            "shift": {
                "selected": counters.get("pack.shift.selected", 0),
                "batches": counters.get("pack.shift.batches", 0),
                "vectors": counters.get("pack.shift.vectors", 0),
            },
        },
        "sharding": {
            "retries": counters.get("events.shard.retry", 0),
            "timeouts": counters.get("events.shard.timeout", 0),
            "degraded": counters.get("events.shard.degraded", 0),
        },
        "seq": {
            # Clocked (sequential) execution — see repro.seqsim and
            # repro.replay: cycles/batches from apply_vectors,
            # checkpoint/restore traffic from the replay harness.
            "cycles": counters.get("seq.cycles", 0),
            "batches": counters.get("seq.batches", 0),
            "checkpoints": counters.get("seq.checkpoints", 0),
            "restores": counters.get("seq.restores", 0),
        },
        "activity": {
            # Compiled-in probe counters — see repro.codegen.probes.
            # All four are summed counters, so the derived section
            # merges associatively exactly like seq/pack/partition.
            "vectors": counters.get("activity.vectors", 0),
            "toggles": counters.get("activity.toggles", 0),
            "functional": counters.get("activity.functional", 0),
            "glitches": counters.get("activity.glitches", 0),
        },
        "fuzz": {
            # The fuzz campaign and its oracles — see repro.fuzz.
            "circuits": counters.get("fuzz.circuits", 0),
            "configs": counters.get("fuzz.configs", 0),
            "failures": counters.get("fuzz.failures", 0),
            "perf": {
                "points": counters.get("fuzz.perf.points", 0),
                "escalations": counters.get(
                    "fuzz.perf.escalations", 0
                ),
                "flags": counters.get("fuzz.perf.flags", 0),
            },
            "distill": {
                "kept": counters.get("fuzz.distill.kept", 0),
                "dropped": counters.get("fuzz.distill.dropped", 0),
            },
        },
        "partition": {
            "batches": counters.get("partition.batches", 0),
            "packed_batches": counters.get(
                "partition.packed_batches", 0
            ),
            "exchanged_words": counters.get(
                "partition.exchanged_words", 0
            ),
            "fallback": {
                "scalar": counters.get("partition.fallback.scalar", 0),
                "settled": counters.get(
                    "partition.fallback.settled", 0
                ),
                "none": counters.get("partition.fallback.none", 0),
            },
        },
    }


def snapshot() -> dict:
    """The whole telemetry state as one JSON-able dict.

    Program-cache hits/misses are read live from the process-wide
    :class:`~repro.codegen.runtime.ProgramCache` and combined with any
    child-process cache counts previously merged in; the ``cache``
    section is authoritative and the raw ``counters`` dict never
    carries ``cache.*`` keys.
    """
    from repro.codegen.runtime import program_cache  # lazy: avoid cycle

    counters = {
        name: value
        for name, value in _REGISTRY.counters.items()
        if not name.startswith("cache.")
    }
    live = program_cache().stats()
    cache = {
        "entries": live["entries"],
        "hits": live["hits"] + _REGISTRY.counters.get("cache.hits", 0),
        "misses": live["misses"] + _REGISTRY.counters.get("cache.misses", 0),
    }
    snap = {
        "enabled": _ENABLED,
        "counters": counters,
        "gauges": dict(_REGISTRY.gauges),
        "phases": {
            path: {
                "count": entry[0],
                "seconds": entry[1],
                "self_seconds": entry[2],
            }
            for path, entry in _PHASES.items()
        },
    }
    snap.update(_derived_sections(counters, cache))
    return snap


def diff_snapshots(after: Mapping, before: Mapping) -> dict:
    """``after - before``: the delta a shard worker ships to the parent.

    Counters, cache counts and phase triples subtract; gauges keep the
    ``after`` level; ``entries`` (a level, not a flow) keeps the
    ``after`` value.
    """
    counters = {}
    for name, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(name, 0)
        if delta:
            counters[name] = delta
    phases = {}
    before_phases = before.get("phases", {})
    for path, entry in after.get("phases", {}).items():
        prior = before_phases.get(
            path, {"count": 0, "seconds": 0.0, "self_seconds": 0.0}
        )
        count = entry["count"] - prior["count"]
        if count or entry["seconds"] != prior["seconds"]:
            phases[path] = {
                "count": count,
                "seconds": entry["seconds"] - prior["seconds"],
                "self_seconds": (
                    entry["self_seconds"] - prior["self_seconds"]
                ),
            }
    cache_after = after.get("cache", {})
    cache_before = before.get("cache", {})
    cache = {
        "entries": cache_after.get("entries", 0),
        "hits": cache_after.get("hits", 0) - cache_before.get("hits", 0),
        "misses": (
            cache_after.get("misses", 0) - cache_before.get("misses", 0)
        ),
    }
    snap = {
        "enabled": after.get("enabled", False),
        "counters": counters,
        "gauges": dict(after.get("gauges", {})),
        "phases": phases,
    }
    snap.update(_derived_sections(counters, cache))
    return snap


def merge_snapshots(a: Mapping, b: Mapping) -> dict:
    """Pure associative merge of two snapshot dicts.

    ``merge(a, merge(b, c)) == merge(merge(a, b), c)`` — counters,
    cache counts and phases sum; gauges and ``entries`` take the
    maximum.  Shard outcomes can therefore merge in any grouping and
    produce the same report.
    """
    counters = dict(a.get("counters", {}))
    for name, value in b.get("counters", {}).items():
        counters[name] = counters.get(name, 0) + value
    gauges = dict(a.get("gauges", {}))
    for name, value in b.get("gauges", {}).items():
        prior = gauges.get(name)
        gauges[name] = value if prior is None else max(prior, value)
    phases = {
        path: dict(entry) for path, entry in a.get("phases", {}).items()
    }
    for path, entry in b.get("phases", {}).items():
        prior = phases.get(path)
        if prior is None:
            phases[path] = dict(entry)
        else:
            prior["count"] += entry["count"]
            prior["seconds"] += entry["seconds"]
            prior["self_seconds"] += entry["self_seconds"]
    cache_a, cache_b = a.get("cache", {}), b.get("cache", {})
    cache = {
        "entries": max(cache_a.get("entries", 0), cache_b.get("entries", 0)),
        "hits": cache_a.get("hits", 0) + cache_b.get("hits", 0),
        "misses": cache_a.get("misses", 0) + cache_b.get("misses", 0),
    }
    snap = {
        "enabled": bool(a.get("enabled")) or bool(b.get("enabled")),
        "counters": counters,
        "gauges": gauges,
        "phases": phases,
    }
    snap.update(_derived_sections(counters, cache))
    return snap


def merge_snapshot(child: Mapping) -> None:
    """Fold a child process's snapshot delta into *this* process.

    Child cache counts land in ``cache.hits``/``cache.misses`` registry
    counters, which :func:`snapshot` adds on top of the live cache —
    so a parent's export covers its workers' compilations too.
    """
    for name, value in child.get("counters", {}).items():
        if name.startswith("cache."):
            continue
        _REGISTRY.inc(name, value)
    for name, value in child.get("gauges", {}).items():
        prior = _REGISTRY.gauges.get(name)
        _REGISTRY.gauges[name] = (
            value if prior is None else max(prior, value)
        )
    for path, entry in child.get("phases", {}).items():
        local = _PHASES.get(path)
        if local is None:
            local = _PHASES[path] = [0, 0.0, 0.0]
        local[0] += entry["count"]
        local[1] += entry["seconds"]
        local[2] += entry["self_seconds"]
    cache = child.get("cache", {})
    hits, misses = cache.get("hits", 0), cache.get("misses", 0)
    if hits:
        _REGISTRY.inc("cache.hits", hits)
    if misses:
        _REGISTRY.inc("cache.misses", misses)


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def phase_rows() -> list[tuple[str, int, int, float, float]]:
    """Sorted ``(path, depth, count, seconds, self_seconds)`` rows.

    Hierarchical order: every span's children directly follow it.
    """
    rows = []
    for path in sorted(_PHASES, key=lambda p: p.split("/")):
        entry = _PHASES[path]
        rows.append(
            (path, path.count("/"), entry[0], entry[1], entry[2])
        )
    return rows


def phase_totals() -> dict[str, float]:
    """Total seconds per *top-level* phase (nested time included)."""
    return {
        path: entry[1]
        for path, entry in _PHASES.items()
        if "/" not in path
    }


def format_profile(wall: Optional[float] = None, title: str = "") -> str:
    """The human per-phase table behind ``--profile``.

    ``wall`` is the caller's outer wall-clock time; when given, each
    top-level phase gets a percentage column and the footer states the
    phase coverage (top-level phase total over wall).
    """
    rows = phase_rows()
    lines = []
    if title:
        lines.append(title)
    header = f"{'phase':<28} {'count':>7} {'total s':>10} {'self s':>10}"
    if wall:
        header += f" {'% wall':>7}"
    lines.append(header)
    lines.append("-" * len(header))
    for path, depth, count, seconds, self_seconds in rows:
        name = "  " * depth + path.rsplit("/", 1)[-1]
        line = (
            f"{name:<28} {count:>7} {seconds:>10.4f} {self_seconds:>10.4f}"
        )
        if wall:
            share = 100.0 * seconds / wall if depth == 0 else 0.0
            line += f" {share:>6.1f}%" if depth == 0 else f" {'':>7}"
        lines.append(line)
    total = sum(phase_totals().values())
    footer = f"{'phases total':<28} {'':>7} {total:>10.4f}"
    lines.append("-" * len(header))
    lines.append(footer)
    if wall:
        coverage = 100.0 * total / wall if wall else 0.0
        lines.append(
            f"{'outer wall':<28} {'':>7} {wall:>10.4f} "
            f"{'':>10} ({coverage:.1f}% covered)"
        )
    return "\n".join(lines)


def write_metrics(path: str) -> None:
    """Dump :func:`snapshot` as indented JSON to ``path``."""
    with open(path, "w") as stream:
        json.dump(snapshot(), stream, indent=2, sort_keys=True)
        stream.write("\n")
