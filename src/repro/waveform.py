"""Waveform export: unit-delay histories to VCD.

The compiled simulators produce complete per-vector histories (that is
the whole point of unit-delay simulation); this module renders them as
a standard Value Change Dump so any waveform viewer (GTKWave etc.) can
display the gate-level settling behaviour, glitches included.

Each simulated vector occupies ``depth + 1`` ticks of VCD time, plus a
one-tick separator, so consecutive vectors line up back to back::

    writer = VCDWriter(circuit_depth=7, nets=["A", "OUT"])
    writer.add_vector(history_1)
    writer.add_vector(history_2)
    writer.write(open("trace.vcd", "w"))
"""

from __future__ import annotations

import io
from typing import Iterable, Mapping, Optional, Sequence, TextIO

from repro.errors import SimulationError

__all__ = ["VCDWriter", "write_vcd"]

History = Mapping[str, Sequence[tuple[int, int]]]

#: Printable identifier characters per the VCD grammar.
_ID_CHARS = [chr(c) for c in range(33, 127)]


def _identifier(index: int) -> str:
    """Short VCD identifier for the ``index``-th signal."""
    if index < 0:
        raise ValueError("negative signal index")
    digits = []
    base = len(_ID_CHARS)
    while True:
        digits.append(_ID_CHARS[index % base])
        index //= base
        if index == 0:
            break
        index -= 1  # bijective numeration: no leading-zero waste
    return "".join(reversed(digits))


class VCDWriter:
    """Accumulate per-vector histories; emit one VCD document.

    Parameters
    ----------
    circuit_depth:
        The circuit's depth ``d``; each vector spans times 0..d.
    nets:
        Signals to include, in declaration order.  ``None`` means
        "whatever the first added vector contains", sorted.
    timescale / module:
        Cosmetics for the VCD header.
    """

    def __init__(
        self,
        circuit_depth: int,
        nets: Optional[Iterable[str]] = None,
        *,
        timescale: str = "1ns",
        module: str = "repro",
    ) -> None:
        if circuit_depth < 0:
            raise SimulationError("circuit_depth must be >= 0")
        self.depth = circuit_depth
        self.timescale = timescale
        self.module = module
        self._nets: Optional[list[str]] = (
            list(nets) if nets is not None else None
        )
        self._vectors: list[History] = []

    # ------------------------------------------------------------------
    def add_vector(self, history: History) -> None:
        """Append one vector's change history (simulator output)."""
        if self._nets is None:
            self._nets = sorted(history)
        missing = [n for n in self._nets if n not in history]
        if missing:
            raise SimulationError(
                f"history is missing nets: {missing[:5]}"
            )
        self._vectors.append(history)

    @property
    def num_vectors(self) -> int:
        return len(self._vectors)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The complete VCD text."""
        if self._nets is None or not self._vectors:
            raise SimulationError("no vectors added")
        out = io.StringIO()
        out.write("$date repro unit-delay trace $end\n")
        out.write(f"$timescale {self.timescale} $end\n")
        out.write(f"$scope module {self.module} $end\n")
        ids = {}
        for index, net_name in enumerate(self._nets):
            ids[net_name] = _identifier(index)
            out.write(f"$var wire 1 {ids[net_name]} {net_name} $end\n")
        out.write("$upscope $end\n$enddefinitions $end\n")

        span = self.depth + 2  # one idle tick between vectors
        last_value: dict[str, Optional[int]] = {
            n: None for n in self._nets
        }
        for vector_index, history in enumerate(self._vectors):
            base = vector_index * span
            # Group changes by absolute time.
            by_time: dict[int, list[tuple[str, int]]] = {}
            for net_name in self._nets:
                for time, value in history[net_name]:
                    if last_value[net_name] == value and time == 0:
                        continue  # unchanged across the vector boundary
                    by_time.setdefault(base + time, []).append(
                        (net_name, value)
                    )
                    last_value[net_name] = value
            for time in sorted(by_time):
                out.write(f"#{time}\n")
                for net_name, value in by_time[time]:
                    out.write(f"{value & 1}{ids[net_name]}\n")
        out.write(f"#{self.num_vectors * span}\n")
        return out.getvalue()

    def write(self, stream: TextIO) -> None:
        stream.write(self.render())


def write_vcd(
    histories: Sequence[History],
    circuit_depth: int,
    stream: TextIO,
    *,
    nets: Optional[Iterable[str]] = None,
) -> None:
    """One-shot convenience: render ``histories`` to ``stream``."""
    writer = VCDWriter(circuit_depth, nets)
    for history in histories:
        writer.add_vector(history)
    writer.write(stream)
