"""Waveform export: unit-delay histories to VCD.

The compiled simulators produce complete per-vector histories (that is
the whole point of unit-delay simulation); this module renders them as
a standard Value Change Dump so any waveform viewer (GTKWave etc.) can
display the gate-level settling behaviour, glitches included.

Each simulated vector occupies ``depth + 1`` ticks of VCD time, plus a
one-tick separator, so consecutive vectors line up back to back::

    writer = VCDWriter(circuit_depth=7, nets=["A", "OUT"])
    writer.add_vector(history_1)
    writer.add_vector(history_2)
    writer.write(open("trace.vcd", "w"))

Rendering is *incremental*: each added vector is rendered to text at
``add_vector`` time and either streamed straight to an attached output
(``stream=``, the trace-capture fast path — nothing accumulates in
memory) or kept as a per-vector chunk that :meth:`write` replays
piece by piece.  :meth:`render` assembles the full document as one
string for tests and small traces.

A streaming writer is resumable: :meth:`state` captures the few words
of dedup state the next vector depends on, and a fresh writer given
that state via :meth:`restore_state` continues the document byte for
byte — the replay harness checkpoints exactly this.
"""

from __future__ import annotations

import io
from typing import Iterable, Mapping, Optional, Sequence, TextIO

from repro.errors import SimulationError

__all__ = ["VCDWriter", "write_vcd"]

History = Mapping[str, Sequence[tuple[int, int]]]

#: Printable identifier characters per the VCD grammar.
_ID_CHARS = [chr(c) for c in range(33, 127)]


def _identifier(index: int) -> str:
    """Short VCD identifier for the ``index``-th signal."""
    if index < 0:
        raise ValueError("negative signal index")
    digits = []
    base = len(_ID_CHARS)
    while True:
        digits.append(_ID_CHARS[index % base])
        index //= base
        if index == 0:
            break
        index -= 1  # bijective numeration: no leading-zero waste
    return "".join(reversed(digits))


class VCDWriter:
    """Accumulate per-vector histories; emit one VCD document.

    Parameters
    ----------
    circuit_depth:
        The circuit's depth ``d``; each vector spans times 0..d.
    nets:
        Signals to include, in declaration order.  ``None`` means
        "whatever the first added vector contains", sorted.
    timescale / module:
        Cosmetics for the VCD header.
    stream:
        When given, every vector's value changes are written to this
        stream as they arrive (header first, at the first vector) and
        nothing is buffered — bounded-memory trace capture.  Without
        a stream, rendered chunks are kept for :meth:`write` /
        :meth:`render`.
    """

    def __init__(
        self,
        circuit_depth: int,
        nets: Optional[Iterable[str]] = None,
        *,
        timescale: str = "1ns",
        module: str = "repro",
        stream: Optional[TextIO] = None,
    ) -> None:
        if circuit_depth < 0:
            raise SimulationError("circuit_depth must be >= 0")
        self.depth = circuit_depth
        self.timescale = timescale
        self.module = module
        self._nets: Optional[list[str]] = (
            list(nets) if nets is not None else None
        )
        self._stream = stream
        self._chunks: list[str] = []
        self._last_value: dict[str, Optional[int]] = {}
        self._num_vectors = 0
        self._header_done = False

    # ------------------------------------------------------------------
    def _header_text(self) -> str:
        assert self._nets is not None
        out = io.StringIO()
        out.write("$date repro unit-delay trace $end\n")
        out.write(f"$timescale {self.timescale} $end\n")
        out.write(f"$scope module {self.module} $end\n")
        for index, net_name in enumerate(self._nets):
            out.write(
                f"$var wire 1 {_identifier(index)} {net_name} $end\n"
            )
        out.write("$upscope $end\n$enddefinitions $end\n")
        return out.getvalue()

    def _render_vector(self, history: History) -> str:
        assert self._nets is not None
        span = self.depth + 2  # one idle tick between vectors
        base = self._num_vectors * span
        last_value = self._last_value
        # Group changes by absolute time.
        by_time: dict[int, list[tuple[int, int]]] = {}
        for index, net_name in enumerate(self._nets):
            for time, value in history[net_name]:
                if last_value.get(net_name) == value and time == 0:
                    continue  # unchanged across the vector boundary
                by_time.setdefault(base + time, []).append((index, value))
                last_value[net_name] = value
        out = io.StringIO()
        for time in sorted(by_time):
            out.write(f"#{time}\n")
            for index, value in by_time[time]:
                out.write(f"{value & 1}{_identifier(index)}\n")
        return out.getvalue()

    def _emit(self, text: str) -> None:
        if self._stream is not None:
            self._stream.write(text)
        else:
            self._chunks.append(text)

    # ------------------------------------------------------------------
    def add_vector(self, history: History) -> None:
        """Append one vector's change history (simulator output).

        The vector is rendered immediately — streamed out when the
        writer is attached to a stream, kept as one text chunk
        otherwise.  Full histories are never retained.
        """
        if self._nets is None:
            self._nets = sorted(history)
        missing = [n for n in self._nets if n not in history]
        if missing:
            raise SimulationError(
                f"history is missing nets: {missing[:5]}"
            )
        if self._stream is not None and not self._header_done:
            self._stream.write(self._header_text())
            self._header_done = True
        self._emit(self._render_vector(history))
        self._num_vectors += 1

    @property
    def num_vectors(self) -> int:
        return self._num_vectors

    # ------------------------------------------------------------------
    # resumable streaming (replay checkpoints)
    # ------------------------------------------------------------------
    def state(self) -> dict:
        """The dedup state the next vector's rendering depends on.

        JSON-able; hand it to :meth:`restore_state` on a fresh writer
        (appending to the same stream) and the document continues byte
        for byte — including the vector-boundary change suppression.
        """
        return {
            "nets": None if self._nets is None else list(self._nets),
            "last_value": dict(self._last_value),
            "num_vectors": self._num_vectors,
            "header_done": self._header_done,
        }

    def restore_state(self, saved: Mapping) -> None:
        nets = saved.get("nets")
        if nets is not None:
            self._nets = list(nets)
        self._last_value = dict(saved.get("last_value", {}))
        self._num_vectors = saved.get("num_vectors", 0)
        self._header_done = saved.get("header_done", False)

    def finalize(self) -> None:
        """Write the closing time marker (attached-stream mode)."""
        if self._num_vectors == 0:
            raise SimulationError("no vectors added")
        self._emit(f"#{self._num_vectors * (self.depth + 2)}\n")

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The complete VCD text (buffered writers only)."""
        if self._stream is not None:
            raise SimulationError(
                "render() is unavailable on a streaming writer; "
                "the text already went to its stream"
            )
        if self._nets is None or self._num_vectors == 0:
            raise SimulationError("no vectors added")
        return (
            self._header_text()
            + "".join(self._chunks)
            + f"#{self._num_vectors * (self.depth + 2)}\n"
        )

    def write(self, stream: TextIO) -> None:
        """Stream the document chunk by chunk (no full-text build)."""
        if self._stream is not None:
            raise SimulationError(
                "write() is unavailable on a streaming writer; "
                "the text already went to its stream"
            )
        if self._nets is None or self._num_vectors == 0:
            raise SimulationError("no vectors added")
        stream.write(self._header_text())
        for chunk in self._chunks:
            stream.write(chunk)
        stream.write(f"#{self._num_vectors * (self.depth + 2)}\n")


def write_vcd(
    histories: Sequence[History],
    circuit_depth: int,
    stream: TextIO,
    *,
    nets: Optional[Iterable[str]] = None,
) -> None:
    """One-shot convenience: stream ``histories`` to ``stream``.

    Each history is rendered and written as it is consumed; the full
    document never exists in memory.
    """
    writer = VCDWriter(circuit_depth, nets, stream=stream)
    for history in histories:
        writer.add_vector(history)
    writer.finalize()
