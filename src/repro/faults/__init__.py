"""Stuck-at fault simulation on top of the PC-set method.

The paper stresses (§3, §6) that the PC-set method — unlike the
parallel technique — is "amenable to bit-parallel simulation" because
its generated code is purely bit-wise.  Historically that is exactly
what made bit-parallel compiled simulation matter: *parallel fault
simulation*, where bit lane 0 carries the fault-free machine and every
other lane carries one faulty machine.  This subpackage implements
that application end to end:

- :mod:`repro.faults.model` — stuck-at faults, fault-list generation,
  and circuit transformation for the serial reference simulator;
- :mod:`repro.faults.simulator` — lane-parallel fault simulation by
  instrumenting the generated PC-set program with per-net lane masks,
  plus the brute-force serial simulator it is validated against;
- :mod:`repro.faults.sharding` — the fault list sharded across a
  multiprocess worker pool, merged bit-identically to the
  single-process run (``run_fault_simulation(workers=N)``).
"""

from repro.faults.model import Fault, full_fault_list, inject_stuck_at
from repro.faults.sharding import (
    ShardedFaultReport,
    merge_shard_outcomes,
    run_sharded_fault_simulation,
    shard_faults,
)
from repro.faults.simulator import (
    FaultReport,
    ParallelFaultSimulator,
    serial_fault_simulation,
    run_fault_simulation,
)
from repro.faults.testgen import TestSet, compact_tests, generate_tests

__all__ = [
    "Fault",
    "full_fault_list",
    "inject_stuck_at",
    "FaultReport",
    "ParallelFaultSimulator",
    "serial_fault_simulation",
    "run_fault_simulation",
    "ShardedFaultReport",
    "shard_faults",
    "merge_shard_outcomes",
    "run_sharded_fault_simulation",
    "TestSet",
    "compact_tests",
    "generate_tests",
]
