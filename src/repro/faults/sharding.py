"""Sharded multiprocess fault grading.

Each stuck-at fault's grading pass is independent (the PPSFP shape of
:mod:`repro.faults.simulator`), so the fault list parallelizes the way
GSIM/Manticore partition simulation work: split it into contiguous
*shards*, grade each shard in a worker process, and merge the per-shard
outcomes back into one report.  The merge is deterministic — shards are
contiguous slices of the fault list and are merged in shard order, so
the merged :class:`ShardedFaultReport` is **bit-identical** to the
single-process run: same ``detected`` map (fault -> first detecting
vector), same ``undetected`` faults in the same order.

Robustness over raw parallelism:

- *per-worker warm-up*: the pool initializer builds the instrumented
  simulator once per worker and pre-compiles its machine
  (:meth:`ParallelFaultSimulator.warm_up`), so backend compilation —
  gcc, on the C backend — runs once per worker instead of once per
  shard; the packed good pre-pass is likewise memoized per worker
  across its shards.
- *per-shard timeout and in-process retry*: results are collected in
  submission order and each shard may wait at most ``shard_timeout``
  seconds beyond the previous one; a shard that times out, raises, or
  loses its worker (``BrokenProcessPool`` after a kill) is regraded
  in the parent process, so the merged report is always complete.
- *graceful degradation*: when the pool cannot start at all (or
  ``workers=1``), every shard runs on the existing single-process path
  and the report is flagged ``degraded``.

Cost model (see ``docs/algorithms.md`` §11): with ``S`` shards over
``P`` workers, packed grading pays one warm-up (program generation +
compile) per worker and one good pre-pass per worker (memoized across
that worker's shards), then the per-fault detection screens split
``S/P`` ways — so wall-clock approaches ``warmup + good + screens/P``
once ``S >= P`` and the fault list is long enough to amortize warm-up.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Optional, Sequence

from repro import telemetry
from repro.codegen.runtime import BatchCounters, program_cache
from repro.errors import SimulationError
from repro.faults.model import Fault, full_fault_list
from repro.faults.simulator import FaultReport, ParallelFaultSimulator
from repro.netlist.circuit import Circuit

__all__ = [
    "GradingConfig",
    "ShardOutcome",
    "ShardedFaultReport",
    "shard_faults",
    "merge_shard_outcomes",
    "run_sharded_fault_simulation",
]


class GradingConfig:
    """Picklable bundle shipped to every worker (and used for retries).

    ``fail_shards``/``fail_mode``/``delay_shards`` are fault-injection
    hooks for the robustness tests: they make *worker-side* grading of
    the named shards raise, hard-exit, or stall — the parent's
    in-process retry path never consults them.
    """

    __slots__ = (
        "circuit", "vectors", "word_width", "backend", "patterns",
        "tiles", "instrument", "initial", "drop_detected", "telemetry",
        "fail_shards", "fail_mode", "delay_shards",
        "partitions", "partition_workers", "probes",
    )

    def __init__(
        self,
        circuit: Circuit,
        vectors: list[list[int]],
        *,
        word_width: int = 32,
        backend: str = "python",
        patterns: str = "auto",
        tiles: "int | str" = 1,
        instrument: str = "all",
        initial: Optional[Sequence[int]] = None,
        drop_detected: bool = True,
        fail_shards: frozenset = frozenset(),
        fail_mode: str = "raise",
        delay_shards: Optional[dict] = None,
        partitions: int = 1,
        partition_workers: Optional[int] = None,
        probes=None,
    ) -> None:
        self.circuit = circuit
        self.vectors = vectors
        self.word_width = word_width
        self.backend = backend
        self.patterns = patterns
        self.tiles = tiles
        self.instrument = instrument
        self.initial = initial
        self.drop_detected = drop_detected
        # Captured at construction: workers must collect telemetry
        # exactly when the parent process was collecting it.
        self.telemetry = telemetry.enabled()
        self.fail_shards = fail_shards
        self.fail_mode = fail_mode
        self.delay_shards = delay_shards or {}
        self.partitions = partitions
        self.partition_workers = partition_workers
        self.probes = probes

    def build_simulator(self) -> ParallelFaultSimulator:
        return ParallelFaultSimulator(
            self.circuit,
            word_width=self.word_width,
            backend=self.backend,
            instrument=self.instrument,
            patterns=self.patterns,
            tiles=self.tiles,
            partitions=self.partitions,
            partition_workers=self.partition_workers,
            probes=self.probes,
        )


class ShardOutcome:
    """One shard's grading result plus its execution metadata."""

    __slots__ = (
        "index", "detected", "undetected", "counters", "cache",
        "pid", "retried", "telemetry", "activity",
    )

    def __init__(
        self,
        index: int,
        detected: dict[Fault, int],
        undetected: list[Fault],
        counters: dict,
        cache: dict,
        pid: int,
    ) -> None:
        self.index = index
        self.detected = detected
        self.undetected = undetected
        self.counters = counters
        self.cache = cache
        self.pid = pid
        self.retried = False
        #: Telemetry snapshot delta shipped by a *worker* process
        #: (``None`` when graded inline — the parent's own registry
        #: already holds that activity).
        self.telemetry: Optional[dict] = None
        #: Good-machine :class:`~repro.activity.ActivityReport` when
        #: the run was probed.  Fault-independent (every shard's copy
        #: is identical — it is memoized per worker), so the merge
        #: keeps the lowest-indexed one.
        self.activity = None

    def __repr__(self) -> str:
        return (
            f"ShardOutcome(#{self.index}, "
            f"{len(self.detected)}+{len(self.undetected)} faults, "
            f"pid {self.pid}{', retried' if self.retried else ''})"
        )


class ShardedFaultReport(FaultReport):
    """A merged :class:`FaultReport` with sharded-execution metadata.

    Equality (`==`) against a plain :class:`FaultReport` compares only
    the grading outcome — that is the bit-identical contract — while
    the extra fields record *how* the run executed:

    Attributes
    ----------
    workers / num_shards / shard_sizes / mp_start:
        Pool geometry.  ``mp_start`` is ``"inline"`` when no pool ran.
    retried_shards:
        Shard indices regraded in-process after a worker failure,
        kill, or timeout.
    degraded:
        True when the pool could not start and the whole fault list
        fell back to the single-process path.
    counters:
        Per-shard machine :class:`BatchCounters` summed across shards.
    cache_stats:
        Program-cache hit/miss deltas summed across workers.
    worker_pids:
        Distinct process ids that produced the merged outcomes.
    events:
        Robustness-event tallies — ``retries`` / ``timeouts`` /
        ``degraded`` — recorded whether or not telemetry is enabled.
    """

    def __init__(
        self,
        detected: dict[Fault, int],
        undetected: list[Fault],
        num_vectors: int,
        *,
        workers: int,
        num_shards: int,
        shard_sizes: list[int],
        mp_start: str,
        retried_shards: list[int],
        degraded: bool,
        counters: BatchCounters,
        cache_stats: dict,
        worker_pids: list[int],
        events: Optional[dict] = None,
    ) -> None:
        super().__init__(detected, undetected, num_vectors)
        self.workers = workers
        self.num_shards = num_shards
        self.shard_sizes = shard_sizes
        self.mp_start = mp_start
        self.retried_shards = retried_shards
        self.degraded = degraded
        self.counters = counters
        self.cache_stats = cache_stats
        self.worker_pids = worker_pids
        self.events = events if events is not None else {
            "retries": len(retried_shards),
            "timeouts": 0,
            "degraded": 1 if degraded else 0,
        }

    def sharding_stats(self) -> dict:
        """The execution metadata as one JSON-friendly dict."""
        return {
            "workers": self.workers,
            "num_shards": self.num_shards,
            "shard_sizes": list(self.shard_sizes),
            "mp_start": self.mp_start,
            "retried_shards": list(self.retried_shards),
            "degraded": self.degraded,
            "counters": self.counters.as_dict(),
            "cache_stats": dict(self.cache_stats),
            "worker_pids": list(self.worker_pids),
            "events": dict(self.events),
        }

    def __repr__(self) -> str:
        base = super().__repr__()[:-1]  # strip the closing paren
        extra = f", {self.workers} workers x {self.num_shards} shards"
        if self.retried_shards:
            extra += f", retried {self.retried_shards}"
        if self.degraded:
            extra += ", degraded"
        return f"{base}{extra})"


def shard_faults(
    faults: Sequence[Fault], num_shards: int
) -> list[list[Fault]]:
    """Split ``faults`` into ``num_shards`` contiguous, near-even shards.

    Deterministic: shard ``i`` is a slice of the original order, sizes
    differ by at most one (earlier shards take the remainder), and
    concatenating the shards reproduces the input exactly — which is
    what makes the merged report order-identical to a single run.
    """
    faults = list(faults)
    if num_shards < 1:
        raise SimulationError(f"num_shards must be >= 1: {num_shards}")
    if not faults:
        # No faults, no shards: grading zero faults must not spin up
        # any machinery (an empty shard would still compile a
        # simulator just to grade nothing).
        return []
    num_shards = min(num_shards, len(faults))
    base, extra = divmod(len(faults), num_shards)
    shards: list[list[Fault]] = []
    start = 0
    for index in range(num_shards):
        size = base + (1 if index < extra else 0)
        shards.append(faults[start:start + size])
        start += size
    return shards


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
#: Per-worker-process state, installed by the pool initializer: the
#: simulator (compiled once per worker) and the shipped config.
_WORKER_SIM: Optional[ParallelFaultSimulator] = None
_WORKER_CONFIG: Optional[GradingConfig] = None
#: What this worker has already shipped to the parent: the telemetry
#: snapshot taken after the previous shard (or the post-fork baseline),
#: so each outcome carries exactly the activity since the last one —
#: the first shard's delta includes the warm-up compile.
_WORKER_SHIPPED: Optional[dict] = None


def _init_worker(config: GradingConfig) -> None:
    """Pool initializer: build + warm up this worker's simulator."""
    global _WORKER_SIM, _WORKER_CONFIG, _WORKER_SHIPPED
    _WORKER_CONFIG = config
    if config.telemetry:
        # Fresh per-process state: a forked worker inherits the
        # parent's phases/counters, which the parent already owns.
        telemetry.enable(reset_state=True)
        # The baseline still carries the inherited live program-cache
        # stats; snapshotting here keeps them out of the first delta.
        _WORKER_SHIPPED = telemetry.snapshot()
    _WORKER_SIM = config.build_simulator()
    _WORKER_SIM.warm_up()


def _grade_with(
    sim: ParallelFaultSimulator,
    config: GradingConfig,
    index: int,
    faults: list[Fault],
) -> ShardOutcome:
    """Grade one shard on ``sim``; record counter/cache deltas."""
    cache = program_cache()
    cache_before = cache.stats()

    def counter_snapshot() -> tuple[int, int, float]:
        counters = sim.batch_counters()
        if counters is None:
            return (0, 0, 0.0)
        return (counters.batches, counters.vectors, counters.seconds)

    before = counter_snapshot()
    report = sim.run(
        config.vectors, faults,
        initial=config.initial, drop_detected=config.drop_detected,
    )
    after = counter_snapshot()
    cache_after = cache.stats()
    outcome = ShardOutcome(
        index=index,
        detected=report.detected,
        undetected=report.undetected,
        counters={
            "batches": after[0] - before[0],
            "vectors": after[1] - before[1],
            "seconds": after[2] - before[2],
        },
        cache={
            "hits": cache_after["hits"] - cache_before["hits"],
            "misses": cache_after["misses"] - cache_before["misses"],
        },
        pid=os.getpid(),
    )
    if sim.probes is not None:
        outcome.activity = sim.good_activity(
            config.vectors, config.initial
        )
    return outcome


def _grade_shard(item: tuple[int, list[Fault]]) -> ShardOutcome:
    """Worker entry point: grade one shard on the per-worker simulator."""
    index, faults = item
    config = _WORKER_CONFIG
    assert config is not None and _WORKER_SIM is not None
    if index in config.delay_shards:
        time.sleep(config.delay_shards[index])
    if index in config.fail_shards:
        if config.fail_mode == "exit":
            os._exit(17)  # simulate a killed worker
        raise RuntimeError(f"injected failure for shard {index}")
    outcome = _grade_with(_WORKER_SIM, config, index, faults)
    if config.telemetry:
        global _WORKER_SHIPPED
        snap = telemetry.snapshot()
        outcome.telemetry = telemetry.diff_snapshots(
            snap, _WORKER_SHIPPED or {}
        )
        _WORKER_SHIPPED = snap
    return outcome


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
def merge_shard_outcomes(
    outcomes: Sequence[ShardOutcome],
    num_vectors: int,
    *,
    workers: int,
    num_shards: int,
    shard_sizes: list[int],
    mp_start: str,
    degraded: bool,
    events: Optional[dict] = None,
) -> ShardedFaultReport:
    """Deterministically merge per-shard outcomes into one report.

    Outcomes are ordered by shard index (shards are contiguous slices
    of the fault list), so detected-map insertion order and the
    undetected list both reproduce the single-process run exactly.
    Worker-shipped telemetry deltas fold into this process's registry
    (inline/retried outcomes carry none — their activity is already
    recorded here).
    """
    detected: dict[Fault, int] = {}
    undetected: list[Fault] = []
    counters = BatchCounters()
    cache_stats = {"hits": 0, "misses": 0}
    retried: list[int] = []
    pids: set[int] = set()
    activity = None
    for outcome in sorted(outcomes, key=lambda o: o.index):
        if activity is None and outcome.activity is not None:
            activity = outcome.activity
        detected.update(outcome.detected)
        undetected.extend(outcome.undetected)
        counters.batches += outcome.counters["batches"]
        counters.vectors += outcome.counters["vectors"]
        counters.seconds += outcome.counters["seconds"]
        cache_stats["hits"] += outcome.cache["hits"]
        cache_stats["misses"] += outcome.cache["misses"]
        if outcome.retried:
            retried.append(outcome.index)
        pids.add(outcome.pid)
        if outcome.telemetry is not None and outcome.pid != os.getpid():
            telemetry.merge_snapshot(outcome.telemetry)
    report = ShardedFaultReport(
        detected, undetected, num_vectors,
        workers=workers,
        num_shards=num_shards,
        shard_sizes=list(shard_sizes),
        mp_start=mp_start,
        retried_shards=retried,
        degraded=degraded,
        counters=counters,
        cache_stats=cache_stats,
        worker_pids=sorted(pids),
        events=events,
    )
    report.activity = activity
    return report


def _resolve_start_method(mp_start: str) -> str:
    methods = multiprocessing.get_all_start_methods()
    if mp_start == "auto":
        return "fork" if "fork" in methods else "spawn"
    if mp_start not in methods:
        raise SimulationError(
            f"start method {mp_start!r} unavailable; have {methods}"
        )
    return mp_start


def run_sharded_fault_simulation(
    circuit: Circuit,
    vectors: Sequence[Sequence[int]],
    faults: Optional[Sequence[Fault]] = None,
    *,
    word_width: int = 32,
    backend: str = "python",
    initial: Optional[Sequence[int]] = None,
    patterns: str = "auto",
    tiles: "int | str" = 1,
    instrument: str = "all",
    drop_detected: bool = True,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    mp_start: str = "auto",
    shard_timeout: Optional[float] = None,
    partitions: int = 1,
    partition_workers: Optional[int] = None,
    probes=None,
    _fail_shards: frozenset = frozenset(),
    _fail_mode: str = "raise",
    _delay_shards: Optional[dict] = None,
) -> ShardedFaultReport:
    """Grade ``faults`` over ``vectors`` with a sharded worker pool.

    ``workers`` defaults to ``os.cpu_count()``; ``shards`` defaults to
    ``2 * workers`` (load balancing without paying too many redundant
    packed good pre-passes — see the module docstring's cost model).
    ``mp_start`` is ``"fork"``, ``"spawn"``, or ``"auto"`` (fork where
    available).  ``shard_timeout`` bounds, per shard, how long the
    collection loop waits beyond the previously collected shard;
    late, failed, or killed shards are regraded in-process.

    The merged report equals (``==``) the single-process
    :func:`~repro.faults.simulator.run_fault_simulation` result.
    With ``probes`` each worker also grades fault-free switching
    activity once (memoized across its shards); the per-net counters
    ride the shard outcomes and the parent attaches the
    lowest-indexed copy as ``report.activity`` — bit-identical to the
    single-process run, including across retries and degradation.
    """
    if faults is None:
        faults = full_fault_list(circuit)
    faults = list(faults)
    for fault in faults:
        if fault.net not in circuit.nets:
            raise SimulationError(f"no such net: {fault.net!r}")
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise SimulationError(f"workers must be >= 1: {workers}")
    if not faults:
        # Empty fault list: an empty report, inline, without building
        # a simulator, compiling a program, or starting any pool.
        return ShardedFaultReport(
            {}, [], len(vectors),
            workers=1, num_shards=0, shard_sizes=[],
            mp_start="inline", retried_shards=[], degraded=False,
            counters=BatchCounters(), cache_stats={},
            worker_pids=[os.getpid()],
            events={"retries": 0, "timeouts": 0, "degraded": 0},
        )
    start_method = _resolve_start_method(mp_start)
    config = GradingConfig(
        circuit, [list(vector) for vector in vectors],
        word_width=word_width, backend=backend, patterns=patterns,
        tiles=tiles, instrument=instrument, initial=initial,
        drop_detected=drop_detected,
        fail_shards=frozenset(_fail_shards), fail_mode=_fail_mode,
        delay_shards=_delay_shards,
        partitions=partitions, partition_workers=partition_workers,
        probes=probes,
    )
    shard_lists = shard_faults(
        faults, shards if shards is not None else max(1, 2 * workers)
    )
    num_shards = len(shard_lists)
    shard_sizes = [len(shard) for shard in shard_lists]

    local_sim: Optional[ParallelFaultSimulator] = None

    def local() -> ParallelFaultSimulator:
        nonlocal local_sim
        if local_sim is None:
            local_sim = config.build_simulator()
            local_sim.warm_up()
        return local_sim

    def run_inline(mp_label: str, degraded: bool) -> ShardedFaultReport:
        if degraded:
            telemetry.event("shard.degraded", mp_start=mp_label)
        outcomes = [
            _grade_with(local(), config, index, shard)
            for index, shard in enumerate(shard_lists)
        ]
        return merge_shard_outcomes(
            outcomes, len(config.vectors),
            workers=1 if not degraded else workers,
            num_shards=num_shards, shard_sizes=shard_sizes,
            mp_start=mp_label, degraded=degraded,
            events={
                "retries": 0,
                "timeouts": 0,
                "degraded": 1 if degraded else 0,
            },
        )

    if workers == 1 or num_shards <= 1 or not faults:
        return run_inline("inline", degraded=False)

    pool = None
    try:
        context = multiprocessing.get_context(start_method)
        pool = ProcessPoolExecutor(
            max_workers=min(workers, num_shards),
            mp_context=context,
            initializer=_init_worker,
            initargs=(config,),
        )
        futures = [
            pool.submit(_grade_shard, (index, shard))
            for index, shard in enumerate(shard_lists)
        ]
    except Exception:
        # The pool never came up (resource limits, missing /dev/shm,
        # unpicklable payload, ...): degrade to single-process.
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        return run_inline(start_method, degraded=True)

    outcomes: list[ShardOutcome] = []
    failed: list[int] = []
    timeouts = 0
    for index, future in enumerate(futures):
        try:
            outcomes.append(future.result(timeout=shard_timeout))
        except FuturesTimeoutError:
            timeouts += 1
            telemetry.event("shard.timeout", shard=index)
            failed.append(index)
        except Exception:
            # Worker raised, died (BrokenProcessPool), or the shard
            # could not be shipped: regrade in-process below.
            failed.append(index)
    # A timed-out shard's worker may still be grinding; don't block
    # shutdown on it (the in-process retry supersedes its result).
    pool.shutdown(wait=timeouts == 0, cancel_futures=True)

    for index in failed:
        telemetry.event("shard.retry", shard=index)
        outcome = _grade_with(local(), config, index, shard_lists[index])
        outcome.retried = True
        outcomes.append(outcome)

    return merge_shard_outcomes(
        outcomes, len(config.vectors),
        workers=workers, num_shards=num_shards,
        shard_sizes=shard_sizes, mp_start=start_method,
        degraded=False,
        events={
            "retries": len(failed),
            "timeouts": timeouts,
            "degraded": 0,
        },
    )
