"""Parallel (lane-per-fault) stuck-at fault simulation.

Bit lane 0 of every word carries the fault-free machine; each further
lane carries one faulty machine.  The PC-set program makes this almost
free: its generated code is purely bit-wise (§3), so the only addition
is, after every write to a variable of a *faulted* net, one masking
statement

    N_t = (N_t & FMASK) | FVAL

where ``FMASK``/``FVAL`` are per-net extra input words pinning the
faulty lanes to their stuck values and leaving every other lane
untouched.  Faults are processed in batches of ``word_width - 1``; a
fault is *detected* by a vector when any monitored output's settled
value differs from lane 0's.

:func:`serial_fault_simulation` is the brute-force reference — one
full event-driven simulation per fault on an injected circuit — used
to validate the parallel engine and for small jobs.

Pattern-lane packed grading (PPSFP shape)
-----------------------------------------
The PC-set program is shift-free, so its lanes can carry *patterns*
instead of faults (see :mod:`repro.codegen.packing`).  Detection only
compares settled monitored values, and in an acyclic circuit an
input-driven net's settled value depends on the current inputs alone —
so packed passes need no vector-to-vector state threading and are
exactly equivalent to the scalar lane loop.  (Constant-cone nets are
the one exception: their settled values live in state variables, so
every scan reloads the replicated good steady state first — the packed
counterpart of the scalar mode's per-batch seeding.)  With
``patterns="packed"`` (the ``"auto"`` default picks it whenever the
program is shift-free) grading becomes:

1. *good-machine pre-pass*: the instrumented machine with no fault
   pinned runs all ``N`` vectors pattern-packed —
   ``ceil(N / W)`` compiled passes total;
2. *per-fault detection screen*: each fault is pinned in **every**
   lane (``FMASK = 0``, ``FVAL`` replicated) and pattern groups run
   packed in order; the first group whose outputs differ from the good
   words yields the detecting lane, i.e. the first detecting vector,
   and the remaining groups are skipped.

Cost drops from ``ceil(F / (W-1)) × N`` passes toward
``ceil(N / W)`` + one pass per easily-detected fault (bounded by
``F × ceil(N / W)`` when nothing is detectable) — the classic
parallel-pattern single-fault-propagation trade.  Fault batches are
retained purely to share the instrumented machine (they still bound
compilation with ``instrument="batch"``).  Programs with shifts could
never take this path; the constructor refuses ``patterns="packed"``
for them and ``"auto"`` falls back to the scalar lane loop.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro import telemetry
from repro.codegen.packing import is_shift_free, pack_patterns, select_tiles
from repro.codegen.probes import ProbeSpec
from repro.codegen.program import Assign, Bin, Emit, Input, Program, Var
from repro.codegen.runtime import compile_program
from repro.errors import SimulationError
from repro.eventsim.simulator import EventDrivenSimulator
from repro.eventsim.zerodelay import steady_state
from repro.faults.model import Fault, full_fault_list, inject_stuck_at
from repro.netlist.circuit import Circuit
from repro.pcset.codegen import generate_pcset_program

__all__ = [
    "FaultReport",
    "ParallelFaultSimulator",
    "serial_fault_simulation",
    "run_fault_simulation",
]


class FaultReport:
    """Outcome of a fault-simulation run.

    Attributes
    ----------
    detected:
        ``Fault -> index of the first detecting vector``.
    undetected:
        Faults no vector exposed.
    num_vectors:
        Vectors simulated.
    counters:
        The engine's :class:`~repro.codegen.runtime.BatchCounters`
        snapshot when the grading run attaches one (single-process
        :func:`run_fault_simulation`), else ``None``.
    """

    #: Throughput counters; attached by the grading entry points.
    counters = None
    #: Fault-free per-net switching activity
    #: (:class:`~repro.activity.ActivityReport`); attached by the
    #: grading entry points when ``probes=`` was requested.
    activity = None

    def __init__(
        self,
        detected: dict[Fault, int],
        undetected: list[Fault],
        num_vectors: int,
    ) -> None:
        self.detected = detected
        self.undetected = undetected
        self.num_vectors = num_vectors

    @property
    def num_faults(self) -> int:
        return len(self.detected) + len(self.undetected)

    @property
    def coverage(self) -> float:
        """Detected fraction (1.0 = full coverage)."""
        if self.num_faults == 0:
            return 1.0
        return len(self.detected) / self.num_faults

    def first_detection(self, fault: Fault) -> Optional[int]:
        return self.detected.get(fault)

    def __eq__(self, other: object) -> bool:
        """Bit-identical reports: same detected map (fault -> first
        detecting vector), same undetected faults *in the same order*,
        same vector count.  This is the contract sharded grading is
        held to against the single-process run."""
        if not isinstance(other, FaultReport):
            return NotImplemented
        return (
            self.detected == other.detected
            and self.undetected == other.undetected
            and self.num_vectors == other.num_vectors
        )

    __hash__ = None  # reports are mutable aggregates, not keys

    def __repr__(self) -> str:
        return (
            f"FaultReport({len(self.detected)}/{self.num_faults} "
            f"detected, coverage {self.coverage:.1%}, "
            f"{self.num_vectors} vectors)"
        )


class ParallelFaultSimulator:
    """Lane-parallel stuck-at fault simulation over the PC-set program.

    ``instrument`` selects the injection strategy:

    - ``"all"`` (default): one program with mask/value inputs for
      *every* net, compiled once and reused for every fault batch —
      the right trade when many batches run (compilation is paid once,
      as the paper's methodology assumes);
    - ``"batch"``: a lean program instrumented only at the nets of the
      current batch, recompiled per batch — smaller and faster per
      step, worthwhile when the fault list is short.

    ``patterns`` selects what the bit lanes carry:

    - ``"scalar"``: lanes carry faults, vectors run one per pass — the
      original lane-per-fault loop;
    - ``"packed"``: lanes carry patterns (PPSFP shape, see the module
      docstring): a packed good pre-pass plus per-fault packed
      detection screens with the fault pinned in every lane.  Raises
      if the program is not shift-free;
    - ``"auto"`` (default): ``"packed"`` when eligible, else
      ``"scalar"``.  The two modes produce identical reports.

    ``tiles`` widens the packed-pattern passes past the word width:
    a K-tile machine carries ``word_width * K`` patterns per compiled
    pass (see :mod:`repro.codegen.packing`), so both the good pre-pass
    and every per-fault detection screen run K pattern groups per
    call.  ``"auto"`` consults
    :func:`~repro.codegen.packing.select_tiles`; the scalar lane loop
    is unaffected (its lanes carry faults, not patterns).  Reports are
    bit-identical at every K.
    """

    #: Vectors per batched machine call.  Large enough to amortize the
    #: dispatch into the generated ``run_block`` loop, small enough that
    #: ``drop_detected`` still exits early on easy fault batches.
    CHUNK_VECTORS = 128

    def __init__(
        self,
        circuit: Circuit,
        *,
        word_width: int = 32,
        backend: str = "python",
        monitored: Optional[list[str]] = None,
        instrument: str = "all",
        patterns: str = "auto",
        tiles: "int | str" = 1,
        partitions: int = 1,
        partition_workers: Optional[int] = None,
        probes=None,
    ) -> None:
        if tiles != "auto":
            tiles = int(tiles)
            if tiles < 1:
                raise SimulationError(f"tiles must be >= 1: {tiles}")
        if instrument not in ("all", "batch"):
            raise SimulationError(
                f"instrument must be 'all' or 'batch': {instrument!r}"
            )
        if patterns not in ("auto", "packed", "scalar"):
            raise SimulationError(
                f"patterns must be 'auto', 'packed' or 'scalar': "
                f"{patterns!r}"
            )
        self.circuit = circuit
        self.word_width = word_width
        self.backend = backend
        self.instrument = instrument
        self.monitored = (
            list(monitored) if monitored is not None else circuit.outputs
        )
        if not self.monitored:
            raise SimulationError("no monitored outputs to detect with")
        # The uninstrumented program is generated once; instrumentation
        # splices in masking statements (statement objects are
        # immutable, so sharing them across programs is safe).
        self._base, self.variables = generate_pcset_program(
            circuit,
            word_width=word_width,
            monitored=self.monitored,
            emit_outputs=False,
        )
        self._owner_of = {
            identifier: net_name
            for net_name, _t, identifier in self.variables.ordered
        }
        self.lanes_per_batch = word_width - 1
        self.tiles = tiles
        self._all_machine = None
        #: K -> tiled compilation of the shared all-nets program
        #: (instrument="all" only; K=1 lives in ``_all_machine``).
        self._all_tiled: dict = {}
        self._all_nets = sorted(circuit.nets)
        # Packed-mode good-pre-pass memo: (groups, goods).  The good
        # words depend only on the circuit, word width and vectors (the
        # unfaulted splices are identities whichever machine runs
        # them), so repeated run() calls over the same vectors — the
        # sharded grading shape — reuse them instead of re-running the
        # pre-pass per shard.  ``goods`` is normalized to per-group
        # layout (group-major, one word per monitored output), so the
        # memo is valid across tile counts.
        self._goods_memo: Optional[tuple[list[list[int]], list[int]]] = None
        # The instrumentation only splices in &/| masking statements, so
        # pattern-packing eligibility is decided by the base program.
        self._pack_eligible = (
            is_shift_free(self._base) and bool(circuit.inputs)
        )
        if patterns == "packed" and not self._pack_eligible:
            raise SimulationError(
                "patterns='packed' requires a shift-free program with "
                "primary inputs"
            )
        self.patterns = patterns
        if partitions < 1:
            raise SimulationError(f"partitions must be >= 1: {partitions}")
        self.partitions = partitions
        self.partition_workers = partition_workers
        self._partition_settler = None
        #: Good-machine switching probes (see :meth:`good_activity`).
        self.probes = ProbeSpec.coerce(probes)
        self._activity_memo = None

    def _steady_state(self, initial: Sequence[int]) -> Mapping[str, int]:
        """The pre-existing steady state every grading run seeds from.

        With ``partitions > 1`` the settle runs on the partitioned
        compiled engine — bit-identical values (the zero-delay steady
        state of an acyclic circuit is unique), so the fault report is
        unchanged; otherwise the interpreted settle is used.
        """
        if self.partitions <= 1:
            return steady_state(self.circuit, initial)
        if self._partition_settler is None:
            from repro.partition.executor import PartitionedSimulator

            self._partition_settler = PartitionedSimulator(
                self.circuit,
                partitions=self.partitions,
                partition_workers=self.partition_workers,
                backend=self.backend,
                word_width=self.word_width,
            )
        return self._partition_settler.evaluate_all_nets(initial)

    def warm_up(self) -> None:
        """Pre-build and compile the shared all-nets machine.

        A no-op with ``instrument="batch"`` (those machines are
        per-batch by design).  Sharded grading calls this once per
        worker process, so backend compilation — gcc, on the C
        backend — runs once per worker instead of once per shard.
        An explicit ``tiles=K`` warms the K-tile machine too;
        ``"auto"`` can't (K depends on the vector count), so the
        first shard in each worker pays that compile.
        """
        if self.instrument == "all":
            self._machine_for(self._all_nets)
            if isinstance(self.tiles, int) and self.tiles > 1:
                self._machine_for(self._all_nets, self.tiles)

    def batch_counters(self):
        """The shared machine's :class:`BatchCounters`.

        ``None`` until an ``instrument="all"`` machine exists (i.e.
        before any run, or always in ``"batch"`` mode).  Once tiled
        screens have run, an aggregate over the scalar and every
        K-tile machine is returned instead of the live object.
        """
        machine = self._all_machine
        if machine is None:
            return None
        if not self._all_tiled:
            return machine.counters
        from repro.codegen.runtime import BatchCounters

        total = BatchCounters()
        for m in (machine, *self._all_tiled.values()):
            total.batches += m.counters.batches
            total.vectors += m.counters.vectors
            total.seconds += m.counters.seconds
        return total

    def good_activity(
        self,
        vectors: Sequence[Sequence[int]],
        initial: Optional[Sequence[int]] = None,
    ):
        """Fault-free per-net switching activity over ``vectors``.

        Runs the *good* machine once with compiled-in toggle counters
        (a probed PC-set simulator seeded from the ``initial`` steady
        state) and returns its
        :class:`~repro.activity.ActivityReport`.  The counters are
        fault-independent — exactly like the packed good pre-pass —
        so the report is memoized per simulator: sharded grading pays
        one probed pass per worker regardless of shard count, and the
        outcome merged from any shard is bit-identical to the
        single-process run.
        """
        if self.probes is None:
            raise SimulationError(
                "fault simulator was built without probes=; no "
                "good-machine activity to report"
            )
        if initial is None:
            initial = [0] * len(self.circuit.inputs)
        key = (
            tuple(tuple(v & 1 for v in vector) for vector in vectors),
            tuple(v & 1 for v in initial),
        )
        if self._activity_memo is not None and self._activity_memo[0] == key:
            return self._activity_memo[1]
        from repro.pcset.simulator import PCSetSimulator

        with telemetry.span("fault.activity"):
            sim = PCSetSimulator(
                self.circuit,
                word_width=self.word_width,
                backend=self.backend,
                probes=self.probes,
            )
            sim.reset(list(initial))
            sim.apply_vectors([list(vector) for vector in vectors])
            report = sim.activity_report()
        self._activity_memo = (key, report)
        return report

    def _packed_tiles(self, num_groups: int) -> int:
        """Tile count for packed screens over ``num_groups`` groups.

        Clamped to the group count — a detection pass should never be
        mostly padding.
        """
        if self.tiles == "auto":
            tiles = select_tiles(
                num_groups * self.word_width, self.word_width,
                backend=self.backend,
            )
        else:
            tiles = self.tiles
        return max(1, min(tiles, max(1, num_groups)))

    def _machine_for(self, faulted_nets: list[str], tiles: int = 1):
        """(machine, net -> (mask_slot, value_slot)) for a batch."""
        if self.instrument == "batch":
            program = self._instrumented_program(faulted_nets)
            machine = compile_program(program, self.backend, tiles=tiles)
            nets = faulted_nets
        else:
            if tiles == 1:
                machine = self._all_machine
            else:
                machine = self._all_tiled.get(tiles)
            if machine is None:
                program = self._instrumented_program(self._all_nets)
                machine = compile_program(
                    program, self.backend, tiles=tiles
                )
                if tiles == 1:
                    self._all_machine = machine
                else:
                    self._all_tiled[tiles] = machine
            nets = self._all_nets
        base_inputs = len(self._base.inputs)
        slots = {
            net_name: (base_inputs + k, base_inputs + len(nets) + k)
            for k, net_name in enumerate(nets)
        }
        return machine, nets, slots

    # ------------------------------------------------------------------
    def _instrumented_program(
        self, faulted_nets: list[str]
    ) -> Program:
        base = self._base
        program = Program(
            f"{base.name}_faulty",
            word_width=base.word_width,
            inputs=list(base.inputs)
            + [f"{n}__fm" for n in faulted_nets]
            + [f"{n}__fv" for n in faulted_nets],
            mask_assignments=False,
            output_mask=base.word_mask,
        )
        program.state_vars = base.state_vars
        program._state_set = base._state_set
        program.state_init = base.state_init
        program.temp_vars = base.temp_vars
        program._temp_set = base._temp_set

        slot_of_mask = {
            net_name: len(base.inputs) + k
            for k, net_name in enumerate(faulted_nets)
        }
        slot_of_value = {
            net_name: len(base.inputs) + len(faulted_nets) + k
            for k, net_name in enumerate(faulted_nets)
        }
        faulted = set(faulted_nets)

        touched: set[str] = set()

        def mask_stmt(dest: str, net_name: str) -> Assign:
            return Assign(
                dest,
                Bin(
                    "|",
                    Bin("&", Var(dest), Input(slot_of_mask[net_name])),
                    Input(slot_of_value[net_name]),
                ),
            )

        def splice(section: list) -> list:
            out = []
            for stmt in section:
                out.append(stmt)
                if isinstance(stmt, Assign):
                    net_name = self._owner_of.get(stmt.dest)
                    if net_name in faulted:
                        touched.add(net_name)
                        out.append(mask_stmt(stmt.dest, net_name))
            return out

        program.init = splice(base.init)
        program.body = splice(base.body)
        # Nets the program never assigns (constant signals) still need
        # their faulty lanes pinned: mask their variables once per
        # vector at the top of the init section.
        leading: list[Assign] = []
        for net_name, _time, identifier in self.variables.ordered:
            if net_name in faulted and net_name not in touched:
                leading.append(mask_stmt(identifier, net_name))
        if leading:
            program.init = leading + program.init
        program.output = [
            Emit(Var(self.variables.final_var(m)), (m,))
            for m in self.monitored
        ]
        program.validate()
        return program

    # ------------------------------------------------------------------
    def run(
        self,
        vectors: Sequence[Sequence[int]],
        faults: Optional[Sequence[Fault]] = None,
        *,
        initial: Optional[Sequence[int]] = None,
        drop_detected: bool = True,
    ) -> FaultReport:
        """Simulate ``vectors`` against ``faults`` (default: all).

        ``initial`` seeds the pre-existing steady state (default all
        zeros); it is not a detection opportunity.  With
        ``drop_detected`` a batch stops early once all its faults are
        detected.  (In packed-pattern mode detection compares only
        settled values, so ``initial`` cannot influence the report and
        each fault's scan always stops at its first detecting group —
        ``drop_detected`` has nothing further to drop.)
        """
        if faults is None:
            faults = full_fault_list(self.circuit)
        for fault in faults:
            if fault.net not in self.circuit.nets:
                raise SimulationError(f"no such net: {fault.net!r}")
        if initial is None:
            initial = [0] * len(self.circuit.inputs)
        settled = self._steady_state(initial)
        mask = (1 << self.word_width) - 1
        packed = self.patterns == "packed" or (
            self.patterns == "auto" and self._pack_eligible
        )
        if packed:
            groups, lane_counts = pack_patterns(
                [[v & 1 for v in vector] for vector in vectors],
                self.word_width,
            )
            tiles = self._packed_tiles(len(groups))
            if tiles > 1 and telemetry.enabled():
                telemetry.counter("pack.tile.batches")
                telemetry.counter("pack.tile.vectors", len(vectors))
            # Nets in a constant cone keep their settled value in a
            # *state* variable that passes read but (when unfaulted)
            # never recompute; a fault pinned on such a net would
            # poison it for every later fault.  Each scan therefore
            # reloads this replicated steady state, like the scalar
            # mode does per batch.  For input-driven nets the load is
            # scratch (overwritten every pass), so any settled state
            # gives the same — serial-identical — finals.
            state_words = [
                (-(settled[net_name] & 1)) & mask
                for net_name, _t, _i in self.variables.ordered
            ]
            # The good words are fault-independent (every mask input is
            # all-ones, so the splices are identities) — computed once,
            # shared by every batch whichever machine it compiles, and
            # memoized across run() calls over the same vectors.
            goods: Optional[list[int]] = None
            if self._goods_memo is not None and self._goods_memo[0] == groups:
                goods = self._goods_memo[1]

        detected: dict[Fault, int] = {}
        undetected: list[Fault] = []
        for start in range(0, len(faults), self.lanes_per_batch):
            batch = list(faults[start:start + self.lanes_per_batch])
            if packed:
                outcome, goods = self._run_batch_packed(
                    batch, groups, lane_counts, mask, goods, state_words,
                    tiles,
                )
            else:
                with telemetry.span("fault.screen"):
                    outcome = self._run_batch(
                        batch, vectors, initial, settled, mask,
                        drop_detected,
                    )
            for fault, first in zip(batch, outcome):
                if first is None:
                    undetected.append(fault)
                else:
                    detected[fault] = first
        if packed and goods is not None:
            self._goods_memo = (groups, goods)
        return FaultReport(detected, undetected, len(vectors))

    def _run_batch(
        self,
        batch: list[Fault],
        vectors: Sequence[Sequence[int]],
        initial: Sequence[int],
        settled: Mapping[str, int],
        mask: int,
        drop_detected: bool,
    ) -> list[Optional[int]]:
        faulted_nets = sorted({fault.net for fault in batch})
        machine, nets, _slots = self._machine_for(faulted_nets)

        # Lane assignment: lane 0 good, lane k+1 = batch[k].
        fault_mask = {n: mask for n in nets}
        fault_value = {n: 0 for n in nets}
        lane_of: list[int] = []
        for k, fault in enumerate(batch):
            lane = k + 1
            lane_of.append(lane)
            fault_mask[fault.net] &= ~(1 << lane) & mask
            if fault.value:
                fault_value[fault.net] |= 1 << lane

        extra = (
            [fault_mask[n] for n in nets]
            + [fault_value[n] for n in nets]
        )

        def vector_words(vector: Sequence[int]) -> list[int]:
            return [(-(v & 1)) & mask for v in vector] + extra

        # Seed: replicated good steady state, then one warm-up pass on
        # the initial vector lets every faulty lane settle to its own
        # steady state (one pass suffices: the program evaluates in
        # levelized order with the fault masks applied at each write).
        machine.load_state([
            (-(settled[net_name] & 1)) & mask
            for net_name, _t, _i in self.variables.ordered
        ])
        machine.step(vector_words(initial))

        # Vectors run through the machine in chunks: one batched
        # ``step_many`` call keeps the vector loop inside the generated
        # code, and the detection scan walks the collected outputs
        # afterwards.  Chunking (rather than one giant batch) preserves
        # the drop_detected early exit to within a chunk.
        first_detection: list[Optional[int]] = [None] * len(batch)
        remaining = len(batch)
        for start in range(0, len(vectors), self.CHUNK_VECTORS):
            chunk = vectors[start:start + self.CHUNK_VECTORS]
            outputs = machine.step_many(
                [vector_words(vector) for vector in chunk], masked=True
            )
            done = False
            for offset, out in enumerate(outputs):
                diff = 0
                for word in out:
                    good = -(word & 1)  # lane-0 value replicated
                    diff |= (word ^ good) & mask
                if not diff:
                    continue
                for k, lane in enumerate(lane_of):
                    if first_detection[k] is None and (diff >> lane) & 1:
                        first_detection[k] = start + offset
                        remaining -= 1
                if drop_detected and remaining == 0:
                    done = True
                    break
            if done:
                break
        return first_detection

    # ------------------------------------------------------------------
    # packed-pattern mode (PPSFP shape)
    # ------------------------------------------------------------------
    def _run_batch_packed(
        self,
        batch: list[Fault],
        groups: list[list[int]],
        lane_counts: list[int],
        mask: int,
        goods: Optional[list[int]],
        state_words: list[int],
        tiles: int,
    ) -> tuple[list[Optional[int]], list[int]]:
        """First detections for a fault batch, patterns in the lanes.

        Input-driven finals depend on the current lane inputs alone
        (the circuit is acyclic and the fault is pinned at every
        write), so no warm-up pass is needed.  Constant-cone finals
        live in state variables instead; ``state_words`` (the
        replicated good steady state) is reloaded before every scan so
        a fault pinned on a constant net cannot leak into the next
        fault's comparison.

        With ``tiles=K`` each compiled pass carries K consecutive
        pattern groups (tile ``t`` of output slot ``o`` sits at
        ``o*K + t``); the scan walks tiles in group order, so the
        first detecting group — and within it the lowest detecting
        lane — is found exactly as in the one-group-per-pass loop.
        """
        faulted_nets = sorted({fault.net for fault in batch})
        machine, nets, _slots = self._machine_for(faulted_nets, tiles)
        if goods is None:
            with telemetry.span("fault.good"):
                goods = self._good_packed(
                    machine, nets, groups, lane_counts, state_words, tiles
                )
        n_out = machine.num_outputs // tiles
        tiled_state = (
            state_words if tiles == 1
            else [word for word in state_words for _ in range(tiles)]
        )
        first_detection: list[Optional[int]] = []
        for fault in batch:
            with telemetry.span("fault.screen"):
                # Pin the fault in *every* lane: FMASK drops to zero
                # and FVAL replicates the stuck value across the word.
                extra = [0 if n == fault.net else mask for n in nets] + [
                    (mask if fault.value else 0) if n == fault.net else 0
                    for n in nets
                ]
                machine.load_state(tiled_state)
                first: Optional[int] = None
                for base in range(0, len(groups), tiles):
                    count = min(tiles, len(groups) - base)
                    out: list[int] = []
                    machine.run_packed_block(
                        [self._tiled_row(groups, base, tiles, extra)],
                        out,
                        vectors_represented=sum(
                            lane_counts[base:base + count]
                        ),
                    )
                    for t in range(count):
                        g = base + t
                        diff = 0
                        for o in range(n_out):
                            diff |= (
                                out[o * tiles + t] ^ goods[g * n_out + o]
                            )
                        lanes = lane_counts[g]
                        diff &= (
                            mask if lanes == self.word_width
                            else (1 << lanes) - 1
                        )
                        if diff:
                            lowest = (diff & -diff).bit_length() - 1
                            first = g * self.word_width + lowest
                            break
                    if first is not None:
                        break
                first_detection.append(first)
        return first_detection, goods

    def _tiled_row(
        self,
        groups: list[list[int]],
        base: int,
        tiles: int,
        extra: list[int],
    ) -> list[int]:
        """One slot-major pass row: groups ``base..base+K-1`` + extras.

        Pattern slot ``s`` tile ``t`` carries group ``base+t``'s word;
        the fault mask/value slots are replicated across tiles (the
        same fault is pinned in every tile).  Short tails pad with
        all-zeros groups whose outputs the scan never reads.
        """
        if tiles == 1:
            return list(groups[base]) + extra
        num_inputs = len(self._base.inputs)
        row: list[int] = []
        for s in range(num_inputs):
            for t in range(tiles):
                g = base + t
                row.append(groups[g][s] if g < len(groups) else 0)
        for word in extra:
            row.extend([word] * tiles)
        return row

    def _good_packed(
        self,
        machine,
        nets: list[str],
        groups: list[list[int]],
        lane_counts: list[int],
        state_words: list[int],
        tiles: int = 1,
    ) -> list[int]:
        """Good-machine pre-pass: output words in per-group layout.

        All-ones masks and zero values leave every lane unfaulted, so
        these are the fault-free settled outputs of every pattern.
        Tiled passes are de-interleaved back to group-major order
        (``goods[g * n_out + o]``) so detection scans — and the
        cross-run memo — are independent of the tile count.
        """
        mask = (1 << self.word_width) - 1
        extra = [mask] * len(nets) + [0] * len(nets)
        flat: list[int] = []
        if groups:
            machine.load_state(
                state_words if tiles == 1
                else [word for word in state_words for _ in range(tiles)]
            )
            machine.run_packed_block(
                [
                    self._tiled_row(groups, base, tiles, extra)
                    for base in range(0, len(groups), tiles)
                ],
                flat,
                vectors_represented=sum(lane_counts),
            )
        if tiles == 1:
            return flat
        n_out = machine.num_outputs // tiles
        goods: list[int] = []
        for g in range(len(groups)):
            pass_index, t = divmod(g, tiles)
            base = pass_index * n_out * tiles
            goods.extend(
                flat[base + o * tiles + t] for o in range(n_out)
            )
        return goods


def serial_fault_simulation(
    circuit: Circuit,
    vectors: Sequence[Sequence[int]],
    faults: Optional[Sequence[Fault]] = None,
    *,
    initial: Optional[Sequence[int]] = None,
) -> FaultReport:
    """Brute-force reference: one event-driven run per fault."""
    if faults is None:
        faults = full_fault_list(circuit)
    if initial is None:
        initial = [0] * len(circuit.inputs)

    good = EventDrivenSimulator(circuit)
    good.reset(initial)
    good_outputs: list[list[int]] = []
    for vector in vectors:
        good.apply_vector(vector)
        values = good.output_values()
        good_outputs.append([values[n] for n in circuit.outputs])

    detected: dict[Fault, int] = {}
    undetected: list[Fault] = []
    for fault in faults:
        faulty_circuit = inject_stuck_at(circuit, fault)
        sim = EventDrivenSimulator(faulty_circuit)
        sim.reset(initial)
        first: Optional[int] = None
        for index, vector in enumerate(vectors):
            sim.apply_vector(vector)
            values = sim.output_values()
            observed = [values[n] for n in faulty_circuit.outputs]
            if observed != good_outputs[index]:
                first = index
                break
        if first is None:
            undetected.append(fault)
        else:
            detected[fault] = first
    return FaultReport(detected, undetected, len(vectors))


def run_fault_simulation(
    circuit: Circuit,
    vectors: Sequence[Sequence[int]],
    faults: Optional[Sequence[Fault]] = None,
    *,
    word_width: int = 32,
    backend: str = "python",
    initial: Optional[Sequence[int]] = None,
    patterns: str = "auto",
    tiles: "int | str" = 1,
    workers: int = 1,
    shards: Optional[int] = None,
    mp_start: str = "auto",
    shard_timeout: Optional[float] = None,
    partitions: int = 1,
    partition_workers: Optional[int] = None,
    probes=None,
) -> FaultReport:
    """Convenience wrapper around :class:`ParallelFaultSimulator`.

    With ``workers > 1`` the fault list is sharded across a worker
    pool (:mod:`repro.faults.sharding`) and the merged report — a
    :class:`~repro.faults.sharding.ShardedFaultReport` — is
    bit-identical to the single-process run.  ``shards``, ``mp_start``
    and ``shard_timeout`` tune that path and are ignored otherwise.
    ``partitions``/``partition_workers`` run the steady-state settle on
    the partitioned compiled engine (bit-identical report; see
    :mod:`repro.partition`).  ``tiles`` widens the packed-pattern
    screens to K pattern groups per compiled pass (``"auto"`` picks K
    from the vector count; bit-identical report at every K).

    An explicitly empty fault list short-circuits to an empty report —
    no simulator is built, no program compiled, no pool spun up (the
    sharded path likewise returns its empty merged report inline, so
    the ``workers > 1`` report type stays :class:`ShardedFaultReport`).

    ``probes`` additionally grades *switching activity*: the fault-free
    machine runs once with compiled-in toggle counters and the report
    gains an ``activity`` attribute
    (:class:`~repro.activity.ActivityReport`) — in sharded mode the
    per-net counters ride the shard outcomes and the parent keeps the
    lowest-indexed copy, bit-identical to the single-process run.
    """
    if faults is not None:
        faults = list(faults)
        if not faults and workers <= 1:
            return FaultReport({}, [], len(vectors))
    if workers > 1:
        from repro.faults.sharding import run_sharded_fault_simulation

        return run_sharded_fault_simulation(
            circuit, vectors, faults,
            word_width=word_width, backend=backend, initial=initial,
            patterns=patterns, tiles=tiles, workers=workers, shards=shards,
            mp_start=mp_start, shard_timeout=shard_timeout,
            partitions=partitions, partition_workers=partition_workers,
            probes=probes,
        )
    simulator = ParallelFaultSimulator(
        circuit, word_width=word_width, backend=backend, patterns=patterns,
        tiles=tiles,
        partitions=partitions, partition_workers=partition_workers,
        probes=probes,
    )
    report = simulator.run(vectors, faults, initial=initial)
    report.counters = simulator.batch_counters()
    if simulator.probes is not None:
        report.activity = simulator.good_activity(vectors, initial)
    return report
