"""Random-pattern test generation and test-set compaction.

The production use of a fast fault simulator: grade random patterns,
keep the ones that catch something, stop when coverage saturates.
Because detection here compares *settled* output values — which for a
combinational circuit depend only on the current vector — detection is
order-independent, so dropping useless vectors is sound.

Two entry points:

- :func:`generate_tests` — grow a test set from seeded random vectors
  until a coverage target or a budget is hit (random-pattern test
  generation, the standard ATPG front-end);
- :func:`compact_tests` — shrink an existing test set without losing
  coverage (first-detection selection plus an optional reverse
  elimination pass).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import SimulationError
from repro.faults.model import Fault, full_fault_list
from repro.faults.simulator import FaultReport, ParallelFaultSimulator
from repro.harness.vectors import random_vectors
from repro.netlist.circuit import Circuit

__all__ = ["TestSet", "generate_tests", "compact_tests"]


class TestSet:
    """A graded test set: vectors plus the coverage they achieve."""

    def __init__(
        self,
        vectors: list[list[int]],
        report: FaultReport,
    ) -> None:
        self.vectors = vectors
        self.report = report

    @property
    def coverage(self) -> float:
        return self.report.coverage

    def __len__(self) -> int:
        return len(self.vectors)

    def __repr__(self) -> str:
        return (
            f"TestSet({len(self.vectors)} vectors, "
            f"coverage {self.coverage:.1%})"
        )


def generate_tests(
    circuit: Circuit,
    *,
    target_coverage: float = 1.0,
    max_vectors: int = 1000,
    chunk: int = 64,
    seed: int = 0,
    faults: Optional[Sequence[Fault]] = None,
    word_width: int = 32,
    backend: str = "python",
) -> TestSet:
    """Random-pattern test generation with fault dropping.

    Draws seeded random vectors in chunks, keeps only the vectors that
    first-detect at least one remaining fault, and stops when
    ``target_coverage`` of the fault universe is detected or
    ``max_vectors`` candidates have been graded.
    """
    if not 0.0 <= target_coverage <= 1.0:
        raise SimulationError("target_coverage must be within [0, 1]")
    universe = (
        list(faults) if faults is not None else full_fault_list(circuit)
    )
    simulator = ParallelFaultSimulator(
        circuit, word_width=word_width, backend=backend
    )
    remaining = list(universe)
    detected: dict[Fault, int] = {}
    kept: list[list[int]] = []
    drawn = 0
    width = len(circuit.inputs)
    while (
        remaining
        and drawn < max_vectors
        and (len(universe) - len(remaining)) / len(universe)
        < target_coverage
    ):
        batch = random_vectors(
            min(chunk, max_vectors - drawn), width, seed + drawn
        )
        drawn += len(batch)
        report = simulator.run(batch, remaining, drop_detected=False)
        useful = sorted(set(report.detected.values()))
        for index in useful:
            kept.append(batch[index])
        offset = len(kept) - len(useful)
        for fault, index in report.detected.items():
            detected[fault] = offset + useful.index(index)
        remaining = [f for f in remaining if f not in report.detected]
    final = FaultReport(detected, remaining, len(kept))
    return TestSet(kept, final)


def compact_tests(
    circuit: Circuit,
    vectors: Sequence[Sequence[int]],
    *,
    faults: Optional[Sequence[Fault]] = None,
    word_width: int = 32,
    backend: str = "python",
    reverse_pass: bool = True,
) -> TestSet:
    """Shrink ``vectors`` without losing stuck-at coverage.

    Stage 1 keeps each fault's first detector.  Stage 2 (optional)
    walks the kept set backwards and drops any vector whose faults are
    all covered by the others — the classic reverse-order refinement.
    """
    universe = (
        list(faults) if faults is not None else full_fault_list(circuit)
    )
    simulator = ParallelFaultSimulator(
        circuit, word_width=word_width, backend=backend
    )
    baseline = simulator.run(vectors, universe, drop_detected=False)
    keep_indexes = sorted(set(baseline.detected.values()))
    kept = [list(vectors[i]) for i in keep_indexes]

    detectable = list(baseline.detected)
    if reverse_pass and len(kept) > 1:
        for position in range(len(kept) - 1, -1, -1):
            trial = kept[:position] + kept[position + 1:]
            report = simulator.run(trial, detectable,
                                   drop_detected=False)
            if len(report.detected) == len(detectable):
                kept = trial
    final = simulator.run(kept, universe, drop_detected=False)
    return TestSet(kept, final)
