"""The single-stuck-at fault model.

A :class:`Fault` pins one *net* to a constant (stem faults; per-branch
faults are not modelled).  :func:`full_fault_list` enumerates both
polarities for every net; :func:`inject_stuck_at` builds the faulty
circuit used by the serial reference simulator.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import NetlistError, SimulationError
from repro.logic import GateType
from repro.netlist.circuit import Circuit

__all__ = ["Fault", "full_fault_list", "inject_stuck_at"]


class Fault:
    """Net ``net`` stuck at ``value`` (0 or 1)."""

    __slots__ = ("net", "value")

    def __init__(self, net: str, value: int) -> None:
        if value not in (0, 1):
            raise SimulationError(f"stuck value must be 0 or 1: {value}")
        self.net = net
        self.value = value

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Fault)
            and other.net == self.net
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.net, self.value))

    def __repr__(self) -> str:
        return f"{self.net}/sa{self.value}"


def full_fault_list(
    circuit: Circuit, nets: Optional[Iterable[str]] = None
) -> list[Fault]:
    """Both stuck-at polarities for every (or each given) net."""
    names = list(nets) if nets is not None else list(circuit.nets)
    for name in names:
        if name not in circuit.nets:
            raise NetlistError(f"no such net: {name!r}")
    return [
        Fault(name, value) for name in names for value in (0, 1)
    ]


def inject_stuck_at(circuit: Circuit, fault: Fault) -> Circuit:
    """The faulty circuit: every reader of ``fault.net`` sees a constant.

    The original driver (if any) still computes the fault-free value
    into a renamed shadow net, preserving circuit structure; the
    monitored-output list follows the fault (a stuck monitored net
    reports the stuck value).  Used by the serial reference simulator.
    """
    if fault.net not in circuit.nets:
        raise NetlistError(f"no such net: {fault.net!r}")
    const_type = GateType.CONST1 if fault.value else GateType.CONST0
    stuck_name = f"{fault.net}__sa{fault.value}"
    shadow_name = f"{fault.net}__free"

    faulty = Circuit(f"{circuit.name}__{fault.net}_sa{fault.value}")
    for net_name in circuit.inputs:
        faulty.add_net(net_name, is_input=True)
    faulty.add_gate(const_type, stuck_name, [])

    def read(name: str) -> str:
        return stuck_name if name == fault.net else name

    for gate in circuit.gates.values():
        output = shadow_name if gate.output == fault.net else gate.output
        faulty.add_gate(
            gate.gate_type,
            output,
            [read(i) for i in gate.inputs],
            name=gate.name,
        )
    for net_name in circuit.outputs:
        faulty.add_net(read(net_name), is_output=True)
    faulty.validate()
    return faulty
