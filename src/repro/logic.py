"""Two-valued and three-valued gate-level logic.

The compiled techniques of the paper use a two-valued (0/1) logic model;
the interpreted event-driven baseline is provided in both a two-valued and
a three-valued (0/1/X) flavour, matching the first two columns of Fig. 19.

Two-valued values are the Python ints ``0`` and ``1``.  Three-valued logic
adds the unknown value :data:`X`, represented by the int ``2`` so that
values remain small ints and can index lookup tables.
"""

from __future__ import annotations

import enum
from typing import Callable, Sequence

__all__ = [
    "GateType",
    "X",
    "eval_gate",
    "eval_gate3",
    "gate_function",
    "gate_function3",
    "bitwise_expression",
    "INVERTING_TYPES",
    "CONTROLLING_VALUE",
]

#: The "unknown" value of three-valued logic.
X = 2


class GateType(enum.Enum):
    """The gate primitives understood by every simulator in this library.

    The set matches what ISCAS85 ``.bench`` files use, plus ``CONST0`` /
    ``CONST1`` for constant signals (the paper's levelization assigns these
    level zero together with the primary inputs).
    """

    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"
    CONST0 = "CONST0"
    CONST1 = "CONST1"

    @property
    def min_inputs(self) -> int:
        if self in (GateType.CONST0, GateType.CONST1):
            return 0
        if self in (GateType.NOT, GateType.BUF):
            return 1
        return 2

    @property
    def max_inputs(self) -> int | None:
        """Maximum fan-in, or ``None`` for unbounded."""
        if self in (GateType.CONST0, GateType.CONST1):
            return 0
        if self in (GateType.NOT, GateType.BUF):
            return 1
        return None

    @property
    def is_inverting(self) -> bool:
        return self in INVERTING_TYPES


INVERTING_TYPES = frozenset(
    {GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT}
)

#: For AND/NAND the controlling input value is 0; for OR/NOR it is 1.
#: XOR-family and unary gates have no controlling value (``None``).
CONTROLLING_VALUE = {
    GateType.AND: 0,
    GateType.NAND: 0,
    GateType.OR: 1,
    GateType.NOR: 1,
    GateType.XOR: None,
    GateType.XNOR: None,
    GateType.NOT: None,
    GateType.BUF: None,
    GateType.CONST0: None,
    GateType.CONST1: None,
}


def _and(values: Sequence[int]) -> int:
    result = ~0
    for v in values:
        result &= v
    return result


def _or(values: Sequence[int]) -> int:
    result = 0
    for v in values:
        result |= v
    return result


def _xor(values: Sequence[int]) -> int:
    result = 0
    for v in values:
        result ^= v
    return result


def eval_gate(gate_type: GateType, values: Sequence[int]) -> int:
    """Evaluate a gate on two-valued (0/1) inputs.

    ``values`` may actually be arbitrary-width bit vectors packed into
    Python ints: all operators used are bit-wise, so this one function
    serves both scalar and bit-parallel evaluation.  The result is masked
    to the width of the inputs only for scalar (single-bit) use; callers
    doing bit-parallel work must mask with their own field mask.
    """
    if gate_type is GateType.AND:
        return _and(values)
    if gate_type is GateType.NAND:
        return ~_and(values)
    if gate_type is GateType.OR:
        return _or(values)
    if gate_type is GateType.NOR:
        return ~_or(values)
    if gate_type is GateType.XOR:
        return _xor(values)
    if gate_type is GateType.XNOR:
        return ~_xor(values)
    if gate_type is GateType.NOT:
        return ~values[0]
    if gate_type is GateType.BUF:
        return values[0]
    if gate_type is GateType.CONST0:
        return 0
    if gate_type is GateType.CONST1:
        return ~0
    raise ValueError(f"unknown gate type: {gate_type!r}")


def eval_gate_scalar(gate_type: GateType, values: Sequence[int]) -> int:
    """Evaluate a gate on single-bit 0/1 inputs, returning 0 or 1."""
    return eval_gate(gate_type, values) & 1


def _and3(values: Sequence[int]) -> int:
    # 0 dominates; otherwise X dominates 1.
    saw_x = False
    for v in values:
        if v == 0:
            return 0
        if v == X:
            saw_x = True
    return X if saw_x else 1


def _or3(values: Sequence[int]) -> int:
    saw_x = False
    for v in values:
        if v == 1:
            return 1
        if v == X:
            saw_x = True
    return X if saw_x else 0


def _xor3(values: Sequence[int]) -> int:
    result = 0
    for v in values:
        if v == X:
            return X
        result ^= v
    return result


def _not3(v: int) -> int:
    if v == X:
        return X
    return 1 - v


def eval_gate3(gate_type: GateType, values: Sequence[int]) -> int:
    """Evaluate a gate in three-valued (0/1/X) logic.

    Uses the standard pessimistic Kleene extension: a controlling input
    decides the output even when other inputs are X; otherwise any X input
    makes the output X.
    """
    if gate_type is GateType.AND:
        return _and3(values)
    if gate_type is GateType.NAND:
        return _not3(_and3(values))
    if gate_type is GateType.OR:
        return _or3(values)
    if gate_type is GateType.NOR:
        return _not3(_or3(values))
    if gate_type is GateType.XOR:
        return _xor3(values)
    if gate_type is GateType.XNOR:
        return _not3(_xor3(values))
    if gate_type is GateType.NOT:
        return _not3(values[0])
    if gate_type is GateType.BUF:
        return values[0]
    if gate_type is GateType.CONST0:
        return 0
    if gate_type is GateType.CONST1:
        return 1
    raise ValueError(f"unknown gate type: {gate_type!r}")


def gate_function(gate_type: GateType) -> Callable[[Sequence[int]], int]:
    """Return a callable evaluating ``gate_type`` on 0/1 scalars."""
    return lambda values: eval_gate(gate_type, values) & 1


def gate_function3(gate_type: GateType) -> Callable[[Sequence[int]], int]:
    """Return a callable evaluating ``gate_type`` on 0/1/X scalars."""
    return lambda values: eval_gate3(gate_type, values)


_C_OPERATOR = {
    GateType.AND: "&",
    GateType.NAND: "&",
    GateType.OR: "|",
    GateType.NOR: "|",
    GateType.XOR: "^",
    GateType.XNOR: "^",
}


def bitwise_expression(gate_type: GateType, operands: Sequence[str]) -> str:
    """Render a gate as a C-style bit-wise expression over operand names.

    This is the textual form used in the paper's code listings (Figs. 1,
    4, 6, 8, 10): ``&``, ``|``, ``^`` and ``~``.  Both the Python and the
    C backends accept the produced text unchanged, since the operators are
    shared by the two languages.
    """
    if gate_type is GateType.CONST0:
        return "0"
    if gate_type is GateType.CONST1:
        return "~0"
    if gate_type is GateType.BUF:
        (operand,) = operands
        return operand
    if gate_type is GateType.NOT:
        (operand,) = operands
        return f"~{operand}"
    op = _C_OPERATOR[gate_type]
    body = f" {op} ".join(operands)
    if gate_type.is_inverting:
        return f"~({body})"
    return body
