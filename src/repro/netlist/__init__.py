"""Gate-level netlist substrate.

This subpackage provides the circuit data model shared by every simulator
in the library, ISCAS85 ``.bench`` parsing and writing, structured and
random circuit generators, the synthetic ISCAS85-analog benchmark suite,
and the flip-flop-breaking transform for synchronous sequential circuits.
"""

from repro.netlist.nets import Gate, Net
from repro.netlist.circuit import Circuit
from repro.netlist.builder import CircuitBuilder
from repro.netlist.bench import parse_bench, parse_bench_file, write_bench
from repro.netlist.sequential import SequentialCircuit, break_at_flipflops
from repro.netlist.transform import (
    fanin_cone,
    propagate_constants,
    prune_dead_logic,
)

__all__ = [
    "Gate",
    "Net",
    "Circuit",
    "CircuitBuilder",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "SequentialCircuit",
    "break_at_flipflops",
    "fanin_cone",
    "propagate_constants",
    "prune_dead_logic",
]
