"""A small fluent API for building circuits in code.

Examples from the paper, like the Fig. 4 network, read almost verbatim::

    b = CircuitBuilder("fig4")
    a, bb, c = b.inputs("A", "B", "C")
    d = b.and_("D", a, bb)
    e = b.and_("E", d, c)
    b.outputs(e)
    circuit = b.build()
"""

from __future__ import annotations

from typing import Optional

from repro.logic import GateType
from repro.netlist.circuit import Circuit

__all__ = ["CircuitBuilder"]


class CircuitBuilder:
    """Incrementally construct a :class:`Circuit`.

    Gate-adding helpers return the output net name so calls compose.
    ``build()`` validates and returns the finished circuit.
    """

    def __init__(self, name: str = "circuit") -> None:
        self._circuit = Circuit(name)
        self._auto = 0

    # ------------------------------------------------------------------
    def input(self, name: str) -> str:
        """Declare a primary input net and return its name."""
        self._circuit.add_net(name, is_input=True)
        return name

    def inputs(self, *names: str) -> list[str]:
        """Declare several primary inputs at once."""
        return [self.input(n) for n in names]

    def output(self, name: str) -> str:
        """Mark a net as a primary (monitored) output."""
        self._circuit.add_net(name, is_output=True)
        return name

    def outputs(self, *names: str) -> list[str]:
        return [self.output(n) for n in names]

    def fresh(self, prefix: str = "n") -> str:
        """Generate a fresh unique net name."""
        while True:
            self._auto += 1
            name = f"{prefix}{self._auto}"
            if name not in self._circuit.nets:
                return name

    # ------------------------------------------------------------------
    def gate(
        self,
        gate_type: GateType,
        output: Optional[str],
        *inputs: str,
    ) -> str:
        """Add a gate; ``output=None`` allocates a fresh net name."""
        out = output if output is not None else self.fresh()
        self._circuit.add_gate(gate_type, out, inputs)
        return out

    def and_(self, output: Optional[str], *inputs: str) -> str:
        return self.gate(GateType.AND, output, *inputs)

    def nand(self, output: Optional[str], *inputs: str) -> str:
        return self.gate(GateType.NAND, output, *inputs)

    def or_(self, output: Optional[str], *inputs: str) -> str:
        return self.gate(GateType.OR, output, *inputs)

    def nor(self, output: Optional[str], *inputs: str) -> str:
        return self.gate(GateType.NOR, output, *inputs)

    def xor(self, output: Optional[str], *inputs: str) -> str:
        return self.gate(GateType.XOR, output, *inputs)

    def xnor(self, output: Optional[str], *inputs: str) -> str:
        return self.gate(GateType.XNOR, output, *inputs)

    def not_(self, output: Optional[str], input_net: str) -> str:
        return self.gate(GateType.NOT, output, input_net)

    def buf(self, output: Optional[str], input_net: str) -> str:
        return self.gate(GateType.BUF, output, input_net)

    def const0(self, output: Optional[str] = None) -> str:
        return self.gate(GateType.CONST0, output)

    def const1(self, output: Optional[str] = None) -> str:
        return self.gate(GateType.CONST1, output)

    # ------------------------------------------------------------------
    def build(self, *, validate: bool = True) -> Circuit:
        """Finish construction; validates structure by default."""
        if validate:
            self._circuit.validate()
        return self._circuit
