"""Netlist transformations: cones, pruning, constant propagation.

Standard structural utilities every netlist library needs, used here
to prepare circuits for the compiled simulators (dead logic inflates
every generated program; constants that reach gate inputs can be
folded before code generation) and to slice out the fan-in cone of a
net for debugging a mismatch.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import NetlistError
from repro.logic import CONTROLLING_VALUE, GateType
from repro.netlist.circuit import Circuit

__all__ = [
    "fanin_cone",
    "prune_dead_logic",
    "propagate_constants",
]


def fanin_cone(
    circuit: Circuit,
    targets: Iterable[str],
    name: Optional[str] = None,
) -> Circuit:
    """The sub-circuit feeding ``targets`` (transitive fan-in).

    Primary inputs of the cone are exactly the original primary inputs
    it reaches; the targets become the cone's monitored outputs.
    Useful for isolating one mismatching output during debugging.
    """
    target_list = list(targets)
    for net_name in target_list:
        if net_name not in circuit.nets:
            raise NetlistError(f"no such net: {net_name!r}")
    keep: set[str] = set()
    stack = list(target_list)
    while stack:
        net_name = stack.pop()
        if net_name in keep:
            continue
        keep.add(net_name)
        driver = circuit.nets[net_name].driver
        if driver is not None:
            stack.extend(circuit.gates[driver].inputs)
    cone = Circuit(name if name is not None else f"{circuit.name}_cone")
    for net_name in circuit.inputs:
        if net_name in keep:
            cone.add_net(net_name, is_input=True)
    for gate in circuit.topological_gates():
        if gate.output in keep:
            cone.add_gate(
                gate.gate_type, gate.output, gate.inputs, name=gate.name
            )
    for net_name in target_list:
        cone.add_net(net_name, is_output=True)
    cone.validate()
    return cone


def prune_dead_logic(
    circuit: Circuit, name: Optional[str] = None
) -> Circuit:
    """Drop gates and nets that cannot reach any monitored output.

    Primary inputs are kept even when unused (the interface is part of
    the contract); everything else outside the monitored cone goes.
    """
    if not circuit.outputs:
        raise NetlistError("circuit has no monitored outputs to keep")
    pruned = fanin_cone(
        circuit, circuit.outputs,
        name if name is not None else f"{circuit.name}_pruned",
    )
    # Re-add unused primary inputs so the vector interface is stable.
    for net_name in circuit.inputs:
        pruned.add_net(net_name, is_input=True)
    # Preserve the original output declaration order.
    assert pruned.outputs == circuit.outputs
    return pruned


def propagate_constants(
    circuit: Circuit, name: Optional[str] = None
) -> Circuit:
    """Fold constant signals through the logic.

    Gates whose value is decided by constant inputs (a controlling
    constant, or all inputs constant) become constants themselves;
    constants feeding non-controlling positions are dropped from the
    operand list where the gate type allows it.  Gate *names* of
    surviving gates are preserved.  The result computes the same
    function on every vector.
    """
    folded = Circuit(name if name is not None else f"{circuit.name}_cp")
    for net_name in circuit.inputs:
        folded.add_net(net_name, is_input=True)

    constant: dict[str, int] = {}

    def emit_const(output: str, value: int, gate_name: str) -> None:
        constant[output] = value
        folded.add_gate(
            GateType.CONST1 if value else GateType.CONST0,
            output, [], name=gate_name,
        )

    for gate in circuit.topological_gates():
        gate_type = gate.gate_type
        if gate_type is GateType.CONST0:
            emit_const(gate.output, 0, gate.name)
            continue
        if gate_type is GateType.CONST1:
            emit_const(gate.output, 1, gate.name)
            continue

        const_inputs = [
            constant[i] for i in gate.inputs if i in constant
        ]
        live_inputs = [i for i in gate.inputs if i not in constant]

        control = CONTROLLING_VALUE.get(gate_type)
        inverting = gate_type.is_inverting
        if control is not None and control in const_inputs:
            emit_const(gate.output, 1 - control if inverting else control,
                       gate.name)
            continue
        if not live_inputs:
            # All inputs constant: evaluate outright.
            from repro.logic import eval_gate

            value = eval_gate(gate_type, const_inputs) & 1
            emit_const(gate.output, value, gate.name)
            continue
        if gate_type in (GateType.NOT, GateType.BUF):
            folded.add_gate(gate_type, gate.output, live_inputs,
                            name=gate.name)
            continue
        if gate_type in (GateType.XOR, GateType.XNOR):
            # Constant XOR operands flip or keep the parity.
            parity = sum(const_inputs) % 2
            effective = gate_type
            if parity:
                effective = (GateType.XNOR
                             if gate_type is GateType.XOR
                             else GateType.XOR)
            if len(live_inputs) == 1:
                unary = (GateType.BUF if effective is GateType.XOR
                         else GateType.NOT)
                folded.add_gate(unary, gate.output, live_inputs,
                                name=gate.name)
            else:
                folded.add_gate(effective, gate.output, live_inputs,
                                name=gate.name)
            continue
        # AND/NAND/OR/NOR with only non-controlling constants left:
        # those operands are identities and may be dropped.
        if len(live_inputs) == 1:
            unary = GateType.NOT if inverting else GateType.BUF
            folded.add_gate(unary, gate.output, live_inputs,
                            name=gate.name)
        else:
            folded.add_gate(gate_type, gate.output, live_inputs,
                            name=gate.name)

    for net_name in circuit.outputs:
        folded.add_net(net_name, is_output=True)
    folded.validate()
    return folded
