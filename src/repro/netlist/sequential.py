"""Synchronous sequential circuits, handled per §1 of the paper.

    "our algorithms can be applied to a wide variety of synchronous
    sequential circuits by requiring that any cycle in the network contain
    at least one flip-flop.  The circuit could then be broken at the
    flip-flops by treating the flip-flop inputs as primary outputs and the
    outputs as primary inputs."

:class:`SequentialCircuit` wraps the broken combinational core together
with the flip-flop mapping, and provides a clocked ``step`` interface on
top of any per-vector combinational simulator.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit

__all__ = ["SequentialCircuit", "break_at_flipflops"]


class SequentialCircuit:
    """A clocked circuit = combinational core + D flip-flops.

    Attributes
    ----------
    core:
        The acyclic combinational circuit.  Each flip-flop's Q pin is a
        pseudo primary input of the core; each D pin is a pseudo primary
        output.
    flipflops:
        Mapping ``q_net -> d_net``.
    external_inputs / external_outputs:
        The circuit's true primary inputs and outputs (excluding the
        pseudo pins introduced by breaking the flip-flops).
    """

    def __init__(
        self,
        core: Circuit,
        flipflops: Mapping[str, str],
        external_outputs: Optional[list[str]] = None,
    ) -> None:
        self.core = core
        self.flipflops = dict(flipflops)
        q_nets = set(self.flipflops)
        d_nets = set(self.flipflops.values())
        self.external_inputs = [
            n for n in core.inputs if n not in q_nets
        ]
        if external_outputs is None:
            external_outputs = [
                n for n in core.outputs if n not in d_nets
            ]
        self.external_outputs = list(external_outputs)
        for q_net, d_net in self.flipflops.items():
            if q_net not in core.nets or not core.nets[q_net].is_input:
                raise NetlistError(
                    f"flip-flop Q net {q_net!r} is not a core input"
                )
            if d_net not in core.nets:
                raise NetlistError(
                    f"flip-flop D net {d_net!r} is not in the core"
                )

    @property
    def num_flipflops(self) -> int:
        return len(self.flipflops)

    def initial_state(self, value: int = 0) -> dict[str, int]:
        """An all-``value`` flip-flop state (keyed by Q net).

        ``value`` is masked to a single bit, matching what
        ``CompiledSequentialSimulator.reset`` does with explicit states.
        """
        value &= 1
        return {q: value for q in self.flipflops}

    def step(
        self,
        evaluate: Callable[[dict[str, int]], Mapping[str, int]],
        state: Mapping[str, int],
        inputs: Mapping[str, int],
    ) -> tuple[dict[str, int], dict[str, int]]:
        """Run one clock cycle.

        ``evaluate`` maps a full core input assignment to the settled
        values of (at least) the core's primary outputs — any of this
        library's combinational simulators can be wrapped to fit.

        Returns ``(next_state, external_output_values)``.
        """
        core_inputs = dict(inputs)
        for q_net in self.flipflops:
            core_inputs[q_net] = state[q_net]
        settled = evaluate(core_inputs)
        next_state = {
            q_net: settled[d_net] for q_net, d_net in self.flipflops.items()
        }
        outputs = {o: settled[o] for o in self.external_outputs}
        return next_state, outputs

    def __repr__(self) -> str:
        return (
            f"SequentialCircuit({self.core.name!r}: "
            f"{len(self.external_inputs)} PI, "
            f"{len(self.external_outputs)} PO, "
            f"{self.num_flipflops} FFs, {self.core.num_gates} gates)"
        )


def break_at_flipflops(
    circuit: Circuit,
    flipflops: Mapping[str, str],
    name: Optional[str] = None,
) -> SequentialCircuit:
    """Break an in-memory circuit at the given flip-flops.

    ``circuit`` must already model each flip-flop's Q net as a primary
    input (i.e. undriven); this helper marks the D nets as outputs and
    wraps everything into a :class:`SequentialCircuit`.  Use this when
    building sequential designs with :class:`CircuitBuilder`; ``.bench``
    files with DFF lines go through
    :func:`repro.netlist.bench.parse_bench_sequential` instead.
    """
    core = circuit.copy(name if name is not None else circuit.name)
    external_outputs = core.outputs
    for d_net in flipflops.values():
        core.add_net(d_net, is_output=True)
    core.validate()
    return SequentialCircuit(core, flipflops, external_outputs)
