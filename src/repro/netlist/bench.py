"""Reader and writer for the ISCAS85/ISCAS89 ``.bench`` netlist format.

The format is line oriented::

    # comment
    INPUT(G1)
    OUTPUT(G17)
    G10 = NAND(G1, G3)
    G11 = DFF(G10)          (sequential circuits only)

Combinational circuits parse straight into a :class:`repro.netlist.
circuit.Circuit`.  Circuits containing ``DFF`` pseudo-gates must go
through :func:`parse_bench_sequential`, which applies the paper's §1
recipe: cycles are broken at the flip-flops by treating each D pin as a
pseudo primary output and each Q pin as a pseudo primary input.
"""

from __future__ import annotations

import io
import re
from pathlib import Path
from typing import TextIO, Union

from repro.errors import BenchFormatError
from repro.logic import GateType
from repro.netlist.circuit import Circuit

__all__ = [
    "parse_bench",
    "parse_bench_file",
    "parse_bench_sequential",
    "write_bench",
]

_DECL_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^()\s]+)\s*\)$", re.I)
_GATE_RE = re.compile(
    r"^([^()=\s]+)\s*=\s*([A-Za-z01]+)\s*\(\s*([^()]*)\s*\)$"
)

_TYPE_ALIASES = {
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    # Extensions used by write_bench for constant signals.
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
}


def _parse_statements(text: str):
    """Yield (line_number, kind, payload) for each meaningful line."""
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        match = _DECL_RE.match(line)
        if match:
            yield line_number, match.group(1).upper(), match.group(2)
            continue
        match = _GATE_RE.match(line)
        if match:
            output, type_name, arg_text = match.groups()
            args = [a.strip() for a in arg_text.split(",")] if arg_text.strip() else []
            if any(not a for a in args):
                raise BenchFormatError(
                    f"empty operand in gate definition: {line!r}", line_number
                )
            yield line_number, "GATE", (output, type_name.upper(), args)
            continue
        raise BenchFormatError(f"unparsable line: {line!r}", line_number)


def parse_bench(text: str, name: str = "bench") -> Circuit:
    """Parse a combinational ``.bench`` description into a circuit.

    Raises :class:`BenchFormatError` on syntax errors or if the file
    contains DFFs (use :func:`parse_bench_sequential` for those).
    """
    circuit = Circuit(name)
    pending_outputs: list[str] = []
    for line_number, kind, payload in _parse_statements(text):
        if kind == "INPUT":
            circuit.add_net(payload, is_input=True)
        elif kind == "OUTPUT":
            # Defer: the net may not exist yet.
            pending_outputs.append(payload)
        else:
            output, type_name, args = payload
            if type_name == "DFF":
                raise BenchFormatError(
                    "circuit contains DFFs; use parse_bench_sequential()",
                    line_number,
                )
            gate_type = _TYPE_ALIASES.get(type_name)
            if gate_type is None:
                raise BenchFormatError(
                    f"unknown gate type {type_name!r}", line_number
                )
            circuit.add_gate(gate_type, output, args)
    for out in pending_outputs:
        circuit.add_net(out, is_output=True)
    circuit.validate()
    return circuit


def parse_bench_file(path: Union[str, Path], name: str | None = None) -> Circuit:
    """Parse a combinational ``.bench`` file from disk."""
    path = Path(path)
    text = path.read_text()
    return parse_bench(text, name if name is not None else path.stem)


def parse_bench_sequential(text: str, name: str = "bench"):
    """Parse a ``.bench`` file that may contain DFFs.

    Returns a :class:`repro.netlist.sequential.SequentialCircuit` whose
    combinational core has the flip-flops broken per §1 of the paper.
    """
    from repro.netlist.sequential import SequentialCircuit

    circuit = Circuit(name)
    pending_outputs: list[str] = []
    flipflops: dict[str, str] = {}
    for line_number, kind, payload in _parse_statements(text):
        if kind == "INPUT":
            circuit.add_net(payload, is_input=True)
        elif kind == "OUTPUT":
            pending_outputs.append(payload)
        else:
            output, type_name, args = payload
            if type_name == "DFF":
                if len(args) != 1:
                    raise BenchFormatError(
                        f"DFF takes exactly one input, got {len(args)}",
                        line_number,
                    )
                # Q pin becomes a pseudo primary input of the core.
                circuit.add_net(output, is_input=True)
                flipflops[output] = args[0]
                continue
            gate_type = _TYPE_ALIASES.get(type_name)
            if gate_type is None:
                raise BenchFormatError(
                    f"unknown gate type {type_name!r}", line_number
                )
            circuit.add_gate(gate_type, output, args)
    for out in pending_outputs:
        circuit.add_net(out, is_output=True)
    # D pins become pseudo primary outputs so compiled simulators keep them.
    for d_net in flipflops.values():
        circuit.add_net(d_net, is_output=True)
    circuit.validate()
    real_outputs = [o for o in pending_outputs]
    return SequentialCircuit(circuit, flipflops, real_outputs)


def write_bench(circuit: Circuit, stream: TextIO | None = None) -> str:
    """Serialize a circuit to ``.bench`` text; returns the text.

    If ``stream`` is given the text is also written to it.
    """
    out = io.StringIO()
    out.write(f"# {circuit.name}\n")
    out.write(f"# {len(circuit.inputs)} inputs\n")
    out.write(f"# {len(circuit.outputs)} outputs\n")
    out.write(f"# {circuit.num_gates} gates\n\n")
    for net_name in circuit.inputs:
        out.write(f"INPUT({net_name})\n")
    out.write("\n")
    for net_name in circuit.outputs:
        out.write(f"OUTPUT({net_name})\n")
    out.write("\n")
    for gate in circuit.topological_gates():
        args = ", ".join(gate.inputs)
        out.write(f"{gate.output} = {gate.gate_type.value}({args})\n")
    text = out.getvalue()
    if stream is not None:
        stream.write(text)
    return text
