"""The synthetic ISCAS85-analog benchmark suite.

The paper evaluates on the ten ISCAS85 combinational benchmarks [11].
The original netlists are not distributed with this reproduction, so
this module synthesizes, for each benchmark, a deterministic random
circuit with the *same published size statistics*: primary-input count,
primary-output count, gate count, and — critically for the parallel
technique — the exact number of levels reported in Fig. 20 of the paper
(which fixes the bit-field width and word count per circuit).

Everything the evaluation measures is a function of these topological
quantities (code volume, PC-set sizes, word counts, shift counts,
fanout-driven retained shifts), so the analog suite preserves the shape
of every table.  If you have the real ``.bench`` files, point
:func:`load_circuit` at their directory and they are used instead — the
rest of the pipeline is format-identical.

Scaled-down variants (``scale_factor``) keep benchmark wall-times sane
on an interpreted host while preserving each circuit's depth (and hence
its word count).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.errors import NetlistError
from repro.netlist.bench import parse_bench_file
from repro.netlist.circuit import Circuit
from repro.netlist.random_circuits import layered_circuit

__all__ = [
    "ISCAS85_SPECS",
    "CircuitSpec",
    "make_circuit",
    "make_suite",
    "load_circuit",
    "SMALL_SUITE",
]


class CircuitSpec:
    """Published statistics of one ISCAS85 benchmark.

    ``levels`` is the Fig. 20 column: the number of distinct level
    values = depth + 1 = unoptimized bit-field width.  ``words`` is the
    32-bit word count Fig. 20 reports in parentheses.
    """

    __slots__ = ("name", "inputs", "outputs", "gates", "levels", "function")

    def __init__(self, name: str, inputs: int, outputs: int, gates: int,
                 levels: int, function: str) -> None:
        self.name = name
        self.inputs = inputs
        self.outputs = outputs
        self.gates = gates
        self.levels = levels
        self.function = function

    @property
    def depth(self) -> int:
        return self.levels - 1

    def words(self, word_width: int = 32) -> int:
        return -(-self.levels // word_width)

    def __repr__(self) -> str:
        return (
            f"CircuitSpec({self.name}: {self.inputs} PI, {self.outputs} PO, "
            f"{self.gates} gates, {self.levels} levels)"
        )


#: PI/PO/gate counts from the ISCAS85 suite; levels from Fig. 20.
ISCAS85_SPECS: dict[str, CircuitSpec] = {
    spec.name: spec
    for spec in [
        CircuitSpec("c432", 36, 7, 160, 18, "priority decoder"),
        CircuitSpec("c499", 41, 32, 202, 12, "ECC / SEC circuit"),
        CircuitSpec("c880", 60, 26, 383, 25, "ALU and control"),
        CircuitSpec("c1355", 41, 32, 546, 25, "ECC (c499 expanded)"),
        CircuitSpec("c1908", 33, 25, 880, 41, "ECC / SEC-DED"),
        CircuitSpec("c2670", 233, 140, 1269, 33, "ALU and control"),
        CircuitSpec("c3540", 50, 22, 1669, 48, "ALU and control"),
        CircuitSpec("c5315", 178, 123, 2307, 50, "ALU and selector"),
        CircuitSpec("c6288", 32, 32, 2416, 125, "16x16 multiplier"),
        CircuitSpec("c7552", 207, 108, 3513, 44, "ALU and control"),
    ]
}

#: The circuits whose bit-fields fit a single 32-bit word (Fig. 20).
SMALL_SUITE = ("c432", "c499", "c880", "c1355")


def make_circuit(
    name: str,
    *,
    seed: int = 1990,
    scale_factor: float = 1.0,
) -> Circuit:
    """Synthesize the analog of one ISCAS85 benchmark.

    ``scale_factor`` scales the gate/PI/PO counts (never the depth, so
    word counts stay faithful); 1.0 gives the full published size.
    """
    spec = ISCAS85_SPECS.get(name)
    if spec is None:
        raise NetlistError(
            f"unknown ISCAS85 circuit {name!r}; "
            f"choose from {sorted(ISCAS85_SPECS)}"
        )
    if not 0 < scale_factor <= 1.0:
        raise NetlistError("scale_factor must be in (0, 1]")
    depth = spec.depth
    gates = max(depth, round(spec.gates * scale_factor))
    inputs = max(2, round(spec.inputs * scale_factor))
    outputs = max(1, round(spec.outputs * scale_factor))
    suffix = "" if scale_factor == 1.0 else f"_s{scale_factor:g}"
    # A stable per-name offset (Python's hash() is salted per process).
    name_tag = sum(ord(ch) * (i + 7) for i, ch in enumerate(name))
    return layered_circuit(
        seed + name_tag,
        num_inputs=inputs,
        num_gates=gates,
        depth=depth,
        num_outputs=outputs,
        name=f"{name}{suffix}",
    )


def make_suite(
    names: Optional[list[str]] = None,
    *,
    seed: int = 1990,
    scale_factor: float = 1.0,
) -> dict[str, Circuit]:
    """Synthesize several analogs (default: all ten, in size order)."""
    if names is None:
        names = list(ISCAS85_SPECS)
    return {
        name: make_circuit(name, seed=seed, scale_factor=scale_factor)
        for name in names
    }


def load_circuit(
    name: str,
    bench_dir: Optional[str] = None,
    *,
    seed: int = 1990,
    scale_factor: float = 1.0,
) -> Circuit:
    """Load the real benchmark if available, else synthesize the analog.

    Looks for ``<bench_dir>/<name>.bench`` (also honouring the
    ``REPRO_ISCAS85_DIR`` environment variable when ``bench_dir`` is
    None).
    """
    import os

    directory = bench_dir or os.environ.get("REPRO_ISCAS85_DIR")
    if directory:
        path = Path(directory) / f"{name}.bench"
        if path.exists():
            return parse_bench_file(path, name)
    return make_circuit(name, seed=seed, scale_factor=scale_factor)
