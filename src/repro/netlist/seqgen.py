"""Parameterized synchronous sequential circuit generators.

Counterparts to :mod:`repro.netlist.generators` for the clocked world:
each returns a ready-broken :class:`SequentialCircuit` (per §1, Q pins
as pseudo inputs, D pins as pseudo outputs) so the CLI and benchmarks
can scale sequential workloads the same way combinational ones scale.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import NetlistError
from repro.netlist.builder import CircuitBuilder
from repro.netlist.sequential import SequentialCircuit, break_at_flipflops

__all__ = ["binary_counter", "lfsr", "shift_register"]


def _check_bits(bits: int) -> None:
    if bits < 1:
        raise NetlistError(f"bit width must be >= 1: {bits}")


def binary_counter(
    bits: int, name: Optional[str] = None
) -> SequentialCircuit:
    """An ``bits``-bit binary up-counter with enable.

    External input ``EN``; external outputs ``B0..B{bits-1}`` mirror
    the count (LSB first).  Each cycle with ``EN=1`` increments via a
    ripple of toggle carries: ``D_i = Q_i ^ carry_i`` with
    ``carry_{i+1} = Q_i & carry_i`` and ``carry_0 = EN``.
    """
    _check_bits(bits)
    b = CircuitBuilder(name or f"counter{bits}")
    en = b.input("EN")
    qs = [b.input(f"Q{i}") for i in range(bits)]
    carry = en
    for i in range(bits):
        b.xor(f"D{i}", qs[i], carry)
        if i + 1 < bits:
            carry = b.and_(f"C{i + 1}", qs[i], carry)
    for i in range(bits):
        b.buf(f"B{i}", qs[i])
    b.outputs(*[f"B{i}" for i in range(bits)])
    return break_at_flipflops(
        b.build(), {f"Q{i}": f"D{i}" for i in range(bits)}
    )


def lfsr(bits: int, name: Optional[str] = None) -> SequentialCircuit:
    """A ``bits``-bit XOR shift register with serial injection.

    External input ``IN`` is xor-ed into the feedback, so an all-zero
    power-on state still produces activity under a random tape.
    Feedback taps are the last stage and the middle stage.  External
    outputs ``O0..O{bits-1}`` expose the state.
    """
    _check_bits(bits)
    b = CircuitBuilder(name or f"lfsr{bits}")
    b.input("IN")
    qs = [b.input(f"Q{i}") for i in range(bits)]
    tap = bits // 2
    if bits == 1:
        b.xor("D0", qs[0], "IN")
    else:
        b.xor("FB", qs[bits - 1], qs[tap])
        b.xor("D0", "FB", "IN")
        for i in range(1, bits):
            b.buf(f"D{i}", qs[i - 1])
    for i in range(bits):
        b.buf(f"O{i}", qs[i])
    b.outputs(*[f"O{i}" for i in range(bits)])
    return break_at_flipflops(
        b.build(), {f"Q{i}": f"D{i}" for i in range(bits)}
    )


def shift_register(
    bits: int, name: Optional[str] = None
) -> SequentialCircuit:
    """A serial-in/serial-out shift register.

    External input ``SI``; external outputs ``SO`` (the last stage)
    plus the parallel view ``P0..P{bits-1}``.
    """
    _check_bits(bits)
    b = CircuitBuilder(name or f"shiftreg{bits}")
    b.input("SI")
    qs = [b.input(f"Q{i}") for i in range(bits)]
    b.buf("D0", "SI")
    for i in range(1, bits):
        b.buf(f"D{i}", qs[i - 1])
    for i in range(bits):
        b.buf(f"P{i}", qs[i])
    b.buf("SO", qs[bits - 1])
    b.outputs(*([f"P{i}" for i in range(bits)] + ["SO"]))
    return break_at_flipflops(
        b.build(), {f"Q{i}": f"D{i}" for i in range(bits)}
    )
