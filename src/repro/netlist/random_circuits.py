"""Seeded random circuit generation.

Two generators:

- :func:`random_dag_circuit` — small random acyclic circuits for
  property-based testing (any shape, heavy reconvergent fanout).
- :func:`layered_circuit` — a layered DAG with an exact gate count and
  exact logic depth, used to build the ISCAS85-analog suite: a forced
  longest chain pins the depth, the remaining gates are spread over the
  layers, and inputs are drawn with locality bias to create the
  reconvergent fanout that drives PC-set growth and retained shifts.

Both are deterministic for a given seed.

The module also hosts the *shrink hooks* the differential fuzzer's
delta debugger (:mod:`repro.fuzz.shrink`) applies to these circuits:
:func:`replace_gate`, :func:`pin_input` and :func:`keep_outputs` each
rebuild a circuit with one reduction applied, preserving primary-input
declaration order exactly (the vector tape is positional).
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.errors import NetlistError
from repro.logic import GateType
from repro.netlist.circuit import Circuit

__all__ = [
    "random_dag_circuit",
    "layered_circuit",
    "sequentialize",
    "derive_flipflops",
    "replace_gate",
    "pin_input",
    "keep_outputs",
]

_BINARY_TYPES = (
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
)
_UNARY_TYPES = (GateType.NOT, GateType.BUF)


def random_dag_circuit(
    seed: int,
    *,
    num_inputs: int = 4,
    num_gates: int = 12,
    max_fan_in: int = 3,
    p_unary: float = 0.25,
    name: Optional[str] = None,
) -> Circuit:
    """A random acyclic circuit (for tests).

    Every gate draws its inputs uniformly from all earlier nets, so
    reconvergent fanout along different-length paths — the structure
    that stresses PC-sets and shift elimination — occurs constantly.
    All sink nets (plus any undriven-fanout-free inputs) are monitored.
    """
    if num_inputs < 1 or num_gates < 1:
        raise NetlistError("need at least one input and one gate")
    rng = random.Random(seed)
    circuit = Circuit(name or f"rand{seed}")
    nets = []
    for i in range(num_inputs):
        net_name = f"I{i}"
        circuit.add_net(net_name, is_input=True)
        nets.append(net_name)
    for g in range(num_gates):
        out = f"N{g}"
        if rng.random() < p_unary:
            gate_type = rng.choice(_UNARY_TYPES)
            inputs = [rng.choice(nets)]
        else:
            gate_type = rng.choice(_BINARY_TYPES)
            fan_in = rng.randint(2, max_fan_in)
            inputs = [rng.choice(nets) for _ in range(fan_in)]
        circuit.add_gate(gate_type, out, inputs)
        nets.append(out)
    for net_name, net in circuit.nets.items():
        if not net.fanout and net.driver is not None:
            circuit.add_net(net_name, is_output=True)
    if not circuit.outputs:
        circuit.add_net(nets[-1], is_output=True)
    circuit.validate()
    return circuit


def layered_circuit(
    seed: int,
    *,
    num_inputs: int,
    num_gates: int,
    depth: int,
    num_outputs: Optional[int] = None,
    p_unary: float = 0.15,
    locality: float = 0.7,
    p_primary_tap: float = 0.08,
    gate_types: Sequence[GateType] = _BINARY_TYPES,
    name: Optional[str] = None,
) -> Circuit:
    """A random circuit with exactly ``num_gates`` gates and depth ``depth``.

    Construction: a chain of ``depth`` gates pins the longest path; the
    remaining gates are distributed over levels 1..depth; each gate at
    level L draws one input from level L-1 (so its level is exact) and
    the rest from earlier levels, preferring recent levels with
    probability ``locality`` (geometric back-off) to create realistic
    local reconvergence.

    ``num_outputs`` monitored nets are chosen among the sinks first,
    then the deepest remaining nets.
    """
    if depth < 1:
        raise NetlistError("depth must be >= 1")
    if num_gates < depth:
        raise NetlistError(
            f"cannot reach depth {depth} with {num_gates} gates"
        )
    rng = random.Random(seed)
    circuit = Circuit(name or f"layered{seed}")
    by_level: list[list[str]] = [[]]
    for i in range(num_inputs):
        net_name = f"I{i}"
        circuit.add_net(net_name, is_input=True)
        by_level[0].append(net_name)

    # Distribute the gate count over the levels: one chain gate per
    # level is mandatory; the rest go to random levels, weighted toward
    # the shallow half like real circuits.
    per_level = [1] * depth
    weights = [depth - i * 0.5 for i in range(depth)]
    extra = num_gates - depth
    total_weight = sum(weights)
    allocated = 0
    for i in range(depth):
        share = int(extra * weights[i] / total_weight)
        per_level[i] += share
        allocated += share
    level_order = list(range(depth))
    rng.shuffle(level_order)
    for i in level_order[: extra - allocated]:
        per_level[i] += 1

    def pick_source(level: int) -> str:
        """A net from some level < ``level``, biased toward recent ones.

        With probability ``p_primary_tap`` the source is a primary
        input regardless of depth — real circuits routinely feed
        control inputs deep into the logic, and those taps are what
        create large level/minlevel gaps (big PC-sets) and the strongly
        unbalanced reconvergence that stresses shift elimination.
        """
        if level > 1 and rng.random() < p_primary_tap:
            return rng.choice(by_level[0])
        back = 1
        while level - back > 0 and rng.random() > locality:
            back += 1
        chosen = rng.randrange(max(0, level - back), level)
        # Levels can be sparse near the top; fall back downward.
        while not by_level[chosen]:
            chosen -= 1
        return rng.choice(by_level[chosen])

    counter = 0
    for level in range(1, depth + 1):
        by_level.append([])
        chain_done = False
        for _slot in range(per_level[level - 1]):
            out = f"G{counter}"
            counter += 1
            if not chain_done:
                # The chain gate: one input from the previous level
                # guarantees this level is populated and the depth is
                # exact.
                first = rng.choice(by_level[level - 1])
                chain_done = True
            else:
                first = pick_source(level)
                # Force the gate's level: at least one input must come
                # from level - 1.
                first = rng.choice(by_level[level - 1])
            if rng.random() < p_unary:
                gate_type = rng.choice(_UNARY_TYPES)
                inputs = [first]
            else:
                gate_type = rng.choice(list(gate_types))
                inputs = [first, pick_source(level)]
                if rng.random() < 0.15:
                    inputs.append(pick_source(level))
            circuit.add_gate(gate_type, out, inputs)
            by_level[level].append(out)

    sinks = [
        net_name
        for net_name, net in circuit.nets.items()
        if net.driver is not None and not net.fanout
    ]
    if num_outputs is None:
        chosen = sinks if sinks else [by_level[-1][0]]
    else:
        chosen = list(sinks)
        if len(chosen) > num_outputs:
            chosen = chosen[:num_outputs]
        elif len(chosen) < num_outputs:
            pool = [
                net_name
                for level in reversed(by_level[1:])
                for net_name in level
                if net_name not in set(chosen)
            ]
            chosen += pool[: num_outputs - len(chosen)]
    for net_name in chosen:
        circuit.add_net(net_name, is_output=True)
    circuit.validate()
    return circuit


# ----------------------------------------------------------------------
# shrink hooks (used by repro.fuzz.shrink's delta debugger)
# ----------------------------------------------------------------------
def sequentialize(
    circuit: Circuit,
    num_flipflops: int,
    *,
    seed: int = 0,
    name: Optional[str] = None,
) -> Circuit:
    """Close random feedback loops through named flip-flop pins.

    Turns a combinational circuit into the *broken core* of a clocked
    one (§1's recipe, run in reverse): the last ``num_flipflops``
    primary inputs are renamed ``FQ{i}`` (flip-flop Q pins, still
    pseudo primary inputs) and each is paired with a new primary
    output ``FD{i} = BUF(<random gate output>)`` (the D pin).  The
    ``FQ``/``FD`` naming is the *whole* contract:
    :func:`derive_flipflops` reconstructs the pairing from names
    alone, so the circuit round-trips through the combinational
    ``.bench`` corpus format and survives every shrink hook (a pinned
    ``FQ`` or a dropped ``FD`` simply removes that flip-flop).

    At least one external input is always kept.  Returns the circuit
    unchanged when it has no gates, too few inputs, or a name
    collision with the convention.
    """
    if num_flipflops < 1 or not circuit.gates:
        return circuit
    k = min(num_flipflops, len(circuit.inputs) - 1)
    if k < 1:
        return circuit
    taken = [f"FQ{i}" for i in range(k)] + [f"FD{i}" for i in range(k)]
    if any(n in circuit.nets for n in taken):
        return circuit
    rng = random.Random(seed)
    q_nets = circuit.inputs[-k:]
    rename = {q: f"FQ{i}" for i, q in enumerate(q_nets)}
    drivers = [g.output for g in circuit.topological_gates()]
    rebuilt = Circuit(name if name is not None else circuit.name)
    for net_name in circuit.inputs:
        rebuilt.add_net(rename.get(net_name, net_name), is_input=True)
    for gate in circuit.topological_gates():
        rebuilt.add_gate(
            gate.gate_type,
            gate.output,
            [rename.get(n, n) for n in gate.inputs],
            name=gate.name,
        )
    for i in range(k):
        rebuilt.add_gate(GateType.BUF, f"FD{i}", [rng.choice(drivers)])
    for net_name in circuit.outputs:
        rebuilt.add_net(net_name, is_output=True)
    for i in range(k):
        rebuilt.add_net(f"FD{i}", is_output=True)
    rebuilt.validate()
    return rebuilt


def derive_flipflops(circuit: Circuit) -> dict[str, str]:
    """The ``FQ{i} -> FD{i}`` pairs present in a circuit, by name.

    The inverse of :func:`sequentialize`'s naming convention: an
    ``FQ{i}`` primary input pairs with the driven net ``FD{i}`` when
    both exist.  Robust under shrinking — a pinned ``FQ`` input or a
    pruned ``FD`` gate silently drops that pair — and an empty result
    just means a purely combinational circuit (a zero-flip-flop
    clocked check is still well-defined).
    """
    pairs: dict[str, str] = {}
    for input_net in circuit.inputs:
        if not input_net.startswith("FQ"):
            continue
        suffix = input_net[2:]
        if not suffix.isdigit():
            continue
        d_net = f"FD{suffix}"
        if d_net in circuit.nets and circuit.net(d_net).driver is not None:
            pairs[input_net] = d_net
    return pairs


def _rebuild(
    circuit: Circuit,
    keep: Optional[set[str]],
    override: dict[str, tuple[GateType, list[str]]],
    inputs: Sequence[str],
    outputs: Sequence[str],
    name: Optional[str],
) -> Circuit:
    """Rebuild ``circuit`` with edits applied, preserving input order."""
    rebuilt = Circuit(name if name is not None else circuit.name)
    for net_name in inputs:
        rebuilt.add_net(net_name, is_input=True)
    for gate in circuit.topological_gates():
        if keep is not None and gate.output not in keep:
            continue
        gate_type, gate_inputs = override.get(
            gate.name, (gate.gate_type, gate.inputs)
        )
        rebuilt.add_gate(gate_type, gate.output, gate_inputs,
                         name=gate.name)
    for net_name in outputs:
        rebuilt.add_net(net_name, is_output=True)
    rebuilt.validate()
    return rebuilt


def replace_gate(
    circuit: Circuit,
    gate_name: str,
    gate_type: GateType,
    inputs: Sequence[str],
    *,
    name: Optional[str] = None,
) -> Circuit:
    """A copy of ``circuit`` with one gate's definition replaced.

    The gate keeps its name and output net; its type and operand list
    change (the shrinker uses this to bypass a gate with a ``BUF``,
    collapse it to a constant, or drop one operand).  The caller is
    responsible for the new definition satisfying the gate type's
    arity; :class:`NetlistError` propagates otherwise.
    """
    gate = circuit.gate(gate_name)
    override = {gate.name: (gate_type, list(inputs))}
    return _rebuild(
        circuit, None, override, circuit.inputs, circuit.outputs, name
    )


def pin_input(
    circuit: Circuit,
    net_name: str,
    value: int,
    *,
    name: Optional[str] = None,
) -> Circuit:
    """A copy of ``circuit`` with one primary input pinned to a constant.

    The net stops being a primary input and is driven by a
    ``CONST0``/``CONST1`` gate instead; the remaining inputs keep their
    declaration order.  Callers shrinking a positional vector tape must
    drop the corresponding column (its index is
    ``circuit.inputs.index(net_name)`` *before* the pin).
    """
    inputs = circuit.inputs
    if net_name not in inputs:
        raise NetlistError(f"{net_name!r} is not a primary input")
    if len(inputs) < 2:
        raise NetlistError("cannot pin the only primary input")
    remaining = [n for n in inputs if n != net_name]
    rebuilt = Circuit(name if name is not None else circuit.name)
    for n in remaining:
        rebuilt.add_net(n, is_input=True)
    rebuilt.add_gate(
        GateType.CONST1 if value else GateType.CONST0, net_name, []
    )
    for gate in circuit.topological_gates():
        rebuilt.add_gate(gate.gate_type, gate.output, gate.inputs,
                         name=gate.name)
    for n in circuit.outputs:
        rebuilt.add_net(n, is_output=True)
    rebuilt.validate()
    return rebuilt


def keep_outputs(
    circuit: Circuit,
    outputs: Sequence[str],
    *,
    name: Optional[str] = None,
) -> Circuit:
    """A copy of ``circuit`` monitoring only ``outputs``, dead logic gone.

    Unlike :func:`repro.netlist.transform.prune_dead_logic` this
    preserves the primary-input *declaration order* exactly (unused
    inputs included), so a positional vector tape keeps its meaning.
    """
    targets = list(outputs)
    if not targets:
        raise NetlistError("must keep at least one output")
    keep: set[str] = set()
    stack = list(targets)
    while stack:
        net = stack.pop()
        if net in keep:
            continue
        keep.add(net)
        driver = circuit.net(net).driver
        if driver is not None:
            stack.extend(circuit.gates[driver].inputs)
    return _rebuild(circuit, keep, {}, circuit.inputs, targets, name)
