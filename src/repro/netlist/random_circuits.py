"""Seeded random circuit generation.

Two generators:

- :func:`random_dag_circuit` — small random acyclic circuits for
  property-based testing (any shape, heavy reconvergent fanout).
- :func:`layered_circuit` — a layered DAG with an exact gate count and
  exact logic depth, used to build the ISCAS85-analog suite: a forced
  longest chain pins the depth, the remaining gates are spread over the
  layers, and inputs are drawn with locality bias to create the
  reconvergent fanout that drives PC-set growth and retained shifts.

Both are deterministic for a given seed.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.errors import NetlistError
from repro.logic import GateType
from repro.netlist.circuit import Circuit

__all__ = ["random_dag_circuit", "layered_circuit"]

_BINARY_TYPES = (
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
)
_UNARY_TYPES = (GateType.NOT, GateType.BUF)


def random_dag_circuit(
    seed: int,
    *,
    num_inputs: int = 4,
    num_gates: int = 12,
    max_fan_in: int = 3,
    p_unary: float = 0.25,
    name: Optional[str] = None,
) -> Circuit:
    """A random acyclic circuit (for tests).

    Every gate draws its inputs uniformly from all earlier nets, so
    reconvergent fanout along different-length paths — the structure
    that stresses PC-sets and shift elimination — occurs constantly.
    All sink nets (plus any undriven-fanout-free inputs) are monitored.
    """
    if num_inputs < 1 or num_gates < 1:
        raise NetlistError("need at least one input and one gate")
    rng = random.Random(seed)
    circuit = Circuit(name or f"rand{seed}")
    nets = []
    for i in range(num_inputs):
        net_name = f"I{i}"
        circuit.add_net(net_name, is_input=True)
        nets.append(net_name)
    for g in range(num_gates):
        out = f"N{g}"
        if rng.random() < p_unary:
            gate_type = rng.choice(_UNARY_TYPES)
            inputs = [rng.choice(nets)]
        else:
            gate_type = rng.choice(_BINARY_TYPES)
            fan_in = rng.randint(2, max_fan_in)
            inputs = [rng.choice(nets) for _ in range(fan_in)]
        circuit.add_gate(gate_type, out, inputs)
        nets.append(out)
    for net_name, net in circuit.nets.items():
        if not net.fanout and net.driver is not None:
            circuit.add_net(net_name, is_output=True)
    if not circuit.outputs:
        circuit.add_net(nets[-1], is_output=True)
    circuit.validate()
    return circuit


def layered_circuit(
    seed: int,
    *,
    num_inputs: int,
    num_gates: int,
    depth: int,
    num_outputs: Optional[int] = None,
    p_unary: float = 0.15,
    locality: float = 0.7,
    p_primary_tap: float = 0.08,
    gate_types: Sequence[GateType] = _BINARY_TYPES,
    name: Optional[str] = None,
) -> Circuit:
    """A random circuit with exactly ``num_gates`` gates and depth ``depth``.

    Construction: a chain of ``depth`` gates pins the longest path; the
    remaining gates are distributed over levels 1..depth; each gate at
    level L draws one input from level L-1 (so its level is exact) and
    the rest from earlier levels, preferring recent levels with
    probability ``locality`` (geometric back-off) to create realistic
    local reconvergence.

    ``num_outputs`` monitored nets are chosen among the sinks first,
    then the deepest remaining nets.
    """
    if depth < 1:
        raise NetlistError("depth must be >= 1")
    if num_gates < depth:
        raise NetlistError(
            f"cannot reach depth {depth} with {num_gates} gates"
        )
    rng = random.Random(seed)
    circuit = Circuit(name or f"layered{seed}")
    by_level: list[list[str]] = [[]]
    for i in range(num_inputs):
        net_name = f"I{i}"
        circuit.add_net(net_name, is_input=True)
        by_level[0].append(net_name)

    # Distribute the gate count over the levels: one chain gate per
    # level is mandatory; the rest go to random levels, weighted toward
    # the shallow half like real circuits.
    per_level = [1] * depth
    weights = [depth - i * 0.5 for i in range(depth)]
    extra = num_gates - depth
    total_weight = sum(weights)
    allocated = 0
    for i in range(depth):
        share = int(extra * weights[i] / total_weight)
        per_level[i] += share
        allocated += share
    level_order = list(range(depth))
    rng.shuffle(level_order)
    for i in level_order[: extra - allocated]:
        per_level[i] += 1

    def pick_source(level: int) -> str:
        """A net from some level < ``level``, biased toward recent ones.

        With probability ``p_primary_tap`` the source is a primary
        input regardless of depth — real circuits routinely feed
        control inputs deep into the logic, and those taps are what
        create large level/minlevel gaps (big PC-sets) and the strongly
        unbalanced reconvergence that stresses shift elimination.
        """
        if level > 1 and rng.random() < p_primary_tap:
            return rng.choice(by_level[0])
        back = 1
        while level - back > 0 and rng.random() > locality:
            back += 1
        chosen = rng.randrange(max(0, level - back), level)
        # Levels can be sparse near the top; fall back downward.
        while not by_level[chosen]:
            chosen -= 1
        return rng.choice(by_level[chosen])

    counter = 0
    for level in range(1, depth + 1):
        by_level.append([])
        chain_done = False
        for _slot in range(per_level[level - 1]):
            out = f"G{counter}"
            counter += 1
            if not chain_done:
                # The chain gate: one input from the previous level
                # guarantees this level is populated and the depth is
                # exact.
                first = rng.choice(by_level[level - 1])
                chain_done = True
            else:
                first = pick_source(level)
                # Force the gate's level: at least one input must come
                # from level - 1.
                first = rng.choice(by_level[level - 1])
            if rng.random() < p_unary:
                gate_type = rng.choice(_UNARY_TYPES)
                inputs = [first]
            else:
                gate_type = rng.choice(list(gate_types))
                inputs = [first, pick_source(level)]
                if rng.random() < 0.15:
                    inputs.append(pick_source(level))
            circuit.add_gate(gate_type, out, inputs)
            by_level[level].append(out)

    sinks = [
        net_name
        for net_name, net in circuit.nets.items()
        if net.driver is not None and not net.fanout
    ]
    if num_outputs is None:
        chosen = sinks if sinks else [by_level[-1][0]]
    else:
        chosen = list(sinks)
        if len(chosen) > num_outputs:
            chosen = chosen[:num_outputs]
        elif len(chosen) < num_outputs:
            pool = [
                net_name
                for level in reversed(by_level[1:])
                for net_name in level
                if net_name not in set(chosen)
            ]
            chosen += pool[: num_outputs - len(chosen)]
    for net_name in chosen:
        circuit.add_net(net_name, is_output=True)
    circuit.validate()
    return circuit
