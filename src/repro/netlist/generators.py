"""Structured circuit generators.

Classic datapath and coding blocks built from the gate primitives:
adders, an array multiplier, parity/Hamming trees, comparators,
multiplexers and decoders.  They serve three purposes: realistic
example workloads, well-understood fixtures for the test suite (a
ripple adder's depth and truth table are easy to assert), and natural
analogs for some ISCAS85 circuits (c6288 is a 16x16 array multiplier;
c499/c1355 are single-error-correcting code circuits).
"""

from __future__ import annotations

from repro.errors import NetlistError
from repro.netlist.builder import CircuitBuilder
from repro.netlist.circuit import Circuit

__all__ = [
    "ripple_carry_adder",
    "carry_lookahead_adder",
    "array_multiplier",
    "parity_tree",
    "hamming_encoder",
    "equality_comparator",
    "mux_tree",
    "decoder",
    "majority_voter",
]


def _full_adder(
    b: CircuitBuilder, a: str, x: str, cin: str, tag: str
) -> tuple[str, str]:
    """Sum and carry of a 1-bit full adder."""
    p = b.xor(f"{tag}_p", a, x)
    s = b.xor(f"{tag}_s", p, cin)
    g1 = b.and_(f"{tag}_g1", a, x)
    g2 = b.and_(f"{tag}_g2", p, cin)
    cout = b.or_(f"{tag}_c", g1, g2)
    return s, cout


def ripple_carry_adder(width: int, name: str | None = None) -> Circuit:
    """An n-bit ripple-carry adder: A + B + Cin -> S, Cout.

    Inputs ``A0..``, ``B0..``, ``CIN``; outputs ``S0..``, ``COUT``.
    Depth grows linearly in ``width`` — a good deep-and-narrow fixture.
    """
    if width < 1:
        raise NetlistError("width must be >= 1")
    b = CircuitBuilder(name or f"rca{width}")
    a_bits = b.inputs(*[f"A{i}" for i in range(width)])
    b_bits = b.inputs(*[f"B{i}" for i in range(width)])
    carry = b.input("CIN")
    for i in range(width):
        s, carry = _full_adder(b, a_bits[i], b_bits[i], carry, f"fa{i}")
        b.output(b.buf(f"S{i}", s))
    b.output(b.buf("COUT", carry))
    return b.build()


def carry_lookahead_adder(
    width: int, block: int = 4, name: str | None = None
) -> Circuit:
    """A block carry-lookahead adder (blocks of ``block`` bits).

    Same interface as :func:`ripple_carry_adder` but shallower: carries
    skip across blocks through generate/propagate logic — a classic
    wide-and-shallow counterpoint to the ripple adder.
    """
    if width < 1:
        raise NetlistError("width must be >= 1")
    b = CircuitBuilder(name or f"cla{width}")
    a_bits = b.inputs(*[f"A{i}" for i in range(width)])
    b_bits = b.inputs(*[f"B{i}" for i in range(width)])
    carry = b.input("CIN")
    for base in range(0, width, block):
        bits = range(base, min(base + block, width))
        gen = []
        prop = []
        for i in bits:
            prop.append(b.xor(f"p{i}", a_bits[i], b_bits[i]))
            gen.append(b.and_(f"g{i}", a_bits[i], b_bits[i]))
        # Per-bit carries within the block, flattened lookahead.
        carries = [carry]
        for k, i in enumerate(bits):
            terms = []
            # g_j propagated through p_{j+1..k-1}
            for j in range(k + 1):
                chain = [gen[j]] + prop[j + 1:k + 1]
                if len(chain) == 1:
                    terms.append(chain[0])
                else:
                    terms.append(b.and_(None, *chain))
            chain0 = [carries[0]] + prop[:k + 1]
            terms.append(b.and_(None, *chain0))
            carries.append(b.or_(f"c{i + 1}", *terms)
                           if len(terms) > 1 else terms[0])
        for k, i in enumerate(bits):
            b.output(b.xor(f"S{i}", prop[k], carries[k]))
        carry = carries[-1]
    b.output(b.buf("COUT", carry))
    return b.build()


def array_multiplier(width: int, name: str | None = None) -> Circuit:
    """An n x n array multiplier (the structure of ISCAS85's c6288).

    Inputs ``A0..``, ``B0..``; outputs ``P0..P{2n-1}``.  Partial
    products feed a carry-save array of full adders; depth grows with
    roughly 2n, which is what makes c6288 by far the deepest benchmark.
    """
    if width < 2:
        raise NetlistError("width must be >= 2")
    b = CircuitBuilder(name or f"mul{width}")
    a_bits = b.inputs(*[f"A{i}" for i in range(width)])
    b_bits = b.inputs(*[f"B{i}" for i in range(width)])
    # acc[w] holds the accumulated bit of weight w so far.
    acc: dict[int, str] = {
        i: b.and_(f"pp0_{i}", a_bits[i], b_bits[0]) for i in range(width)
    }
    for j in range(1, width):
        row = [
            b.and_(f"pp{j}_{i}", a_bits[i], b_bits[j])
            for i in range(width)
        ]
        carry: str | None = None
        for i in range(width):
            weight = j + i
            operands = [row[i]]
            if weight in acc:
                operands.append(acc[weight])
            if carry is not None:
                operands.append(carry)
            tag = f"r{j}_{i}"
            if len(operands) == 1:
                acc[weight], carry = operands[0], None
            elif len(operands) == 2:
                acc[weight] = b.xor(f"{tag}_s", *operands)
                carry = b.and_(f"{tag}_c", *operands)
            else:
                acc[weight], carry = _full_adder(
                    b, operands[0], operands[1], operands[2], tag
                )
        # Propagate the row's final carry into the higher weights.
        weight = j + width
        while carry is not None:
            if weight in acc:
                old = acc[weight]
                acc[weight] = b.xor(f"cp{j}_{weight}_s", old, carry)
                carry = b.and_(f"cp{j}_{weight}_c", old, carry)
                weight += 1
            else:
                acc[weight] = carry
                carry = None
    for w in range(2 * width - 1):
        if w in acc:
            b.output(b.buf(f"P{w}", acc[w]))
        else:
            b.output(b.buf(f"P{w}", b.const0()))
    top = 2 * width - 1
    b.output(b.buf(f"P{top}", acc[top] if top in acc else b.const0()))
    return b.build()


def parity_tree(width: int, name: str | None = None) -> Circuit:
    """XOR parity tree over ``width`` inputs (logarithmic depth)."""
    if width < 2:
        raise NetlistError("width must be >= 2")
    b = CircuitBuilder(name or f"parity{width}")
    layer = b.inputs(*[f"I{i}" for i in range(width)])
    while len(layer) > 1:
        nxt = []
        for i in range(0, len(layer) - 1, 2):
            nxt.append(b.xor(None, layer[i], layer[i + 1]))
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
    b.output(b.buf("PARITY", layer[0]))
    return b.build()


def hamming_encoder(data_bits: int = 26, name: str | None = None) -> Circuit:
    """Hamming single-error-correcting check-bit generator.

    The ISCAS85 c499/c1355 pair implement a 32-bit SEC circuit; this
    generator produces the check bits of a Hamming code over
    ``data_bits`` inputs — the same XOR-dominated, highly reconvergent
    structure.
    """
    if data_bits < 2:
        raise NetlistError("data_bits must be >= 2")
    b = CircuitBuilder(name or f"hamming{data_bits}")
    data = b.inputs(*[f"D{i}" for i in range(data_bits)])
    # Assign data bits to codeword positions that are not powers of two.
    positions = []
    pos = 1
    while len(positions) < data_bits:
        pos += 1
        if pos & (pos - 1):
            positions.append(pos)
    num_checks = max(positions).bit_length()
    for c in range(num_checks):
        mask = 1 << c
        members = [
            data[k] for k, p in enumerate(positions) if p & mask
        ]
        if not members:
            continue
        if len(members) == 1:
            b.output(b.buf(f"C{c}", members[0]))
            continue
        acc = members[0]
        for m in members[1:]:
            acc = b.xor(None, acc, m)
        b.output(b.buf(f"C{c}", acc))
    return b.build()


def equality_comparator(width: int, name: str | None = None) -> Circuit:
    """A = B over ``width`` bits (XNOR reduction by AND tree)."""
    if width < 1:
        raise NetlistError("width must be >= 1")
    b = CircuitBuilder(name or f"eq{width}")
    a_bits = b.inputs(*[f"A{i}" for i in range(width)])
    b_bits = b.inputs(*[f"B{i}" for i in range(width)])
    layer = [
        b.xnor(f"x{i}", a_bits[i], b_bits[i]) for i in range(width)
    ]
    while len(layer) > 1:
        nxt = []
        for i in range(0, len(layer) - 1, 2):
            nxt.append(b.and_(None, layer[i], layer[i + 1]))
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
    b.output(b.buf("EQ", layer[0]))
    return b.build()


def mux_tree(select_bits: int, name: str | None = None) -> Circuit:
    """A 2^k-to-1 multiplexer tree (k = ``select_bits``)."""
    if select_bits < 1:
        raise NetlistError("select_bits must be >= 1")
    b = CircuitBuilder(name or f"mux{1 << select_bits}")
    data = b.inputs(*[f"D{i}" for i in range(1 << select_bits)])
    selects = b.inputs(*[f"S{i}" for i in range(select_bits)])
    layer = list(data)
    for level, sel in enumerate(selects):
        sel_n = b.not_(f"sn{level}", sel)
        nxt = []
        for i in range(0, len(layer), 2):
            lo = b.and_(None, layer[i], sel_n)
            hi = b.and_(None, layer[i + 1], sel)
            nxt.append(b.or_(None, lo, hi))
        layer = nxt
    b.output(b.buf("Y", layer[0]))
    return b.build()


def decoder(select_bits: int, name: str | None = None) -> Circuit:
    """A k-to-2^k one-hot decoder with enable."""
    if select_bits < 1:
        raise NetlistError("select_bits must be >= 1")
    b = CircuitBuilder(name or f"dec{select_bits}")
    selects = b.inputs(*[f"S{i}" for i in range(select_bits)])
    enable = b.input("EN")
    inverted = [b.not_(f"sn{i}", s) for i, s in enumerate(selects)]
    for code in range(1 << select_bits):
        terms = [
            selects[i] if (code >> i) & 1 else inverted[i]
            for i in range(select_bits)
        ]
        b.output(b.and_(f"Y{code}", enable, *terms))
    return b.build()


def majority_voter(width: int = 3, name: str | None = None) -> Circuit:
    """Majority of ``width`` (odd) inputs, as an OR of AND terms."""
    if width < 3 or width % 2 == 0:
        raise NetlistError("width must be odd and >= 3")
    import itertools

    b = CircuitBuilder(name or f"maj{width}")
    bits = b.inputs(*[f"I{i}" for i in range(width)])
    need = width // 2 + 1
    terms = []
    for combo in itertools.combinations(bits, need):
        terms.append(b.and_(None, *combo))
    b.output(b.or_("MAJ", *terms))
    return b.build()
