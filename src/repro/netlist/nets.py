"""Nets and gates: the atoms of a circuit.

A :class:`Net` is a named wire carrying a single logic value.  A
:class:`Gate` computes one output net from an ordered list of input nets.
Nets know their driver and fanout, which is what the levelization,
PC-set, and alignment algorithms of the paper traverse.

Both classes are plain mutable records; the :class:`repro.netlist.circuit.
Circuit` container owns them and maintains the cross-references.
"""

from __future__ import annotations

from typing import Optional

from repro.logic import GateType

__all__ = ["Net", "Gate"]


class Net:
    """A named wire.

    Attributes
    ----------
    name:
        Unique net name within its circuit.
    driver:
        Name of the driving gate, or ``None`` for primary inputs.
        (Wired-AND/OR nets with several drivers are not modelled; ISCAS85
        circuits are single-driver, and the paper's algorithms reduce to
        the single-driver case for them.)
    fanout:
        Names of the gates that use this net as an input, in insertion
        order.  A gate appears once per use, so a net feeding both inputs
        of one gate lists that gate twice — the PC-set algorithm's count
        bookkeeping (§2 step 4d) relies on this.
    is_input / is_output:
        Primary-input / primary-output (monitored) flags.
    """

    __slots__ = ("name", "driver", "fanout", "is_input", "is_output")

    def __init__(
        self,
        name: str,
        *,
        driver: Optional[str] = None,
        is_input: bool = False,
        is_output: bool = False,
    ) -> None:
        self.name = name
        self.driver = driver
        self.fanout: list[str] = []
        self.is_input = is_input
        self.is_output = is_output

    def __repr__(self) -> str:
        kind = "PI" if self.is_input else ("PO" if self.is_output else "net")
        return f"Net({self.name!r}, {kind}, driver={self.driver!r})"


class Gate:
    """A logic gate: one output net computed from ordered input nets.

    Attributes
    ----------
    name:
        Unique gate name within its circuit.
    gate_type:
        One of :class:`repro.logic.GateType`.
    inputs:
        Ordered input net names; duplicates allowed.
    output:
        The single output net name.
    """

    __slots__ = ("name", "gate_type", "inputs", "output")

    def __init__(
        self,
        name: str,
        gate_type: GateType,
        inputs: list[str],
        output: str,
    ) -> None:
        self.name = name
        self.gate_type = gate_type
        self.inputs = list(inputs)
        self.output = output

    @property
    def fan_in(self) -> int:
        return len(self.inputs)

    def __repr__(self) -> str:
        ins = ", ".join(self.inputs)
        return f"Gate({self.name!r}: {self.output} = {self.gate_type.value}({ins}))"
