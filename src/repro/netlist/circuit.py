"""The :class:`Circuit` container.

A circuit owns its nets and gates, maintains driver/fanout
cross-references, validates its own well-formedness, and provides the
topological iteration primitives every algorithm in the paper builds on.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Optional

from repro.errors import CyclicCircuitError, NetlistError
from repro.logic import GateType
from repro.netlist.nets import Gate, Net

__all__ = ["Circuit", "CircuitStats"]


class CircuitStats:
    """Size statistics of a circuit (the quantities Figs. 19-24 key on)."""

    __slots__ = (
        "name",
        "num_inputs",
        "num_outputs",
        "num_gates",
        "num_nets",
        "depth",
        "max_fan_in",
        "max_fanout",
    )

    def __init__(
        self,
        name: str,
        num_inputs: int,
        num_outputs: int,
        num_gates: int,
        num_nets: int,
        depth: int,
        max_fan_in: int,
        max_fanout: int,
    ) -> None:
        self.name = name
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self.num_gates = num_gates
        self.num_nets = num_nets
        self.depth = depth
        self.max_fan_in = max_fan_in
        self.max_fanout = max_fanout

    def __repr__(self) -> str:
        return (
            f"CircuitStats({self.name}: {self.num_inputs} PI, "
            f"{self.num_outputs} PO, {self.num_gates} gates, "
            f"depth {self.depth})"
        )


class Circuit:
    """An acyclic (or to-be-checked) gate-level circuit.

    Nets and gates are stored in insertion order.  Gate names and net
    names live in separate namespaces; by convention the generators in
    this library name each gate after its output net, which mirrors
    ISCAS85 usage.

    Typical construction goes through :class:`repro.netlist.builder.
    CircuitBuilder` or :func:`repro.netlist.bench.parse_bench`.
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self.nets: dict[str, Net] = {}
        self.gates: dict[str, Gate] = {}
        self._inputs: list[str] = []
        self._outputs: list[str] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_net(self, name: str, *, is_input: bool = False,
                is_output: bool = False) -> Net:
        """Create a net; idempotent flag-upgrades if the net exists."""
        net = self.nets.get(name)
        if net is None:
            net = Net(name, is_input=is_input, is_output=is_output)
            self.nets[name] = net
            if is_input:
                self._inputs.append(name)
            if is_output:
                self._outputs.append(name)
            return net
        if is_input and not net.is_input:
            net.is_input = True
            self._inputs.append(name)
        if is_output and not net.is_output:
            net.is_output = True
            self._outputs.append(name)
        return net

    def add_gate(
        self,
        gate_type: GateType,
        output: str,
        inputs: Iterable[str] = (),
        *,
        name: Optional[str] = None,
    ) -> Gate:
        """Create a gate driving ``output`` from ``inputs``.

        Missing nets are created on the fly.  Raises
        :class:`NetlistError` on duplicate gate names, double-driven
        nets, or a fan-in outside the gate type's arity.
        """
        inputs = list(inputs)
        gate_name = name if name is not None else output
        if gate_name in self.gates:
            raise NetlistError(f"duplicate gate name: {gate_name!r}")
        n_in = len(inputs)
        if n_in < gate_type.min_inputs:
            raise NetlistError(
                f"gate {gate_name!r} ({gate_type.value}) needs at least "
                f"{gate_type.min_inputs} inputs, got {n_in}"
            )
        max_in = gate_type.max_inputs
        if max_in is not None and n_in > max_in:
            raise NetlistError(
                f"gate {gate_name!r} ({gate_type.value}) takes at most "
                f"{max_in} inputs, got {n_in}"
            )
        out_net = self.add_net(output)
        if out_net.driver is not None:
            raise NetlistError(
                f"net {output!r} already driven by gate {out_net.driver!r}"
            )
        if out_net.is_input:
            raise NetlistError(f"cannot drive primary input {output!r}")
        gate = Gate(gate_name, gate_type, inputs, output)
        self.gates[gate_name] = gate
        out_net.driver = gate_name
        for in_name in inputs:
            self.add_net(in_name).fanout.append(gate_name)
        return gate

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> list[str]:
        """Primary-input net names, in declaration order."""
        return list(self._inputs)

    @property
    def outputs(self) -> list[str]:
        """Primary-output (monitored) net names, in declaration order."""
        return list(self._outputs)

    @property
    def num_gates(self) -> int:
        return len(self.gates)

    @property
    def num_nets(self) -> int:
        return len(self.nets)

    def net(self, name: str) -> Net:
        try:
            return self.nets[name]
        except KeyError:
            raise NetlistError(f"no such net: {name!r}") from None

    def gate(self, name: str) -> Gate:
        try:
            return self.gates[name]
        except KeyError:
            raise NetlistError(f"no such gate: {name!r}") from None

    def driver_of(self, net_name: str) -> Optional[Gate]:
        """The gate driving ``net_name``, or ``None`` for primary inputs."""
        driver = self.net(net_name).driver
        return None if driver is None else self.gates[driver]

    def fanout_gates(self, net_name: str) -> list[Gate]:
        """Gates reading ``net_name`` (duplicates per repeated use)."""
        return [self.gates[g] for g in self.net(net_name).fanout]

    # ------------------------------------------------------------------
    # validation and ordering
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural well-formedness.

        Every net must be either a primary input or driven by exactly one
        gate; every gate input must exist; output nets must exist.
        Raises :class:`NetlistError` describing the first problem found.
        """
        for net in self.nets.values():
            if net.driver is None and not net.is_input:
                raise NetlistError(
                    f"net {net.name!r} is neither a primary input nor "
                    f"driven by a gate"
                )
            if net.driver is not None and net.driver not in self.gates:
                raise NetlistError(
                    f"net {net.name!r} driven by unknown gate {net.driver!r}"
                )
        for gate in self.gates.values():
            for in_name in gate.inputs:
                if in_name not in self.nets:
                    raise NetlistError(
                        f"gate {gate.name!r} reads unknown net {in_name!r}"
                    )
            if gate.output not in self.nets:
                raise NetlistError(
                    f"gate {gate.name!r} drives unknown net {gate.output!r}"
                )
        if not self._inputs and not any(
            g.gate_type in (GateType.CONST0, GateType.CONST1)
            for g in self.gates.values()
        ):
            raise NetlistError("circuit has no primary inputs or constants")

    def topological_gates(self) -> list[Gate]:
        """Gates in a topological (levelized-compatible) order.

        Kahn's algorithm over the gate graph; raises
        :class:`CyclicCircuitError` if the circuit has a combinational
        cycle (with a witness cycle attached).
        """
        pending: dict[str, int] = {}
        ready: deque[str] = deque()
        for gate in self.gates.values():
            count = sum(
                1 for in_name in gate.inputs
                if self.nets[in_name].driver is not None
            )
            pending[gate.name] = count
            if count == 0:
                ready.append(gate.name)
        order: list[Gate] = []
        while ready:
            gate = self.gates[ready.popleft()]
            order.append(gate)
            for reader in self.nets[gate.output].fanout:
                pending[reader] -= 1
                if pending[reader] == 0:
                    ready.append(reader)
        if len(order) != len(self.gates):
            cycle = self._find_cycle(
                {g for g, c in pending.items() if c > 0}
            )
            raise CyclicCircuitError(
                f"circuit {self.name!r} contains a combinational cycle",
                cycle=cycle,
            )
        return order

    def _find_cycle(self, candidates: set[str]) -> list[str]:
        """Return one gate-name cycle among ``candidates`` as a witness."""
        # Walk predecessors until a gate repeats; candidates all lie on or
        # feed into a cycle, so this terminates.
        start = next(iter(sorted(candidates)))
        seen: dict[str, int] = {}
        path: list[str] = []
        current = start
        while current not in seen:
            seen[current] = len(path)
            path.append(current)
            gate = self.gates[current]
            current = next(
                self.nets[i].driver
                for i in gate.inputs
                if self.nets[i].driver in candidates
            )
        return path[seen[current]:]

    def is_acyclic(self) -> bool:
        try:
            self.topological_gates()
        except CyclicCircuitError:
            return False
        return True

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self) -> CircuitStats:
        """Compute the size statistics used throughout the benchmarks."""
        from repro.analysis.levelize import levelize

        levels = levelize(self)
        depth = max(levels.gate_levels.values(), default=0)
        max_fan_in = max(
            (g.fan_in for g in self.gates.values()), default=0
        )
        max_fanout = max(
            (len(n.fanout) for n in self.nets.values()), default=0
        )
        return CircuitStats(
            name=self.name,
            num_inputs=len(self._inputs),
            num_outputs=len(self._outputs),
            num_gates=len(self.gates),
            num_nets=len(self.nets),
            depth=depth,
            max_fan_in=max_fan_in,
            max_fanout=max_fanout,
        )

    def copy(self, name: Optional[str] = None) -> "Circuit":
        """Deep-copy the circuit (fresh Net/Gate objects)."""
        clone = Circuit(name if name is not None else self.name)
        for net_name in self._inputs:
            clone.add_net(net_name, is_input=True)
        for gate in self.gates.values():
            clone.add_gate(
                gate.gate_type, gate.output, gate.inputs, name=gate.name
            )
        for net_name in self._outputs:
            clone.add_net(net_name, is_output=True)
        return clone

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates.values())

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}: {len(self._inputs)} PI, "
            f"{len(self._outputs)} PO, {len(self.gates)} gates)"
        )
