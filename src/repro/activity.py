"""Switching-activity analysis over unit-delay histories.

The classic downstream consumer of unit-delay simulation: dynamic power
estimation needs *toggle counts* — how often each net actually switches,
glitches included — which zero-delay simulation systematically
underestimates (it sees at most one transition per net per vector).
This module accumulates per-net activity over a vector batch from any
of this library's simulators and reports the totals, the glitch excess
over the zero-delay lower bound, and weighted activity sums.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.errors import SimulationError

__all__ = ["ActivityReport", "ActivityCollector", "collect_activity"]

History = Mapping[str, Sequence[tuple[int, int]]]


class ActivityReport:
    """Per-net switching totals over a vector batch.

    Attributes
    ----------
    toggles:
        net -> total transitions observed (excluding the time-0 value).
    functional:
        net -> transitions a zero-delay view would count (at most one
        per vector: initial value != final value).
    vectors:
        Number of vectors accumulated.
    """

    def __init__(
        self,
        toggles: dict[str, int],
        functional: dict[str, int],
        vectors: int,
    ) -> None:
        self.toggles = toggles
        self.functional = functional
        self.vectors = vectors

    def glitch_toggles(self, net_name: str) -> int:
        """Transitions beyond the zero-delay lower bound (hazard cost)."""
        return self.toggles[net_name] - self.functional[net_name]

    def total_toggles(self) -> int:
        return sum(self.toggles.values())

    def total_glitch_toggles(self) -> int:
        return sum(
            self.glitch_toggles(net_name) for net_name in self.toggles
        )

    def activity_factor(self, net_name: str) -> float:
        """Average transitions per vector for a net."""
        if self.vectors == 0:
            return 0.0
        return self.toggles[net_name] / self.vectors

    def weighted_activity(
        self, weights: Optional[Mapping[str, float]] = None
    ) -> float:
        """Sum of toggles x weight (e.g. per-net capacitance).

        With no weights this is simply the total toggle count — the
        unit-capacitance dynamic-power proxy.
        """
        if weights is None:
            return float(self.total_toggles())
        return sum(
            count * weights.get(net_name, 1.0)
            for net_name, count in self.toggles.items()
        )

    def hottest(self, count: int = 10) -> list[tuple[str, int]]:
        """The ``count`` most active nets, descending."""
        ranked = sorted(
            self.toggles.items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[:count]

    def __repr__(self) -> str:
        return (
            f"ActivityReport({self.vectors} vectors, "
            f"{self.total_toggles()} toggles, "
            f"{self.total_glitch_toggles()} from glitches)"
        )


class ActivityCollector:
    """Accumulate activity from per-vector histories."""

    def __init__(self) -> None:
        self._toggles: dict[str, int] = {}
        self._functional: dict[str, int] = {}
        self._vectors = 0

    def add_vector(self, history: History) -> None:
        """Fold in one vector's change history."""
        for net_name, changes in history.items():
            transitions = len(changes) - 1
            start = changes[0][1]
            final = changes[-1][1]
            self._toggles[net_name] = (
                self._toggles.get(net_name, 0) + transitions
            )
            self._functional[net_name] = (
                self._functional.get(net_name, 0)
                + (1 if start != final else 0)
            )
        self._vectors += 1

    def report(self) -> ActivityReport:
        if self._vectors == 0:
            raise SimulationError("no vectors accumulated")
        return ActivityReport(
            dict(self._toggles), dict(self._functional), self._vectors
        )


def collect_activity(
    simulator,
    vectors: Sequence[Sequence[int]],
    *,
    initial: Optional[Sequence[int]] = None,
) -> ActivityReport:
    """Run ``vectors`` through a simulator and report activity.

    ``simulator`` is any object with ``reset`` and either
    ``apply_vector_history`` (the compiled simulators) or
    ``apply_vector(..., record=True)`` (the interpreted ones).
    Engines that keep no per-vector settling histories — the
    zero-delay LCC paths — are rejected with a clear error; they
    count activity with compiled-in probes (``probes=`` at
    construction, then ``activity_report()``) instead.
    """
    engine = type(simulator).__name__
    if hasattr(simulator, "apply_vector_history"):
        step = simulator.apply_vector_history
    elif hasattr(simulator, "apply_vector"):
        def step(vector):
            return simulator.apply_vector(vector, record=True)
    else:
        raise SimulationError(
            f"{engine} records no per-vector settling histories, so "
            "collect_activity cannot run on it; build the simulator "
            "with probes= and read activity_report() instead"
        )
    collector = ActivityCollector()
    simulator.reset(initial)
    for vector in vectors:
        try:
            history = step(vector)
        except TypeError as exc:
            raise SimulationError(
                f"{engine} cannot record per-vector histories "
                f"({exc}); use a history-capable engine, or "
                "compiled-in probes (probes=) with activity_report()"
            ) from exc
        if not history:
            raise SimulationError(
                f"{engine} returned an empty per-net history; "
                "collect_activity needs the settling history of "
                "every net"
            )
        collector.add_vector(history)
    return collector.report()
