"""Command-line interface: ``repro-sim`` / ``python -m repro``.

Subcommands::

    repro-sim stats   <circuit>            static report (Figs. 20-22 data)
    repro-sim compile <circuit> [...]      print generated code
    repro-sim simulate <circuit> [...]     run random vectors, print outputs
    repro-sim bench   <circuit> [...]      quick technique comparison
    repro-sim profile <circuit> [...]      per-phase pipeline timing
    repro-sim fuzz    [...]                differential fuzzing campaign
    repro-sim tape    <circuit> [...]      write a clocked stimulus tape
    repro-sim replay  <circuit> [...]      stream a tape through the
                                           clocked simulator, with
                                           checkpoint/restore

``<circuit>`` is either a path to an ISCAS85 ``.bench`` file or the
name of a built-in synthetic benchmark (c432..c7552, or generator
specs like ``rca16``, ``mul8``, ``parity32``).  The clocked
subcommands additionally accept ``.bench`` files with DFF lines and
sequential generator specs (``counter16``, ``lfsr32``, ``shiftreg8``);
a combinational spec is replayed as a zero-flip-flop clocked circuit.

Every subcommand also accepts ``--profile`` (print the per-phase
telemetry table after the normal output) and ``--metrics-out FILE``
(dump the full telemetry snapshot as JSON); ``profile`` is the
dedicated breakdown of one compile+run pipeline.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Optional

from repro import telemetry
from repro.analysis.stats import circuit_report
from repro.harness.runner import TECHNIQUES, build_simulator, run_technique
from repro.harness.tables import format_table
from repro.harness.timing import time_run
from repro.harness.vectors import vectors_for
from repro.netlist.bench import parse_bench_file
from repro.netlist.circuit import Circuit
from repro.netlist.iscas85 import ISCAS85_SPECS, make_circuit

__all__ = ["main", "resolve_circuit"]


def resolve_circuit(spec: str, scale: float = 1.0) -> Circuit:
    """Interpret a circuit spec: file path, ISCAS85 name, or generator."""
    path = Path(spec)
    if path.suffix == ".bench" or path.exists():
        return parse_bench_file(path)
    if spec in ISCAS85_SPECS:
        return make_circuit(spec, scale_factor=scale)
    for prefix, builder in _GENERATORS.items():
        if spec.startswith(prefix) and spec[len(prefix):].isdigit():
            return builder(int(spec[len(prefix):]))
    raise SystemExit(
        f"unknown circuit {spec!r}: not a .bench file, ISCAS85 name "
        f"({', '.join(ISCAS85_SPECS)}), or generator spec "
        f"({', '.join(_GENERATORS)}<n>)"
    )


def _generators():
    from repro.netlist import generators as g

    return {
        "rca": g.ripple_carry_adder,
        "cla": g.carry_lookahead_adder,
        "mul": g.array_multiplier,
        "parity": g.parity_tree,
        "eq": g.equality_comparator,
        "mux": g.mux_tree,
        "dec": g.decoder,
    }


_GENERATORS = _generators()


def _seq_generators():
    from repro.netlist import seqgen

    return {
        "counter": seqgen.binary_counter,
        "lfsr": seqgen.lfsr,
        "shiftreg": seqgen.shift_register,
    }


_SEQ_GENERATORS = _seq_generators()


def resolve_sequential(spec: str, scale: float = 1.0):
    """Interpret a clocked-circuit spec.

    ``.bench`` files go through ``parse_bench_sequential`` (DFF lines
    become flip-flops); sequential generator specs (``counter16``,
    ``lfsr32``, ``shiftreg8``) build synthetic clocked circuits; any
    other spec resolves combinationally and is wrapped as a
    zero-flip-flop clocked circuit.
    """
    from repro.netlist.bench import parse_bench_sequential
    from repro.netlist.sequential import break_at_flipflops

    path = Path(spec)
    if path.suffix == ".bench" or path.exists():
        return parse_bench_sequential(path.read_text(), name=path.stem)
    for prefix, builder in _SEQ_GENERATORS.items():
        if spec.startswith(prefix) and spec[len(prefix):].isdigit():
            return builder(int(spec[len(prefix):]))
    return break_at_flipflops(resolve_circuit(spec, scale), {})


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.codegen.runtime import (
        have_c_compiler,
        have_numpy,
        program_cache,
    )

    circuit = resolve_circuit(args.circuit, args.scale)
    report = circuit_report(circuit, include_alignments=not args.fast)
    cache = program_cache().stats()
    report = dict(report)
    report["program cache"] = (
        f"{cache['entries']} entries, {cache['hits']} hits, "
        f"{cache['misses']} misses"
    )
    compiler = have_c_compiler()
    report["c compiler"] = compiler if compiler else "none (python backend only)"
    report["numpy backend"] = (
        "available" if have_numpy() is not None else "not installed"
    )
    if args.cones:
        report.update(_cone_report(circuit, args.backend))
    width = max(len(k) for k in report)
    for key, value in report.items():
        print(f"{key.ljust(width)}  {value}")
    return 0


def _cone_report(circuit: Circuit, backend: str) -> dict:
    """Incremental-recompilation stats: cold build vs. warm single-edit.

    Builds the per-cone simulator twice — once from the current cache
    state, once after a synthetic single-gate edit (the first gate's
    type flipped) — and reports the program-cache traffic of each, so
    the hit rate for untouched cones is visible from the CLI.
    """
    from repro.codegen.incremental import ConeSimulator
    from repro.netlist.circuit import GateType
    from repro.netlist.random_circuits import replace_gate

    cold = ConeSimulator(circuit, backend=backend)
    report = {
        "fanin cones": (
            f"{cold.num_cones} "
            f"({len(set(cold.cone_keys.values()))} unique)"
        ),
        "cone cache (cold)": (
            f"+{cold.cache_delta['hits']} hits, "
            f"+{cold.cache_delta['misses']} misses"
        ),
    }
    flips = {
        GateType.AND: GateType.NAND, GateType.NAND: GateType.AND,
        GateType.OR: GateType.NOR, GateType.NOR: GateType.OR,
        GateType.XOR: GateType.XNOR, GateType.XNOR: GateType.XOR,
        GateType.NOT: GateType.BUF, GateType.BUF: GateType.NOT,
    }
    # Edit the flippable gate that sits in the fewest cones — the
    # best case for reuse, which is what the report is sizing.
    membership: dict[str, int] = {}
    for cone in cold.cones.values():
        for cone_gate in cone.gates:
            membership[cone_gate.name] = (
                membership.get(cone_gate.name, 0) + 1
            )
    candidates = [
        g for g in circuit.gates.values() if g.gate_type in flips
    ]
    if not candidates:
        return report
    gate = min(
        candidates,
        key=lambda g: membership.get(g.name, 0),
    )
    new_type = flips[gate.gate_type]
    edited = replace_gate(circuit, gate.name, new_type,
                          list(gate.inputs))
    warm = ConeSimulator(edited, backend=backend)
    delta = warm.cache_delta
    total = max(1, delta["hits"] + delta["misses"])
    report["cone cache (warm edit)"] = (
        f"+{delta['hits']} hits, +{delta['misses']} misses "
        f"({delta['hits'] / total:.0%} reuse after editing "
        f"{gate.name!r})"
    )
    return report


def _cmd_compile(args: argparse.Namespace) -> int:
    circuit = resolve_circuit(args.circuit, args.scale)
    sim = build_simulator(
        circuit,
        args.technique,
        word_width=args.word_width,
        backend="python",
    )
    if args.language == "c":
        source = sim.program.c_source()
    else:
        source = sim.program.python_source()
    if args.output:
        Path(args.output).write_text(source)
        stats = sim.program.stats()
        print(f"wrote {args.output}: {stats}")
    else:
        print(source)
    return 0


def _partition_options(args: argparse.Namespace) -> dict:
    """Partition kwargs for the harness factories.

    Empty when ``--partitions`` is 1 so the default invocation stays
    byte-for-byte the historical code path (and so techniques that
    never grew the kwargs — the interpreters — are not disturbed).
    """
    if getattr(args, "partitions", 1) > 1:
        return {
            "partitions": args.partitions,
            "partition_workers": args.partition_workers,
        }
    return {}


def _tiles_option(args: argparse.Namespace) -> dict:
    """Tile kwargs for the harness factories.

    ``--tiles 0`` means automatic selection
    (:func:`repro.codegen.packing.select_tiles`); 1 — the default —
    stays off the kwargs entirely so the historical code path (and the
    interpreted techniques, which never grew the kwarg) is untouched.
    """
    tiles = getattr(args, "tiles", 1)
    if tiles == 0:
        return {"tiles": "auto"}
    if tiles > 1:
        return {"tiles": tiles}
    return {}


def _cmd_simulate(args: argparse.Namespace) -> int:
    circuit = resolve_circuit(args.circuit, args.scale)
    vectors = vectors_for(circuit, args.vectors, args.seed)
    options = _partition_options(args)
    options.update(_tiles_option(args))
    if options and args.technique in ("interp2", "interp3",
                                      "zero-interp"):
        raise SystemExit(
            f"--partitions/--tiles apply to compiled techniques only, "
            f"not {args.technique!r}"
        )
    sim = build_simulator(
        circuit,
        args.technique,
        word_width=args.word_width,
        backend=args.backend,
        **options,
    )
    zeros = [0] * len(circuit.inputs)
    if args.technique in ("interp2", "interp3"):
        sim.reset(zeros)
        for vector in vectors:
            sim.apply_vector(vector)
            print(" ".join(
                f"{k}={v}" for k, v in sim.output_values().items()
            ))
        return 0
    if args.technique in ("zero-interp", "zero-lcc"):
        for vector in vectors:
            out = sim.evaluate(vector)
            print(" ".join(f"{k}={v}" for k, v in out.items()))
        return 0
    sim.reset(zeros)
    for vector in vectors:
        sim.apply_vector(vector)
        print(" ".join(
            f"{k}={v}" for k, v in sim.final_values().items()
        ))
    return 0


#: Techniques whose generated programs accept compiled-in probes.
_PROBE_TECHNIQUES = ("pcset", "parallel", "parallel-trim", "zero-lcc")


def _cmd_activity(args: argparse.Namespace) -> int:
    from repro.activity import collect_activity

    circuit = resolve_circuit(args.circuit, args.scale)
    vectors = vectors_for(circuit, args.vectors, args.seed)
    zeros = [0] * len(circuit.inputs)
    if args.probes:
        if args.technique not in _PROBE_TECHNIQUES:
            raise SystemExit(
                "--probes compiles counters into the generated "
                "program and needs a probe-capable technique "
                f"({', '.join(_PROBE_TECHNIQUES)}), "
                f"not {args.technique!r}"
            )
        sim = build_simulator(
            circuit, args.technique,
            word_width=args.word_width, backend=args.backend,
            probes=True,
        )
        if args.technique == "zero-lcc":
            sim.probe_reset(zeros)
        else:
            sim.reset(zeros)
        sim.apply_vectors(vectors)
        report = sim.activity_report()
    else:
        if args.technique == "zero-lcc":
            raise SystemExit(
                "zero-lcc records no settling histories; use --probes "
                "for its compiled-in counters"
            )
        if args.technique.startswith("interp"):
            sim = build_simulator(circuit, args.technique)
        else:
            sim = build_simulator(
                circuit, args.technique,
                word_width=args.word_width, backend=args.backend,
            )
        report = collect_activity(sim, vectors, initial=zeros)
    rows = [
        [net_name, count, report.functional[net_name],
         report.glitch_toggles(net_name),
         report.activity_factor(net_name)]
        for net_name, count in report.hottest(args.top)
    ]
    print(format_table(
        ["net", "toggles", "functional", "glitch", "per vector"],
        rows,
        title=(f"{circuit.name}: switching activity over "
               f"{report.vectors} vectors "
               f"(total {report.total_toggles()}, "
               f"{report.total_glitch_toggles()} from glitches"
               + (", compiled-in probes" if args.probes else "")
               + ")"),
    ))
    return 0


def _cmd_vcd(args: argparse.Namespace) -> int:
    from repro.analysis.levelize import levelize
    from repro.waveform import VCDWriter

    circuit = resolve_circuit(args.circuit, args.scale)
    vectors = vectors_for(circuit, args.vectors, args.seed)
    sim = build_simulator(
        circuit, args.technique,
        word_width=args.word_width, backend=args.backend,
    )
    sim.reset([0] * len(circuit.inputs))
    nets = None if args.all_nets else circuit.inputs + circuit.outputs
    writer = VCDWriter(levelize(circuit).depth, nets)
    for vector in vectors:
        writer.add_vector(sim.apply_vector_history(vector))
    with open(args.output, "w") as stream:
        writer.write(stream)
    print(f"wrote {writer.num_vectors} vectors to {args.output}")
    return 0


def _cmd_equiv(args: argparse.Namespace) -> int:
    from repro.verify import check_equivalence

    golden = resolve_circuit(args.golden, args.scale)
    candidate = resolve_circuit(args.candidate, args.scale)
    result = check_equivalence(
        golden, candidate,
        max_exhaustive_inputs=args.max_exhaustive,
        random_vectors=args.vectors,
        seed=args.seed,
        backend=args.backend,
    )
    print(repr(result))
    return 0 if result.equivalent else 1


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.harness.runner import grade_faults

    circuit = resolve_circuit(args.circuit, args.scale)
    vectors = vectors_for(circuit, args.vectors, args.seed)
    report = grade_faults(
        circuit, vectors,
        word_width=args.word_width, backend=args.backend,
        workers=args.workers, shards=args.shards,
        mp_start=args.mp_start, shard_timeout=args.shard_timeout,
        **_partition_options(args),
        **_tiles_option(args),
    )
    print(f"{circuit.name}: {report.num_faults} stuck-at faults, "
          f"{len(report.detected)} detected by {args.vectors} random "
          f"vectors (coverage {report.coverage:.1%})")
    if hasattr(report, "sharding_stats"):
        stats = report.sharding_stats()
        line = (f"sharded: {stats['workers']} workers, "
                f"{stats['num_shards']} shards "
                f"(sizes {stats['shard_sizes']}), "
                f"start={stats['mp_start']}")
        if stats["retried_shards"]:
            line += f", retried shards {stats['retried_shards']}"
        if stats["degraded"]:
            line += ", DEGRADED to single-process"
        print(line)
        events = stats.get("events", {})
        if events.get("retries") or events.get("timeouts"):
            print(f"events: {events['retries']} retries, "
                  f"{events['timeouts']} timeouts")
    counters = getattr(report, "counters", None)
    if counters is not None and counters.seconds > 0:
        print(f"throughput: {counters.vectors} machine vectors in "
              f"{counters.batches} batches, "
              f"{counters.vectors / counters.seconds:,.0f} vectors/s")
    if report.undetected and args.show_undetected:
        shown = ", ".join(str(f) for f in report.undetected[:20])
        more = ("..." if len(report.undetected) > 20 else "")
        print(f"undetected: {shown}{more}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    circuit = resolve_circuit(args.circuit, args.scale)
    vectors = vectors_for(circuit, args.vectors, args.seed)
    rows = []
    baseline: Optional[float] = None
    partition_options = _partition_options(args)
    partition_options.update(_tiles_option(args))
    for technique in args.techniques:
        options = dict(partition_options)
        if technique in ("interp2", "interp3", "zero-interp"):
            options = {}
        run = run_technique(
            circuit, technique, vectors,
            backend=args.backend, word_width=args.word_width,
            **options,
        )
        result = time_run(
            run, label=technique, num_vectors=len(vectors),
            repeat=args.repeat,
        )
        if baseline is None:
            baseline = result.mean
        rows.append([
            technique,
            result.mean,
            result.best,
            baseline / result.mean if result.mean else float("inf"),
        ])
    print(format_table(
        ["technique", "mean s", "best s", "speedup vs first"],
        rows,
        title=(f"{circuit.name}: {len(vectors)} vectors, "
               f"backend={args.backend}"),
    ))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.codegen.runtime import program_cache
    from repro.harness.runner import run_technique

    circuit = resolve_circuit(args.circuit, args.scale)
    vectors = vectors_for(circuit, args.vectors, args.seed)
    telemetry.enable(reset_state=True)
    # The outer wall wraps exactly the instrumented pipeline — program
    # generation, alignment, backend compile, state seeding, batch
    # marshalling, and the compiled run — so the phase table's coverage
    # footer is meaningful (circuit parsing and vector generation stay
    # outside both).
    start = time.perf_counter()
    run = run_technique(
        circuit, args.technique, vectors,
        backend=args.backend, word_width=args.word_width,
    )
    run()
    wall = time.perf_counter() - start
    print(telemetry.format_profile(
        wall,
        title=(f"{circuit.name}: {args.technique}, "
               f"{len(vectors)} vectors, backend={args.backend}"),
    ))
    cache = program_cache().stats()
    print(f"program cache: {cache['entries']} entries, "
          f"{cache['hits']} hits, {cache['misses']} misses")
    return 0


def _fuzz_injection(name: str):
    """Resolve an ``--inject-bug`` value to its context manager."""
    from repro.fuzz import (
        MUTATIONS,
        inject_emitter_bug,
        inject_partition_bug,
        inject_tile_bug,
    )

    if name in MUTATIONS:
        return inject_emitter_bug(name)
    if name == "partition-exchange":
        return inject_partition_bug()
    if name == "tile-boundary":
        return inject_tile_bug()
    choices = sorted(MUTATIONS) + ["partition-exchange",
                                   "tile-boundary"]
    raise SystemExit(
        f"unknown --inject-bug {name!r}; choose from {choices}"
    )


def _cmd_fuzz_campaign(args: argparse.Namespace) -> int:
    from repro.fuzz import SURFACES, run_campaign

    kwargs = dict(
        seed=args.seed,
        iterations=args.iterations,
        budget_seconds=args.budget_seconds,
        corpus_dir=args.corpus,
        backends=args.backends.split(",") if args.backends else None,
        configs_per_circuit=args.configs_per_circuit,
        max_gates=args.max_gates,
        include_faults=not args.no_faults,
        progress=print,
        perf=args.perf,
        envelope_path=args.envelope,
        perf_artifacts=args.perf_artifacts,
    )
    if args.inject_bug:
        with _fuzz_injection(args.inject_bug) as description:
            print(f"injected bug: {description}")
            result = run_campaign(**kwargs)
    else:
        result = run_campaign(**kwargs)
    print(
        f"seed {result.seed}: {result.circuits} circuits, "
        f"{result.configs_checked} configs, "
        f"{result.comparisons} comparisons, "
        f"{len(result.failures)} failures in {result.seconds:.1f}s "
        f"(stopped by {result.stopped_by})"
    )
    covered = result.surface_coverage
    print("lattice coverage: " + " ".join(
        f"{surface}={covered.get(surface, 0)}"
        for surface in SURFACES
    ))
    missing = [s for s in SURFACES if not covered.get(s)]
    if missing:
        print(f"WARNING: surfaces never drawn: {', '.join(missing)}")
    if result.failures:
        print(f"shrinking took {result.shrink_steps} accepted steps")
        for failure in result.failures:
            where = (f" -> {failure.corpus_path}"
                     if failure.corpus_path else "")
            print(f"  [{failure.config.label()}] {failure.error}"
                  f" ({failure.num_gates} gates, "
                  f"{failure.num_vectors} vectors){where}")
    flags = result.perf_flags
    if result.perf is not None:
        mode = "observe" if result.perf.observe_only else "enforce"
        print(f"perf oracle ({mode}): "
              f"{len(result.perf.samples)} points measured, "
              f"{len(flags)} flagged")
        for flag in flags:
            where = f" -> {flag.artifact}" if flag.artifact else ""
            print(f"  PERF {flag.describe()}{where}")
            print(f"       replay: {flag.replay}")
    passed = result.configs_checked - len(result.failures)
    print(f"campaign summary: {passed} pass, {len(flags)} flagged, "
          f"{len(result.failures)} failed")
    return 0 if result.ok else 1


def _cmd_fuzz_distill(args: argparse.Namespace) -> int:
    from repro.fuzz import distill_corpus

    result = distill_corpus(
        args.corpus, apply=args.apply, check=not args.no_check
    )
    print(result.summary())
    for path, entry in result.kept:
        print(f"  keep {path.name}  {entry.config.lattice_key()}")
    for path, entry in result.dropped:
        verb = "dropped" if result.applied else "would drop"
        print(f"  {verb} {path.name}  {entry.config.lattice_key()}")
    return 0 if result.lossless else 1


def _cmd_fuzz_perf(args: argparse.Namespace) -> int:
    import os

    from repro.fuzz import (
        PerfEnvelope,
        PerfPoint,
        calibrate_envelope,
        run_perf_phase,
    )

    points = (
        [PerfPoint.from_key(key) for key in args.point]
        if args.point else None
    )
    if (args.envelope and os.path.isfile(args.envelope)
            and not args.recalibrate):
        envelope = PerfEnvelope.load(args.envelope)
        if points is not None:
            wanted = {p.key() for p in points}
            envelope.floors = {
                key: row for key, row in envelope.floors.items()
                if key in wanted
            }
            absent = wanted - set(envelope.floors)
            for key in sorted(absent):
                print(f"point {key} not in envelope; calibrating")
            if absent:
                fresh = calibrate_envelope(
                    [PerfPoint.from_key(k) for k in sorted(absent)],
                    margin=envelope.margin, vectors=envelope.vectors,
                )
                envelope.floors.update(fresh.floors)
    else:
        envelope = calibrate_envelope(
            points, margin=args.margin, vectors=args.vectors
        )
        if args.envelope:
            envelope.save(args.envelope)
            print(f"calibrated envelope -> {args.envelope}")
    report = run_perf_phase(
        envelope,
        observe_only=args.observe,
        artifacts_dir=args.artifacts,
    )
    for key, sample in sorted(report.samples.items()):
        floor = envelope.floors[key]["floor_vectors_per_s"]
        print(f"  {key}: {sample.vectors_per_s:,.0f} vectors/s "
              f"(floor {floor:,.0f}), "
              f"compile {sample.compile_seconds:.3f}s")
    for flag in report.flags:
        print(f"  PERF {flag.describe()}")
    print(f"perf: {len(report.samples)} points, "
          f"{len(report.flags)} flagged"
          f"{' (observe-only)' if report.observe_only else ''}")
    return 0 if report.ok else 1


def _cmd_tape(args: argparse.Namespace) -> int:
    from repro.replay import random_tape

    seq = resolve_sequential(args.circuit, args.scale)
    tape = random_tape(
        args.output, seq.external_inputs, args.cycles, seed=args.seed
    )
    print(f"wrote {tape.cycles} cycles x {len(tape.inputs)} inputs "
          f"({', '.join(tape.inputs[:6])}"
          f"{', ...' if len(tape.inputs) > 6 else ''}) "
          f"to {args.output}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.codegen.runtime import program_cache
    from repro.replay import Tape, replay_tape
    from repro.seqsim import CompiledSequentialSimulator

    seq = resolve_sequential(args.circuit, args.scale)
    tape = Tape(args.tape)
    options = _partition_options(args)
    options.update(_tiles_option(args))
    cache = program_cache()
    before = cache.stats()
    sim = CompiledSequentialSimulator(
        seq,
        engine=args.engine,
        backend=args.backend,
        word_width=args.word_width,
        incremental=args.incremental,
        **options,
    )
    after = cache.stats()
    result = replay_tape(
        sim, tape,
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=args.checkpoint_dir,
        resume_from=args.resume_from,
        chunk_cycles=args.chunk,
        outputs_path=args.outputs,
        vcd_path=args.vcd,
        vcd_nets=(
            args.probe_nets.split(",") if args.probe_nets else None
        ),
        limit=args.limit,
    )
    where = (f"cycles {result.cycle - result.cycles}..{result.cycle}"
             if result.resumed_from is not None
             else f"{result.cycles} cycles")
    print(f"{seq.core.name}: replayed {where} of {tape.cycles} "
          f"({seq.num_flipflops} FFs, engine={args.engine}, "
          f"backend={args.backend})")
    print(f"throughput: {result.cycles_per_second:,.0f} cycles/s "
          f"({result.seconds:.3f}s)")
    print(f"checksum: {result.checksum:#018x}")
    print(f"program cache: +{after['hits'] - before['hits']} hits, "
          f"+{after['misses'] - before['misses']} misses"
          + (f" ({sim._sim.num_cones} cones)" if args.incremental
             else ""))
    if result.checkpoints:
        print(f"checkpoints: {len(result.checkpoints)} written to "
              f"{args.checkpoint_dir}")
    if result.outputs_path:
        print(f"outputs: {result.outputs_path}")
    if result.vcd_path:
        print(f"waveform: {result.vcd_path}")
    if args.coverage:
        hottest = sorted(
            result.toggles.items(), key=lambda kv: -kv[1]
        )[:args.coverage]
        print("toggles: " + ", ".join(
            f"{name}={count}" for name, count in hottest
        ))
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Unit-delay compiled simulation (Maurer, DAC 1990)",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="scale factor for synthetic ISCAS85 analogs (default 1.0)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _add_partition_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--partitions", type=int, default=1,
            help="split the netlist into N balanced fanin-cone "
                 "clusters and run them through the level-band "
                 "barrier engine (default 1: monolithic; results "
                 "are bit-identical either way)",
        )
        p.add_argument(
            "--partition-workers", type=int, default=None,
            metavar="N",
            help="threads driving the partition segments "
                 "(default: one per partition)",
        )

    def _add_tiles_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--tiles", type=int, default=1, metavar="K",
            help="words per net in packed compiled passes "
                 "(word_width*K pattern lanes per pass; results are "
                 "bit-identical at any K; 0 = automatic selection, "
                 "default 1)",
        )

    def _add_telemetry_args(p: argparse.ArgumentParser) -> None:
        # Options must live on each subparser: argparse stops matching
        # top-level options once the subcommand name is consumed.
        p.add_argument(
            "--profile", action="store_true",
            help="print the per-phase telemetry table after the "
                 "command's normal output",
        )
        p.add_argument(
            "--metrics-out", default=None, metavar="FILE",
            help="write the full telemetry snapshot (phases, counters, "
                 "cache/packing/sharding sections) as JSON",
        )

    p_stats = sub.add_parser("stats", help="static circuit report")
    p_stats.add_argument("circuit")
    p_stats.add_argument(
        "--fast", action="store_true",
        help="skip the alignment analyses (large circuits)",
    )
    p_stats.add_argument(
        "--cones", action="store_true",
        help="report per-fanin-cone incremental recompilation stats: "
             "cold-build cache traffic, then the hit/miss delta of "
             "rebuilding after a synthetic single-gate edit",
    )
    p_stats.add_argument("-b", "--backend", default="python",
                         choices=["python", "c", "numpy"])
    _add_telemetry_args(p_stats)
    p_stats.set_defaults(func=_cmd_stats)

    p_compile = sub.add_parser("compile", help="print generated code")
    p_compile.add_argument("circuit")
    p_compile.add_argument(
        "-t", "--technique", default="parallel",
        choices=[t for t in TECHNIQUES if t not in
                 ("interp2", "interp3", "zero-interp")],
    )
    p_compile.add_argument("-l", "--language", default="c",
                           choices=["c", "python"])
    p_compile.add_argument("-w", "--word-width", type=int, default=32,
                           choices=[8, 16, 32, 64])
    p_compile.add_argument("-o", "--output", default=None)
    _add_telemetry_args(p_compile)
    p_compile.set_defaults(func=_cmd_compile)

    p_sim = sub.add_parser("simulate", help="simulate random vectors")
    p_sim.add_argument("circuit")
    p_sim.add_argument("-t", "--technique", default="parallel",
                       choices=[t for t in TECHNIQUES
                                if t != "pcset-mv"])
    p_sim.add_argument("-n", "--vectors", type=int, default=10)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument("-b", "--backend", default="python",
                       choices=["python", "c", "numpy"])
    p_sim.add_argument("-w", "--word-width", type=int, default=32,
                       choices=[8, 16, 32, 64])
    _add_tiles_arg(p_sim)
    _add_partition_args(p_sim)
    _add_telemetry_args(p_sim)
    p_sim.set_defaults(func=_cmd_simulate)

    history_techniques = [
        t for t in TECHNIQUES
        if t.startswith("parallel") or t == "pcset"
    ]
    p_act = sub.add_parser(
        "activity", help="switching-activity (toggle) report"
    )
    p_act.add_argument("circuit")
    p_act.add_argument("-t", "--technique", default="parallel-best",
                       choices=history_techniques + ["interp2",
                                                     "interp3",
                                                     "zero-lcc"])
    p_act.add_argument(
        "--probes", action="store_true",
        help="count toggles with probe counters compiled into the "
             "generated program (fast batched path; bit-identical to "
             "the history-based default) — techniques: "
             + ", ".join(_PROBE_TECHNIQUES),
    )
    p_act.add_argument("-n", "--vectors", type=int, default=100)
    p_act.add_argument("--seed", type=int, default=0)
    p_act.add_argument("--top", type=int, default=15,
                       help="show the N most active nets")
    p_act.add_argument("-b", "--backend", default="python",
                       choices=["python", "c"])
    p_act.add_argument("-w", "--word-width", type=int, default=32,
                       choices=[8, 16, 32, 64])
    _add_telemetry_args(p_act)
    p_act.set_defaults(func=_cmd_activity)

    p_vcd = sub.add_parser("vcd", help="dump unit-delay waveforms")
    p_vcd.add_argument("circuit")
    p_vcd.add_argument("-o", "--output", default="trace.vcd")
    p_vcd.add_argument("-t", "--technique", default="parallel-best",
                       choices=history_techniques)
    p_vcd.add_argument("-n", "--vectors", type=int, default=20)
    p_vcd.add_argument("--seed", type=int, default=0)
    p_vcd.add_argument("--all-nets", action="store_true",
                       help="include internal nets, not just I/O")
    p_vcd.add_argument("-b", "--backend", default="python",
                       choices=["python", "c"])
    p_vcd.add_argument("-w", "--word-width", type=int, default=32,
                       choices=[8, 16, 32, 64])
    _add_telemetry_args(p_vcd)
    p_vcd.set_defaults(func=_cmd_vcd)

    p_equiv = sub.add_parser(
        "equiv", help="check two circuits for functional equivalence"
    )
    p_equiv.add_argument("golden")
    p_equiv.add_argument("candidate")
    p_equiv.add_argument("--max-exhaustive", type=int, default=20,
                         help="input count up to which the check is "
                              "exhaustive")
    p_equiv.add_argument("-n", "--vectors", type=int, default=2048,
                         help="random vectors in sampled mode")
    p_equiv.add_argument("--seed", type=int, default=0)
    p_equiv.add_argument("-b", "--backend", default="python",
                         choices=["python", "c"])
    _add_telemetry_args(p_equiv)
    p_equiv.set_defaults(func=_cmd_equiv)

    p_faults = sub.add_parser(
        "faults", help="stuck-at fault coverage of random vectors"
    )
    p_faults.add_argument("circuit")
    p_faults.add_argument("-n", "--vectors", type=int, default=100)
    p_faults.add_argument("--seed", type=int, default=0)
    p_faults.add_argument("--show-undetected", action="store_true")
    p_faults.add_argument("-b", "--backend", default="python",
                          choices=["python", "c", "numpy"])
    p_faults.add_argument("-w", "--word-width", type=int, default=32,
                          choices=[8, 16, 32, 64])
    _add_tiles_arg(p_faults)
    p_faults.add_argument(
        "-j", "--workers", type=int, default=1,
        help="worker processes for sharded grading (default 1: "
             "single-process; the merged report is bit-identical)",
    )
    p_faults.add_argument(
        "--shards", type=int, default=None,
        help="fault-list shards (default 2x workers)",
    )
    p_faults.add_argument(
        "--mp-start", default="auto",
        choices=["auto", "fork", "spawn", "forkserver"],
        help="multiprocessing start method (auto: fork if available)",
    )
    p_faults.add_argument(
        "--shard-timeout", type=float, default=None,
        help="per-shard result timeout in seconds; late shards are "
             "regraded in-process",
    )
    _add_partition_args(p_faults)
    _add_telemetry_args(p_faults)
    p_faults.set_defaults(func=_cmd_faults)

    p_bench = sub.add_parser("bench", help="quick technique comparison")
    p_bench.add_argument("circuit")
    p_bench.add_argument(
        "-t", "--techniques", nargs="+",
        default=["interp2", "pcset", "parallel", "parallel-best"],
        choices=list(TECHNIQUES),
    )
    p_bench.add_argument("-n", "--vectors", type=int, default=100)
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--repeat", type=int, default=3)
    p_bench.add_argument("-b", "--backend", default="python",
                         choices=["python", "c", "numpy"])
    p_bench.add_argument("-w", "--word-width", type=int, default=32,
                         choices=[8, 16, 32, 64])
    _add_tiles_arg(p_bench)
    _add_partition_args(p_bench)
    _add_telemetry_args(p_bench)
    p_bench.set_defaults(func=_cmd_bench)

    p_prof = sub.add_parser(
        "profile",
        help="per-phase timing of one compile+run pipeline",
    )
    p_prof.add_argument("circuit")
    p_prof.add_argument("-t", "--technique", default="parallel-best",
                        choices=[t for t in TECHNIQUES
                                 if t not in ("interp2", "interp3",
                                              "zero-interp")])
    p_prof.add_argument("-n", "--vectors", type=int, default=256)
    p_prof.add_argument("--seed", type=int, default=0)
    p_prof.add_argument("-b", "--backend", default="python",
                        choices=["python", "c"])
    p_prof.add_argument("-w", "--word-width", type=int, default=32,
                        choices=[8, 16, 32, 64])
    p_prof.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write the full telemetry snapshot as JSON",
    )
    p_prof.set_defaults(func=_cmd_profile)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing of the compiled techniques against "
             "the event-driven reference, with performance oracles",
    )
    fuzz_sub = p_fuzz.add_subparsers(dest="fuzz_command",
                                     required=True)

    p_fc = fuzz_sub.add_parser(
        "campaign",
        help="run a seeded differential campaign over the "
             "configuration lattice (the bare 'fuzz' default)",
    )
    p_fc.add_argument("--seed", type=int, default=0)
    p_fc.add_argument(
        "-n", "--iterations", type=int, default=None,
        help="circuits to fuzz (default 50 when no time budget)",
    )
    p_fc.add_argument(
        "--budget-seconds", type=float, default=None,
        help="stop after this much wall time",
    )
    p_fc.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="save shrunk reproducers to this corpus directory",
    )
    p_fc.add_argument(
        "--backends", default=None,
        help="comma-separated backends (default: every usable one — "
             "python, plus c with a compiler, plus numpy when "
             "importable)",
    )
    p_fc.add_argument(
        "--configs-per-circuit", type=int, default=4,
        help="lattice points sampled per circuit (default 4)",
    )
    p_fc.add_argument(
        "--max-gates", type=int, default=24,
        help="largest random circuit drawn (default 24 gates)",
    )
    p_fc.add_argument(
        "--no-faults", action="store_true",
        help="skip the fault-report identity checks",
    )
    p_fc.add_argument(
        "--inject-bug", default=None, metavar="MUTATION",
        help="self-test: inject a known bug (nor-as-or, xnor-as-xor, "
             "nand-as-and, not-as-buf, partition-exchange, "
             "tile-boundary) and verify the campaign catches it",
    )
    p_fc.add_argument(
        "--perf", default="off",
        choices=["off", "observe", "enforce", "auto"],
        help="performance oracles: observe measures and reports, "
             "enforce fails the campaign on below-envelope points, "
             "auto enforces except under CI=1 or <4 CPUs "
             "(default off)",
    )
    p_fc.add_argument(
        "--envelope", default=None, metavar="FILE",
        help="persist/load the calibrated perf envelope (an existing "
             "file is loaded instead of recalibrating)",
    )
    p_fc.add_argument(
        "--perf-artifacts", default=None, metavar="DIR",
        help="write replayable JSON artifacts for perf flags here",
    )
    _add_telemetry_args(p_fc)
    p_fc.set_defaults(func=_cmd_fuzz_campaign)

    p_fd = fuzz_sub.add_parser(
        "distill",
        help="greedily minimize the corpus preserving lattice "
             "coverage (dry run unless --apply)",
    )
    p_fd.add_argument(
        "--corpus", default="fuzz-corpus", metavar="DIR",
        help="corpus directory to distill (default fuzz-corpus)",
    )
    p_fd.add_argument(
        "--apply", action="store_true",
        help="delete the subsumed entries (default: dry run)",
    )
    p_fd.add_argument(
        "--no-check", action="store_true",
        help="skip replaying kept entries against current code",
    )
    _add_telemetry_args(p_fd)
    p_fd.set_defaults(func=_cmd_fuzz_distill)

    p_fp = fuzz_sub.add_parser(
        "perf",
        help="measure perf points against the calibrated envelope "
             "(the replay command named in perf artifacts)",
    )
    p_fp.add_argument(
        "--point", action="append", default=None, metavar="KEY",
        help="measure only this point (repeatable; e.g. "
             "packed:zero-lcc:c:w32)",
    )
    p_fp.add_argument(
        "--envelope", default=None, metavar="FILE",
        help="load floors from this envelope file (calibrate and "
             "save when absent)",
    )
    p_fp.add_argument(
        "--recalibrate", action="store_true",
        help="ignore an existing envelope file and recalibrate",
    )
    p_fp.add_argument(
        "--margin", type=float, default=0.6,
        help="floor = margin x calibrated throughput (default 0.6)",
    )
    p_fp.add_argument(
        "--vectors", type=int, default=1024,
        help="vectors per measurement (default 1024)",
    )
    p_fp.add_argument(
        "--artifacts", default=None, metavar="DIR",
        help="write replayable JSON artifacts for flags here",
    )
    p_fp.add_argument(
        "--observe", action="store_true",
        help="report flags without a failing exit status",
    )
    _add_telemetry_args(p_fp)
    p_fp.set_defaults(func=_cmd_fuzz_perf)

    p_tape = sub.add_parser(
        "tape", help="write a seeded random clocked stimulus tape"
    )
    p_tape.add_argument("circuit")
    p_tape.add_argument("-n", "--cycles", type=int, default=1000)
    p_tape.add_argument("--seed", type=int, default=0)
    p_tape.add_argument("-o", "--output", required=True, metavar="FILE")
    _add_telemetry_args(p_tape)
    p_tape.set_defaults(func=_cmd_tape)

    p_replay = sub.add_parser(
        "replay",
        help="stream a stimulus tape through the clocked simulator, "
             "with mid-stream checkpoint/restore",
    )
    p_replay.add_argument("circuit")
    p_replay.add_argument("--tape", required=True, metavar="FILE",
                          help="stimulus tape (see 'repro-sim tape')")
    p_replay.add_argument("-e", "--engine", default="lcc",
                          choices=["lcc", "parallel", "pcset"])
    p_replay.add_argument("-b", "--backend", default="python",
                          choices=["python", "c", "numpy"])
    p_replay.add_argument("-w", "--word-width", type=int, default=32,
                          choices=[8, 16, 32, 64])
    _add_tiles_arg(p_replay)
    _add_partition_args(p_replay)
    p_replay.add_argument(
        "--incremental", action="store_true",
        help="evaluate the core through per-fanin-cone programs "
             "(content-keyed cache: a single-gate edit recompiles "
             "only the affected cones)",
    )
    p_replay.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="write a checkpoint after every N-th cycle",
    )
    p_replay.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="directory for checkpoint files "
             "(required with --checkpoint-every)",
    )
    p_replay.add_argument(
        "--resume-from", default=None, metavar="FILE",
        help="resume bit-identically from a checkpoint file",
    )
    p_replay.add_argument(
        "--outputs", default=None, metavar="FILE",
        help="stream per-cycle external outputs here (tape format; "
             "two replays compare with a byte compare)",
    )
    p_replay.add_argument(
        "--vcd", default=None, metavar="FILE",
        help="stream a per-cycle waveform of the external outputs "
             "here (incremental VCD; checkpoints carry the writer "
             "state, so a resumed run appends byte-identically)",
    )
    p_replay.add_argument(
        "--probe-nets", default=None, metavar="NETS",
        help="comma-separated external outputs to restrict the --vcd "
             "trace to (default: all external outputs)",
    )
    p_replay.add_argument(
        "--chunk", type=int, default=4096, metavar="N",
        help="cycles per apply_vectors call — the memory bound "
             "(default 4096)",
    )
    p_replay.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="replay at most N cycles (default: to end of tape)",
    )
    p_replay.add_argument(
        "--coverage", type=int, default=0, metavar="N",
        help="print the N most-toggling outputs",
    )
    _add_telemetry_args(p_replay)
    p_replay.set_defaults(func=_cmd_replay)

    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    # Back-compat: ``repro-sim fuzz --seed ...`` predates the verb
    # split (campaign/distill/perf); a bare ``fuzz`` means campaign.
    for index, token in enumerate(argv):
        if token in sub.choices:
            if token == "fuzz":
                following = (
                    argv[index + 1] if index + 1 < len(argv) else None
                )
                if following not in fuzz_sub.choices and (
                    following not in ("-h", "--help")
                ):
                    argv.insert(index + 1, "campaign")
            break
    args = parser.parse_args(argv)
    profile = getattr(args, "profile", False)
    metrics_out = getattr(args, "metrics_out", None)
    if profile or metrics_out:
        telemetry.enable(reset_state=True)
    start = time.perf_counter()
    status = args.func(args)
    wall = time.perf_counter() - start
    if profile:
        print()
        print(telemetry.format_profile(
            wall, title=f"telemetry profile: {args.command}"
        ))
        snap = telemetry.snapshot()
        cache = snap["cache"]
        print(f"program cache: {cache['entries']} entries, "
              f"{cache['hits']} hits, {cache['misses']} misses")
    if metrics_out:
        telemetry.write_metrics(metrics_out)
        print(f"wrote metrics to {metrics_out}")
    return status


if __name__ == "__main__":
    sys.exit(main())
