"""Equivalence checking between simulators.

The correctness contract (DESIGN.md §4): for the same initial steady
state and vector sequence, the event-driven simulator, the PC-set
method, and every parallel-technique variant must produce identical
per-net change histories.  These helpers make that a one-call check,
used by the integration tests and available to users validating their
own circuits.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.eventsim.simulator import EventDrivenSimulator
from repro.netlist.circuit import Circuit

__all__ = [
    "compare_histories",
    "value_at",
    "cross_validate",
    "Mismatch",
]

History = dict[str, list[tuple[int, int]]]


def value_at(changes: Sequence[tuple[int, int]], time: int) -> int:
    """Value of a net at ``time`` given its change list."""
    value = changes[0][1]
    for t, v in changes:
        if t > time:
            break
        value = v
    return value


def compare_histories(
    a: History, b: History, nets: Optional[Sequence[str]] = None
) -> list[str]:
    """Net names whose histories differ (empty list = equivalent)."""
    names = nets if nets is not None else sorted(set(a) | set(b))
    return [n for n in names if a.get(n) != b.get(n)]


class Mismatch(AssertionError):
    """Raised by :func:`cross_validate` with full context."""

    def __init__(self, technique: str, vector_index: int,
                 nets: list[str], detail: str) -> None:
        super().__init__(
            f"{technique}: vector #{vector_index} disagrees on nets "
            f"{nets[:5]}{'...' if len(nets) > 5 else ''}\n{detail}"
        )
        self.technique = technique
        self.vector_index = vector_index
        self.nets = nets


def cross_validate(
    circuit: Circuit,
    vectors: Sequence[Sequence[int]],
    techniques: Sequence[str] = ("pcset", "parallel", "parallel-trim",
                                 "parallel-pathtrace",
                                 "parallel-cyclebreak", "parallel-best"),
    *,
    initial: Optional[Sequence[int]] = None,
    backend: str = "python",
    word_width: int = 32,
) -> int:
    """Check every technique against the event-driven reference.

    Simulates all ``vectors`` with the two-valued event-driven
    simulator and with each compiled technique, comparing full per-net
    histories vector by vector.  Returns the number of per-vector
    comparisons performed; raises :class:`Mismatch` on the first
    disagreement.
    """
    from repro.harness.runner import build_simulator

    zeros = list(initial) if initial is not None else [0] * len(
        circuit.inputs
    )
    reference = EventDrivenSimulator(circuit, logic="two")
    reference_histories: list[History] = []
    reference.reset(zeros)
    for vector in vectors:
        reference_histories.append(
            reference.apply_vector(vector, record=True)
        )

    checks = 0
    for technique in techniques:
        sim = build_simulator(
            circuit, technique, backend=backend, word_width=word_width
        )
        sim.reset(zeros)
        for index, vector in enumerate(vectors):
            got = sim.apply_vector_history(vector)
            bad = compare_histories(reference_histories[index], got)
            if bad:
                net = bad[0]
                detail = (
                    f"  net {net!r}: reference "
                    f"{reference_histories[index][net]} vs {got[net]}"
                )
                raise Mismatch(technique, index, bad, detail)
            checks += 1
    return checks
