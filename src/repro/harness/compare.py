"""Equivalence checking between simulators.

The correctness contract (DESIGN.md §4): for the same initial steady
state and vector sequence, the event-driven simulator, the PC-set
method, and every parallel-technique variant must produce identical
per-net change histories.  These helpers make that a one-call check,
used by the integration tests, the fuzzing campaign
(:mod:`repro.fuzz`), and users validating their own circuits.

Three execution shapes are checked against the same reference:

- ``execution="scalar"`` — per-vector stepping, full per-net change
  histories (the original, strictest comparison).
- ``execution="batched"`` — the ``apply_vectors`` fast path, driven in
  chunks: raw output words and the final machine state must be
  bit-identical to a scalar loop, whose settled values are in turn
  anchored to the reference.
- ``execution="packed"`` — the pattern-lane paths (``settled_outputs``
  on the PC-set method, auto-packed ``apply_vectors`` on the LCC
  program), compared against the reference's settled values.
- ``execution="partitioned"`` — the multi-partition barrier engine
  (:mod:`repro.partition`): raw output words bit-identical to the
  monolithic program, settled values of *every* net anchored to the
  reference.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.errors import SimulationError
from repro.eventsim.simulator import EventDrivenSimulator
from repro.netlist.circuit import Circuit

__all__ = [
    "compare_histories",
    "value_at",
    "cross_validate",
    "Mismatch",
    "PACKED_TECHNIQUES",
    "PARTITIONED_TECHNIQUES",
]

History = dict[str, list[tuple[int, int]]]

#: Techniques with a genuinely pattern-packed observation path.
PACKED_TECHNIQUES = ("pcset", "zero-lcc")

#: Techniques with a partitioned (multi-cluster barrier) execution path.
PARTITIONED_TECHNIQUES = ("zero-lcc",)


def value_at(changes: Sequence[tuple[int, int]], time: int) -> int:
    """Value of a net at ``time`` given its change list."""
    value = changes[0][1]
    for t, v in changes:
        if t > time:
            break
        value = v
    return value


def compare_histories(
    a: History, b: History, nets: Optional[Sequence[str]] = None
) -> list[str]:
    """Net names whose histories differ (empty list = equivalent)."""
    names = nets if nets is not None else sorted(set(a) | set(b))
    return [n for n in names if a.get(n) != b.get(n)]


class Mismatch(AssertionError):
    """Raised by :func:`cross_validate` with full context."""

    def __init__(self, technique: str, vector_index: int,
                 nets: list[str], detail: str) -> None:
        super().__init__(
            f"{technique}: vector #{vector_index} disagrees on nets "
            f"{nets[:5]}{'...' if len(nets) > 5 else ''}\n{detail}"
        )
        self.technique = technique
        self.vector_index = vector_index
        self.nets = nets


def _chunks(
    vectors: Sequence[Sequence[int]], batch_size: Optional[int]
) -> Iterator[Sequence[Sequence[int]]]:
    if not batch_size or batch_size <= 0 or batch_size >= len(vectors):
        yield vectors
        return
    for start in range(0, len(vectors), batch_size):
        yield vectors[start:start + batch_size]


def _settled_reference(histories: Sequence[History]) -> list[dict[str, int]]:
    """Per-vector settled value of every net, from recorded histories."""
    return [
        {net: changes[-1][1] for net, changes in history.items()}
        for history in histories
    ]


def cross_validate(
    circuit: Circuit,
    vectors: Sequence[Sequence[int]],
    techniques: Sequence[str] = ("pcset", "parallel", "parallel-trim",
                                 "parallel-pathtrace",
                                 "parallel-cyclebreak", "parallel-best"),
    *,
    initial: Optional[Sequence[int]] = None,
    backend: str = "python",
    word_width: int = 32,
    execution: str = "scalar",
    batch_size: Optional[int] = None,
    partitions: int = 2,
    partition_workers: Optional[int] = None,
    tiles: "int | str" = 1,
) -> int:
    """Check every technique against the event-driven reference.

    Simulates all ``vectors`` with the two-valued event-driven
    simulator and with each compiled technique.  ``execution`` selects
    the compiled path under test: ``"scalar"`` steps per vector and
    compares full per-net change histories; ``"batched"`` drives the
    ``apply_vectors`` block path in ``batch_size`` chunks and requires
    bit-identical raw output words and final machine state versus a
    scalar loop whose settled values match the reference;
    ``"packed"`` drives the pattern-lane observation paths
    (:data:`PACKED_TECHNIQUES`) and compares settled values against
    the reference; ``"partitioned"`` drives the multi-cluster barrier
    engine (:data:`PARTITIONED_TECHNIQUES`, with ``partitions`` /
    ``partition_workers``) and requires raw output words bit-identical
    to the monolithic program plus every net's settled value anchored
    to the reference.  ``tiles`` compiles the techniques under test as
    K-tile machines (``word_width * K`` pattern lanes per packed pass;
    see :mod:`repro.codegen.packing`) — every contract above must hold
    unchanged at any K.  Returns the number of per-vector comparisons
    performed; raises :class:`Mismatch` on the first disagreement.
    """
    if execution not in ("scalar", "batched", "packed", "partitioned"):
        raise SimulationError(
            f"execution must be 'scalar', 'batched', 'packed' or "
            f"'partitioned': {execution!r}"
        )
    zeros = list(initial) if initial is not None else [0] * len(
        circuit.inputs
    )
    reference = EventDrivenSimulator(circuit, logic="two")
    reference_histories: list[History] = []
    reference.reset(zeros)
    for vector in vectors:
        reference_histories.append(
            reference.apply_vector(vector, record=True)
        )

    checks = 0
    for technique in techniques:
        if execution == "scalar":
            checks += _validate_scalar(
                circuit, technique, vectors, zeros,
                reference_histories, backend, word_width, tiles,
            )
        elif execution == "batched":
            checks += _validate_batched(
                circuit, technique, vectors, zeros,
                reference_histories, backend, word_width, batch_size,
                tiles,
            )
        elif execution == "partitioned":
            checks += _validate_partitioned(
                circuit, technique, vectors, zeros,
                reference_histories, backend, word_width, batch_size,
                partitions, partition_workers, tiles,
            )
        else:
            checks += _validate_packed(
                circuit, technique, vectors, zeros,
                reference_histories, backend, word_width, batch_size,
                tiles,
            )
    return checks


def _validate_scalar(
    circuit: Circuit,
    technique: str,
    vectors: Sequence[Sequence[int]],
    zeros: Sequence[int],
    reference_histories: Sequence[History],
    backend: str,
    word_width: int,
    tiles: "int | str" = 1,
) -> int:
    from repro.harness.runner import build_simulator

    sim = build_simulator(
        circuit, technique, backend=backend, word_width=word_width,
        tiles=tiles,
    )
    sim.reset(zeros)
    checks = 0
    for index, vector in enumerate(vectors):
        got = sim.apply_vector_history(vector)
        bad = compare_histories(reference_histories[index], got)
        if bad:
            net = bad[0]
            detail = (
                f"  net {net!r}: reference "
                f"{reference_histories[index][net]} vs {got[net]}"
            )
            raise Mismatch(technique, index, bad, detail)
        checks += 1
    return checks


def _validate_batched(
    circuit: Circuit,
    technique: str,
    vectors: Sequence[Sequence[int]],
    zeros: Sequence[int],
    reference_histories: Sequence[History],
    backend: str,
    word_width: int,
    batch_size: Optional[int],
    tiles: "int | str" = 1,
) -> int:
    """The ``apply_vectors`` path: chunked batches vs. a scalar loop.

    The scalar loop is itself anchored to the reference — after every
    vector its decoded settled values must match the event-driven
    settled state — and the batched run must then reproduce the scalar
    loop's raw output words and final machine state bit for bit.
    """
    from repro.harness.runner import build_simulator

    settled_ref = _settled_reference(reference_histories)

    def fresh():
        sim = build_simulator(
            circuit, technique, backend=backend, word_width=word_width,
            tiles=tiles,
        )
        if not hasattr(sim, "apply_vectors") or not hasattr(
            sim, "final_values"
        ):
            raise SimulationError(
                f"{technique!r} has no batched execution path"
            )
        sim.reset(zeros)
        return sim

    scalar = fresh()
    checks = 0
    expected: list[list[int]] = []
    for index, vector in enumerate(vectors):
        expected.append(scalar.apply_vector(vector))
        finals = scalar.final_values()
        bad = [
            net for net, value in finals.items()
            if value != settled_ref[index][net]
        ]
        if bad:
            net = bad[0]
            detail = (
                f"  settled net {net!r}: reference "
                f"{settled_ref[index][net]} vs {finals[net]}"
            )
            raise Mismatch(f"{technique}[scalar]", index, bad, detail)
        checks += 1

    batched = fresh()
    got: list[list[int]] = []
    for chunk in _chunks(vectors, batch_size):
        got.extend(batched.apply_vectors(chunk))
    for index, (want, out) in enumerate(zip(expected, got)):
        if want != out:
            detail = f"  raw output words: scalar {want} vs batched {out}"
            raise Mismatch(f"{technique}[batched]", index, [], detail)
        checks += 1
    if batched.packing_mode != "full":
        # A "full"-mode batch auto-packs: the machine ends up holding
        # pattern lanes (plus the reconstruction fill group), not the
        # scalar end state, and the raw-word identity above is the
        # whole contract.  Only the scalar run_block fallback promises
        # an identical final state.
        if batched.machine.dump_state() != scalar.machine.dump_state():
            raise Mismatch(
                f"{technique}[batched]", len(vectors) - 1, [],
                "  final machine state diverged from the scalar loop",
            )
    return checks


def _validate_partitioned(
    circuit: Circuit,
    technique: str,
    vectors: Sequence[Sequence[int]],
    zeros: Sequence[int],
    reference_histories: Sequence[History],
    backend: str,
    word_width: int,
    batch_size: Optional[int],
    partitions: int,
    partition_workers: Optional[int],
    tiles: "int | str" = 1,
) -> int:
    """The multi-partition barrier engine vs. monolithic + reference.

    Three comparisons per chunk: the partitioned raw output words must
    equal the monolithic ``apply_vectors`` words bit for bit; the
    partitioned settled output bits must match the reference; and
    ``evaluate_all_nets`` must reproduce the reference's settled value
    of *every* net for every vector.
    """
    from repro.harness.runner import build_simulator

    if technique not in PARTITIONED_TECHNIQUES:
        raise SimulationError(
            f"{technique!r} has no partitioned execution path; choose "
            f"from {PARTITIONED_TECHNIQUES}"
        )
    settled_ref = _settled_reference(reference_histories)
    mono = build_simulator(
        circuit, technique, backend=backend, word_width=word_width,
        tiles=tiles,
    )
    part = build_simulator(
        circuit, technique, backend=backend, word_width=word_width,
        partitions=partitions, partition_workers=partition_workers,
        tiles=tiles,
    )
    checks = 0
    index = 0
    for chunk in _chunks(vectors, batch_size):
        want = mono.apply_vectors(chunk)
        got = part.apply_vectors(chunk)
        for offset, (w, g) in enumerate(zip(want, got)):
            if w != g:
                detail = (
                    f"  raw output words: monolithic {w} vs "
                    f"partitioned {g}"
                )
                raise Mismatch(
                    f"{technique}[partitioned]", index + offset, [],
                    detail,
                )
        for offset, out in enumerate(got):
            row = {
                net: value & 1
                for net, value in zip(circuit.outputs, out)
            }
            ref = settled_ref[index + offset]
            bad = [net for net, value in row.items() if value != ref[net]]
            if bad:
                net = bad[0]
                detail = (
                    f"  settled net {net!r}: reference "
                    f"{ref[net]} vs {row[net]}"
                )
                raise Mismatch(
                    f"{technique}[partitioned]", index + offset, bad,
                    detail,
                )
            checks += 1
        index += len(chunk)
    for vec_index, vector in enumerate(vectors):
        nets = part.evaluate_all_nets(vector)
        ref = settled_ref[vec_index]
        bad = [
            net for net, value in nets.items() if value != ref.get(net, value)
        ]
        if bad:
            net = bad[0]
            detail = (
                f"  settled net {net!r}: reference "
                f"{ref[net]} vs {nets[net]}"
            )
            raise Mismatch(
                f"{technique}[partitioned-nets]", vec_index, bad, detail
            )
        checks += 1
    return checks


def _validate_packed(
    circuit: Circuit,
    technique: str,
    vectors: Sequence[Sequence[int]],
    zeros: Sequence[int],
    reference_histories: Sequence[History],
    backend: str,
    word_width: int,
    batch_size: Optional[int],
    tiles: "int | str" = 1,
) -> int:
    """The pattern-lane observation paths vs. reference settled values.

    ``pcset`` observes settled values through ``settled_outputs`` (a
    packed pass when the program is eligible); ``zero-lcc`` auto-packs
    ``apply_vectors`` and its bit-0 outputs are the settled values of
    the monitored nets (zero-delay settled == unit-delay settled in an
    acyclic circuit).
    """
    from repro.harness.runner import build_simulator

    settled_ref = _settled_reference(reference_histories)
    if technique not in PACKED_TECHNIQUES:
        raise SimulationError(
            f"{technique!r} has no packed observation path; choose "
            f"from {PACKED_TECHNIQUES}"
        )
    sim = build_simulator(
        circuit, technique, backend=backend, word_width=word_width,
        tiles=tiles,
    )
    checks = 0
    index = 0
    for chunk in _chunks(vectors, batch_size):
        if technique == "pcset":
            sim.reset(zeros)
            rows = sim.settled_outputs(chunk)
        else:
            raw = sim.apply_vectors(chunk)
            rows = [
                {net: value & 1
                 for net, value in zip(circuit.outputs, out)}
                for out in raw
            ]
        for row in rows:
            bad = [
                net for net, value in row.items()
                if value != settled_ref[index][net]
            ]
            if bad:
                net = bad[0]
                detail = (
                    f"  settled net {net!r}: reference "
                    f"{settled_ref[index][net]} vs {row[net]}"
                )
                raise Mismatch(f"{technique}[packed]", index, bad, detail)
            checks += 1
            index += 1
    return checks
