"""Plain-text tables for benchmark reports.

The benchmarks print tables shaped like the paper's figures; this
module holds the one renderer they share, plus small numeric helpers
(ratios and percentage improvements, the quantities §5 quotes).
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["format_table", "ratio", "improvement_percent", "geometric_mean"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: Optional[str] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned monospace table.

    Floats use ``float_format``; everything else is ``str()``-ed.
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    text_rows = [[render(c) for c in row] for row in rows]
    columns = len(headers)
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i in range(min(columns, len(row))):
            widths[i] = max(widths[i], len(row[i]))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        h.ljust(widths[i]) for i, h in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(
            "  ".join(
                cell.rjust(widths[i]) if i else cell.ljust(widths[i])
                for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def ratio(baseline: float, candidate: float) -> float:
    """``baseline / candidate`` — how many times faster the candidate is."""
    if candidate == 0:
        return float("inf")
    return baseline / candidate


def improvement_percent(before: float, after: float) -> float:
    """Percent improvement of ``after`` over ``before`` (paper's §5 metric)."""
    if before == 0:
        return 0.0
    return 100.0 * (before - after) / before


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= max(value, 1e-12)
    return product ** (1.0 / len(values))
