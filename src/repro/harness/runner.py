"""One factory for every simulator in the library.

Technique names (the rows/columns of the paper's tables):

========================  ====================================================
name                      meaning
========================  ====================================================
``interp3``               interpreted event-driven unit delay, 3-valued
``interp2``               interpreted event-driven unit delay, 2-valued
``pcset``                 the PC-set method (§2)
``pcset-mv``              PC-set, multi-vector bit-parallel mode
``parallel``              the parallel technique, unoptimized (§3)
``parallel-trim``         + bit-field trimming (Fig. 20)
``parallel-pathtrace``    + path-tracing shift elimination (Fig. 23)
``parallel-cyclebreak``   + cycle-breaking shift elimination (Fig. 23)
``parallel-best``         + path tracing + trimming (Fig. 24)
``zero-interp``           interpreted zero-delay
``zero-lcc``              compiled zero-delay LCC (Fig. 1)
========================  ====================================================

Compiled techniques accept ``backend="python"|"c"`` and ``word_width``;
timing callers pass ``with_outputs=False`` to match the paper's
methodology.

Everything here drives *batches*: :func:`run_technique` builds its
timed runnable over the prepared-batch fast path (the vector loop runs
inside the generated code on both backends), and
:func:`simulate_outputs` is the output-collecting counterpart used by
cross-validation tooling.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import SimulationError
from repro.eventsim.simulator import EventDrivenSimulator
from repro.eventsim.zerodelay import ZeroDelaySimulator
from repro.lcc.zerodelay import LCCSimulator
from repro.netlist.circuit import Circuit
from repro.parallel.simulator import ParallelSimulator
from repro.pcset.multivector import MultiVectorPCSetSimulator
from repro.pcset.simulator import PCSetSimulator

__all__ = [
    "TECHNIQUES",
    "build_simulator",
    "run_technique",
    "simulate_outputs",
    "grade_faults",
]

TECHNIQUES = (
    "interp3",
    "interp2",
    "pcset",
    "pcset-mv",
    "parallel",
    "parallel-trim",
    "parallel-pathtrace",
    "parallel-cyclebreak",
    "parallel-best",
    "zero-interp",
    "zero-lcc",
)

_PARALLEL_OPT = {
    "parallel": "none",
    "parallel-trim": "trim",
    "parallel-pathtrace": "pathtrace",
    "parallel-cyclebreak": "cyclebreak",
    "parallel-best": "pathtrace+trim",
}


def build_simulator(circuit: Circuit, technique: str, **options):
    """Instantiate the simulator implementing ``technique``."""
    if technique == "interp3":
        return EventDrivenSimulator(circuit, logic="three")
    if technique == "interp2":
        return EventDrivenSimulator(circuit, logic="two")
    if technique == "pcset":
        return PCSetSimulator(circuit, **options)
    if technique == "pcset-mv":
        return MultiVectorPCSetSimulator(circuit, **options)
    if technique in _PARALLEL_OPT:
        return ParallelSimulator(
            circuit, optimization=_PARALLEL_OPT[technique], **options
        )
    if technique == "zero-interp":
        return ZeroDelaySimulator(circuit, logic="two")
    if technique == "zero-lcc":
        return LCCSimulator(circuit, **options)
    raise SimulationError(
        f"unknown technique {technique!r}; choose from {TECHNIQUES}"
    )


def run_technique(
    circuit: Circuit,
    technique: str,
    vectors: Sequence[Sequence[int]],
    **options,
) -> Callable[[], None]:
    """Build a zero-argument runnable that simulates ``vectors``.

    The returned callable is what the timing harness (and the
    pytest-benchmark fixtures) invoke repeatedly.  Construction,
    state seeding and vector marshalling all happen here, outside the
    timed region — the paper likewise excludes compile and I/O time,
    and its per-vector driver loop was itself compiled.  Across repeat
    invocations the circuit state simply keeps evolving; straight-line
    simulation cost is data-independent, so this is sound for timing.
    """
    zeros = [0] * len(circuit.inputs)
    if technique in ("interp3", "interp2"):
        sim = build_simulator(circuit, technique)
        sim.reset(zeros)
        return lambda: sim.run_batch(vectors)
    if technique == "zero-interp":
        sim = build_simulator(circuit, technique)
        return lambda: sim.run_batch(vectors)
    if technique == "zero-lcc":
        # ``packed`` rides through **options to the LCCSimulator:
        # "auto"/True transposes the batch once, out here, and the
        # runnable is ceil(n / word_width) pattern-packed compiled
        # passes; False is the paper's one-vector-per-pass
        # configuration.
        sim = build_simulator(circuit, technique, **options)
        if options.get("partitions", 1) > 1:
            # The prepared-program fast path times one compiled
            # program's inner loop and is monolithic by construction;
            # the partitioned engine is exercised through the batch
            # entry, which delegates to the barrier executor.
            vector_rows = [list(v) for v in vectors]
            return lambda: sim.run_batch(vector_rows)
        if sim.packed is not False:
            try:
                prepared = sim.prepare_packed(vectors)
            except SimulationError:
                if sim.packed is True:
                    raise
                prepared = sim.prepare_batch(vectors)
        else:
            prepared = sim.prepare_batch(vectors)
        return lambda: sim.run_prepared(prepared)
    if technique == "pcset-mv":
        sim = build_simulator(
            circuit, technique, with_outputs=False, **options
        )
        sim.reset(zeros)
        prepared_streams = sim.prepare_streams(vectors)
        return lambda: sim.run_prepared(prepared_streams)
    sim = build_simulator(circuit, technique, with_outputs=False, **options)
    sim.reset(zeros)
    prepared = sim.prepare_batch(vectors)
    return lambda: sim.run_prepared(prepared)


def grade_faults(
    circuit: Circuit,
    vectors: Sequence[Sequence[int]],
    faults=None,
    *,
    workers: int = 1,
    **options,
):
    """Factory-level entry to stuck-at fault grading.

    The harness counterpart of :func:`build_simulator` for the fault
    workload: ``workers=1`` runs the single-process lane/pattern
    engine; ``workers > 1`` shards the fault list across a
    multiprocess pool (:mod:`repro.faults.sharding`) and returns the
    merged — bit-identical — :class:`ShardedFaultReport`, whose
    ``sharding_stats()`` carries the worker/shard execution metadata.
    ``options`` pass through to
    :func:`repro.faults.simulator.run_fault_simulation`
    (``word_width``, ``backend``, ``patterns``, ``shards``,
    ``mp_start``, ``shard_timeout``, ...).
    """
    from repro.faults.simulator import run_fault_simulation

    return run_fault_simulation(
        circuit, vectors, faults, workers=workers, **options
    )


def simulate_outputs(
    circuit: Circuit,
    technique: str,
    vectors: Sequence[Sequence[int]],
    **options,
) -> list[list[int]]:
    """Simulate ``vectors`` on a *compiled* technique; return each
    vector's raw output words.

    The whole batch runs through ``apply_vectors`` — one dispatch into
    the generated ``run_block`` loop.  State (where the technique keeps
    any) is seeded from the all-zeros steady state, as the timing
    harness does.  Interpreted techniques have no raw output-word
    protocol and are rejected.
    """
    sim = build_simulator(circuit, technique, **options)
    if not hasattr(sim, "apply_vectors"):
        raise SimulationError(
            f"{technique!r} is not a compiled technique; it has no "
            "batched output protocol"
        )
    if hasattr(sim, "reset"):
        sim.reset([0] * len(circuit.inputs))
    return sim.apply_vectors(vectors)
