"""Experiment harness: vectors, simulator factory, cross-checks, timing.

This is the machinery the benchmarks and EXPERIMENTS.md are built on:

- :mod:`repro.harness.vectors` — seeded random vector sets;
- :mod:`repro.harness.runner` — one factory for every simulator in the
  library, keyed by technique name;
- :mod:`repro.harness.compare` — history/checksum equivalence checks
  between simulators;
- :mod:`repro.harness.timing` — repeat-and-average wall-clock
  measurement (the paper averaged five ``/bin/time`` runs);
- :mod:`repro.harness.tables` — plain-text table rendering for the
  benchmark reports.
"""

from repro.harness.vectors import random_vectors
from repro.harness.runner import TECHNIQUES, build_simulator
from repro.harness.compare import compare_histories, cross_validate
from repro.harness.timing import TimingResult, time_run
from repro.harness.tables import format_table

__all__ = [
    "random_vectors",
    "TECHNIQUES",
    "build_simulator",
    "compare_histories",
    "cross_validate",
    "TimingResult",
    "time_run",
    "format_table",
]
