"""Seeded random input vectors.

The paper simulated each circuit on 5,000 randomly generated vectors.
These helpers produce deterministic vector sets (lists of 0/1 rows in
primary-input order) and utilities to derive per-lane streams for the
multi-vector mode.
"""

from __future__ import annotations

import random
from repro.netlist.circuit import Circuit

__all__ = ["random_vectors", "vectors_for", "walking_ones", "all_zeros"]


def random_vectors(
    num_vectors: int, num_inputs: int, seed: int = 0
) -> list[list[int]]:
    """``num_vectors`` rows of ``num_inputs`` random bits (seeded).

    Bits are drawn via ``getrandbits`` per row, so generation is cheap
    even for wide circuits like c2670 (233 inputs).
    """
    rng = random.Random(seed)
    rows = []
    for _ in range(num_vectors):
        packed = rng.getrandbits(num_inputs) if num_inputs else 0
        rows.append([(packed >> i) & 1 for i in range(num_inputs)])
    return rows


def vectors_for(
    circuit: Circuit, num_vectors: int, seed: int = 0
) -> list[list[int]]:
    """Random vectors shaped for ``circuit``'s primary inputs."""
    return random_vectors(num_vectors, len(circuit.inputs), seed)


def walking_ones(num_inputs: int) -> list[list[int]]:
    """One vector per input with a single 1 bit (activity probes)."""
    return [
        [1 if j == i else 0 for j in range(num_inputs)]
        for i in range(num_inputs)
    ]


def all_zeros(num_inputs: int) -> list[int]:
    """The customary initial vector."""
    return [0] * num_inputs
