"""Wall-clock measurement with repeat-and-best/average statistics.

The paper ran each experiment five times under ``/bin/time`` and
averaged.  :func:`time_run` does the same with ``perf_counter`` and
also reports the minimum (less noise-sensitive on a multitasking
host).  Results normalize per vector so differently sized batches
compare directly.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["TimingResult", "time_run"]


class TimingResult:
    """Timing of one technique on one workload."""

    __slots__ = ("label", "samples", "num_vectors")

    def __init__(self, label: str, samples: list[float],
                 num_vectors: int) -> None:
        self.label = label
        self.samples = samples
        self.num_vectors = num_vectors

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def best(self) -> float:
        return min(self.samples)

    @property
    def stddev(self) -> float:
        """Population standard deviation of the samples (0.0 for one).

        Population rather than sample variance: the five repeats *are*
        the whole measured population, and a single-trial run must
        report a defined (zero) spread rather than divide by zero.
        """
        n = len(self.samples)
        if n < 2:
            return 0.0
        mean = self.mean
        return (
            sum((s - mean) ** 2 for s in self.samples) / n
        ) ** 0.5

    @property
    def per_vector(self) -> float:
        """Mean seconds per vector."""
        return self.mean / max(1, self.num_vectors)

    @property
    def vectors_per_second(self) -> float:
        """Mean throughput — the batching API's headline number.

        Comparable with ``machine.counters.vectors_per_second``, which
        the backends accumulate per ``run_block`` batch.
        """
        if self.mean == 0:
            return float("inf")
        return self.num_vectors / self.mean

    def speedup_over(self, other: "TimingResult") -> float:
        """How many times faster than ``other`` (per vector)."""
        if self.per_vector == 0:
            return float("inf")
        return other.per_vector / self.per_vector

    def as_dict(self) -> dict:
        """JSON-friendly summary (what benchmark reports serialize)."""
        return {
            "label": self.label,
            "samples": list(self.samples),
            "num_vectors": self.num_vectors,
            "mean": self.mean,
            "best": self.best,
            "stddev": self.stddev,
            "per_vector": self.per_vector,
            "vectors_per_second": self.vectors_per_second,
        }

    def __repr__(self) -> str:
        return (
            f"TimingResult({self.label}: mean={self.mean:.4f}s over "
            f"{len(self.samples)} trials, {self.num_vectors} vectors)"
        )


def time_run(
    run: Callable[[], None],
    *,
    label: str = "",
    num_vectors: int = 1,
    repeat: int = 5,
    warmup: int = 1,
) -> TimingResult:
    """Time ``run()`` ``repeat`` times after ``warmup`` untimed calls."""
    for _ in range(warmup):
        run()
    samples = []
    for _ in range(repeat):
        start = time.perf_counter()
        run()
        samples.append(time.perf_counter() - start)
    return TimingResult(label, samples, num_vectors)
