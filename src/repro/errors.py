"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one type at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class NetlistError(ReproError):
    """A circuit description is malformed (dangling nets, bad gates...)."""


class CyclicCircuitError(NetlistError):
    """A combinational cycle was found where an acyclic circuit is required.

    The compiled techniques in this library require acyclic circuits; break
    sequential feedback at flip-flops first (see
    :mod:`repro.netlist.sequential`).
    """

    def __init__(self, message: str, cycle: list | None = None) -> None:
        super().__init__(message)
        #: A witness cycle (list of node names), when available.
        self.cycle = list(cycle) if cycle is not None else None


class BenchFormatError(NetlistError):
    """An ISCAS85 ``.bench`` file could not be parsed."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        #: 1-based line number of the offending line, when known.
        self.line_number = line_number


class SimulationError(ReproError):
    """A simulation could not be run (bad vector shape, unknown net...)."""


class VectorError(SimulationError):
    """An input vector does not match the circuit's primary inputs."""


class CodegenError(ReproError):
    """Code generation failed or produced an inconsistent program."""


class BackendError(CodegenError):
    """A code-execution backend (python exec / gcc) failed."""


class AlignmentError(CodegenError):
    """A shift-elimination pass produced inconsistent alignments."""
