"""Delta-debugging shrinker for failing (circuit, vectors, config) triples.

A fuzz failure on a 200-gate random DAG is not a bug report; the same
failure on a 3-gate cone with a 2-vector tape is.  The shrinker
repeatedly applies structural reductions and keeps each one only if
the *same* failing comparison still fails afterwards:

1. **truncate the tape** — shortest failing prefix, then a greedy pass
   removing interior vectors (state chains across vectors, so removal
   changes the test; the predicate decides);
2. **drop outputs** — keep one monitored output at a time, pruning the
   dead cone (:func:`~repro.netlist.random_circuits.keep_outputs`);
3. **bypass gates** — replace a gate with ``BUF(first input)``,
   ``CONST0`` or ``CONST1``
   (:func:`~repro.netlist.random_circuits.replace_gate`), then prune;
4. **reduce fan-in** — drop one operand of any gate with more than the
   minimum arity, then prune;
5. **pin inputs** — replace a primary input with a constant
   (:func:`~repro.netlist.random_circuits.pin_input`) and delete the
   corresponding tape column.

Rounds repeat to a fixpoint.  Reductions that make the configuration
inapplicable (a :class:`~repro.errors.ReproError`) are rejected, not
treated as failures; only a recurrence of the original failure class
counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro import telemetry
from repro.errors import ReproError
from repro.fuzz.lattice import FuzzConfig, run_check
from repro.logic import GateType
from repro.netlist.circuit import Circuit
from repro.netlist.random_circuits import (
    keep_outputs,
    pin_input,
    replace_gate,
)

__all__ = ["ShrinkResult", "shrink", "failure_predicate"]


@dataclass
class ShrinkResult:
    """Outcome of a shrink run: the minimal still-failing reproducer."""

    circuit: Circuit
    vectors: list[list[int]]
    steps: list[str] = field(default_factory=list)
    attempts: int = 0

    @property
    def num_steps(self) -> int:
        return len(self.steps)


def failure_predicate(
    config: FuzzConfig,
    failure: BaseException,
    check: Callable = run_check,
) -> Callable[[Circuit, Sequence[Sequence[int]]], bool]:
    """The shrink predicate: "does the original failure still occur?".

    Mismatches (``AssertionError``) shrink against any mismatch of the
    same config; a crash shrinks against the same exception class.
    Configuration-inapplicability (:class:`ReproError` on a reduced
    circuit, e.g. a packed check losing its last input) rejects the
    reduction rather than counting as a failure.
    """
    if isinstance(failure, AssertionError):
        expect: type = AssertionError
    else:
        expect = type(failure)

    def predicate(
        circuit: Circuit, vectors: Sequence[Sequence[int]]
    ) -> bool:
        try:
            check(circuit, vectors, config)
        except expect:
            return True
        except Exception:
            return False
        return False

    return predicate


def _size(circuit: Circuit, vectors: Sequence[Sequence[int]]) -> int:
    """Scalar size metric a reduction must strictly decrease.

    Inputs weigh more than gates so that pinning an input is a
    reduction even though it adds the constant gate that replaces it.
    """
    total_fanin = sum(g.fan_in for g in circuit.gates.values())
    return (
        3 * circuit.num_gates
        + total_fanin
        + 5 * len(circuit.inputs)
        + 2 * len(circuit.outputs)
        + len(vectors)
    )


def _gate_candidates(circuit: Circuit, gate_name: str):
    """Simpler definitions to try for one gate, most aggressive first."""
    gate = circuit.gate(gate_name)
    candidates: list[tuple[str, GateType, list[str]]] = [
        ("const0", GateType.CONST0, []),
        ("const1", GateType.CONST1, []),
    ]
    if gate.inputs and gate.gate_type is not GateType.BUF:
        candidates.append(("buf", GateType.BUF, [gate.inputs[0]]))
    return candidates


def shrink(
    circuit: Circuit,
    vectors: Sequence[Sequence[int]],
    config: FuzzConfig,
    *,
    failure: Optional[BaseException] = None,
    max_attempts: int = 2000,
    check: Callable = run_check,
) -> ShrinkResult:
    """Reduce a failing triple to a minimal reproducer.

    ``failure`` is the exception the campaign caught (defines the
    predicate; a generic mismatch predicate is used when omitted).
    ``max_attempts`` bounds the total number of re-runs; ``check``
    overrides the differential predicate (kept in sync with the
    campaign's override).
    """
    predicate = failure_predicate(
        config, failure if failure is not None else AssertionError(),
        check,
    )
    result = ShrinkResult(circuit, [list(v) for v in vectors])
    budget = [max_attempts]

    def attempt(
        candidate: Circuit, tape: Sequence[Sequence[int]], step: str
    ) -> bool:
        if budget[0] <= 0:
            return False
        # Only strict size reductions are ever accepted — this is what
        # makes every round monotone and the fixpoint loop terminate
        # (a CONST0->CONST1 rewrite, say, still fails but goes nowhere).
        if _size(candidate, tape) >= _size(result.circuit,
                                           result.vectors):
            return False
        budget[0] -= 1
        result.attempts += 1
        with telemetry.span("fuzz.shrink.attempt"):
            ok = predicate(candidate, tape)
        if ok:
            result.circuit = candidate
            result.vectors = [list(v) for v in tape]
            result.steps.append(step)
            telemetry.counter("fuzz.shrink.steps")
        return ok

    with telemetry.span("fuzz.shrink"):
        while budget[0] > 0:
            progress = False
            progress |= _shrink_tape(result, attempt)
            progress |= _shrink_outputs(result, attempt)
            progress |= _shrink_gates(result, attempt)
            progress |= _shrink_fanin(result, attempt)
            progress |= _shrink_inputs(result, attempt)
            if not progress:
                break
    return result


def _shrink_tape(result: ShrinkResult, attempt) -> bool:
    progress = False
    # Shortest failing prefix first (cheap: tapes are short).
    for length in range(1, len(result.vectors)):
        if attempt(result.circuit, result.vectors[:length],
                   f"tape[:{length}]"):
            progress = True
            break
    # Then one greedy pass removing interior vectors.
    index = len(result.vectors) - 1
    while index >= 0 and len(result.vectors) > 1:
        tape = result.vectors[:index] + result.vectors[index + 1:]
        if attempt(result.circuit, tape, f"drop vector #{index}"):
            progress = True
        index -= 1
    return progress


def _shrink_outputs(result: ShrinkResult, attempt) -> bool:
    progress = False
    outputs = result.circuit.outputs
    if len(outputs) <= 1:
        return False
    for net in outputs:
        candidate = keep_outputs(result.circuit, [net])
        if candidate.num_gates == 0:
            continue
        if attempt(candidate, result.vectors, f"keep output {net}"):
            return True
    # No single output carries the failure: drop outputs one at a time.
    for net in list(outputs):
        remaining = [n for n in result.circuit.outputs if n != net]
        if not remaining:
            break
        candidate = keep_outputs(result.circuit, remaining)
        if candidate.num_gates == 0:
            continue
        if attempt(candidate, result.vectors, f"drop output {net}"):
            progress = True
    return progress


def _shrink_gates(result: ShrinkResult, attempt) -> bool:
    progress = False
    # Reverse topological order: bypassing near the outputs kills the
    # largest upstream cones first.
    for gate in reversed(result.circuit.topological_gates()):
        if gate.name not in result.circuit.gates:
            continue
        if result.circuit.num_gates <= 1:
            break
        for tag, gate_type, inputs in _gate_candidates(
            result.circuit, gate.name
        ):
            replaced = replace_gate(
                result.circuit, gate.name, gate_type, inputs
            )
            candidate = keep_outputs(replaced, replaced.outputs)
            if candidate.num_gates == 0:
                continue
            if attempt(candidate, result.vectors,
                       f"{tag} {gate.name}"):
                progress = True
                break
    return progress


def _shrink_fanin(result: ShrinkResult, attempt) -> bool:
    progress = False
    for gate in reversed(result.circuit.topological_gates()):
        if gate.name not in result.circuit.gates:
            continue
        gate = result.circuit.gate(gate.name)
        minimum = gate.gate_type.min_inputs
        while len(gate.inputs) > minimum and len(gate.inputs) > 1:
            reduced = False
            for drop in range(len(gate.inputs)):
                inputs = [
                    net for k, net in enumerate(gate.inputs) if k != drop
                ]
                replaced = replace_gate(
                    result.circuit, gate.name, gate.gate_type, inputs
                )
                candidate = keep_outputs(replaced, replaced.outputs)
                if attempt(candidate, result.vectors,
                           f"fan-in {gate.name} -> {len(inputs)}"):
                    progress = True
                    reduced = True
                    gate = result.circuit.gate(gate.name)
                    break
            if not reduced:
                break
    return progress


def _shrink_inputs(result: ShrinkResult, attempt) -> bool:
    progress = False
    for net in result.circuit.inputs:
        if len(result.circuit.inputs) <= 1:
            break
        column = result.circuit.inputs.index(net)
        tape = [
            row[:column] + row[column + 1:] for row in result.vectors
        ]
        done = False
        for value in (0, 1):
            try:
                candidate = pin_input(result.circuit, net, value)
            except ReproError:
                break
            candidate = keep_outputs(candidate, candidate.outputs)
            if candidate.num_gates == 0:
                continue
            if attempt(candidate, tape, f"pin {net}={value}"):
                progress = True
                done = True
                break
        if done:
            continue
    return progress
