"""Differential fuzzing: campaign, oracles, shrinker, failure corpus.

The execution paths of this library (event-driven reference, PC-set,
parallel variants, zero-delay LCC; Python, C and numpy backends;
scalar / batched / packed / tiled / partitioned / sequential-replay /
probed execution) must agree bit for bit — and stay fast.  This
package keeps them honest at scale: :func:`run_campaign` explores
random circuits against a sampled slice of the configuration lattice
(with a deterministic coverage preamble so every surface is drawn
even in small budgets), :mod:`~repro.fuzz.oracles` measures
throughput against a machine-calibrated envelope so perf regressions
are campaign failures too, :func:`shrink` reduces every disagreement
to a minimal reproducer, :func:`distill_corpus` keeps the corpus
minimal as surfaces accrete, and the corpus turns past failures into
permanent regression tests (see ``tests/test_fuzz_corpus.py`` and the
``repro-sim fuzz`` subcommand family).
"""

from repro.fuzz.campaign import (
    PERF_MODES,
    CampaignFailure,
    CampaignResult,
    run_campaign,
)
from repro.fuzz.corpus import (
    CorpusEntry,
    entry_from_failure,
    load_corpus,
    load_entry,
    replay_entry,
    save_entry,
)
from repro.fuzz.distill import DistillResult, distill_corpus
from repro.fuzz.lattice import (
    BACKENDS,
    CHECKS,
    CONFIG_SCHEMA,
    SURFACES,
    FuzzConfig,
    coverage_configs,
    run_check,
    sample_configs,
)
from repro.fuzz.mutation import (
    MUTATIONS,
    inject_emitter_bug,
    inject_partition_bug,
    inject_slowdown,
    inject_tile_bug,
)
from repro.fuzz.oracles import (
    PerfEnvelope,
    PerfFlag,
    PerfPoint,
    PerfReport,
    PerfSample,
    available_backends,
    calibrate_envelope,
    default_points,
    load_bench,
    measure_point,
    run_perf_phase,
    validate_bench,
)
from repro.fuzz.shrink import ShrinkResult, shrink

__all__ = [
    "BACKENDS",
    "CHECKS",
    "CONFIG_SCHEMA",
    "MUTATIONS",
    "PERF_MODES",
    "SURFACES",
    "CampaignFailure",
    "CampaignResult",
    "CorpusEntry",
    "DistillResult",
    "FuzzConfig",
    "PerfEnvelope",
    "PerfFlag",
    "PerfPoint",
    "PerfReport",
    "PerfSample",
    "ShrinkResult",
    "available_backends",
    "calibrate_envelope",
    "coverage_configs",
    "default_points",
    "distill_corpus",
    "entry_from_failure",
    "inject_emitter_bug",
    "inject_partition_bug",
    "inject_slowdown",
    "inject_tile_bug",
    "load_bench",
    "load_corpus",
    "load_entry",
    "measure_point",
    "replay_entry",
    "run_campaign",
    "run_check",
    "sample_configs",
    "save_entry",
    "shrink",
    "validate_bench",
]
