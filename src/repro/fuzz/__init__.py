"""Differential fuzzing: campaign, shrinker, replayable failure corpus.

The five execution paths of this library (event-driven reference,
PC-set, parallel variants; Python and C backends; scalar / packed /
batched / sharded execution) must agree bit for bit.  This package
keeps them honest at scale: :func:`run_campaign` explores random
circuits against a sampled slice of the configuration lattice,
:func:`shrink` reduces every disagreement to a minimal reproducer, and
the corpus turns past failures into permanent regression tests (see
``tests/test_fuzz_corpus.py`` and the ``repro-sim fuzz`` subcommand).
"""

from repro.fuzz.campaign import (
    CampaignFailure,
    CampaignResult,
    run_campaign,
)
from repro.fuzz.corpus import (
    CorpusEntry,
    entry_from_failure,
    load_corpus,
    load_entry,
    replay_entry,
    save_entry,
)
from repro.fuzz.lattice import (
    CHECKS,
    FuzzConfig,
    run_check,
    sample_configs,
)
from repro.fuzz.mutation import MUTATIONS, inject_emitter_bug
from repro.fuzz.shrink import ShrinkResult, shrink

__all__ = [
    "CHECKS",
    "MUTATIONS",
    "CampaignFailure",
    "CampaignResult",
    "CorpusEntry",
    "FuzzConfig",
    "ShrinkResult",
    "entry_from_failure",
    "inject_emitter_bug",
    "load_corpus",
    "load_entry",
    "replay_entry",
    "run_campaign",
    "run_check",
    "sample_configs",
    "save_entry",
    "shrink",
]
