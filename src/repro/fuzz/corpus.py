"""The persistent failure corpus: replayable, minimal reproducers.

Every fuzz failure is saved as one JSON file under the corpus
directory (``fuzz-corpus/`` in this repository): the campaign seed,
the lattice point (:class:`~repro.fuzz.lattice.FuzzConfig`), the
*shrunk* circuit serialized in BENCH format, the vector tape as bit
strings, and the failure text.  Filenames are content hashes, so
re-finding the same reproducer is idempotent.

The contract that makes the corpus valuable: every entry is re-executed
by ``tests/test_fuzz_corpus.py`` as an ordinary pytest case, so a past
failure becomes a permanent regression test the moment its fix lands —
replay *passes* on healthy code and fails loudly on a regression.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence, Union

from repro.errors import SimulationError
from repro.fuzz.lattice import FuzzConfig, run_check
from repro.netlist.bench import parse_bench, write_bench
from repro.netlist.circuit import Circuit

__all__ = [
    "CorpusEntry",
    "entry_from_failure",
    "save_entry",
    "load_entry",
    "load_corpus",
    "replay_entry",
]

ENTRY_VERSION = 1


@dataclass
class CorpusEntry:
    """One reproducer: a (circuit, vectors, config) triple plus context."""

    config: FuzzConfig
    bench: str
    vectors: list[list[int]]
    seed: int = 0
    error: str = ""
    shrink_steps: list[str] = field(default_factory=list)
    version: int = ENTRY_VERSION

    @property
    def entry_id(self) -> str:
        """Content hash of the reproducer (filename stem).

        The config's ``schema`` marker is metadata, not identity — the
        same (circuit, tape, lattice point) keeps its id across schema
        bumps, so committed corpus filenames stay stable.
        """
        config = {
            key: value
            for key, value in self.config.as_dict().items()
            if key != "schema"
        }
        payload = json.dumps(
            [self.bench, self._tape_strings(), config],
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def _tape_strings(self) -> list[str]:
        return ["".join(str(b & 1) for b in row) for row in self.vectors]

    def circuit(self) -> Circuit:
        """Parse the stored BENCH text back into a circuit."""
        return parse_bench(self.bench, name=f"corpus_{self.entry_id}")

    def as_dict(self) -> dict:
        return {
            "version": self.version,
            "seed": self.seed,
            "config": self.config.as_dict(),
            "bench": self.bench,
            "vectors": self._tape_strings(),
            "error": self.error,
            "shrink_steps": list(self.shrink_steps),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CorpusEntry":
        version = data.get("version", 0)
        if version > ENTRY_VERSION:
            raise SimulationError(
                f"corpus entry version {version} is newer than this "
                f"library understands ({ENTRY_VERSION})"
            )
        vectors = [
            [int(ch) for ch in row] for row in data.get("vectors", [])
        ]
        return cls(
            config=FuzzConfig.from_dict(data["config"]),
            bench=data["bench"],
            vectors=vectors,
            seed=data.get("seed", 0),
            error=data.get("error", ""),
            shrink_steps=list(data.get("shrink_steps", [])),
            version=version,
        )


def entry_from_failure(
    circuit: Circuit,
    vectors: Sequence[Sequence[int]],
    config: FuzzConfig,
    *,
    seed: int = 0,
    error: str = "",
    shrink_steps: Sequence[str] = (),
) -> CorpusEntry:
    """Build a corpus entry from a (shrunk) failing triple."""
    return CorpusEntry(
        config=config,
        bench=write_bench(circuit),
        vectors=[list(v) for v in vectors],
        seed=seed,
        error=error,
        shrink_steps=list(shrink_steps),
    )


def save_entry(
    entry: CorpusEntry, corpus_dir: Union[str, Path]
) -> Path:
    """Write ``entry`` under ``corpus_dir`` (created on demand)."""
    directory = Path(corpus_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{entry.entry_id}.json"
    path.write_text(json.dumps(entry.as_dict(), indent=2) + "\n")
    return path


def load_entry(path: Union[str, Path]) -> CorpusEntry:
    """Read one corpus entry from disk."""
    return CorpusEntry.from_dict(json.loads(Path(path).read_text()))


def load_corpus(
    corpus_dir: Union[str, Path]
) -> list[tuple[Path, CorpusEntry]]:
    """All entries under ``corpus_dir``, sorted by filename."""
    directory = Path(corpus_dir)
    if not directory.is_dir():
        return []
    return [
        (path, load_entry(path))
        for path in sorted(directory.glob("*.json"))
    ]


def replay_entry(entry: CorpusEntry) -> int:
    """Re-run the entry's differential check on the current code.

    Returns the number of comparisons performed.  On healthy code the
    original failure is fixed and replay passes; a recurrence raises
    :class:`~repro.harness.compare.Mismatch`, failing the regression
    test that called this.
    """
    return run_check(entry.circuit(), entry.vectors, entry.config)
