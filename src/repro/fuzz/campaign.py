"""The seeded differential fuzzing campaign.

One iteration draws a random circuit (random DAG, layered DAG, or a
structured generator instance), a random vector tape, and a sampled
slice of the configuration lattice, and runs every sampled lattice
point through :func:`repro.fuzz.lattice.run_check`.  A failure is
shrunk (:mod:`repro.fuzz.shrink`) and persisted to the corpus
(:mod:`repro.fuzz.corpus`); the campaign then moves on — one corpus
entry per failing circuit, the rest of the budget keeps exploring.

Everything is deterministic for a given ``seed``: the circuit stream,
the tapes, and the lattice sample are all derived from one master RNG,
so a campaign is replayable by seed alone (the time budget only
decides how far along the stream the run gets).
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro import telemetry
from repro.errors import SimulationError
from repro.fuzz.corpus import entry_from_failure, save_entry
from repro.fuzz.lattice import (
    FuzzConfig,
    coverage_configs,
    run_check,
    sample_configs,
)
from repro.fuzz.oracles import (
    PerfEnvelope,
    PerfReport,
    available_backends,
    calibrate_envelope,
    run_perf_phase,
)
from repro.fuzz.shrink import shrink
from repro.harness.vectors import vectors_for
from repro.netlist.circuit import Circuit
from repro.netlist.random_circuits import (
    layered_circuit,
    random_dag_circuit,
    sequentialize,
)

__all__ = [
    "CampaignFailure",
    "CampaignResult",
    "PERF_MODES",
    "run_campaign",
]

PERF_MODES = ("off", "observe", "enforce", "auto")


@dataclass
class CampaignFailure:
    """One caught disagreement, after shrinking."""

    config: FuzzConfig
    error: str
    circuit_name: str
    num_gates: int
    num_vectors: int
    shrink_steps: int
    corpus_path: Optional[str] = None


@dataclass
class CampaignResult:
    """What a campaign did: exploration counts and caught failures."""

    seed: int
    circuits: int = 0
    configs_checked: int = 0
    comparisons: int = 0
    shrink_steps: int = 0
    seconds: float = 0.0
    stopped_by: str = "iterations"
    failures: list[CampaignFailure] = field(default_factory=list)
    #: execution surface -> number of drawn configs touching it.
    surface_coverage: dict = field(default_factory=dict)
    #: the perf-oracle phase, when one ran (``perf != "off"``).
    perf: Optional[PerfReport] = None

    @property
    def perf_flags(self) -> list:
        return [] if self.perf is None else list(self.perf.flags)

    @property
    def ok(self) -> bool:
        if self.failures:
            return False
        return self.perf is None or self.perf.ok

    def note_config(self, config: FuzzConfig) -> None:
        for surface in config.surfaces():
            self.surface_coverage[surface] = (
                self.surface_coverage.get(surface, 0) + 1
            )


def _structured_circuit(rng: random.Random) -> Circuit:
    """A small instance of one of the structured generator families."""
    from repro.netlist import generators as g

    builders = [
        lambda: g.ripple_carry_adder(rng.randint(2, 4)),
        lambda: g.carry_lookahead_adder(rng.randint(2, 3)),
        lambda: g.array_multiplier(rng.randint(2, 3)),
        lambda: g.parity_tree(rng.randint(3, 9)),
        lambda: g.equality_comparator(rng.randint(2, 5)),
        lambda: g.mux_tree(rng.randint(2, 3)),
        lambda: g.decoder(rng.randint(2, 3)),
        lambda: g.majority_voter(rng.choice((3, 5))),
    ]
    return rng.choice(builders)()


def _draw_circuit(rng: random.Random, max_gates: int) -> Circuit:
    """One circuit from the three sources, seeded from the master RNG."""
    kind = rng.random()
    circuit_seed = rng.getrandbits(32)
    if kind < 0.5:
        circuit = random_dag_circuit(
            circuit_seed,
            num_inputs=rng.randint(2, 6),
            num_gates=rng.randint(4, max_gates),
            max_fan_in=rng.randint(2, 4),
            p_unary=rng.choice((0.1, 0.25, 0.4)),
        )
    elif kind < 0.8:
        depth = rng.randint(2, 6)
        circuit = layered_circuit(
            circuit_seed,
            num_inputs=rng.randint(3, 6),
            num_gates=rng.randint(depth, max_gates),
            depth=depth,
            p_unary=rng.choice((0.0, 0.15, 0.3)),
        )
    else:
        circuit = _structured_circuit(rng)
    # A third of the stream gets random flip-flop feedback closed over
    # it (the FQ/FD convention), so the clocked 'sequential' lattice
    # axis sees circuits with real state.  Every combinational check
    # still applies to a sequentialized circuit — the FQ pins are
    # ordinary primary inputs of the broken core.
    if rng.random() < 0.35:
        circuit = sequentialize(
            circuit,
            rng.randint(1, 3),
            seed=rng.getrandbits(32),
        )
    return circuit


def _resolve_perf_mode(perf: str) -> tuple[bool, bool]:
    """``perf`` mode -> (run a perf phase at all, observe-only).

    ``auto`` enforces floors only on machines where throughput
    measurement is trustworthy: not under CI (``CI=1``) and with at
    least 4 CPUs — a loaded single-core box measures its own
    contention, not the code.  Observe-only still measures and prints
    flags; it just never fails the campaign on them.
    """
    if perf not in PERF_MODES:
        raise SimulationError(
            f"unknown perf mode {perf!r}; choose from {PERF_MODES}"
        )
    if perf == "off":
        return False, True
    if perf == "auto":
        constrained = (
            os.environ.get("CI") == "1" or (os.cpu_count() or 1) < 4
        )
        return True, constrained
    return True, perf == "observe"


def _coverage_tape(
    circuit: Circuit, config: FuzzConfig, rng: random.Random,
    max_vectors: int,
) -> list:
    """A tape long enough that the config's surfaces actually execute.

    Tiled passes only exist when the batch spans more than one packed
    group (``_packed_machine`` clamps tiles to the work), so tiled
    configs get ``2 x width x K`` vectors; everything else uses the
    campaign's normal tape length.
    """
    count = max_vectors
    if config.tiles > 1:
        count = max(count, 2 * config.word_width * config.tiles)
    return vectors_for(circuit, count, seed=rng.getrandbits(32))


def _run_coverage_preamble(
    result: CampaignResult,
    rng: random.Random,
    backends: Sequence[str],
    *,
    seed: int,
    corpus_dir: Optional[str],
    max_vectors: int,
    shrink_attempts: int,
    check: Callable,
    progress: Optional[Callable[[str], None]],
) -> None:
    """Deterministically draw every execution surface once.

    Random lattice sampling can miss a surface inside a small budget;
    the preamble pins coverage by running :func:`coverage_configs`
    against one deterministic sequential circuit before the random
    stream starts.  Failures are shrunk and persisted exactly like
    random-stream failures.
    """
    core = random_dag_circuit(
        rng.getrandbits(32), num_inputs=4, num_gates=14
    )
    circuit = sequentialize(core, 2, seed=rng.getrandbits(32))
    result.circuits += 1
    telemetry.counter("fuzz.circuits")
    for config in coverage_configs(backends):
        vectors = _coverage_tape(circuit, config, rng, max_vectors)
        result.configs_checked += 1
        result.note_config(config)
        telemetry.counter("fuzz.configs")
        try:
            with telemetry.span("fuzz.check", config=config.label()):
                result.comparisons += check(circuit, vectors, config)
        except Exception as failure:
            _handle_failure(
                result, circuit, vectors, config, failure,
                seed=seed, corpus_dir=corpus_dir,
                shrink_attempts=shrink_attempts,
                check=check, progress=progress,
            )


def run_campaign(
    *,
    seed: int = 0,
    iterations: Optional[int] = None,
    budget_seconds: Optional[float] = None,
    corpus_dir: Optional[str] = None,
    backends: Optional[Sequence[str]] = None,
    configs_per_circuit: int = 4,
    max_gates: int = 24,
    max_vectors: int = 12,
    include_faults: bool = True,
    shrink_attempts: int = 2000,
    check: Callable = run_check,
    progress: Optional[Callable[[str], None]] = None,
    perf: str = "off",
    envelope_path: Optional[str] = None,
    perf_artifacts: Optional[str] = None,
) -> CampaignResult:
    """Run a seeded fuzz campaign over the configuration lattice.

    Stops at ``iterations`` circuits or after ``budget_seconds``,
    whichever comes first (default: 50 iterations when neither is
    given).  ``backends=None`` probes the machine and fuzzes every
    usable backend (C when a compiler is present, numpy when
    importable).  ``check`` is the differential predicate —
    overridable for testing the campaign machinery itself.

    ``perf`` turns on the performance oracles (:mod:`~repro.fuzz.
    oracles`): ``observe`` measures and reports flags without failing
    the campaign, ``enforce`` fails it, ``auto`` picks by machine
    (observe under CI or <4 CPUs).  ``envelope_path`` persists the
    calibrated envelope between runs — an existing file is loaded
    instead of recalibrating, which is what lets a regression that
    predates the *current* process still flag (calibrate on healthy
    code, measure forever after).
    """
    if iterations is None and budget_seconds is None:
        iterations = 50
    if backends is None:
        backends = available_backends()
    perf_enabled, observe_only = _resolve_perf_mode(perf)
    envelope: Optional[PerfEnvelope] = None
    if perf_enabled:
        if envelope_path is not None and os.path.isfile(envelope_path):
            envelope = PerfEnvelope.load(envelope_path)
        else:
            with telemetry.span("fuzz.perf.calibrate"):
                envelope = calibrate_envelope(vectors=1024)
            if envelope_path is not None:
                envelope.save(envelope_path)
    rng = random.Random(seed)
    result = CampaignResult(seed=seed)
    start = time.monotonic()

    def out_of_budget() -> bool:
        if budget_seconds is not None and (
            time.monotonic() - start >= budget_seconds
        ):
            result.stopped_by = "budget"
            return True
        if iterations is not None and result.circuits >= iterations:
            result.stopped_by = "iterations"
            return True
        return False

    with telemetry.span("fuzz.campaign"):
        _run_coverage_preamble(
            result, rng, backends,
            seed=seed, corpus_dir=corpus_dir,
            max_vectors=max_vectors,
            shrink_attempts=shrink_attempts,
            check=check, progress=progress,
        )
        while not out_of_budget():
            with telemetry.span("fuzz.generate"):
                circuit = _draw_circuit(rng, max_gates)
                tape_seed = rng.getrandbits(32)
                vectors = vectors_for(
                    circuit, rng.randint(3, max_vectors), seed=tape_seed
                )
                configs = sample_configs(
                    rng, configs_per_circuit,
                    backends=backends, include_faults=include_faults,
                )
            result.circuits += 1
            telemetry.counter("fuzz.circuits")
            for config in configs:
                if budget_seconds is not None and (
                    time.monotonic() - start >= budget_seconds
                ):
                    break
                result.configs_checked += 1
                result.note_config(config)
                telemetry.counter("fuzz.configs")
                try:
                    with telemetry.span("fuzz.check",
                                        config=config.label()):
                        result.comparisons += check(
                            circuit, vectors, config
                        )
                except Exception as failure:
                    _handle_failure(
                        result, circuit, vectors, config, failure,
                        seed=seed, corpus_dir=corpus_dir,
                        shrink_attempts=shrink_attempts,
                        check=check, progress=progress,
                    )
                    # One corpus entry per circuit: the remaining
                    # configs would mostly re-find the same bug.
                    break
            if progress is not None and result.circuits % 25 == 0:
                progress(
                    f"{result.circuits} circuits, "
                    f"{result.configs_checked} configs, "
                    f"{result.comparisons} comparisons, "
                    f"{len(result.failures)} failures"
                )
        if perf_enabled and envelope is not None:
            # Perf runs after the functional sweep: the differential
            # checks warm every backend, so the oracle measurements
            # see steady-state code paths, not cold caches.
            with telemetry.span("fuzz.perf"):
                result.perf = run_perf_phase(
                    envelope,
                    observe_only=observe_only,
                    artifacts_dir=perf_artifacts,
                )
    result.seconds = time.monotonic() - start
    return result


def _handle_failure(
    result: CampaignResult,
    circuit: Circuit,
    vectors: Sequence[Sequence[int]],
    config: FuzzConfig,
    failure: BaseException,
    *,
    seed: int,
    corpus_dir: Optional[str],
    shrink_attempts: int,
    check: Callable,
    progress: Optional[Callable[[str], None]],
) -> None:
    telemetry.counter("fuzz.failures")
    telemetry.event("fuzz.failure", config=config.label(),
                    circuit=circuit.name)
    reduced = shrink(
        circuit, vectors, config,
        failure=failure, max_attempts=shrink_attempts, check=check,
    )
    result.shrink_steps += reduced.num_steps
    error = f"{type(failure).__name__}: {failure}"
    entry = entry_from_failure(
        reduced.circuit, reduced.vectors, config,
        seed=seed, error=error, shrink_steps=reduced.steps,
    )
    corpus_path: Optional[str] = None
    if corpus_dir is not None:
        corpus_path = str(save_entry(entry, corpus_dir))
    result.failures.append(CampaignFailure(
        config=config,
        error=error,
        circuit_name=circuit.name,
        num_gates=reduced.circuit.num_gates,
        num_vectors=len(reduced.vectors),
        shrink_steps=reduced.num_steps,
        corpus_path=corpus_path,
    ))
    if progress is not None:
        where = f" -> {corpus_path}" if corpus_path else ""
        progress(
            f"FAIL [{config.label()}] {circuit.name}: shrunk to "
            f"{reduced.circuit.num_gates} gates / "
            f"{len(reduced.vectors)} vectors in "
            f"{reduced.num_steps} steps{where}"
        )
