"""The differential fuzzer's configuration lattice.

Five execution paths must agree bit for bit — the event-driven
reference, the PC-set method, the parallel variants, both backends,
and the scalar/packed/batched/sharded execution shapes.  A point in
the lattice is a :class:`FuzzConfig`: *which* differential check to
run (``check``), on *which* technique, backend, word width, batch
size, and — for the fault workload — worker count.  The campaign
(:mod:`repro.fuzz.campaign`) samples a slice of the lattice per
circuit; :func:`run_check` executes one point and raises
:class:`~repro.harness.compare.Mismatch` on disagreement, which is the
single predicate the shrinker and the corpus replay share.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Mapping, Sequence

from repro.errors import SimulationError
from repro.harness.compare import (
    PACKED_TECHNIQUES,
    PARTITIONED_TECHNIQUES,
    Mismatch,
    cross_validate,
)
from repro.netlist.circuit import Circuit

__all__ = [
    "CHECKS",
    "CONFIG_SCHEMA",
    "BACKENDS",
    "HISTORY_TECHNIQUES",
    "PROBE_TECHNIQUES",
    "SEQUENTIAL_ENGINES",
    "SURFACES",
    "WORD_WIDTHS",
    "FuzzConfig",
    "sample_configs",
    "coverage_configs",
    "run_check",
]

#: The differential comparisons the fuzzer knows how to run.
CHECKS = (
    "history", "batched", "packed", "faults", "partitioned",
    "sequential",
)

#: Version of the serialized :class:`FuzzConfig` shape.  Corpus entries
#: record it so a build can tell "written by an older library — refill
#: the late-added defaults" (an upgrade shim runs) apart from "written
#: by a *newer* library" (a clean error instead of silently dropping
#: axes it does not understand).
CONFIG_SCHEMA = 2

#: Compiled backends the lattice can draw.  ``numpy`` is optional at
#: runtime (:func:`repro.codegen.runtime.have_numpy`); configuration
#: validation accepts it unconditionally so corpus entries always load.
BACKENDS = ("python", "c", "numpy")

#: The execution surfaces a campaign is expected to cover — the
#: printed lattice-coverage summary counts drawn configs per surface.
#: ``replay-restore`` is the clocked check (its third shape resumes a
#: fresh simulator from a mid-stream checkpoint); ``laned-shift`` is
#: the K-lane execution of shift programs on the batched path.
SURFACES = (
    "scalar", "batched", "packed", "tiled", "laned-shift",
    "partitioned", "replay-restore", "probed", "faults",
)

#: Clocked engines exercised by the ``"sequential"`` check.
SEQUENTIAL_ENGINES = ("lcc", "parallel", "pcset")

#: Unit-delay techniques with a per-net change-history protocol.
HISTORY_TECHNIQUES = (
    "pcset",
    "parallel",
    "parallel-trim",
    "parallel-pathtrace",
    "parallel-cyclebreak",
    "parallel-best",
)

WORD_WIDTHS = (8, 16, 32, 64)

#: Techniques whose compiled fast path accepts ``probes=`` per check.
#: An empty tuple means the check threads probes regardless of its
#: technique axis (the faults check grades the good machine itself).
PROBE_TECHNIQUES = {
    "history": ("pcset", "parallel", "parallel-trim"),
    "batched": ("pcset", "parallel", "parallel-trim"),
    "packed": PACKED_TECHNIQUES,
    "partitioned": PARTITIONED_TECHNIQUES,
    "faults": (),
}


@dataclass(frozen=True)
class FuzzConfig:
    """One point of the configuration lattice.

    ``batch_size`` chunks the tape for the batched/packed/partitioned
    paths (``0`` = the whole tape in one dispatch).  ``workers``
    applies to the ``"faults"`` check (sharded multiprocess identity)
    and to ``"partitioned"`` (the barrier engine's thread count);
    ``partitions`` is the ``"partitioned"`` check's cluster count and
    must stay 1 everywhere else.  ``tiles`` compiles the technique
    under test as a K-tile machine (``word_width * K`` pattern lanes
    per packed pass, or K shift-program lanes on the batched path —
    see :mod:`repro.codegen.packing`); every check's identity contract
    must hold unchanged at any K.  ``probes`` additionally builds the
    technique under test with compiled-in activity counters and
    compares them differentially against the history-derived reference
    (or, for the faults check, asserts good-machine activity identity
    across the scalar/packed/sharded report shapes).
    """

    check: str = "history"
    technique: str = "parallel-best"
    backend: str = "python"
    word_width: int = 32
    batch_size: int = 0
    workers: int = 1
    partitions: int = 1
    tiles: int = 1
    probes: bool = False

    def __post_init__(self) -> None:
        if self.check not in CHECKS:
            raise SimulationError(
                f"check must be one of {CHECKS}: {self.check!r}"
            )
        if self.backend not in BACKENDS:
            raise SimulationError(f"unknown backend {self.backend!r}")
        if self.word_width not in WORD_WIDTHS:
            raise SimulationError(
                f"word_width must be one of {WORD_WIDTHS}: "
                f"{self.word_width}"
            )
        if self.check in ("history", "batched"):
            if self.technique not in HISTORY_TECHNIQUES:
                raise SimulationError(
                    f"{self.check!r} check needs a technique from "
                    f"{HISTORY_TECHNIQUES}: {self.technique!r}"
                )
        elif self.check == "packed":
            if self.technique not in PACKED_TECHNIQUES:
                raise SimulationError(
                    f"'packed' check needs a technique from "
                    f"{PACKED_TECHNIQUES}: {self.technique!r}"
                )
        elif self.check == "partitioned":
            if self.technique not in PARTITIONED_TECHNIQUES:
                raise SimulationError(
                    f"'partitioned' check needs a technique from "
                    f"{PARTITIONED_TECHNIQUES}: {self.technique!r}"
                )
            if self.partitions < 2:
                raise SimulationError(
                    f"'partitioned' check needs partitions >= 2: "
                    f"{self.partitions}"
                )
        elif self.check == "sequential":
            if self.technique not in SEQUENTIAL_ENGINES:
                raise SimulationError(
                    f"'sequential' check needs an engine from "
                    f"{SEQUENTIAL_ENGINES}: {self.technique!r}"
                )
        if (self.check not in ("partitioned", "sequential")
                and self.partitions != 1):
            raise SimulationError(
                f"partitions applies to the 'partitioned' and "
                f"'sequential' checks only "
                f"(check={self.check!r}, partitions={self.partitions})"
            )
        if not isinstance(self.tiles, int) or self.tiles < 1:
            raise SimulationError(f"tiles must be >= 1: {self.tiles!r}")
        if self.probes:
            allowed = PROBE_TECHNIQUES.get(self.check)
            if allowed is None:
                raise SimulationError(
                    f"probes apply to checks "
                    f"{tuple(PROBE_TECHNIQUES)} only "
                    f"(check={self.check!r})"
                )
            if allowed and self.technique not in allowed:
                raise SimulationError(
                    f"{self.check!r} check supports probes on "
                    f"techniques {allowed} only: {self.technique!r}"
                )
            if self.tiles != 1 and self.check != "faults":
                raise SimulationError(
                    "compiled-in probes pin the instrumented machine "
                    f"to one tile (tiles={self.tiles})"
                )

    def label(self) -> str:
        """Compact human-readable identity (corpus entries, logs)."""
        parts = [self.check]
        if self.check != "faults":
            parts.append(self.technique)
        parts.append(self.backend)
        parts.append(f"w{self.word_width}")
        if (self.check in ("batched", "packed", "partitioned",
                           "sequential")
                and self.batch_size):
            parts.append(f"b{self.batch_size}")
        if self.check in ("faults", "partitioned") and self.workers > 1:
            parts.append(f"j{self.workers}")
        if self.check == "partitioned":
            parts.append(f"p{self.partitions}")
        elif self.check == "sequential" and self.partitions > 1:
            parts.append(f"p{self.partitions}")
        if self.tiles > 1:
            parts.append(f"k{self.tiles}")
        if self.probes:
            parts.append("pr")
        return "/".join(parts)

    def surfaces(self) -> frozenset:
        """The execution surfaces this lattice point exercises.

        The mapping is by construction of :func:`run_check`: the
        history check steps per vector (scalar), the batched check
        drives ``apply_vectors`` (and, at K > 1, the laned execution of
        shift programs), the packed check drives the pattern-lane
        observation paths (tiled at K > 1), the sequential check always
        includes its mid-stream checkpoint/restore shape, and probes
        ride along on any check that accepts them.
        """
        primary = {
            "history": "scalar",
            "batched": "batched",
            "packed": "packed",
            "partitioned": "partitioned",
            "sequential": "replay-restore",
            "faults": "faults",
        }[self.check]
        covered = {primary}
        if self.tiles > 1:
            covered.add("tiled")
            if self.check in ("batched", "sequential"):
                # Shift programs execute K independent lanes here;
                # shift-free ones take the tiled packed path either way.
                covered.add("laned-shift")
        if self.probes:
            covered.add("probed")
        return frozenset(covered)

    def lattice_key(self) -> str:
        """Coarse lattice-point identity used by corpus distillation.

        Two configs with the same key exercise the same code paths:
        the exact chunk size and worker count are sampling noise, so
        they collapse to chunked/whole and solo/multi buckets — an
        entry is subsumed by a *smaller* entry with an equal key.
        """
        parts = [self.check]
        if self.check != "faults":
            parts.append(self.technique)
        parts.append(self.backend)
        parts.append(f"w{self.word_width}")
        parts.append("chunked" if self.batch_size else "whole")
        if self.workers > 1:
            parts.append("multi")
        if self.partitions > 1:
            parts.append(f"p{self.partitions}")
        if self.tiles > 1:
            parts.append(f"k{self.tiles}")
        if self.probes:
            parts.append("pr")
        return "/".join(parts)

    def as_dict(self) -> dict:
        data = asdict(self)
        # Late-added lattice axes serialize only when non-default, so
        # pre-existing corpus entries keep their content-addressed ids
        # (``from_dict`` refills the default on load).  The ``schema``
        # field is likewise excluded from content addressing
        # (:meth:`repro.fuzz.corpus.CorpusEntry.entry_id`).
        if data["partitions"] == 1:
            del data["partitions"]
        if data["tiles"] == 1:
            del data["tiles"]
        if not data["probes"]:
            del data["probes"]
        data["schema"] = CONFIG_SCHEMA
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "FuzzConfig":
        """Deserialize a config dict, strictly.

        Dicts written before the ``schema`` field existed load as
        schema 1 and pass through the upgrade shims; dicts claiming a
        *newer* schema raise (a newer library wrote them — replaying a
        silently truncated config would test the wrong lattice point).
        After upgrading, any key that is not a config field raises
        instead of being ignored: a corpus entry that drifted from the
        code is a corrupt reproducer, not a best-effort one.
        """
        data = dict(data)
        schema = data.pop("schema", 1)
        if not isinstance(schema, int) or schema < 1:
            raise SimulationError(
                f"config schema must be a positive int: {schema!r}"
            )
        if schema > CONFIG_SCHEMA:
            raise SimulationError(
                f"config schema {schema} is newer than this library "
                f"understands ({CONFIG_SCHEMA}); upgrade the library "
                f"to replay this corpus entry"
            )
        while schema < CONFIG_SCHEMA:
            data = _CONFIG_UPGRADES[schema](data)
            schema += 1
        unknown = sorted(set(data) - set(cls.__dataclass_fields__))
        if unknown:
            raise SimulationError(
                f"unknown FuzzConfig fields {unknown}; corpus entries "
                f"written by a newer library declare a newer schema — "
                f"this dict claims schema {CONFIG_SCHEMA}, so these "
                f"keys are corruption, not new axes"
            )
        return cls(**data)


def _upgrade_config_v1(data: dict) -> dict:
    """Schema 1 -> 2: the pre-``schema`` shape.

    Schema 1 dicts predate the explicit version field; every axis they
    can carry is still a field today, and axes added since (partitions,
    tiles, probes, the numpy backend) serialize only when non-default —
    the dataclass defaults refill them.  The shim is therefore a
    rename-free pass-through; it exists so future shape changes have an
    established place to rewrite old keys.
    """
    return data


_CONFIG_UPGRADES = {1: _upgrade_config_v1}


def sample_configs(
    rng: random.Random,
    count: int,
    *,
    backends: Sequence[str] = ("python",),
    include_faults: bool = True,
) -> list[FuzzConfig]:
    """Draw ``count`` lattice points, deterministically for a given RNG.

    The draw is weighted toward the history check (the strictest
    oracle); batched, packed and — when enabled — fault-report
    identity each get a slice of every campaign.
    """
    kinds = ["history", "history", "batched", "packed", "partitioned",
             "sequential"]
    if include_faults:
        kinds.append("faults")
    configs: list[FuzzConfig] = []
    for _ in range(count):
        check = rng.choice(kinds)
        backend = rng.choice(list(backends))
        word_width = rng.choice(WORD_WIDTHS)
        if check == "packed":
            technique = rng.choice(list(PACKED_TECHNIQUES))
        elif check == "partitioned":
            technique = rng.choice(list(PARTITIONED_TECHNIQUES))
        elif check == "sequential":
            technique = rng.choice(list(SEQUENTIAL_ENGINES))
        else:
            technique = rng.choice(list(HISTORY_TECHNIQUES))
        batch_size = rng.choice((0, 1, 2, 3, 5, 8))
        if check == "faults":
            workers = rng.choice((2, 3))
        elif check == "partitioned":
            workers = rng.choice((1, 2))
        else:
            workers = 1
        if check == "partitioned":
            partitions = rng.choice((2, 3, 4))
        elif check == "sequential" and technique == "lcc":
            # The clocked loop threads partitions through the core's
            # barrier engine; exercise that path on the lcc engine.
            partitions = rng.choice((1, 1, 2))
        else:
            partitions = 1
        # The tile axis exercises the K-word packed/laned paths; the
        # history check steps per vector, where K never applies.
        tiles = rng.choice((1, 2, 4)) if check != "history" else 1
        allowed = PROBE_TECHNIQUES.get(check)
        probes = (
            allowed is not None
            and (not allowed or technique in allowed)
            and (tiles == 1 or check == "faults")
            and rng.choice((False, False, True))
        )
        configs.append(FuzzConfig(
            check=check,
            technique=technique,
            backend=backend,
            word_width=word_width,
            batch_size=batch_size,
            workers=workers,
            partitions=partitions,
            tiles=tiles,
            probes=probes,
        ))
    return configs


def coverage_configs(
    backends: Sequence[str] = ("python",),
) -> list[FuzzConfig]:
    """A deterministic config set touching every execution surface.

    The campaign runs these against its first circuit before random
    sampling takes over, so a bounded run still *draws* scalar,
    batched, packed, tiled, laned-shift, partitioned, sequential
    replay-with-restore, and probed configurations — random sampling
    alone can miss a surface inside a small budget.  The preferred
    backend is ``c`` when fuzzed (the production path), else the first
    one given.
    """
    backend = "c" if "c" in backends else backends[0]
    configs = [
        # scalar
        FuzzConfig(check="history", technique="parallel-best",
                   backend=backend, word_width=16),
        # batched
        FuzzConfig(check="batched", technique="parallel-trim",
                   backend=backend, word_width=32, batch_size=3),
        # packed
        FuzzConfig(check="packed", technique="zero-lcc",
                   backend=backend, word_width=8),
        # tiled (K-word packed pass)
        FuzzConfig(check="packed", technique="zero-lcc",
                   backend=backend, word_width=8, tiles=2),
        # laned-shift (plain parallel retains shifts most often)
        FuzzConfig(check="batched", technique="parallel",
                   backend=backend, word_width=16, batch_size=4,
                   tiles=2),
        # partitioned barrier engine
        FuzzConfig(check="partitioned", technique="zero-lcc",
                   backend=backend, word_width=16, partitions=2),
        # sequential replay with mid-stream checkpoint/restore
        FuzzConfig(check="sequential", technique="lcc",
                   backend=backend, word_width=16, batch_size=2),
        # compiled-in probes
        FuzzConfig(check="history", technique="pcset",
                   backend=backend, word_width=8, probes=True),
        # fault-report identity
        FuzzConfig(check="faults", technique="parallel-best",
                   backend=backend, word_width=16, workers=2),
    ]
    if "numpy" in backends:
        configs.append(FuzzConfig(
            check="packed", technique="zero-lcc", backend="numpy",
            word_width=32, tiles=2,
        ))
    return configs


def run_check(
    circuit: Circuit,
    vectors: Sequence[Sequence[int]],
    config: FuzzConfig,
) -> int:
    """Run one lattice point; returns the number of comparisons made.

    Raises :class:`~repro.harness.compare.Mismatch` on the first
    disagreement — the shared predicate of the campaign, the shrinker,
    and corpus replay.
    """
    if config.check == "faults":
        return _check_faults(circuit, vectors, config)
    if config.check == "sequential":
        return _check_sequential(circuit, vectors, config)
    execution = {"history": "scalar", "batched": "batched",
                 "packed": "packed",
                 "partitioned": "partitioned"}[config.check]
    checks = cross_validate(
        circuit,
        vectors,
        techniques=(config.technique,),
        backend=config.backend,
        word_width=config.word_width,
        execution=execution,
        batch_size=config.batch_size or None,
        partitions=config.partitions,
        partition_workers=config.workers or None,
        tiles=config.tiles,
    )
    if config.probes:
        checks += _check_probes(circuit, vectors, config)
    return checks


def _check_probes(
    circuit: Circuit,
    vectors: Sequence[Sequence[int]],
    config: FuzzConfig,
) -> int:
    """Compiled-in probe counters vs. the history-derived reference.

    The instrumented fast path must reproduce exactly what the
    event-driven reference derives from full settling histories: full
    toggle counts for the unit-delay techniques, zero-delay functional
    counts for the LCC path.  The LCC counters additionally track
    primary inputs (vector-to-vector transitions), which the history
    reference does not model — those are reconstructed in plain code.
    """
    from repro.activity import collect_activity
    from repro.eventsim.simulator import EventDrivenSimulator
    from repro.harness.runner import build_simulator

    ref = collect_activity(EventDrivenSimulator(circuit), vectors)
    rows = [list(vector) for vector in vectors]
    options = dict(
        word_width=config.word_width,
        backend=config.backend,
        probes=True,
    )
    if config.check == "partitioned":
        options["partitions"] = config.partitions
        if config.workers > 1:
            options["partition_workers"] = config.workers
    sim = build_simulator(circuit, config.technique, **options)
    zero_delay = config.technique == "zero-lcc"
    if zero_delay:
        sim.probe_reset()
    else:
        sim.reset([0] * len(circuit.inputs))
    chunk = config.batch_size or len(rows) or 1
    for start in range(0, len(rows), chunk):
        sim.apply_vectors(rows[start:start + chunk])
    got = sim.activity_report()

    want_toggles = dict(ref.functional if zero_delay else ref.toggles)
    want_functional = dict(ref.functional)
    if zero_delay:
        prev = [0] * len(circuit.inputs)
        for row in rows:
            for net, before, after in zip(circuit.inputs, prev, row):
                if (before ^ after) & 1:
                    want_toggles[net] += 1
            prev = row
        want_functional = dict(want_toggles)

    label = f"probes[{config.technique}]"
    if got.vectors != len(rows):
        raise Mismatch(
            label, -1, [],
            f"  probe vector count diverged: {got.vectors} != "
            f"{len(rows)}",
        )
    for what, got_map, want_map in (
        ("toggle", dict(got.toggles), want_toggles),
        ("functional", dict(got.functional), want_functional),
    ):
        if got_map != want_map:
            bad = sorted(
                net for net in set(got_map) | set(want_map)
                if got_map.get(net) != want_map.get(net)
            )
            raise Mismatch(
                label, -1, bad,
                f"  probe {what} counts diverged from the history "
                f"reference: "
                f"{ {n: got_map.get(n) for n in bad[:5]} } vs "
                f"{ {n: want_map.get(n) for n in bad[:5]} }",
            )
    return 2 * len(want_toggles) + 1


def _check_sequential(
    circuit: Circuit,
    vectors: Sequence[Sequence[int]],
    config: FuzzConfig,
) -> int:
    """Clocked differential check over the ``FQ``/``FD`` convention.

    The circuit's flip-flops are reconstructed by name
    (:func:`~repro.netlist.random_circuits.derive_flipflops` — a
    purely combinational circuit degenerates to a zero-flip-flop
    clocked check, still valid), the vector tape's external-input
    columns become the stimulus stream, and the compiled engine under
    test is compared cycle by cycle against the interpreted
    zero-delay reference driven through ``SequentialCircuit.step``:
    per-cycle external outputs *and* the next flip-flop state must
    match, the batched ``apply_vectors`` path must be cycle-identical
    to stepping, and a mid-stream snapshot/restore into a *fresh*
    simulator must continue bit-identically.
    """
    from repro.eventsim.zerodelay import steady_state
    from repro.netlist.random_circuits import derive_flipflops
    from repro.netlist.sequential import SequentialCircuit
    from repro.seqsim import CompiledSequentialSimulator

    flipflops = derive_flipflops(circuit)
    core = circuit.copy(circuit.name)
    for d_net in flipflops.values():
        core.add_net(d_net, is_output=True)
    seq = SequentialCircuit(core, flipflops)
    external = seq.external_inputs
    ext_slots = [
        i for i, n in enumerate(circuit.inputs) if n in set(external)
    ]
    rows = [[vec[i] & 1 for i in ext_slots] for vec in vectors]

    def make_sim() -> CompiledSequentialSimulator:
        return CompiledSequentialSimulator(
            seq,
            engine=config.technique,
            backend=config.backend,
            word_width=config.word_width,
            tiles=config.tiles,
            partitions=config.partitions,
        )

    # Interpreted reference: the paper's clocked recipe over the
    # event-driven zero-delay settle.
    state = seq.initial_state()
    ref_outputs: list[dict[str, int]] = []
    ref_states: list[dict[str, int]] = []
    for row in rows:
        state, outputs = seq.step(
            lambda core_inputs: steady_state(core, core_inputs),
            state,
            dict(zip(external, row)),
        )
        ref_outputs.append(outputs)
        ref_states.append(dict(state))

    checks = 0
    label = f"sequential[{config.technique}]"

    def compare(cycle: int, got: Mapping, want: Mapping,
                what: str) -> None:
        if dict(got) != dict(want):
            bad = sorted(
                n for n in want
                if dict(got).get(n) != want[n]
            )
            raise Mismatch(
                label, cycle, bad,
                f"  {what} diverged at cycle {cycle}: "
                f"{ {n: dict(got).get(n) for n in bad[:5]} } vs "
                f"{ {n: want[n] for n in bad[:5]} }",
            )

    # 1. step-wise outputs + next state vs. the reference.
    sim = make_sim()
    for cycle, row in enumerate(rows):
        outputs = sim.step(row)
        compare(cycle, outputs, ref_outputs[cycle], "outputs")
        compare(cycle, sim.state, ref_states[cycle], "state")
        checks += 2

    # 2. batched apply_vectors must be cycle-identical to stepping.
    batched = make_sim()
    chunk = config.batch_size or len(rows) or 1
    got_outputs: list[dict[str, int]] = []
    for start in range(0, len(rows), chunk):
        got_outputs.extend(
            batched.apply_vectors(rows[start:start + chunk])
        )
    for cycle, outputs in enumerate(got_outputs):
        compare(cycle, outputs, ref_outputs[cycle], "batched outputs")
        checks += 1
    if rows:
        compare(len(rows) - 1, batched.state, ref_states[-1],
                "batched final state")
        checks += 1

    # 3. checkpoint/restore into a fresh simulator continues
    # identically.  The snapshot rides through the replay layer's
    # JSON checkpoint document (PR 8's on-disk format) rather than the
    # in-memory dict, so the serialization path is differentially
    # checked too.
    if len(rows) >= 2:
        import json

        from repro.replay.checkpoint import ReplayCheckpoint

        half = len(rows) // 2
        first = make_sim()
        first.apply_vectors(rows[:half])
        snap = first.snapshot()
        document = json.dumps(ReplayCheckpoint(
            cycle=snap["cycle"], state=snap["state"],
            circuit=circuit.name, engine=config.technique,
        ).as_dict())
        restored = ReplayCheckpoint.from_dict(json.loads(document))
        if restored.state != {q: v & 1 for q, v in snap["state"].items()}:
            raise Mismatch(
                label, half - 1, sorted(snap["state"]),
                "  checkpoint JSON round-trip corrupted the state: "
                f"{restored.state!r} vs {snap['state']!r}",
            )
        checks += 1
        resumed = make_sim()
        resumed.restore(
            {"state": restored.state, "cycle": restored.cycle}
        )
        for cycle, outputs in zip(
            range(half, len(rows)), resumed.apply_vectors(rows[half:])
        ):
            compare(cycle, outputs, ref_outputs[cycle],
                    "resumed outputs")
            checks += 1
    return checks


#: Serial (event-driven, one run per fault) reference is only affordable
#: on small instances; above these bounds the faults check still
#: validates scalar-vs-packed and inline-vs-sharded identity.
_SERIAL_MAX_GATES = 30
_SERIAL_MAX_VECTORS = 10


def _check_faults(
    circuit: Circuit,
    vectors: Sequence[Sequence[int]],
    config: FuzzConfig,
) -> int:
    """Fault-report identity: scalar vs. packed vs. sharded (vs. serial).

    Every report must be equal — same detected map (fault -> first
    detecting vector) and same undetected list.  On small instances the
    brute-force event-driven reference is compared too.  With
    ``config.probes`` every grading additionally carries good-machine
    activity, which must be identical across all report shapes and —
    on small instances — match the event-driven history reference.
    """
    from repro.faults.simulator import (
        run_fault_simulation,
        serial_fault_simulation,
    )

    def options():
        opts = dict(
            word_width=config.word_width, backend=config.backend
        )
        if config.probes:
            opts["probes"] = True
        return opts

    def check_activity(what: str, report) -> int:
        """Good-machine activity identity against the scalar baseline."""
        if not config.probes:
            return 0
        got = report.activity
        want = scalar.activity
        if (
            got is None
            or got.toggles != want.toggles
            or got.functional != want.functional
            or got.vectors != want.vectors
        ):
            raise Mismatch(
                f"faults[activity {what}]", -1, [],
                f"  good-machine activity diverged from the scalar "
                f"grading: {got!r} vs {want!r}",
            )
        return len(want.toggles)

    scalar = run_fault_simulation(
        circuit, vectors, patterns="scalar", **options()
    )
    checks = scalar.num_faults
    packed = run_fault_simulation(
        circuit, vectors, patterns="auto", **options()
    )
    if packed != scalar:
        raise Mismatch(
            "faults[patterns]", -1, [],
            f"  packed-pattern report diverged from scalar: "
            f"{packed!r} vs {scalar!r}",
        )
    checks += packed.num_faults + check_activity("packed", packed)
    if config.tiles > 1:
        tiled = run_fault_simulation(
            circuit, vectors, patterns="auto", tiles=config.tiles,
            **options()
        )
        if tiled != scalar:
            raise Mismatch(
                f"faults[tiled k{config.tiles}]", -1, [],
                f"  tiled packed report diverged from scalar: "
                f"{tiled!r} vs {scalar!r}",
            )
        checks += tiled.num_faults + check_activity("tiled", tiled)
    if config.workers > 1:
        sharded = run_fault_simulation(
            circuit, vectors, workers=config.workers,
            tiles=config.tiles, **options()
        )
        if sharded != scalar:
            raise Mismatch(
                f"faults[sharded j{config.workers}]", -1, [],
                f"  sharded report diverged from inline: "
                f"{sharded!r} vs {scalar!r}",
            )
        checks += sharded.num_faults + check_activity("sharded", sharded)
    if (circuit.num_gates <= _SERIAL_MAX_GATES
            and len(vectors) <= _SERIAL_MAX_VECTORS):
        serial = serial_fault_simulation(circuit, vectors)
        if serial != scalar:
            raise Mismatch(
                "faults[serial]", -1, [],
                f"  compiled report diverged from the event-driven "
                f"reference: {scalar!r} vs {serial!r}",
            )
        checks += serial.num_faults
        if config.probes:
            from repro.activity import collect_activity
            from repro.eventsim.simulator import EventDrivenSimulator

            ref = collect_activity(
                EventDrivenSimulator(circuit), vectors
            )
            got = scalar.activity
            if (
                got.toggles != ref.toggles
                or got.functional != ref.functional
                or got.vectors != ref.vectors
            ):
                raise Mismatch(
                    "faults[activity serial]", -1, [],
                    f"  good-machine activity diverged from the "
                    f"event-driven reference: {got!r} vs {ref!r}",
                )
            checks += len(ref.toggles)
    return checks
