"""The differential fuzzer's configuration lattice.

Five execution paths must agree bit for bit — the event-driven
reference, the PC-set method, the parallel variants, both backends,
and the scalar/packed/batched/sharded execution shapes.  A point in
the lattice is a :class:`FuzzConfig`: *which* differential check to
run (``check``), on *which* technique, backend, word width, batch
size, and — for the fault workload — worker count.  The campaign
(:mod:`repro.fuzz.campaign`) samples a slice of the lattice per
circuit; :func:`run_check` executes one point and raises
:class:`~repro.harness.compare.Mismatch` on disagreement, which is the
single predicate the shrinker and the corpus replay share.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Mapping, Sequence

from repro.errors import SimulationError
from repro.harness.compare import (
    PACKED_TECHNIQUES,
    PARTITIONED_TECHNIQUES,
    Mismatch,
    cross_validate,
)
from repro.netlist.circuit import Circuit

__all__ = [
    "CHECKS",
    "HISTORY_TECHNIQUES",
    "WORD_WIDTHS",
    "FuzzConfig",
    "sample_configs",
    "run_check",
]

#: The differential comparisons the fuzzer knows how to run.
CHECKS = ("history", "batched", "packed", "faults", "partitioned")

#: Unit-delay techniques with a per-net change-history protocol.
HISTORY_TECHNIQUES = (
    "pcset",
    "parallel",
    "parallel-trim",
    "parallel-pathtrace",
    "parallel-cyclebreak",
    "parallel-best",
)

WORD_WIDTHS = (8, 16, 32, 64)


@dataclass(frozen=True)
class FuzzConfig:
    """One point of the configuration lattice.

    ``batch_size`` chunks the tape for the batched/packed/partitioned
    paths (``0`` = the whole tape in one dispatch).  ``workers``
    applies to the ``"faults"`` check (sharded multiprocess identity)
    and to ``"partitioned"`` (the barrier engine's thread count);
    ``partitions`` is the ``"partitioned"`` check's cluster count and
    must stay 1 everywhere else.  ``tiles`` compiles the technique
    under test as a K-tile machine (``word_width * K`` pattern lanes
    per packed pass, or K shift-program lanes on the batched path —
    see :mod:`repro.codegen.packing`); every check's identity contract
    must hold unchanged at any K.
    """

    check: str = "history"
    technique: str = "parallel-best"
    backend: str = "python"
    word_width: int = 32
    batch_size: int = 0
    workers: int = 1
    partitions: int = 1
    tiles: int = 1

    def __post_init__(self) -> None:
        if self.check not in CHECKS:
            raise SimulationError(
                f"check must be one of {CHECKS}: {self.check!r}"
            )
        if self.backend not in ("python", "c"):
            raise SimulationError(f"unknown backend {self.backend!r}")
        if self.word_width not in WORD_WIDTHS:
            raise SimulationError(
                f"word_width must be one of {WORD_WIDTHS}: "
                f"{self.word_width}"
            )
        if self.check in ("history", "batched"):
            if self.technique not in HISTORY_TECHNIQUES:
                raise SimulationError(
                    f"{self.check!r} check needs a technique from "
                    f"{HISTORY_TECHNIQUES}: {self.technique!r}"
                )
        elif self.check == "packed":
            if self.technique not in PACKED_TECHNIQUES:
                raise SimulationError(
                    f"'packed' check needs a technique from "
                    f"{PACKED_TECHNIQUES}: {self.technique!r}"
                )
        elif self.check == "partitioned":
            if self.technique not in PARTITIONED_TECHNIQUES:
                raise SimulationError(
                    f"'partitioned' check needs a technique from "
                    f"{PARTITIONED_TECHNIQUES}: {self.technique!r}"
                )
            if self.partitions < 2:
                raise SimulationError(
                    f"'partitioned' check needs partitions >= 2: "
                    f"{self.partitions}"
                )
        if self.check != "partitioned" and self.partitions != 1:
            raise SimulationError(
                f"partitions applies to the 'partitioned' check only "
                f"(check={self.check!r}, partitions={self.partitions})"
            )
        if not isinstance(self.tiles, int) or self.tiles < 1:
            raise SimulationError(f"tiles must be >= 1: {self.tiles!r}")

    def label(self) -> str:
        """Compact human-readable identity (corpus entries, logs)."""
        parts = [self.check]
        if self.check != "faults":
            parts.append(self.technique)
        parts.append(self.backend)
        parts.append(f"w{self.word_width}")
        if (self.check in ("batched", "packed", "partitioned")
                and self.batch_size):
            parts.append(f"b{self.batch_size}")
        if self.check in ("faults", "partitioned") and self.workers > 1:
            parts.append(f"j{self.workers}")
        if self.check == "partitioned":
            parts.append(f"p{self.partitions}")
        if self.tiles > 1:
            parts.append(f"k{self.tiles}")
        return "/".join(parts)

    def as_dict(self) -> dict:
        data = asdict(self)
        # Late-added lattice axes serialize only when non-default, so
        # pre-existing corpus entries keep their content-addressed ids
        # (``from_dict`` refills the default on load).
        if data["partitions"] == 1:
            del data["partitions"]
        if data["tiles"] == 1:
            del data["tiles"]
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "FuzzConfig":
        known = {f: data[f] for f in cls.__dataclass_fields__ if f in data}
        return cls(**known)


def sample_configs(
    rng: random.Random,
    count: int,
    *,
    backends: Sequence[str] = ("python",),
    include_faults: bool = True,
) -> list[FuzzConfig]:
    """Draw ``count`` lattice points, deterministically for a given RNG.

    The draw is weighted toward the history check (the strictest
    oracle); batched, packed and — when enabled — fault-report
    identity each get a slice of every campaign.
    """
    kinds = ["history", "history", "batched", "packed", "partitioned"]
    if include_faults:
        kinds.append("faults")
    configs: list[FuzzConfig] = []
    for _ in range(count):
        check = rng.choice(kinds)
        backend = rng.choice(list(backends))
        word_width = rng.choice(WORD_WIDTHS)
        if check == "packed":
            technique = rng.choice(list(PACKED_TECHNIQUES))
        elif check == "partitioned":
            technique = rng.choice(list(PARTITIONED_TECHNIQUES))
        else:
            technique = rng.choice(list(HISTORY_TECHNIQUES))
        batch_size = rng.choice((0, 1, 2, 3, 5, 8))
        if check == "faults":
            workers = rng.choice((2, 3))
        elif check == "partitioned":
            workers = rng.choice((1, 2))
        else:
            workers = 1
        partitions = rng.choice((2, 3, 4)) if check == "partitioned" else 1
        # The tile axis exercises the K-word packed/laned paths; the
        # history check steps per vector, where K never applies.
        tiles = rng.choice((1, 2, 4)) if check != "history" else 1
        configs.append(FuzzConfig(
            check=check,
            technique=technique,
            backend=backend,
            word_width=word_width,
            batch_size=batch_size,
            workers=workers,
            partitions=partitions,
            tiles=tiles,
        ))
    return configs


def run_check(
    circuit: Circuit,
    vectors: Sequence[Sequence[int]],
    config: FuzzConfig,
) -> int:
    """Run one lattice point; returns the number of comparisons made.

    Raises :class:`~repro.harness.compare.Mismatch` on the first
    disagreement — the shared predicate of the campaign, the shrinker,
    and corpus replay.
    """
    if config.check == "faults":
        return _check_faults(circuit, vectors, config)
    execution = {"history": "scalar", "batched": "batched",
                 "packed": "packed",
                 "partitioned": "partitioned"}[config.check]
    return cross_validate(
        circuit,
        vectors,
        techniques=(config.technique,),
        backend=config.backend,
        word_width=config.word_width,
        execution=execution,
        batch_size=config.batch_size or None,
        partitions=config.partitions,
        partition_workers=config.workers or None,
        tiles=config.tiles,
    )


#: Serial (event-driven, one run per fault) reference is only affordable
#: on small instances; above these bounds the faults check still
#: validates scalar-vs-packed and inline-vs-sharded identity.
_SERIAL_MAX_GATES = 30
_SERIAL_MAX_VECTORS = 10


def _check_faults(
    circuit: Circuit,
    vectors: Sequence[Sequence[int]],
    config: FuzzConfig,
) -> int:
    """Fault-report identity: scalar vs. packed vs. sharded (vs. serial).

    Every report must be equal — same detected map (fault -> first
    detecting vector) and same undetected list.  On small instances the
    brute-force event-driven reference is compared too.
    """
    from repro.faults.simulator import (
        run_fault_simulation,
        serial_fault_simulation,
    )

    def options():
        return dict(
            word_width=config.word_width, backend=config.backend
        )

    scalar = run_fault_simulation(
        circuit, vectors, patterns="scalar", **options()
    )
    checks = scalar.num_faults
    packed = run_fault_simulation(
        circuit, vectors, patterns="auto", **options()
    )
    if packed != scalar:
        raise Mismatch(
            "faults[patterns]", -1, [],
            f"  packed-pattern report diverged from scalar: "
            f"{packed!r} vs {scalar!r}",
        )
    checks += packed.num_faults
    if config.tiles > 1:
        tiled = run_fault_simulation(
            circuit, vectors, patterns="auto", tiles=config.tiles,
            **options()
        )
        if tiled != scalar:
            raise Mismatch(
                f"faults[tiled k{config.tiles}]", -1, [],
                f"  tiled packed report diverged from scalar: "
                f"{tiled!r} vs {scalar!r}",
            )
        checks += tiled.num_faults
    if config.workers > 1:
        sharded = run_fault_simulation(
            circuit, vectors, workers=config.workers,
            tiles=config.tiles, **options()
        )
        if sharded != scalar:
            raise Mismatch(
                f"faults[sharded j{config.workers}]", -1, [],
                f"  sharded report diverged from inline: "
                f"{sharded!r} vs {scalar!r}",
            )
        checks += sharded.num_faults
    if (circuit.num_gates <= _SERIAL_MAX_GATES
            and len(vectors) <= _SERIAL_MAX_VECTORS):
        serial = serial_fault_simulation(circuit, vectors)
        if serial != scalar:
            raise Mismatch(
                "faults[serial]", -1, [],
                f"  compiled report diverged from the event-driven "
                f"reference: {scalar!r} vs {serial!r}",
            )
        checks += serial.num_faults
    return checks
