"""Corpus distillation: keep the corpus minimal as surfaces accrete.

Every campaign failure lands in ``fuzz-corpus/`` as a permanent
regression test, so over time the corpus accumulates entries whose
lattice coverage is subsumed by smaller, later reproducers.  The
distiller re-minimizes: each entry is projected onto its coarse
lattice point (:meth:`FuzzConfig.lattice_key` — check, technique,
backend, width band, chunking, workers, partitions, tiles, probes),
then a greedy set cover keeps the smallest witness for every covered
point and drops the rest.

The invariant that makes this safe to run blindly is **losslessness**:
every lattice point covered before distillation is covered after —
an entry that is the sole witness for its point can never be dropped,
no matter how large.  Kept entries are replayed against the current
code before anything is deleted (``apply=True``), so a distill pass
can never leave the corpus smaller *and* broken.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Union

from repro import telemetry
from repro.fuzz.corpus import CorpusEntry, load_corpus, replay_entry
from repro.fuzz.shrink import _size

__all__ = ["DistillResult", "distill_corpus", "entry_size"]


def entry_size(entry: CorpusEntry) -> int:
    """The shrinker's scalar size metric, applied to a corpus entry.

    Using the same metric the delta-debugger minimizes means "smaller"
    has one definition everywhere: the greedy cover prefers exactly
    the entries the shrinker worked hardest on.
    """
    return _size(entry.circuit(), entry.vectors)


@dataclass
class DistillResult:
    """What one distillation pass decided (and, with apply, did)."""

    kept: list = field(default_factory=list)     # [(Path, CorpusEntry)]
    dropped: list = field(default_factory=list)  # [(Path, CorpusEntry)]
    points_before: set = field(default_factory=set)
    points_after: set = field(default_factory=set)
    replayed: int = 0
    applied: bool = False

    @property
    def lossless(self) -> bool:
        return self.points_after == self.points_before

    def summary(self) -> str:
        return (
            f"distill: kept {len(self.kept)}/"
            f"{len(self.kept) + len(self.dropped)} entries, "
            f"{len(self.points_after)}/{len(self.points_before)} "
            f"lattice points covered "
            f"({'lossless' if self.lossless else 'LOSSY'}), "
            f"replayed {self.replayed}"
            f"{', applied' if self.applied else ' (dry run)'}"
        )


def distill_corpus(
    corpus_dir: Union[str, Path],
    *,
    apply: bool = False,
    check: bool = True,
) -> DistillResult:
    """Greedily minimize ``corpus_dir`` preserving lattice coverage.

    Entries are visited smallest-first (:func:`entry_size`, entry id
    as the deterministic tiebreak); an entry is kept iff it covers a
    lattice point no smaller kept entry covers.  With ``check`` every
    kept entry is replayed against the current code first — a replay
    failure propagates (either a live regression or a stale entry;
    both demand attention before shrinking the corpus).  With
    ``apply`` the dropped files are deleted; default is a dry run.
    """
    entries = load_corpus(corpus_dir)
    result = DistillResult()
    for _path, entry in entries:
        result.points_before.add(entry.config.lattice_key())
    ranked = sorted(
        entries,
        key=lambda item: (entry_size(item[1]), item[1].entry_id),
    )
    covered: set[str] = set()
    for path, entry in ranked:
        point = entry.config.lattice_key()
        if point in covered:
            result.dropped.append((path, entry))
            continue
        if check:
            # Replay before committing to keep: the witness must still
            # be a valid, runnable reproducer under current code.
            replay_entry(entry)
            result.replayed += 1
        covered.add(point)
        result.kept.append((path, entry))
    result.points_after = covered
    telemetry.counter("fuzz.distill.kept", len(result.kept))
    telemetry.counter("fuzz.distill.dropped", len(result.dropped))
    if apply:
        if not result.lossless:
            # Defensive: the greedy cover cannot lose points by
            # construction, but never delete files on a broken pass.
            raise AssertionError(
                "distillation would lose lattice coverage; refusing "
                "to apply"
            )
        for path, _entry in result.dropped:
            path.unlink()
        result.applied = True
    # Restore deterministic (filename) order for reporting.
    result.kept.sort(key=lambda item: item[0].name)
    result.dropped.sort(key=lambda item: item[0].name)
    return result
