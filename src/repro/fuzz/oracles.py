"""Performance-regression oracles: bench floors enforced by the fuzzer.

The repository carries committed ``BENCH_*.json`` snapshots proving the
paper's "fast" claim and a differential fuzzer proving the "exact"
claim; this module connects them.  A campaign run measures vectors/sec
(and compile seconds) for a small set of *perf points* — lattice
coordinates (surface × technique × backend × width × tiles ×
partitions × probes) — against a machine-local *envelope* calibrated
at campaign start:

1. warm-up normalization: each point is timed best-of-N on this
   machine with the same prepared-runnable discipline as the
   benchmarks (compile and marshalling outside the timed region);
2. the floor for a point is ``margin × calibrated`` throughput, so an
   unmodified tree never flags while a ~2x regression always does;
3. the committed ``BENCH_packed.json`` reference throughputs are
   recorded alongside as a per-backend ``machine_scale`` — the ratio
   of this machine to the machine that produced the snapshot — which
   keeps the snapshots honest (a wildly off scale means the committed
   floors are stale) without letting another machine's absolute
   numbers cause flakes here.

A point that measures below its floor is re-measured with more
repeats before it is flagged (a single noisy sample on a loaded box
is not a regression); a surviving flag becomes a campaign failure
with a replayable artifact naming the exact ``repro-sim fuzz perf
--point`` command.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro import telemetry
from repro.errors import SimulationError

__all__ = [
    "BENCH_FIGURES",
    "ENVELOPE_VERSION",
    "DEFAULT_MARGIN",
    "MIN_COMPILE_CEILING",
    "load_bench",
    "validate_bench",
    "PerfPoint",
    "PerfSample",
    "PerfFlag",
    "PerfReport",
    "PerfEnvelope",
    "available_backends",
    "default_points",
    "calibration_circuit",
    "measure_point",
    "committed_reference",
    "calibrate_envelope",
    "run_perf_phase",
]

ENVELOPE_VERSION = 1

#: Floor = margin × locally calibrated best throughput.  0.6 leaves a
#: generous noise band on shared/1-CPU machines while a genuine 2x
#: slowdown (measured/calibrated = 0.5) always lands below it.
DEFAULT_MARGIN = 0.6

#: Compile-time ceilings never drop below this, so sub-millisecond
#: Python "compiles" cannot flag on scheduler jitter alone.
MIN_COMPILE_CEILING = 0.25

#: Short bench name -> the ``figure`` field its snapshot must carry.
BENCH_FIGURES = {
    "packed": "packed_throughput",
    "shards": "sharded_faults",
    "partition": "partition",
    "telemetry": "telemetry_overhead",
    "tiled": "tiled_throughput",
    "replay": "replay",
    "probes": "probes",
}


def _repo_root() -> Path:
    # src/repro/fuzz/oracles.py -> repository root.
    return Path(__file__).resolve().parents[3]


def validate_bench(payload: dict, name: str) -> dict:
    """Check one bench snapshot against the shared schema.

    Every ``BENCH_*.json`` (and every ``benchmarks/results/*.json``)
    is a ``{"figure", "backend", "metrics"}`` object whose ``figure``
    matches the registered name.  Returns the payload for chaining.
    """
    if name not in BENCH_FIGURES:
        raise SimulationError(
            f"unknown bench {name!r}; choose from "
            f"{sorted(BENCH_FIGURES)}"
        )
    if not isinstance(payload, dict):
        raise SimulationError(
            f"bench {name!r}: payload must be an object, got "
            f"{type(payload).__name__}"
        )
    missing = [
        key for key in ("figure", "backend", "metrics")
        if key not in payload
    ]
    if missing:
        raise SimulationError(
            f"bench {name!r}: missing required keys {missing}"
        )
    expected = BENCH_FIGURES[name]
    if payload["figure"] != expected:
        raise SimulationError(
            f"bench {name!r}: figure {payload['figure']!r} does not "
            f"match expected {expected!r}"
        )
    if not isinstance(payload["backend"], str):
        raise SimulationError(
            f"bench {name!r}: backend must be a string"
        )
    if not isinstance(payload["metrics"], dict):
        raise SimulationError(
            f"bench {name!r}: metrics must be an object"
        )
    return payload


def load_bench(
    name: str, root: Union[str, Path, None] = None
) -> Optional[dict]:
    """Load + validate ``BENCH_<name>.json`` from the repository root.

    Returns ``None`` when the snapshot file does not exist (a grown
    checkout may predate a bench); malformed content raises — a
    committed snapshot that no longer parses is drift, not absence.
    """
    if name not in BENCH_FIGURES:
        raise SimulationError(
            f"unknown bench {name!r}; choose from "
            f"{sorted(BENCH_FIGURES)}"
        )
    directory = Path(root) if root is not None else _repo_root()
    path = directory / f"BENCH_{name}.json"
    if not path.is_file():
        return None
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SimulationError(
            f"bench snapshot {path} is not valid JSON: {exc}"
        ) from exc
    return validate_bench(payload, name)


# ----------------------------------------------------------------------
# perf points
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PerfPoint:
    """One measured lattice coordinate.

    ``surface`` names the execution path being timed (and selects the
    driver shape in :func:`measure_point`); the remaining fields are
    the compile-time coordinates.  ``key()`` is the stable identity
    used in envelope files, artifacts and the ``fuzz perf --point``
    replay command.
    """

    surface: str
    technique: str
    backend: str
    word_width: int = 32
    tiles: int = 1
    partitions: int = 1
    probes: bool = False

    SURFACES = ("scalar", "packed", "tiled", "partitioned", "probed")

    def __post_init__(self) -> None:
        if self.surface not in self.SURFACES:
            raise SimulationError(
                f"unknown perf surface {self.surface!r}; choose from "
                f"{self.SURFACES}"
            )

    def key(self) -> str:
        parts = [
            self.surface, self.technique, self.backend,
            f"w{self.word_width}",
        ]
        if self.tiles > 1:
            parts.append(f"k{self.tiles}")
        if self.partitions > 1:
            parts.append(f"p{self.partitions}")
        if self.probes:
            parts.append("probes")
        return ":".join(parts)

    @classmethod
    def from_key(cls, key: str) -> "PerfPoint":
        parts = key.split(":")
        if len(parts) < 4 or not parts[3].startswith("w"):
            raise SimulationError(
                f"malformed perf point key {key!r} (want "
                f"surface:technique:backend:wN[:kK][:pP][:probes])"
            )
        surface, technique, backend = parts[0], parts[1], parts[2]
        try:
            word_width = int(parts[3][1:])
        except ValueError:
            raise SimulationError(
                f"malformed width in perf point key {key!r}"
            ) from None
        tiles, partitions, probes = 1, 1, False
        for extra in parts[4:]:
            if extra.startswith("k"):
                tiles = int(extra[1:])
            elif extra.startswith("p") and extra != "probes":
                partitions = int(extra[1:])
            elif extra == "probes":
                probes = True
            else:
                raise SimulationError(
                    f"malformed segment {extra!r} in perf point key "
                    f"{key!r}"
                )
        return cls(
            surface=surface, technique=technique, backend=backend,
            word_width=word_width, tiles=tiles, partitions=partitions,
            probes=probes,
        )


@dataclass(frozen=True)
class PerfSample:
    """One measurement: best-of-repeats throughput + one-time compile."""

    vectors_per_s: float
    compile_seconds: float
    vectors: int
    repeats: int


@dataclass(frozen=True)
class PerfFlag:
    """One surviving below-envelope measurement (a campaign failure)."""

    point: str
    kind: str  # "throughput" | "compile"
    measured: float
    floor: float
    artifact: str = ""

    @property
    def replay(self) -> str:
        return f"repro-sim fuzz perf --point {self.point}"

    def describe(self) -> str:
        if self.kind == "throughput":
            return (
                f"{self.point}: {self.measured:,.0f} vectors/s below "
                f"floor {self.floor:,.0f}"
            )
        return (
            f"{self.point}: compile {self.measured:.3f}s above "
            f"ceiling {self.floor:.3f}s"
        )


@dataclass
class PerfReport:
    """The perf phase of one campaign: every sample plus any flags."""

    samples: dict = field(default_factory=dict)  # key -> PerfSample
    flags: list = field(default_factory=list)    # list[PerfFlag]
    observe_only: bool = False

    @property
    def ok(self) -> bool:
        return self.observe_only or not self.flags


def available_backends(*, include_numpy: bool = True) -> tuple:
    """Backends usable on this machine, production-preferred order."""
    from repro.codegen.runtime import have_c_compiler, have_numpy

    backends = ["python"]
    if have_c_compiler():
        backends.insert(0, "c")
    if include_numpy and have_numpy():
        backends.append("numpy")
    return tuple(backends)


def default_points(
    backends: Optional[Sequence[str]] = None,
) -> list[PerfPoint]:
    """The standard envelope: headline paths on every usable backend.

    Packed throughput is the paper's headline number, so it is
    measured per backend; the scalar block path per backend guards the
    baseline; the tiled, partitioned and probed paths are measured on
    the preferred backend only (they multiply compile time and their
    regressions are backend-independent layout/orchestration code).
    """
    if backends is None:
        backends = available_backends()
    if not backends:
        raise SimulationError("no backends available for perf points")
    preferred = backends[0]
    points = []
    for backend in backends:
        points.append(PerfPoint(
            surface="packed", technique="zero-lcc", backend=backend,
            word_width=32,
        ))
        points.append(PerfPoint(
            surface="scalar", technique="parallel-best",
            backend=backend, word_width=32,
        ))
    points.append(PerfPoint(
        surface="tiled", technique="zero-lcc", backend=preferred,
        word_width=16, tiles=2,
    ))
    points.append(PerfPoint(
        surface="partitioned", technique="zero-lcc", backend=preferred,
        word_width=32, partitions=2,
    ))
    points.append(PerfPoint(
        surface="probed", technique="zero-lcc", backend=preferred,
        word_width=16, probes=True,
    ))
    return points


_CALIBRATION_CIRCUITS: dict = {}


def calibration_circuit(num_inputs: int = 8, num_gates: int = 64):
    """The fixed random DAG every perf point is measured on (cached).

    One deterministic circuit for all points keeps the envelope
    file's floors comparable across calibrations; the size is chosen
    so a compiled pass does real work but a full calibration stays
    inside a CI-friendly budget.
    """
    key = (num_inputs, num_gates)
    if key not in _CALIBRATION_CIRCUITS:
        from repro.netlist.random_circuits import random_dag_circuit

        _CALIBRATION_CIRCUITS[key] = random_dag_circuit(
            1990, num_inputs=num_inputs, num_gates=num_gates
        )
    return _CALIBRATION_CIRCUITS[key]


def _runnable_options(point: PerfPoint) -> dict:
    options = {
        "backend": point.backend,
        "word_width": point.word_width,
    }
    if point.surface in ("packed", "tiled"):
        options["packed"] = True
        if point.tiles > 1:
            options["tiles"] = point.tiles
    elif point.surface == "partitioned":
        options["partitions"] = point.partitions
    elif point.surface == "probed":
        options["probes"] = True
    return options


def measure_point(
    point: PerfPoint,
    *,
    vectors: int = 1024,
    repeats: int = 3,
    circuit=None,
) -> PerfSample:
    """Time one perf point: compile once, run best-of-``repeats``.

    Mirrors the benchmark discipline exactly — construction, state
    seeding and marshalling happen inside ``compile_seconds`` (the
    paper's compile phase), then the prepared zero-argument runnable
    is invoked ``repeats`` times after one unmeasured warm-up pass and
    the best wall time wins (best-of-N is the standard antidote to
    scheduler noise on a shared machine).
    """
    from repro.harness.runner import run_technique
    from repro.harness.vectors import vectors_for

    if circuit is None:
        circuit = calibration_circuit()
    # Tiled passes need more than one group per pass to exist at all.
    needed = point.word_width * point.tiles
    count = max(vectors, 2 * needed)
    tape = vectors_for(circuit, count, seed=97)
    start = time.perf_counter()
    runnable = run_technique(
        circuit, point.technique, tape, **_runnable_options(point)
    )
    compile_seconds = time.perf_counter() - start
    runnable()  # warm-up: page in code, fill caches, JIT nothing
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        runnable()
        best = min(best, time.perf_counter() - t0)
    return PerfSample(
        vectors_per_s=count / best if best > 0 else float("inf"),
        compile_seconds=compile_seconds,
        vectors=count,
        repeats=repeats,
    )


# ----------------------------------------------------------------------
# the envelope
# ----------------------------------------------------------------------
def committed_reference(
    root: Union[str, Path, None] = None
) -> dict[str, float]:
    """Best committed packed throughput per backend, from BENCH_packed.

    The committed snapshot was produced on a different machine; its
    absolute numbers are only used to report ``machine_scale`` (local
    ÷ committed), never as floors themselves.
    """
    bench = load_bench("packed", root)
    if bench is None:
        return {}
    reference: dict[str, float] = {}
    for row in bench["metrics"].get("results", []):
        backend = row.get("backend")
        vps = row.get("packed_vectors_per_s")
        if isinstance(backend, str) and isinstance(vps, (int, float)):
            reference[backend] = max(reference.get(backend, 0.0), vps)
    return reference


@dataclass
class PerfEnvelope:
    """Machine-local floors for every calibrated perf point."""

    margin: float
    vectors: int
    floors: dict  # key -> {"floor_vectors_per_s", "calibrated_...", ...}
    machine_scale: dict = field(default_factory=dict)
    version: int = ENVELOPE_VERSION

    def points(self) -> list[PerfPoint]:
        return [PerfPoint.from_key(key) for key in self.floors]

    def as_dict(self) -> dict:
        return {
            "version": self.version,
            "margin": self.margin,
            "vectors": self.vectors,
            "machine_scale": dict(self.machine_scale),
            "floors": {key: dict(row) for key, row in self.floors.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PerfEnvelope":
        version = data.get("version", 0)
        if version > ENVELOPE_VERSION:
            raise SimulationError(
                f"perf envelope version {version} is newer than this "
                f"library understands ({ENVELOPE_VERSION})"
            )
        for key in ("margin", "vectors", "floors"):
            if key not in data:
                raise SimulationError(
                    f"perf envelope is missing required key {key!r}"
                )
        return cls(
            margin=float(data["margin"]),
            vectors=int(data["vectors"]),
            floors={k: dict(v) for k, v in data["floors"].items()},
            machine_scale=dict(data.get("machine_scale", {})),
            version=version,
        )

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=2,
                                   sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "PerfEnvelope":
        return cls.from_dict(json.loads(Path(path).read_text()))


def calibrate_envelope(
    points: Optional[Sequence[PerfPoint]] = None,
    *,
    margin: float = DEFAULT_MARGIN,
    vectors: int = 1024,
    repeats: int = 3,
    root: Union[str, Path, None] = None,
    measure: Optional[Callable[..., PerfSample]] = None,
) -> PerfEnvelope:
    """Measure every point on this machine and derive its floors.

    ``measure`` is injectable so tests can calibrate against a
    deterministic fake; the default is :func:`measure_point`.
    """
    if not 0.0 < margin < 1.0:
        raise SimulationError(
            f"margin must be in (0, 1), got {margin!r}"
        )
    if points is None:
        points = default_points()
    if measure is None:
        measure = measure_point
    floors: dict = {}
    local_packed: dict[str, float] = {}
    for point in points:
        sample = measure(point, vectors=vectors, repeats=repeats)
        compile_ceiling = max(
            sample.compile_seconds / margin, MIN_COMPILE_CEILING
        )
        floors[point.key()] = {
            "floor_vectors_per_s": margin * sample.vectors_per_s,
            "calibrated_vectors_per_s": sample.vectors_per_s,
            "compile_ceiling_seconds": compile_ceiling,
            "calibrated_compile_seconds": sample.compile_seconds,
        }
        if point.surface == "packed":
            local_packed[point.backend] = max(
                local_packed.get(point.backend, 0.0),
                sample.vectors_per_s,
            )
    reference = committed_reference(root)
    machine_scale = {
        backend: local_packed[backend] / reference[backend]
        for backend in local_packed
        if reference.get(backend)
    }
    return PerfEnvelope(
        margin=margin, vectors=vectors, floors=floors,
        machine_scale=machine_scale,
    )


def run_perf_phase(
    envelope: PerfEnvelope,
    *,
    observe_only: bool = False,
    artifacts_dir: Union[str, Path, None] = None,
    measure: Optional[Callable[..., PerfSample]] = None,
    escalate_repeats: int = 5,
) -> PerfReport:
    """Measure every envelope point and flag below-floor survivors.

    A first below-floor measurement is re-measured with
    ``escalate_repeats`` before it may flag — one noisy sample on a
    loaded machine is not a regression, but a real slowdown survives
    any number of repeats.  Each surviving flag is written as a
    replayable JSON artifact when ``artifacts_dir`` is given.
    """
    if measure is None:
        measure = measure_point
    report = PerfReport(observe_only=observe_only)
    for key, floor_row in envelope.floors.items():
        point = PerfPoint.from_key(key)
        sample = measure(point, vectors=envelope.vectors, repeats=3)
        telemetry.counter("fuzz.perf.points")
        failures = _floor_failures(sample, floor_row)
        if failures:
            # Escalate: the cheap measurement said "slow" — take the
            # best of more repeats before believing it.
            sample = measure(
                point, vectors=envelope.vectors,
                repeats=escalate_repeats,
            )
            telemetry.counter("fuzz.perf.escalations")
            failures = _floor_failures(sample, floor_row)
        report.samples[key] = sample
        for kind, measured, floor in failures:
            flag = PerfFlag(
                point=key, kind=kind, measured=measured, floor=floor,
            )
            if artifacts_dir is not None:
                flag = _write_artifact(
                    flag, sample, envelope, Path(artifacts_dir)
                )
            telemetry.counter("fuzz.perf.flags")
            report.flags.append(flag)
    return report


def _floor_failures(
    sample: PerfSample, floor_row: dict
) -> list[tuple[str, float, float]]:
    failures = []
    floor = floor_row["floor_vectors_per_s"]
    if sample.vectors_per_s < floor:
        failures.append(("throughput", sample.vectors_per_s, floor))
    ceiling = floor_row.get("compile_ceiling_seconds")
    if ceiling is not None and sample.compile_seconds > ceiling:
        failures.append(("compile", sample.compile_seconds, ceiling))
    return failures


def _write_artifact(
    flag: PerfFlag,
    sample: PerfSample,
    envelope: PerfEnvelope,
    directory: Path,
) -> PerfFlag:
    directory.mkdir(parents=True, exist_ok=True)
    safe = flag.point.replace(":", "_").replace("/", "_")
    path = directory / f"perf_{safe}_{flag.kind}.json"
    payload = {
        "point": flag.point,
        "kind": flag.kind,
        "measured": flag.measured,
        "floor": flag.floor,
        "margin": envelope.margin,
        "vectors": envelope.vectors,
        "sample": {
            "vectors_per_s": sample.vectors_per_s,
            "compile_seconds": sample.compile_seconds,
            "repeats": sample.repeats,
        },
        "machine_scale": dict(envelope.machine_scale),
        "replay": flag.replay,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return PerfFlag(
        point=flag.point, kind=flag.kind, measured=flag.measured,
        floor=flag.floor, artifact=str(path),
    )
