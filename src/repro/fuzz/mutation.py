"""Intentional emitter bugs, for validating the fuzzer itself.

A differential fuzzer that has never caught anything is untested code.
:func:`inject_emitter_bug` patches a classic class of code-generator
bug into every compiled technique at once — the event-driven reference
evaluates gates through :mod:`repro.logic` and is unaffected, so the
campaign must catch the disagreement and the shrinker must reduce it
to a gate-count-minimal reproducer.  Used by ``tests/test_fuzz.py``,
by ``repro-sim fuzz --inject-bug`` (the mutation runs documented in
EXPERIMENTS.md), and by nothing else: never enable this outside a
self-test.

The patch is applied to each module that imported
:func:`~repro.codegen.gates.gate_expression` by name.  Mutated
programs have different generated source, hence different cache
fingerprints — the process-wide program cache cannot leak buggy
machines into healthy runs or vice versa.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.codegen.gates import gate_expression as _real_gate_expression
from repro.codegen.program import Expr, Un
from repro.errors import SimulationError
from repro.logic import GateType

__all__ = [
    "MUTATIONS",
    "inject_emitter_bug",
    "inject_partition_bug",
    "inject_tile_bug",
    "inject_slowdown",
]

#: Mutation name -> (gate type whose emission is corrupted, description).
MUTATIONS = {
    "nor-as-or": (GateType.NOR, "NOR emits OR (dropped invert)"),
    "xnor-as-xor": (GateType.XNOR, "XNOR emits XOR (dropped invert)"),
    "nand-as-and": (GateType.NAND, "NAND emits AND (dropped invert)"),
    "not-as-buf": (GateType.NOT, "NOT emits BUF (dropped invert)"),
}

#: Every module that binds ``gate_expression`` at import time.
_PATCH_SITES = (
    "repro.codegen.gates",
    "repro.parallel.codegen",
    "repro.parallel.aligned_codegen",
    "repro.pcset.codegen",
    "repro.lcc.zerodelay",
)


def _buggy(kind: str):
    target, _description = MUTATIONS[kind]

    def gate_expression(gate_type: GateType, operands: list) -> Expr:
        expr = _real_gate_expression(gate_type, operands)
        if gate_type is target and isinstance(expr, Un):
            # Drop the inverting wrapper: the classic missing-~ bug.
            return expr.a
        return expr

    return gate_expression


@contextmanager
def inject_partition_bug():
    """Context manager: corrupt the barrier engine's cut-net exchange.

    The first word of the first exported column a segment hands to the
    exchange table gets its low bit flipped — the classic
    "one partition published a stale/garbled cut value" bug.  The
    monolithic (single-segment) fast path is left untouched, so the
    partitioned differential check's reference side stays honest and
    the campaign must catch the raw-word divergence.  Self-test only.
    """
    from repro.partition.executor import PartitionedSimulator

    # ``_run_segment`` is a staticmethod — grab the descriptor so the
    # restore puts back a staticmethod, not an instance method.
    descriptor = PartitionedSimulator.__dict__["_run_segment"]
    original = descriptor.__func__

    def corrupted(self, segment, table, count):
        # The replacement is a plain function, so it binds as an
        # instance method — which is exactly what lets the bug consult
        # ``self.monolithic`` and spare the single-segment fast path.
        rows = original(segment, table, count)
        if not self.monolithic and segment.exports and rows:
            rows = [list(row) for row in rows]
            rows[0][0] ^= 1
        return rows

    PartitionedSimulator._run_segment = corrupted
    try:
        yield "partition exchange flips bit 0 of the first cut word"
    finally:
        PartitionedSimulator._run_segment = descriptor


#: Modules that bind ``tile_groups`` by name at import time.
_TILE_PATCH_SITES = ("repro.codegen.packing", "repro.lcc.zerodelay")


@contextmanager
def inject_tile_bug():
    """Context manager: corrupt the K-tile slot-major input layout.

    A machine compiled with ``tiles=K`` consumes pass rows with input
    slot ``s`` tile ``t`` at index ``s*K + t``; the injected bug
    interleaves them group-major (``t*num_inputs + s``) instead — the
    classic tile-boundary transposition.  Any tiled pass over a
    circuit with more than one input computes with the wrong words, so
    the campaign's tiled packed checks must disagree with the untiled
    reference.  Self-test only.
    """
    import importlib

    from repro.codegen.packing import tile_groups as real_tile_groups

    def buggy_tile_groups(groups, num_inputs, tiles):
        rows = []
        for base in range(0, len(groups), tiles):
            chunk = list(groups[base:base + tiles])
            while len(chunk) < tiles:
                chunk.append([0] * num_inputs)
            rows.append([
                chunk[t][k]
                for t in range(tiles)
                for k in range(num_inputs)
            ])
        return rows

    modules = [
        importlib.import_module(name) for name in _TILE_PATCH_SITES
    ]
    saved = [module.tile_groups for module in modules]
    for module in modules:
        module.tile_groups = buggy_tile_groups
    try:
        yield "tile_groups emits group-major rows (transposed layout)"
    finally:
        for module, original in zip(modules, saved):
            module.tile_groups = original


#: ``inject_slowdown`` patch points: (backend, path) -> machine methods.
#: The C packed fast path has two entries — ``run_packed`` (marshalled
#: buffers, the prepared-program timing path) and ``run_packed_block``
#: (group rows) — so both are wrapped together.
_SLOWDOWN_SITES = {
    ("c", "packed"): (
        ("CMachine", "run_packed"),
        ("CMachine", "run_packed_block"),
    ),
    ("c", "block"): (("CMachine", "run_block"),),
    ("python", "packed"): (("PythonMachine", "run_packed_block"),),
    ("python", "block"): (("PythonMachine", "run_block"),),
}


@contextmanager
def inject_slowdown(factor: float = 2.0, *, backend: str = "c",
                    path: str = "packed"):
    """Context manager: slow one machine entry point by ``factor``.

    Wraps the chosen backend's batch entry so every call sleeps for
    ``(factor - 1)`` times its own elapsed time — a clean synthetic
    throughput regression with no functional change, used to prove the
    perf oracle flags what the differential checks cannot see.
    ``NumpyMachine`` subclasses ``PythonMachine``, so the python sites
    cover the numpy backend too.  Self-test only.
    """
    import time as _time

    from repro.codegen import runtime

    if factor < 1.0:
        raise SimulationError(
            f"slowdown factor must be >= 1.0: {factor}"
        )
    try:
        sites = _SLOWDOWN_SITES[(backend, path)]
    except KeyError:
        raise SimulationError(
            f"unknown slowdown site {(backend, path)!r}; choose from "
            f"{sorted(_SLOWDOWN_SITES)}"
        ) from None

    def _slow(original):
        def slowed(self, *args, **kwargs):
            start = _time.perf_counter()
            result = original(self, *args, **kwargs)
            _time.sleep((_time.perf_counter() - start) * (factor - 1.0))
            return result
        return slowed

    saved = []
    for cls_name, method in sites:
        cls = getattr(runtime, cls_name)
        original = getattr(cls, method)
        saved.append((cls, method, original))
        setattr(cls, method, _slow(original))
    try:
        yield f"{backend} {path} path slowed {factor:g}x"
    finally:
        for cls, method, original in saved:
            setattr(cls, method, original)


@contextmanager
def inject_emitter_bug(kind: str = "nor-as-or"):
    """Context manager: corrupt one gate type's emitted expression.

    All compiled techniques (PC-set, parallel variants, LCC) pick up
    the corrupted emission; the interpreted simulators do not.  The
    original emitter is restored on exit, even on error.
    """
    if kind not in MUTATIONS:
        raise SimulationError(
            f"unknown mutation {kind!r}; choose from "
            f"{sorted(MUTATIONS)}"
        )
    import importlib

    buggy = _buggy(kind)
    modules = [importlib.import_module(name) for name in _PATCH_SITES]
    saved = [module.gate_expression for module in modules]
    for module in modules:
        module.gate_expression = buggy
    try:
        yield MUTATIONS[kind][1]
    finally:
        for module, original in zip(modules, saved):
            module.gate_expression = original
