"""Intentional emitter bugs, for validating the fuzzer itself.

A differential fuzzer that has never caught anything is untested code.
:func:`inject_emitter_bug` patches a classic class of code-generator
bug into every compiled technique at once — the event-driven reference
evaluates gates through :mod:`repro.logic` and is unaffected, so the
campaign must catch the disagreement and the shrinker must reduce it
to a gate-count-minimal reproducer.  Used by ``tests/test_fuzz.py``,
by ``repro-sim fuzz --inject-bug`` (the mutation runs documented in
EXPERIMENTS.md), and by nothing else: never enable this outside a
self-test.

The patch is applied to each module that imported
:func:`~repro.codegen.gates.gate_expression` by name.  Mutated
programs have different generated source, hence different cache
fingerprints — the process-wide program cache cannot leak buggy
machines into healthy runs or vice versa.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.codegen.gates import gate_expression as _real_gate_expression
from repro.codegen.program import Expr, Un
from repro.errors import SimulationError
from repro.logic import GateType

__all__ = ["MUTATIONS", "inject_emitter_bug"]

#: Mutation name -> (gate type whose emission is corrupted, description).
MUTATIONS = {
    "nor-as-or": (GateType.NOR, "NOR emits OR (dropped invert)"),
    "xnor-as-xor": (GateType.XNOR, "XNOR emits XOR (dropped invert)"),
    "nand-as-and": (GateType.NAND, "NAND emits AND (dropped invert)"),
    "not-as-buf": (GateType.NOT, "NOT emits BUF (dropped invert)"),
}

#: Every module that binds ``gate_expression`` at import time.
_PATCH_SITES = (
    "repro.codegen.gates",
    "repro.parallel.codegen",
    "repro.parallel.aligned_codegen",
    "repro.pcset.codegen",
    "repro.lcc.zerodelay",
)


def _buggy(kind: str):
    target, _description = MUTATIONS[kind]

    def gate_expression(gate_type: GateType, operands: list) -> Expr:
        expr = _real_gate_expression(gate_type, operands)
        if gate_type is target and isinstance(expr, Un):
            # Drop the inverting wrapper: the classic missing-~ bug.
            return expr.a
        return expr

    return gate_expression


@contextmanager
def inject_emitter_bug(kind: str = "nor-as-or"):
    """Context manager: corrupt one gate type's emitted expression.

    All compiled techniques (PC-set, parallel variants, LCC) pick up
    the corrupted emission; the interpreted simulators do not.  The
    original emitter is restored on exit, even on error.
    """
    if kind not in MUTATIONS:
        raise SimulationError(
            f"unknown mutation {kind!r}; choose from "
            f"{sorted(MUTATIONS)}"
        )
    import importlib

    buggy = _buggy(kind)
    modules = [importlib.import_module(name) for name in _PATCH_SITES]
    saved = [module.gate_expression for module in modules]
    for module in modules:
        module.gate_expression = buggy
    try:
        yield MUTATIONS[kind][1]
    finally:
        for module, original in zip(modules, saved):
            module.gate_expression = original
