"""Functional equivalence checking between two circuits.

A practical companion to the netlist transforms: after pruning,
constant propagation, or a hand edit, confirm the circuit still
computes the same outputs.  The checker exploits the same bit-parallel
trick as everything else in this library: the compiled zero-delay LCC
program evaluates ``word_width`` input vectors per step, so exhaustive
verification of a 20-input circuit costs ``2**20 / 64`` machine steps,
not ``2**20``.

- :func:`check_equivalence` — exhaustive when ``2**inputs`` fits the
  effort budget, seeded-random sampling otherwise; returns a
  counterexample on mismatch.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import SimulationError
from repro.lcc.zerodelay import LCCSimulator
from repro.netlist.circuit import Circuit

__all__ = ["EquivalenceResult", "check_equivalence"]

#: Widest input count for which the whole assignment space is indexed
#: as a ``range`` (``range.__len__`` overflows past ``sys.maxsize``).
_SAMPLE_INDEX_WIDTH = 48


def _sampled_assignments(
    rng: random.Random, width: int, count: int
) -> list[int]:
    """``count`` distinct input assignments, drawn without replacement.

    Sampling with replacement re-checks duplicate vectors — for widths
    just past the exhaustive cutoff a 2048-vector sample repeats dozens
    of assignments and silently over-reports ``vectors_checked``.  Small
    spaces get a true no-repeat sample over the indexed range; for huge
    widths collisions are vanishingly rare and a seen-set rejects the
    few that occur.
    """
    if width <= _SAMPLE_INDEX_WIDTH:
        total = 1 << width
        return rng.sample(range(total), min(count, total))
    seen: set[int] = set()
    draws: list[int] = []
    while len(draws) < count:
        assignment = rng.getrandbits(width)
        if assignment not in seen:
            seen.add(assignment)
            draws.append(assignment)
    return draws


class EquivalenceResult:
    """Outcome of an equivalence check.

    ``equivalent`` is definitive when ``exhaustive`` is true; with
    sampling it means "no counterexample found in ``vectors_checked``
    vectors".  On mismatch, ``counterexample`` maps primary inputs to
    the offending assignment and ``mismatched_outputs`` names the
    outputs that differ there.
    """

    def __init__(
        self,
        equivalent: bool,
        exhaustive: bool,
        vectors_checked: int,
        counterexample: Optional[dict[str, int]] = None,
        mismatched_outputs: Optional[list[str]] = None,
    ) -> None:
        self.equivalent = equivalent
        self.exhaustive = exhaustive
        self.vectors_checked = vectors_checked
        self.counterexample = counterexample
        self.mismatched_outputs = mismatched_outputs or []

    def __bool__(self) -> bool:
        return self.equivalent

    def __repr__(self) -> str:
        if self.equivalent:
            kind = "exhaustively" if self.exhaustive else (
                f"over {self.vectors_checked} random vectors"
            )
            return f"EquivalenceResult(equivalent {kind})"
        return (
            f"EquivalenceResult(MISMATCH at {self.counterexample} "
            f"on {self.mismatched_outputs})"
        )


def check_equivalence(
    golden: Circuit,
    candidate: Circuit,
    *,
    max_exhaustive_inputs: int = 20,
    random_vectors: int = 2048,
    seed: int = 0,
    backend: str = "python",
    word_width: int = 64,
) -> EquivalenceResult:
    """Compare two circuits output-for-output.

    The circuits must share primary-input and output names (order may
    differ).  Up to ``max_exhaustive_inputs`` inputs the check is
    exhaustive via packed evaluation; beyond that, ``random_vectors``
    *distinct* seeded packed vectors are sampled (``vectors_checked``
    counts unique assignments).  A sample that would cover the whole
    input space is promoted to the exhaustive check.
    """
    if set(golden.inputs) != set(candidate.inputs):
        raise SimulationError(
            "circuits have different primary inputs: "
            f"{sorted(set(golden.inputs) ^ set(candidate.inputs))[:5]}"
        )
    if set(golden.outputs) != set(candidate.outputs):
        raise SimulationError(
            "circuits have different outputs: "
            f"{sorted(set(golden.outputs) ^ set(candidate.outputs))[:5]}"
        )
    inputs = golden.inputs
    outputs = golden.outputs
    width = len(inputs)

    sim_golden = LCCSimulator(golden, backend=backend,
                              word_width=word_width)
    sim_candidate = LCCSimulator(candidate, backend=backend,
                                 word_width=word_width)
    candidate_order = candidate.inputs

    exhaustive = width <= max_exhaustive_inputs or (
        width <= _SAMPLE_INDEX_WIDTH and (1 << width) <= random_vectors
    )
    lanes = word_width
    checked = 0

    def packed_batches():
        nonlocal checked
        if exhaustive:
            total = 1 << width
            for base in range(0, total, lanes):
                count = min(lanes, total - base)
                assignments = [base + j for j in range(count)]
                checked += count
                yield assignments
        else:
            draws = _sampled_assignments(
                random.Random(seed), width, random_vectors
            )
            for base in range(0, len(draws), lanes):
                chunk = draws[base:base + lanes]
                checked += len(chunk)
                yield chunk

    for assignments in packed_batches():
        # Pack: word for input k has bit j = assignment j's bit k.
        packed = {name: 0 for name in inputs}
        for lane, assignment in enumerate(assignments):
            for k, name in enumerate(inputs):
                packed[name] |= ((assignment >> k) & 1) << lane
        golden_out = sim_golden.evaluate_packed(
            [packed[n] for n in inputs]
        )
        candidate_out = sim_candidate.evaluate_packed(
            [packed[n] for n in candidate_order]
        )
        lane_mask = (1 << len(assignments)) - 1
        diff_union = 0
        for name in outputs:
            diff_union |= (
                (golden_out[name] ^ candidate_out[name]) & lane_mask
            )
        if not diff_union:
            continue
        lane = (diff_union & -diff_union).bit_length() - 1
        assignment = assignments[lane]
        counterexample = {
            name: (assignment >> k) & 1 for k, name in enumerate(inputs)
        }
        mismatched = [
            name for name in outputs
            if ((golden_out[name] ^ candidate_out[name]) >> lane) & 1
        ]
        return EquivalenceResult(
            False, exhaustive, checked, counterexample, mismatched
        )
    return EquivalenceResult(True, exhaustive, checked)
