"""Functional equivalence checking between two circuits.

A practical companion to the netlist transforms: after pruning,
constant propagation, or a hand edit, confirm the circuit still
computes the same outputs.  The checker exploits the same bit-parallel
trick as everything else in this library: the compiled zero-delay LCC
program evaluates ``word_width`` input vectors per step, so exhaustive
verification of a 20-input circuit costs ``2**20 / 64`` machine steps,
not ``2**20``.

- :func:`check_equivalence` — exhaustive when ``2**inputs`` fits the
  effort budget, seeded-random sampling otherwise; returns a
  counterexample on mismatch.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import SimulationError
from repro.lcc.zerodelay import LCCSimulator
from repro.netlist.circuit import Circuit

__all__ = ["EquivalenceResult", "check_equivalence"]


class EquivalenceResult:
    """Outcome of an equivalence check.

    ``equivalent`` is definitive when ``exhaustive`` is true; with
    sampling it means "no counterexample found in ``vectors_checked``
    vectors".  On mismatch, ``counterexample`` maps primary inputs to
    the offending assignment and ``mismatched_outputs`` names the
    outputs that differ there.
    """

    def __init__(
        self,
        equivalent: bool,
        exhaustive: bool,
        vectors_checked: int,
        counterexample: Optional[dict[str, int]] = None,
        mismatched_outputs: Optional[list[str]] = None,
    ) -> None:
        self.equivalent = equivalent
        self.exhaustive = exhaustive
        self.vectors_checked = vectors_checked
        self.counterexample = counterexample
        self.mismatched_outputs = mismatched_outputs or []

    def __bool__(self) -> bool:
        return self.equivalent

    def __repr__(self) -> str:
        if self.equivalent:
            kind = "exhaustively" if self.exhaustive else (
                f"over {self.vectors_checked} random vectors"
            )
            return f"EquivalenceResult(equivalent {kind})"
        return (
            f"EquivalenceResult(MISMATCH at {self.counterexample} "
            f"on {self.mismatched_outputs})"
        )


def check_equivalence(
    golden: Circuit,
    candidate: Circuit,
    *,
    max_exhaustive_inputs: int = 20,
    random_vectors: int = 2048,
    seed: int = 0,
    backend: str = "python",
    word_width: int = 64,
) -> EquivalenceResult:
    """Compare two circuits output-for-output.

    The circuits must share primary-input and output names (order may
    differ).  Up to ``max_exhaustive_inputs`` inputs the check is
    exhaustive via packed evaluation; beyond that, ``random_vectors``
    seeded packed vectors are sampled.
    """
    if set(golden.inputs) != set(candidate.inputs):
        raise SimulationError(
            "circuits have different primary inputs: "
            f"{sorted(set(golden.inputs) ^ set(candidate.inputs))[:5]}"
        )
    if set(golden.outputs) != set(candidate.outputs):
        raise SimulationError(
            "circuits have different outputs: "
            f"{sorted(set(golden.outputs) ^ set(candidate.outputs))[:5]}"
        )
    inputs = golden.inputs
    outputs = golden.outputs
    width = len(inputs)

    sim_golden = LCCSimulator(golden, backend=backend,
                              word_width=word_width)
    sim_candidate = LCCSimulator(candidate, backend=backend,
                                 word_width=word_width)
    candidate_order = candidate.inputs

    exhaustive = width <= max_exhaustive_inputs
    lanes = word_width
    checked = 0

    def packed_batches():
        nonlocal checked
        if exhaustive:
            total = 1 << width
            for base in range(0, total, lanes):
                count = min(lanes, total - base)
                assignments = [base + j for j in range(count)]
                checked += count
                yield assignments
        else:
            rng = random.Random(seed)
            remaining = random_vectors
            while remaining > 0:
                count = min(lanes, remaining)
                assignments = [
                    rng.getrandbits(width) for _ in range(count)
                ]
                checked += count
                remaining -= count
                yield assignments

    for assignments in packed_batches():
        # Pack: word for input k has bit j = assignment j's bit k.
        packed = {name: 0 for name in inputs}
        for lane, assignment in enumerate(assignments):
            for k, name in enumerate(inputs):
                packed[name] |= ((assignment >> k) & 1) << lane
        golden_out = sim_golden.evaluate_packed(
            [packed[n] for n in inputs]
        )
        candidate_out = sim_candidate.evaluate_packed(
            [packed[n] for n in candidate_order]
        )
        lane_mask = (1 << len(assignments)) - 1
        diff_union = 0
        for name in outputs:
            diff_union |= (
                (golden_out[name] ^ candidate_out[name]) & lane_mask
            )
        if not diff_union:
            continue
        lane = (diff_union & -diff_union).bit_length() - 1
        assignment = assignments[lane]
        counterexample = {
            name: (assignment >> k) & 1 for k, name in enumerate(inputs)
        }
        mismatched = [
            name for name in outputs
            if ((golden_out[name] ^ candidate_out[name]) >> lane) & 1
        ]
        return EquivalenceResult(
            False, exhaustive, checked, counterexample, mismatched
        )
    return EquivalenceResult(True, exhaustive, checked)
