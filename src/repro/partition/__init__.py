"""Static netlist partitioning for multi-core single-circuit runs.

The compiled techniques execute one straight-line program on one core;
this package splits the levelized combinational DAG statically at
compile time into balanced fanin-cone clusters, emits one independent
compiled program per cluster (Python or C backend), and executes the
clusters bulk-synchronously — a barrier per level *band*, exchanging
only cut-net values between bands.  Partitioned execution is
bit-identical to the monolithic program on every net.

- :mod:`repro.partition.clustering` — the deterministic partitioner.
- :mod:`repro.partition.codegen` — per-cluster program generation.
- :mod:`repro.partition.executor` — the barrier-synchronized runner.
"""

from repro.partition.clustering import (
    DEFAULT_BAND_LEVELS,
    Partitioning,
    effective_partitions,
    partition_circuit,
)
from repro.partition.codegen import (
    PartitionPlan,
    SegmentProgram,
    generate_partition_programs,
)
from repro.partition.executor import PartitionedSimulator

__all__ = [
    "DEFAULT_BAND_LEVELS",
    "Partitioning",
    "PartitionPlan",
    "PartitionedSimulator",
    "SegmentProgram",
    "effective_partitions",
    "generate_partition_programs",
    "partition_circuit",
]
