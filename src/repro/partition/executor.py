"""Bulk-synchronous execution of partitioned compiled programs.

:class:`PartitionedSimulator` runs the segment programs of a
:class:`~repro.partition.codegen.PartitionPlan` band by band: within a
band every segment is independent (its inputs were all settled in
earlier bands or come from the vector), so segments run concurrently
on a thread pool; a barrier at the end of each band merges the
segments' exported words into a shared net→column table, and only
those cut-net values flow between bands.  On the C backend the
compiled segment calls release the GIL, so bands genuinely occupy
multiple cores; on the Python backend the pool still exercises the
identical protocol (correctness axis) without speedup.

The whole *batch* rides through every segment call — one
``run_block``/``run_packed_block`` dispatch per segment per band — so
the barrier count is independent of the vector count.  Eligible 0/1
batches are pattern-packed exactly like the monolithic LCC path: the
lane words themselves travel through the exchange table (every segment
is lane-wise), and the scalar-identical raw words are reconstructed
with the same all-zeros fill-group rule as
:func:`repro.codegen.packing.packed_apply`.

Bit-identity contract: for every net, every vector, both backends and
all of scalar/batched/packed, the values produced here equal the
monolithic :class:`repro.lcc.zerodelay.LCCSimulator`'s.  Masking each
exported word cannot diverge from the monolithic program's unmasked
intermediates because every emitted operator is lane-wise — the low
``word_width`` bits of any result depend only on the low bits of its
operands.

With an effective partition count of 1 (including ``partitions=1``
and single-gate circuits) the plan holds one segment covering the
whole circuit and the simulator takes a monolithic fast path: no
thread pool is created and no barrier or exchange runs.

Telemetry: spans are opened by the calling thread only
(``partition.run`` around the band sweep, ``partition.exchange``
around merges); worker threads run compiled code and touch at most
GIL-atomic counters, as the telemetry module is not thread-safe.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Mapping, Optional, Sequence

from repro import telemetry
from repro.codegen.packing import pack_patterns, select_tiles
from repro.codegen.probes import ProbeRuntime, ProbeSpec
from repro.codegen.runtime import compile_program
from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.partition.clustering import (
    DEFAULT_BAND_LEVELS,
    partition_circuit,
)
from repro.partition.codegen import (
    PartitionPlan,
    SegmentProgram,
    generate_partition_programs,
)

__all__ = ["PartitionedSimulator"]


def _popcount(value: int) -> int:
    return bin(value).count("1")


class _PIProbeCounter:
    """Host-side toggle counting for probed primary inputs.

    Primary inputs are driven by no segment, so no compiled counter
    observes them; the executor counts them from the very lane words
    it feeds the exchange table, with the same previous-value chain
    the compiled counters use.  Zero-delay inputs cannot glitch, so
    functional toggles equal total toggles here too.
    """

    def __init__(self, nets: Sequence[str], inputs: Sequence[str]) -> None:
        self.slots = [(net, inputs.index(net)) for net in nets]
        self.counts = {net: 0 for net in nets}
        self._pv = {net: 0 for net in nets}
        self._reported = {net: 0 for net in nets}

    def add_scalar(self, words: Sequence[Sequence[int]]) -> None:
        for net, k in self.slots:
            pv = self._pv[net]
            count = 0
            for word in words:
                value = word[k] & 1
                count += value ^ pv
                pv = value
            self._pv[net] = pv
            self.counts[net] += count

    def add_groups(
        self, groups: Sequence[Sequence[int]], lane_counts: Sequence[int]
    ) -> None:
        for net, k in self.slots:
            pv = self._pv[net]
            count = 0
            for g, lanes in enumerate(lane_counts):
                if not lanes:
                    continue
                word = groups[g][k]
                en = (1 << lanes) - 1
                count += _popcount((word ^ ((word << 1) | pv)) & en)
                pv = (word >> (lanes - 1)) & 1
            self._pv[net] = pv
            self.counts[net] += count

    def seed(self, word: Sequence[int]) -> None:
        for net, k in self.slots:
            self._pv[net] = word[k] & 1
            self.counts[net] = 0
            self._reported[net] = 0

    def drain_telemetry(self) -> int:
        """Emit per-net deltas; return the total new toggles."""
        total = 0
        for net, _k in self.slots:
            delta = self.counts[net] - self._reported[net]
            if delta:
                telemetry.counter(f"activity.net.{net}.toggles", delta)
                self._reported[net] = self.counts[net]
                total += delta
        return total


class PartitionedSimulator:
    """Barrier-synchronized multi-partition zero-delay simulator.

    Mirrors the :class:`~repro.lcc.zerodelay.LCCSimulator` observation
    API — ``evaluate``, ``evaluate_all_nets``, ``apply_vectors``,
    ``run_batch`` — with bit-identical results.  ``partitions`` is the
    requested cluster count (clamped to the gate count);
    ``partition_workers`` bounds the thread pool (default: one thread
    per partition).  ``packed`` follows the LCC policy: ``"auto"``
    packs eligible 0/1 batches, ``False`` forces scalar, ``True``
    requires packing.
    """

    def __init__(
        self,
        circuit: Circuit,
        *,
        partitions: int = 2,
        partition_workers: Optional[int] = None,
        backend: str = "python",
        word_width: int = 32,
        band_levels: int = DEFAULT_BAND_LEVELS,
        packed: bool | str = "auto",
        tiles: "int | str" = 1,
        probes=None,
    ) -> None:
        if packed not in (True, False, "auto"):
            raise SimulationError(
                f"packed must be True, False or 'auto': {packed!r}"
            )
        if tiles != "auto":
            tiles = int(tiles)
            if tiles < 1:
                raise SimulationError(f"tiles must be >= 1: {tiles}")
        self.probe_spec = ProbeSpec.coerce(probes)
        if self.probe_spec is not None:
            if tiles not in (1, "auto"):
                raise SimulationError(
                    "probes chain consecutive packed groups through the "
                    "per-net previous-value bit; tiled execution "
                    "interleaves the group order, so tiles > 1 is "
                    "unavailable with probes"
                )
            tiles = 1
        self.circuit = circuit
        self.backend = backend
        self.word_width = word_width
        self.word_mask = (1 << word_width) - 1
        self.packed = packed
        self.tiles = tiles
        self.partitioning = partition_circuit(
            circuit, partitions, band_levels=band_levels
        )
        self.num_partitions = self.partitioning.num_partitions
        if partition_workers is not None and partition_workers < 1:
            raise SimulationError(
                f"partition_workers must be >= 1: {partition_workers}"
            )
        self.workers = min(
            partition_workers if partition_workers is not None
            else self.num_partitions,
            self.num_partitions,
        )
        self.plan = generate_partition_programs(
            circuit, self.partitioning, word_width=word_width,
            observe="cut", probes=self.probe_spec,
        )
        self._compile(self.plan)
        self._probe_runtimes: Optional[list] = None
        self._pi_probes: Optional[_PIProbeCounter] = None
        self._probe_vectors = 0
        self._probe_vectors_reported = 0
        if self.probe_spec is not None:
            self._probe_runtimes = [
                (
                    segment,
                    ProbeRuntime(
                        segment.probe_plan, segment.program,
                        emit_vectors=False,
                    ),
                )
                for segment in self.plan.segments
                if segment.probe_plan is not None
            ]
            input_set = set(circuit.inputs)
            self._pi_probes = _PIProbeCounter(
                [
                    net for net in self.probe_spec.resolve(circuit)
                    if net in input_set
                ],
                circuit.inputs,
            )
        #: Monolithic fast path: a single segment needs no barriers, no
        #: exchanges and no pool — the flag is the edge-case tests' probe.
        self.monolithic = len(self.plan.segments) <= 1
        self._plan_all: Optional[PartitionPlan] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._inputs = circuit.inputs
        self._outputs = circuit.outputs
        telemetry.gauge("partition.segments", len(self.plan.segments))

    def _compile(self, plan: PartitionPlan) -> None:
        for segment in plan.segments:
            segment.machine = compile_program(segment.program, self.backend)

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-partition",
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "PartitionedSimulator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=False)

    # ------------------------------------------------------------------
    # the band sweep
    # ------------------------------------------------------------------
    @staticmethod
    def _run_segment(
        segment: SegmentProgram,
        table: Mapping[str, list[int]],
        count: int,
    ) -> list[list[int]]:
        """One segment over the whole batch: gather → run → rows.

        The gathered input words are already masked (vector entry and
        every previous export mask), so the machine's pre-masked batch
        path applies.
        """
        columns = [table[name] for name in segment.inputs]
        batch = [[column[j] for column in columns] for j in range(count)]
        return segment.machine.step_many(batch, masked=True)

    def _sweep(
        self, plan: PartitionPlan, table: dict[str, list[int]], count: int
    ) -> None:
        """Run every band over ``table`` columns of ``count`` words.

        ``table`` enters holding the primary-input columns and exits
        holding every exported net's column as well.
        """
        if self.monolithic:
            # Single segment: straight through, no barriers.
            segment = plan.segments[0] if plan.segments else None
            if segment is not None:
                rows = self._run_segment(segment, table, count)
                for i, net_name in enumerate(segment.exports):
                    table[net_name] = [row[i] for row in rows]
            return
        telemetry.counter("partition.batches")
        with telemetry.span(
            "partition.run", circuit=self.circuit.name, vectors=count
        ):
            for band_segments in plan.bands:
                if not band_segments:
                    continue
                if self.workers > 1 and len(band_segments) > 1:
                    pool = self._ensure_pool()
                    results = list(pool.map(
                        lambda seg: self._run_segment(seg, table, count),
                        band_segments,
                    ))
                else:
                    results = [
                        self._run_segment(seg, table, count)
                        for seg in band_segments
                    ]
                with telemetry.span("partition.exchange"):
                    moved = 0
                    for segment, rows in zip(band_segments, results):
                        for i, net_name in enumerate(segment.exports):
                            table[net_name] = [row[i] for row in rows]
                        moved += len(segment.exports) * count
                    telemetry.counter("partition.exchanged_words", moved)

    def _segment_machine(self, segment: SegmentProgram, tiles: int):
        """The segment's K-tile machine (lazily compiled, memoized)."""
        if tiles == 1:
            return segment.machine
        cache = segment.tiled_machines
        if cache is None:
            cache = {}
            segment.tiled_machines = cache
        machine = cache.get(tiles)
        if machine is None:
            machine = compile_program(
                segment.program, self.backend, tiles=tiles
            )
            cache[tiles] = machine
        return machine

    def _run_segment_tiled(
        self,
        segment: SegmentProgram,
        table: Mapping[str, list[int]],
        passes: int,
        tiles: int,
    ) -> list[list[int]]:
        """One segment over a tiled batch: slot-major gather → run.

        The exchange table still holds one word per packed group; pass
        ``p`` of the K-tile machine consumes groups ``p*K .. p*K+K-1``
        with input slot ``s`` tile ``t`` at row index ``s*K + t``.
        """
        machine = self._segment_machine(segment, tiles)
        columns = [table[name] for name in segment.inputs]
        batch = [
            [
                column[p * tiles + t]
                for column in columns
                for t in range(tiles)
            ]
            for p in range(passes)
        ]
        return machine.step_many(batch, masked=True)

    def _sweep_tiled(
        self,
        plan: PartitionPlan,
        table: dict[str, list[int]],
        passes: int,
        tiles: int,
    ) -> None:
        """Band sweep with K-tile segment machines.

        Identical protocol to :meth:`_sweep`; only the per-segment
        gather/scatter honors the slot-major tiled layout, so the
        exported columns stay plain per-group packed words and travel
        the exchange table unchanged.
        """
        def scatter(segment: SegmentProgram, rows) -> int:
            for i, net_name in enumerate(segment.exports):
                table[net_name] = [
                    rows[p][i * tiles + t]
                    for p in range(passes)
                    for t in range(tiles)
                ]
            return len(segment.exports) * passes * tiles

        if self.monolithic:
            segment = plan.segments[0] if plan.segments else None
            if segment is not None:
                scatter(
                    segment,
                    self._run_segment_tiled(segment, table, passes, tiles),
                )
            return
        telemetry.counter("partition.batches")
        with telemetry.span(
            "partition.run", circuit=self.circuit.name,
            vectors=passes * tiles,
        ):
            for band_segments in plan.bands:
                if not band_segments:
                    continue
                if self.workers > 1 and len(band_segments) > 1:
                    pool = self._ensure_pool()
                    results = list(pool.map(
                        lambda seg: self._run_segment_tiled(
                            seg, table, passes, tiles
                        ),
                        band_segments,
                    ))
                else:
                    results = [
                        self._run_segment_tiled(seg, table, passes, tiles)
                        for seg in band_segments
                    ]
                with telemetry.span("partition.exchange"):
                    moved = 0
                    for segment, rows in zip(band_segments, results):
                        moved += scatter(segment, rows)
                    telemetry.counter("partition.exchanged_words", moved)

    def _input_table(
        self, columns_of: Sequence[Sequence[int]]
    ) -> dict[str, list[int]]:
        """Seed the exchange table with masked primary-input columns."""
        mask = self.word_mask
        return {
            name: [words[k] & mask for words in columns_of]
            for k, name in enumerate(self._inputs)
        }

    # ------------------------------------------------------------------
    # observation API (LCC-compatible)
    # ------------------------------------------------------------------
    def _vector_list(
        self, vector: Mapping[str, int] | Sequence[int]
    ) -> list[int]:
        if isinstance(vector, Mapping):
            missing = [n for n in self._inputs if n not in vector]
            if missing:
                raise SimulationError(f"vector missing inputs: {missing}")
            return [vector[n] for n in self._inputs]
        values = list(vector)
        if len(values) != len(self._inputs):
            raise SimulationError(
                f"vector has {len(values)} values, expected "
                f"{len(self._inputs)}"
            )
        return values

    def evaluate(
        self, vector: Mapping[str, int] | Sequence[int]
    ) -> dict[str, int]:
        """Settle on one vector; returns monitored output values."""
        words = self._apply_scalar([self._vector_list(vector)])[0]
        return {
            name: value & 1
            for name, value in zip(self._outputs, words)
        }

    def evaluate_all_nets(
        self, vector: Mapping[str, int] | Sequence[int]
    ) -> dict[str, int]:
        """Settle and return every net's value.

        Uses a lazily built ``observe="all"`` plan whose segments
        export every driven net; primary inputs come straight from the
        vector.  Net order matches ``circuit.nets`` insertion order,
        like the monolithic engine's state decode.
        """
        if self._plan_all is None:
            self._plan_all = generate_partition_programs(
                self.circuit, self.partitioning,
                word_width=self.word_width, observe="all",
            )
            self._compile(self._plan_all)
        words = [self._vector_list(vector)]
        table = self._input_table(words)
        self._sweep(self._plan_all, table, 1)
        return {
            net_name: table[net_name][0] & 1
            for net_name in self.circuit.nets
        }

    def _packable(self, words: list[list[int]]) -> bool:
        if self.packed is False:
            return False
        if not self._inputs:
            if self.packed is True:
                raise SimulationError(
                    "packed=True requires at least one primary input"
                )
            return False
        eligible = all(
            value in (0, 1) for word in words for value in word
        )
        if not eligible and self.packed is True:
            raise SimulationError(
                "packed=True requires plain 0/1 vectors (one lane each)"
            )
        return eligible

    def apply_vectors(
        self, vectors: Sequence[Mapping[str, int] | Sequence[int]]
    ) -> list[list[int]]:
        """Settle a batch; returns per-vector raw output words.

        Bit-identical to the monolithic
        :meth:`repro.lcc.zerodelay.LCCSimulator.apply_vectors` —
        including the exact raw (unreduced) words of both its packed
        and scalar paths.
        """
        words = [self._vector_list(vector) for vector in vectors]
        if not words:
            return []
        packable = self._packable(words)
        telemetry.counter(
            "partition.packed_batches" if packable
            else "partition.fallback.scalar"
        )
        runner = self._apply_packed if packable else self._apply_scalar
        if self._probe_runtimes:
            # Chunked so no segment's compiled counter can wrap
            # between drains (every runtime shares the same cadence).
            out: list[list[int]] = []
            reference = self._probe_runtimes[0][1]
            for start, length in reference.chunk_vectors(len(words)):
                out.extend(runner(words[start:start + length]))
            return out
        return runner(words)

    def _note_probes(self, count: int) -> None:
        """Tally ``count`` vectors on every segment's probe runtime."""
        assert self._probe_runtimes is not None
        for segment, runtime in self._probe_runtimes:
            runtime.note_vectors(segment.machine, count)
        self._probe_vectors += count

    def _apply_scalar(self, words: list[list[int]]) -> list[list[int]]:
        table = self._input_table(words)
        if self._probe_runtimes is not None:
            for word in words:
                for value in word:
                    if value not in (0, 1):
                        raise SimulationError(
                            "probed runs take plain 0/1 vectors; the "
                            "counters chain lanes as consecutive "
                            "vectors, so pre-packed multi-bit words "
                            "are not countable"
                        )
            table["__probe_en"] = [1] * len(words)
        self._sweep(self.plan, table, len(words))
        if self._probe_runtimes is not None:
            assert self._pi_probes is not None
            self._pi_probes.add_scalar(words)
            self._note_probes(len(words))
        columns = [table[name] for name in self._outputs]
        return [
            [column[j] for column in columns]
            for j in range(len(words))
        ]

    def _packed_tiles(self, num_groups: int) -> int:
        """Tile count for a packed batch of ``num_groups`` groups."""
        if self.tiles == "auto":
            tiles = select_tiles(
                num_groups * self.word_width, self.word_width,
                backend=self.backend,
            )
        else:
            tiles = self.tiles
        return max(1, min(tiles, num_groups))

    def _apply_packed(self, words: list[list[int]]) -> list[list[int]]:
        """Pattern-packed batch with exact scalar-word reconstruction.

        The packed lane words flow through the same band sweep (every
        segment program is lane-wise); an appended all-zeros group
        supplies the fill word, mirroring
        :func:`repro.codegen.packing.packed_apply` exactly.
        """
        groups, lane_counts = pack_patterns(words, self.word_width)
        groups.append([0] * len(self._inputs))
        tiles = self._packed_tiles(len(groups))
        if self._probe_runtimes is not None:
            # tiles is forced to 1 under probes (constructor), so the
            # tiled branch below never runs with an EN column pending.
            table = self._input_table(groups)
            table["__probe_en"] = [
                (1 << lanes) - 1 for lanes in lane_counts
            ] + [0]
            self._sweep(self.plan, table, len(groups))
            assert self._pi_probes is not None
            self._pi_probes.add_groups(groups, lane_counts)
            self._note_probes(len(words))
        elif tiles > 1:
            # Pad to whole passes with all-zeros groups; they emit the
            # same words as the fill group, so column[-1] stays the fill.
            while len(groups) % tiles:
                groups.append([0] * len(self._inputs))
            table = self._input_table(groups)
            with telemetry.span("pack.tile", tiles=tiles):
                self._sweep_tiled(
                    self.plan, table, len(groups) // tiles, tiles
                )
            telemetry.counter("pack.tile.batches")
            telemetry.counter("pack.tile.vectors", len(words))
        else:
            table = self._input_table(groups)
            self._sweep(self.plan, table, len(groups))
        columns = [table[name] for name in self._outputs]
        fill = [column[-1] for column in columns]
        high = self.word_mask ^ 1
        results: list[list[int]] = []
        for g, lanes in enumerate(lane_counts):
            group_words = [column[g] for column in columns]
            for j in range(lanes):
                results.append([
                    ((word >> j) & 1) | (fill[o] & high)
                    for o, word in enumerate(group_words)
                ])
        return results

    # ------------------------------------------------------------------
    # checksum folding (interpreted-simulator compatible)
    # ------------------------------------------------------------------
    @property
    def _fold_bits(self) -> int:
        return 2 * self.word_width - 2

    def _fold(self, folded: int, bit: int) -> int:
        bits = self._fold_bits
        folded = ((folded << 1) | (folded >> (bits - 1))) & ((1 << bits) - 1)
        return folded ^ bit

    def run_batch(self, vectors: Sequence[Sequence[int]]) -> int:
        """Simulate many vectors; fold outputs to the LCC checksum."""
        checksum = 0
        for out in self.apply_vectors(vectors):
            folded = 0
            for value in out:
                folded = self._fold(folded, value & 1)
            checksum ^= folded
        return checksum

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------
    def probe_reset(
        self, vector: Mapping[str, int] | Sequence[int] | None = None
    ) -> None:
        """Seed the toggle baseline from one settled (uncounted) vector.

        Mirrors :meth:`repro.lcc.zerodelay.LCCSimulator.probe_reset`:
        settles ``vector`` (default all zeros) through every segment,
        keeps the resulting per-net values as the previous-value bits,
        and zeroes the counters.
        """
        if self._probe_runtimes is None:
            raise SimulationError(
                "simulator was built without probes=; nothing to seed"
            )
        if vector is None:
            vector = [0] * len(self._inputs)
        word = self._vector_list(vector)
        self._apply_scalar([word])
        for segment, runtime in self._probe_runtimes:
            runtime.discard(segment.machine)
        assert self._pi_probes is not None
        self._pi_probes.seed(word)
        self._probe_vectors = 0
        self._probe_vectors_reported = 0

    def activity_report(self):
        """Merge per-segment counters into one ActivityReport.

        Each driven net belongs to exactly one segment, so the
        segment-local counters are disjoint; primary inputs come from
        the executor's host-side chain.  Bit-identical to the
        monolithic instrumented engine over the same vectors.  (Whole
        -state observation via ``evaluate_all_nets`` runs an
        uninstrumented plan and is not counted.)
        """
        from repro.activity import ActivityReport

        if self._probe_runtimes is None:
            raise SimulationError(
                "simulator was built without probes=; no activity "
                "counters to report"
            )
        merged: dict[str, int] = {}
        for segment, runtime in self._probe_runtimes:
            runtime.drain(segment.machine)
            merged.update(runtime.toggles)
        assert self._pi_probes is not None
        merged.update(self._pi_probes.counts)
        if telemetry.enabled():
            pi_delta = self._pi_probes.drain_telemetry()
            if pi_delta:
                telemetry.counter("activity.toggles", pi_delta)
                telemetry.counter("activity.functional", pi_delta)
            vectors_delta = (
                self._probe_vectors - self._probe_vectors_reported
            )
            if vectors_delta:
                telemetry.counter("activity.vectors", vectors_delta)
                self._probe_vectors_reported = self._probe_vectors
        assert self.probe_spec is not None
        toggles = {
            net: merged[net]
            for net in self.probe_spec.resolve(self.circuit)
        }
        return ActivityReport(toggles, dict(toggles), self._probe_vectors)
