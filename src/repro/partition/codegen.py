"""Per-cluster compiled program generation.

Each non-empty ``(band, worker)`` segment of a
:class:`~repro.partition.clustering.Partitioning` becomes one
independent straight-line program in the zero-delay LCC shape
(:mod:`repro.lcc.zerodelay`): one variable per net, one statement per
gate in ``(level, name)`` order, inputs read from vector slots,
exports emitted as masked words.  A segment's vector slots carry its
*external* nets — primary inputs and values produced by other
segments — in sorted order; its emitted outputs are the driven nets
other segments (or the caller) need: the cut nets it produces plus any
primary outputs, or every driven net when ``observe="all"`` (the
whole-state mode behind ``evaluate_all_nets`` and steady-state
seeding).

Segment programs contain only ``&``/``|``/``^``/``~`` and never read a
variable before writing it, so each compiles in ``"full"`` packing
mode — the executor drives the same machines scalar or pattern-packed,
on either backend.
"""

from __future__ import annotations

from typing import Optional

from repro import telemetry
from repro.codegen.gates import gate_expression
from repro.codegen.naming import NameAllocator
from repro.codegen.probes import ProbeSpec, instrument_lcc_program
from repro.codegen.program import Assign, Emit, Input, Program, Var
from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.partition.clustering import Partitioning

__all__ = ["PartitionPlan", "SegmentProgram", "generate_partition_programs"]


class SegmentProgram:
    """One cluster's compiled-program recipe.

    ``inputs`` lists the external nets in vector-slot order;
    ``exports`` the emitted nets in output order.  ``machine`` is
    filled in by the executor after compilation; ``tiled_machines``
    holds the executor's lazily compiled K-tile variants, keyed by K.
    ``probe_plan`` is the segment's toggle-counter lowering when the
    plan was generated with ``probes=`` and the segment drives at
    least one counted net (``None`` otherwise).
    """

    __slots__ = ("band", "worker", "program", "inputs", "exports",
                 "num_gates", "machine", "tiled_machines", "probe_plan")

    def __init__(
        self,
        band: int,
        worker: int,
        program: Program,
        inputs: list[str],
        exports: list[str],
        num_gates: int,
    ) -> None:
        self.band = band
        self.worker = worker
        self.program = program
        self.inputs = inputs
        self.exports = exports
        self.num_gates = num_gates
        self.machine = None
        self.tiled_machines = None
        self.probe_plan = None

    def __repr__(self) -> str:
        return (
            f"SegmentProgram(band {self.band}, worker {self.worker}: "
            f"{self.num_gates} gates, {len(self.inputs)} in, "
            f"{len(self.exports)} out)"
        )


class PartitionPlan:
    """Every segment program of one partitioning, grouped by band."""

    def __init__(
        self,
        circuit: Circuit,
        partitioning: Partitioning,
        segments: list[SegmentProgram],
        *,
        word_width: int,
        observe: str,
    ) -> None:
        self.circuit = circuit
        self.partitioning = partitioning
        self.segments = segments
        self.word_width = word_width
        self.observe = observe
        self.bands: list[list[SegmentProgram]] = [
            [] for _ in range(partitioning.num_bands)
        ]
        for segment in segments:
            self.bands[segment.band].append(segment)

    def __repr__(self) -> str:
        return (
            f"PartitionPlan({self.circuit.name!r}: "
            f"{len(self.segments)} segments over "
            f"{len(self.bands)} bands, observe={self.observe!r})"
        )


def generate_partition_programs(
    circuit: Circuit,
    partitioning: Partitioning,
    *,
    word_width: int = 32,
    observe: str = "cut",
    probes: Optional[ProbeSpec] = None,
) -> PartitionPlan:
    """Generate one program per non-empty segment of ``partitioning``.

    ``observe="cut"`` exports only what must cross the barrier (cut
    nets) or reach the caller (primary outputs); ``observe="all"``
    exports every driven net, so the merged exchange table holds the
    settled value of the entire circuit.

    ``probes`` compiles per-net toggle counters into every segment
    that drives a counted net (each driven net belongs to exactly one
    segment, so segment-local counters sum to the monolithic ones);
    primary-input nets are driven by no segment and are counted by
    the executor host-side.
    """
    if observe not in ("cut", "all"):
        raise SimulationError(
            f"observe must be 'cut' or 'all': {observe!r}"
        )
    with telemetry.span(
        "emit", technique="partition", circuit=circuit.name
    ):
        return _generate(circuit, partitioning, word_width, observe,
                         probes)


def _generate(
    circuit: Circuit,
    partitioning: Partitioning,
    word_width: int,
    observe: str,
    probes: Optional[ProbeSpec],
) -> PartitionPlan:
    assignment = partitioning.assignment
    cut = set(partitioning.cut_nets)
    probed = set(probes.resolve(circuit)) if probes is not None else set()
    outputs = set(circuit.outputs)
    segments: list[SegmentProgram] = []
    for (band, worker), gate_names in partitioning.segments.items():
        gates = [circuit.gates[name] for name in gate_names]
        driven = {gate.output for gate in gates}
        external = sorted({
            in_net
            for gate in gates
            for in_net in gate.inputs
            if in_net not in driven
        })
        exports = sorted(
            net for net in driven
            if observe == "all" or net in cut or net in outputs
        )
        program = Program(
            f"part_{circuit.name}_b{band}w{worker}",
            word_width=word_width,
            inputs=external,
            mask_assignments=False,
        )
        names = NameAllocator()
        for net_name in external:
            program.declare(names.get(net_name))
        for gate in gates:
            program.declare(names.get(gate.output))
        for slot, net_name in enumerate(external):
            program.init.append(Assign(names.get(net_name), Input(slot)))
        for gate in gates:
            operands = [Var(names.get(i)) for i in gate.inputs]
            program.body.append(
                Assign(names.get(gate.output),
                       gate_expression(gate.gate_type, operands))
            )
        for net_name in exports:
            program.output.append(
                Emit(Var(names.get(net_name)), (net_name,))
            )
        program.validate()
        segment = SegmentProgram(
            band, worker, program, external, exports, len(gates)
        )
        seg_nets = [n for n in circuit.nets if n in driven and n in probed]
        if probes is not None and seg_nets:
            segment.probe_plan = instrument_lcc_program(
                program, circuit, probes,
                nets=seg_nets,
                net_vars={n: names.get(n) for n in seg_nets},
            )
            # Keep the gather list aligned with the program's new
            # occupancy input; the executor fills this table column.
            segment.inputs = external + ["__probe_en"]
        segments.append(segment)
    return PartitionPlan(
        circuit, partitioning, segments,
        word_width=word_width, observe=observe,
    )
