"""Deterministic level-band clustering of the combinational DAG.

The partitioner answers one question: which gate runs on which worker,
and when?  The answer has to respect data dependencies without a
runtime scheduler, so it is built entirely from the static topology
(:func:`repro.analysis.levelize.levelize`):

1. **Bands.**  Gate levels are chunked into fixed *level bands* of
   ``band_levels`` consecutive levels.  A gate at level ``l`` only
   reads nets settled at levels ``< l``, so a band may only read
   values produced in earlier bands — or inside itself, which step 2
   resolves.
2. **Clusters.**  Within a band, gates connected by an intra-band
   driver→reader net must execute in one sequential program (the
   reader needs the driver's value mid-band).  The clusters are the
   connected components of that intra-band dependency relation; each
   component is a bundle of overlapping fanin cones.
3. **Assignment.**  Components are placed on ``partitions`` workers by
   longest-processing-time (LPT) scheduling: largest component first,
   onto the least-loaded worker.  Ties prefer the worker that already
   owns the most of the component's external producers (fanin-cone
   affinity, which shrinks the cut), then the lowest worker index.

Every step is a pure function of the circuit — sorted iteration
orders, no RNG, no hashing of ids — so the same circuit always yields
the same assignment, in any process, under any start method.  The
:meth:`Partitioning.fingerprint` digest makes that property testable.

A *cut net* is a driven net read by a segment other than its
producer's; only cut-net values (plus primary outputs) cross the
per-band barrier at run time.  Primary inputs are broadcast from the
vector and are never counted as cut.
"""

from __future__ import annotations

import hashlib
import json

from repro import telemetry
from repro.analysis.levelize import levelize
from repro.errors import SimulationError
from repro.netlist.circuit import Circuit

__all__ = [
    "DEFAULT_BAND_LEVELS",
    "Partitioning",
    "effective_partitions",
    "partition_circuit",
]

#: Gate levels per barrier band.  Wide enough that deep circuits (c6288
#: is ~120 levels) take a dozen barriers rather than one per level,
#: narrow enough that a band's components still split across workers.
DEFAULT_BAND_LEVELS = 8


def effective_partitions(circuit: Circuit, partitions: int) -> int:
    """Clamp a requested partition count to what the circuit supports.

    More partitions than gates cannot all receive work; the count is
    clamped to the gate count (and to at least 1, so a gate-free
    circuit still yields a well-formed single-partition plan).
    """
    if partitions < 1:
        raise SimulationError(f"partitions must be >= 1: {partitions}")
    return max(1, min(partitions, len(circuit.gates)))


class Partitioning:
    """A static gate→(band, worker) assignment with its cut analysis.

    Attributes
    ----------
    num_partitions:
        Effective worker count (the requested count, clamped).
    band_levels:
        Gate levels per band.
    bands:
        ``(lo, hi)`` inclusive gate-level range per band.
    assignment:
        ``gate name -> (band, worker)``.
    segments:
        ``(band, worker) -> gate names`` in evaluation order
        (``(level, name)``), keyed in band-major order; only non-empty
        segments appear.
    cut_nets:
        Sorted driven nets read outside their producer's segment.
    """

    def __init__(
        self,
        circuit: Circuit,
        *,
        num_partitions: int,
        requested_partitions: int,
        band_levels: int,
        bands: list[tuple[int, int]],
        assignment: dict[str, tuple[int, int]],
        segments: dict[tuple[int, int], list[str]],
        cut_nets: list[str],
    ) -> None:
        self.circuit = circuit
        self.num_partitions = num_partitions
        self.requested_partitions = requested_partitions
        self.band_levels = band_levels
        self.bands = bands
        self.assignment = assignment
        self.segments = segments
        self.cut_nets = cut_nets

    @property
    def num_bands(self) -> int:
        return len(self.bands)

    @property
    def num_segments(self) -> int:
        return len(self.segments)

    def stats(self) -> dict:
        """Cut-size and balance statistics (the benchmark snapshot)."""
        driven = sum(
            1 for net in self.circuit.nets.values()
            if net.driver is not None
        )
        worker_gates = [0] * self.num_partitions
        band_gates = [0] * self.num_bands
        for (band, worker), gates in self.segments.items():
            worker_gates[worker] += len(gates)
            band_gates[band] += len(gates)
        return {
            "num_gates": len(self.circuit.gates),
            "requested_partitions": self.requested_partitions,
            "num_partitions": self.num_partitions,
            "band_levels": self.band_levels,
            "num_bands": self.num_bands,
            "num_segments": self.num_segments,
            "cut_nets": len(self.cut_nets),
            "cut_fraction": (
                len(self.cut_nets) / driven if driven else 0.0
            ),
            "worker_gates": worker_gates,
            "band_gates": band_gates,
        }

    def fingerprint(self) -> str:
        """SHA-256 over the canonical assignment (determinism probe)."""
        payload = json.dumps(
            {
                "circuit": self.circuit.name,
                "bands": self.bands,
                "assignment": sorted(self.assignment.items()),
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def __repr__(self) -> str:
        return (
            f"Partitioning({self.circuit.name!r}: "
            f"{self.num_partitions} partitions, {self.num_bands} bands, "
            f"{len(self.cut_nets)} cut nets)"
        )


def partition_circuit(
    circuit: Circuit,
    partitions: int,
    *,
    band_levels: int = DEFAULT_BAND_LEVELS,
) -> Partitioning:
    """Partition ``circuit`` into ``partitions`` balanced clusters."""
    if band_levels < 1:
        raise SimulationError(f"band_levels must be >= 1: {band_levels}")
    with telemetry.span(
        "partition.cut", circuit=circuit.name, partitions=partitions
    ) as span:
        partitioning = _partition(circuit, partitions, band_levels)
        span.annotate(
            cut_nets=len(partitioning.cut_nets),
            bands=partitioning.num_bands,
        )
        telemetry.gauge("partition.cut_nets", len(partitioning.cut_nets))
        telemetry.gauge("partition.bands", partitioning.num_bands)
        return partitioning


def _partition(
    circuit: Circuit, partitions: int, band_levels: int
) -> Partitioning:
    effective = effective_partitions(circuit, partitions)
    levels = levelize(circuit)
    gate_levels = levels.gate_levels
    gate_names = sorted(circuit.gates)
    if effective == 1 or not gate_names:
        # Monolithic plan: one band spanning every level, no cuts.  The
        # executor recognizes the single segment and runs it without
        # any barrier machinery.
        max_level = max(gate_levels.values(), default=0)
        assignment = {name: (0, 0) for name in gate_names}
        segments = {}
        if gate_names:
            segments[(0, 0)] = sorted(
                gate_names, key=lambda n: (gate_levels[n], n)
            )
        return Partitioning(
            circuit,
            num_partitions=1,
            requested_partitions=partitions,
            band_levels=band_levels,
            bands=[(0, max_level)],
            assignment=assignment,
            segments=segments,
            cut_nets=[],
        )

    # Band k covers gate levels [k*b + 1, (k+1)*b]; level-0 gates
    # (constants) join band 0.
    def band_of(level: int) -> int:
        return 0 if level <= 0 else (level - 1) // band_levels

    max_level = max(gate_levels.values())
    num_bands = band_of(max_level) + 1
    bands = [(0, band_levels)] + [
        (b * band_levels + 1, (b + 1) * band_levels)
        for b in range(1, num_bands)
    ]
    band_members: list[list[str]] = [[] for _ in range(num_bands)]
    for name in gate_names:
        band_members[band_of(gate_levels[name])].append(name)

    assignment: dict[str, tuple[int, int]] = {}
    loads = [0] * effective
    for band_index, members in enumerate(band_members):
        if not members:
            continue
        components = _band_components(circuit, members)
        # LPT with fanin-cone affinity: biggest component first, least
        # loaded worker, ties broken toward the worker owning the most
        # external producers, then the lowest index.
        components.sort(key=lambda gates: (-len(gates), gates[0]))
        for gates in components:
            producers = _external_producers(circuit, gates)
            best = min(range(effective), key=lambda w: (
                loads[w],
                -sum(
                    1 for p in producers
                    if assignment.get(p, (None, None))[1] == w
                ),
                w,
            ))
            loads[best] += len(gates)
            for gate_name in gates:
                assignment[gate_name] = (band_index, best)

    segments: dict[tuple[int, int], list[str]] = {}
    for name in gate_names:
        segments.setdefault(assignment[name], []).append(name)
    segments = {
        key: sorted(segments[key], key=lambda n: (gate_levels[n], n))
        for key in sorted(segments)
    }

    cut: set[str] = set()
    for gate in circuit.gates.values():
        seg = assignment[gate.name]
        for in_net in gate.inputs:
            driver = circuit.nets[in_net].driver
            if driver is not None and assignment[driver] != seg:
                cut.add(in_net)

    return Partitioning(
        circuit,
        num_partitions=effective,
        requested_partitions=partitions,
        band_levels=band_levels,
        bands=bands,
        assignment=assignment,
        segments=segments,
        cut_nets=sorted(cut),
    )


def _band_components(
    circuit: Circuit, members: list[str]
) -> list[list[str]]:
    """Connected components of the intra-band driver→reader relation.

    Each component is returned as a sorted gate-name list; the
    component list itself is keyed by its smallest member, so the
    decomposition is deterministic.
    """
    in_band = set(members)
    parent = {name: name for name in members}

    def find(name: str) -> str:
        root = name
        while parent[root] != root:
            root = parent[root]
        while parent[name] != root:
            parent[name], name = root, parent[name]
        return root

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            # Smaller root name wins: keeps find() results canonical.
            if rb < ra:
                ra, rb = rb, ra
            parent[rb] = ra

    for name in members:
        for in_net in circuit.gates[name].inputs:
            driver = circuit.nets[in_net].driver
            if driver is not None and driver in in_band:
                union(driver, name)

    groups: dict[str, list[str]] = {}
    for name in members:
        groups.setdefault(find(name), []).append(name)
    return [sorted(groups[root]) for root in sorted(groups)]


def _external_producers(circuit: Circuit, gates: list[str]) -> list[str]:
    """Driver gates outside ``gates`` feeding any gate inside it."""
    inside = set(gates)
    producers: set[str] = set()
    for name in gates:
        for in_net in circuit.gates[name].inputs:
            driver = circuit.nets[in_net].driver
            if driver is not None and driver not in inside:
                producers.add(driver)
    return sorted(producers)
