"""Zero-delay LCC code generation and simulation (Fig. 1).

One variable per net; one statement per gate, in levelized order.  Each
run settles the circuit on a vector, so this simulator also provides the
compiled steady-state engine used to seed the unit-delay simulators.

Because the generated code is purely bit-wise (no shifts), the very same
program simulates ``word_width`` independent vectors at once when the
inputs are packed one vector per bit — classic compiled zero-delay
bit-parallelism, reproduced here for the §5 "1/23" comparison.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro import telemetry
from repro.analysis.levelize import levelize
from repro.codegen.gates import gate_expression
from repro.codegen.naming import NameAllocator
from repro.codegen.packing import (
    pack_patterns,
    packed_apply,
    packed_bits,
    packing_mode,
    select_tiles,
    tile_groups,
    validate_packed_words,
)
from repro.codegen.probes import (
    ProbeRuntime,
    ProbeSpec,
    instrument_lcc_program,
)
from repro.codegen.program import Assign, Emit, Input, Program, Var
from repro.codegen.runtime import CMachine, Machine, compile_program
from repro.errors import SimulationError
from repro.netlist.circuit import Circuit

__all__ = ["generate_lcc_program", "LCCSimulator"]


def generate_lcc_program(
    circuit: Circuit,
    *,
    word_width: int = 32,
    emit_outputs: bool = True,
) -> Program:
    """Generate the zero-delay LCC program for a circuit.

    Input slot ``k`` carries the value(s) of the ``k``-th primary input:
    bit ``j`` belongs to packed vector ``j``, so passing plain 0/1 values
    simulates a single vector.
    """
    with telemetry.span("emit", technique="lcc", circuit=circuit.name):
        return _generate_lcc_program(
            circuit, word_width=word_width, emit_outputs=emit_outputs
        )


def _generate_lcc_program(
    circuit: Circuit,
    *,
    word_width: int,
    emit_outputs: bool,
) -> Program:
    program = Program(
        f"lcc_{circuit.name}",
        word_width=word_width,
        inputs=circuit.inputs,
        mask_assignments=False,
    )
    names = NameAllocator()
    for net_name in circuit.nets:
        program.declare(names.get(net_name))
    for slot, net_name in enumerate(circuit.inputs):
        program.init.append(Assign(names.get(net_name), Input(slot)))
    levels = levelize(circuit)
    ordered = sorted(
        circuit.topological_gates(),
        key=lambda g: (levels.gate_levels[g.name], g.name),
    )
    for gate in ordered:
        operands = [Var(names.get(i)) for i in gate.inputs]
        program.body.append(
            Assign(names.get(gate.output),
                   gate_expression(gate.gate_type, operands))
        )
    if emit_outputs:
        for net_name in circuit.outputs:
            program.output.append(
                Emit(Var(names.get(net_name)), (net_name,))
            )
    program.validate()
    return program


class LCCSimulator:
    """Compiled zero-delay simulator.

    ``backend`` is ``"python"`` or ``"c"``.  ``evaluate`` settles one
    vector and returns the monitored outputs; ``apply_vectors`` settles
    a whole batch with the vector loop inside the generated code;
    ``run_batch`` times many vectors and folds a checksum compatible
    with the interpreted
    :class:`repro.eventsim.zerodelay.ZeroDelaySimulator`.

    Pattern-lane packing: the LCC program is shift-free and memoryless
    (:func:`repro.codegen.packing.packing_mode` returns ``"full"``), so
    batches of plain 0/1 vectors are automatically transposed into lane
    words and driven ``word_width`` vectors per compiled pass.
    ``packed="auto"`` (default) packs whenever the batch is eligible
    (all values 0/1); ``packed=False`` forces the scalar
    ``run_block`` path — the paper's one-vector-per-pass
    configuration; ``packed=True`` requires packing and raises
    :class:`SimulationError` when a batch is ineligible.  Both paths
    are bit-identical in their results; only the per-pass lane count
    differs.  (The machine's persistent state is scratch for this
    memoryless program, so only outputs are specified across paths.)

    Partitioned execution: ``partitions > 1`` splits the circuit into
    that many static clusters and routes ``evaluate``,
    ``evaluate_all_nets``, ``apply_vectors`` and ``run_batch`` through
    the barrier-synchronized
    :class:`~repro.partition.executor.PartitionedSimulator`
    (``partition_workers`` bounds its thread pool) — bit-identical
    results, multiple cores on the C backend.  The prepared-batch
    timing APIs (``prepare_batch``/``prepare_packed``/``run_prepared``)
    always drive the monolithic machine: they exist to time one
    compiled program's inner loop.

    Probes: ``probes=`` compiles per-net toggle counters into the
    generated pass (see :mod:`repro.codegen.probes`).  A pseudo-input
    carries the lane-occupancy mask, so packed batches count all
    ``word_width`` lanes with one popcount per net per pass.  Seed the
    baseline with :meth:`probe_reset`, run batches, then read
    :meth:`activity_report`.  Probed batches require plain 0/1
    vectors (the counters chain consecutive lanes as consecutive
    vectors), and tiled execution is unavailable — tiles interleave
    the packed group sequence, which would break the previous-value
    chain.
    """

    def __init__(
        self,
        circuit: Circuit,
        *,
        backend: str = "python",
        word_width: int = 32,
        packed: bool | str = "auto",
        partitions: int = 1,
        partition_workers: Optional[int] = None,
        tiles: "int | str" = 1,
        probes=None,
    ) -> None:
        if packed not in (True, False, "auto"):
            raise SimulationError(
                f"packed must be True, False or 'auto': {packed!r}"
            )
        if tiles != "auto":
            tiles = int(tiles)
            if tiles < 1:
                raise SimulationError(f"tiles must be >= 1: {tiles}")
        spec = ProbeSpec.coerce(probes)
        if spec is not None:
            if tiles not in (1, "auto"):
                raise SimulationError(
                    "probes chain consecutive packed groups through the "
                    "per-net previous-value bit; tiled execution "
                    "interleaves the group order, so tiles > 1 is "
                    "unavailable with probes"
                )
            tiles = 1
        self.circuit = circuit
        self.program = generate_lcc_program(circuit, word_width=word_width)
        #: ``"full"`` for every LCC program; kept as an attribute so the
        #: auto-pack decision reads as policy, not as an LCC special
        #: case.  Recorded *before* probe instrumentation — the probe
        #: statements use shifts and popcounts, which are lane-safe
        #: here by construction but would classify the program
        #: ``"none"``.
        self.packing_mode = packing_mode(self.program)
        self.probe_plan = (
            instrument_lcc_program(self.program, circuit, spec)
            if spec is not None else None
        )
        self.backend = backend
        self.machine: Machine = compile_program(self.program, backend)
        self._probe_runtime = (
            ProbeRuntime(self.probe_plan, self.program)
            if self.probe_plan is not None else None
        )
        self.word_width = word_width
        self.packed = packed
        self.tiles = tiles
        self._tiled_machines: dict[int, Machine] = {}
        self._inputs = circuit.inputs
        self._outputs = circuit.outputs
        self.partitioned = None
        if partitions > 1:
            # Lazy import: repro.partition builds on this module's
            # program shape, not the other way around.
            from repro.partition.executor import PartitionedSimulator

            self.partitioned = PartitionedSimulator(
                circuit,
                partitions=partitions,
                partition_workers=partition_workers,
                backend=backend,
                word_width=word_width,
                packed=packed,
                tiles=tiles,
                probes=spec,
            )

    # ------------------------------------------------------------------
    # tiled machines
    # ------------------------------------------------------------------
    def _tiled_machine(self, tiles: int) -> Machine:
        """The K-tile compilation of this program (memoized per K)."""
        machine = self._tiled_machines.get(tiles)
        if machine is None:
            machine = compile_program(
                self.program, self.backend, tiles=tiles
            )
            self._tiled_machines[tiles] = machine
        return machine

    def _packed_machine(self, num_vectors: int) -> Machine:
        """The machine for a packed batch: K tiles, clamped to the work."""
        if self.tiles == "auto":
            tiles = select_tiles(
                num_vectors, self.word_width, backend=self.backend
            )
        else:
            tiles = self.tiles
        if num_vectors:
            tiles = max(1, min(tiles, -(-num_vectors // self.word_width)))
        else:
            tiles = 1
        if tiles == 1:
            return self.machine
        return self._tiled_machine(tiles)

    def _packable(self, words: list[list[int]]) -> bool:
        """May this batch take the packed path?

        ``apply_vectors`` accepts multi-bit words too (the classic
        packed-input mode of :meth:`evaluate_packed`); those already
        occupy all lanes and must go through the scalar path unchanged.
        """
        if self.packed is False or self.packing_mode != "full":
            if self.packed is True:
                raise SimulationError(
                    f"packed=True but program mode is "
                    f"{self.packing_mode!r}"
                )
            return False
        if not self._inputs:
            return False
        eligible = all(
            value in (0, 1) for word in words for value in word
        )
        if not eligible and self.packed is True:
            raise SimulationError(
                "packed=True requires plain 0/1 vectors (one lane each)"
            )
        return eligible

    def _probe_words(self, words: list[list[int]]) -> list[list[int]]:
        """Validate 0/1 vectors; append the ``__probe_en`` occupancy 1."""
        for word in words:
            for value in word:
                if value not in (0, 1):
                    raise SimulationError(
                        "probed runs take plain 0/1 vectors; the "
                        "counters chain lanes as consecutive vectors, "
                        "so pre-packed multi-bit words are not countable"
                    )
        return [word + [1] for word in words]

    def evaluate(
        self, vector: Mapping[str, int] | Sequence[int]
    ) -> dict[str, int]:
        """Settle on one vector; returns monitored output values."""
        if self.partitioned is not None:
            return self.partitioned.evaluate(vector)
        values = self._vector_list(vector)
        if self._probe_runtime is not None:
            [values] = self._probe_words([values])
        out = self.machine.step(values)
        if self._probe_runtime is not None:
            self._probe_runtime.note_vectors(self.machine, 1)
        return {name: value & 1 for name, value in zip(self._outputs, out)}

    def evaluate_packed(
        self, vector: Sequence[int]
    ) -> dict[str, int]:
        """Settle ``word_width`` packed vectors at once.

        Slot ``k`` of ``vector`` carries bit ``j`` = value of input ``k``
        in packed vector ``j``; the returned words are packed the same
        way.  Words are validated against the word width up front —
        an oversized word would be truncated by the C backend (and not
        by the Python one), silently corrupting whole lanes.
        """
        if self._probe_runtime is not None:
            raise SimulationError(
                "evaluate_packed carries word_width unrelated vectors "
                "per call; probe counting chains lanes as consecutive "
                "vectors — use apply_vectors with 0/1 vectors instead"
            )
        words = self._vector_list(vector)
        validate_packed_words(
            words, self.word_width, context="packed input word"
        )
        out = self.machine.step(words)
        return dict(zip(self._outputs, out))

    def evaluate_all_nets(
        self, vector: Mapping[str, int] | Sequence[int]
    ) -> dict[str, int]:
        """Settle and return every net's value (from machine state)."""
        if self.partitioned is not None:
            return self.partitioned.evaluate_all_nets(vector)
        values = self._vector_list(vector)
        if self._probe_runtime is not None:
            [values] = self._probe_words([values])
        self.machine.step(values)
        if self._probe_runtime is not None:
            self._probe_runtime.note_vectors(self.machine, 1)
        state = self.machine.state_dict()
        # State variable order matches circuit.nets insertion order
        # (probe state is declared after every net variable).
        return {
            net_name: state[var] & 1
            for net_name, var in zip(self.circuit.nets, state)
        }

    def _vector_list(
        self, vector: Mapping[str, int] | Sequence[int]
    ) -> list[int]:
        if isinstance(vector, Mapping):
            missing = [n for n in self._inputs if n not in vector]
            if missing:
                raise SimulationError(f"vector missing inputs: {missing}")
            return [vector[n] for n in self._inputs]
        values = list(vector)
        if len(values) != len(self._inputs):
            raise SimulationError(
                f"vector has {len(values)} values, expected "
                f"{len(self._inputs)}"
            )
        return values

    def apply_vectors(
        self, vectors: Sequence[Mapping[str, int] | Sequence[int]]
    ) -> list[list[int]]:
        """Settle a batch; returns per-vector raw output words.

        Bit-identical to ``[self.machine.step(v) for v in vectors]``.
        Eligible 0/1 batches are pattern-packed — ``word_width``
        vectors per compiled pass — and the exact scalar words are
        reconstructed on unpacking (:func:`packed_apply`); everything
        else runs through the scalar ``run_block`` loop.
        """
        if self.partitioned is not None:
            return self.partitioned.apply_vectors(vectors)
        words = [self._vector_list(vector) for vector in vectors]
        if self._probe_runtime is not None:
            return self._probed_batch(words)
        if self._packable(words):
            telemetry.counter("packing.packed_batches")
            return packed_apply(self._packed_machine(len(words)), words)
        telemetry.counter("packing.fallback.scalar")
        return self.machine.step_many(words)

    def _probed_batch(self, words: list[list[int]]) -> list[list[int]]:
        """Run a 0/1 batch with toggle counting, chunked wrap-free.

        Packed when eligible (the occupancy input rides along as one
        extra column and the exact scalar words are reconstructed),
        scalar otherwise; either way the batch is split so no compiled
        counter can wrap between drains, and the counters observe
        every vector exactly once.
        """
        runtime = self._probe_runtime
        assert runtime is not None
        if not words:
            return []
        packable = self._packable(words)
        en_words = self._probe_words(words)
        telemetry.counter(
            "packing.packed_batches" if packable
            else "packing.fallback.scalar"
        )
        out: list[list[int]] = []
        for start, length in runtime.chunk_vectors(len(words)):
            chunk = en_words[start:start + length]
            if packable:
                out.extend(packed_apply(self.machine, chunk))
            else:
                out.extend(self.machine.step_many(chunk))
            runtime.note_vectors(self.machine, length)
        return out

    # ------------------------------------------------------------------
    # checksum folding
    # ------------------------------------------------------------------
    @property
    def _fold_bits(self) -> int:
        """Width of the checksum accumulator, derived from the word.

        ``2 * word_width - 2`` — at the historical default width of 32
        this is the 62-bit fold the interpreted
        :class:`~repro.eventsim.zerodelay.ZeroDelaySimulator` uses, so
        the two engines stay checksum-compatible; wider/narrower
        programs get a proportionally sized accumulator instead of a
        hardcoded rotate.
        """
        return 2 * self.word_width - 2

    def _fold(self, folded: int, bit: int) -> int:
        bits = self._fold_bits
        folded = ((folded << 1) | (folded >> (bits - 1))) & ((1 << bits) - 1)
        return folded ^ bit

    def run_batch(self, vectors: Sequence[Sequence[int]]) -> int:
        """Simulate many (unpacked) vectors; fold outputs to a checksum.

        The checksum folds each output's *logical* (bit-0) value, so the
        packed and scalar paths produce the same result; eligible
        batches run packed (one pass per ``word_width`` vectors).
        """
        if self.partitioned is not None:
            return self.partitioned.run_batch(vectors)
        words = [self._vector_list(vector) for vector in vectors]
        if self._probe_runtime is not None:
            rows = self._probed_batch(words)
        elif self._packable(words):
            telemetry.counter("packing.packed_batches")
            # packed_bits drives scalar or tiled machines uniformly and
            # returns exactly the bit-0 values the fold consumes.
            rows = packed_bits(self._packed_machine(len(words)), words)
        else:
            telemetry.counter("packing.fallback.scalar")
            rows = self.machine.step_many(words)
        checksum = 0
        for out in rows:
            folded = 0
            for value in out:
                folded = self._fold(folded, value & 1)
            checksum ^= folded
        return checksum

    # ------------------------------------------------------------------
    # prepared batches (timing fast path)
    # ------------------------------------------------------------------
    def prepare_batch(self, vectors: Sequence[Sequence[int]]):
        """Marshal a scalar batch once, outside any timed region.

        Mirrors :meth:`repro.simbase.CompiledSimulator.prepare_batch`:
        on the C backend the batch becomes one contiguous native
        buffer; on the Python backend a pre-marshalled word list.
        """
        with telemetry.span("pack"):
            words = [self._vector_list(vector) for vector in vectors]
            if self._probe_runtime is not None:
                rows = self._probe_words(words)
                return (
                    "probe",
                    self._probe_parts(rows, represented=None),
                    False,
                )
            if isinstance(self.machine, CMachine):
                return (
                    "c", self.machine.pack_block(words), len(words), None
                )
            mask = self.program.word_mask
            masked = [[value & mask for value in word] for word in words]
            return ("py", masked, len(words), None)

    def _probe_parts(self, rows, *, represented, group_lanes: int = 1):
        """Split pre-marshalled pass rows into wrap-free probe parts.

        ``group_lanes`` is the vectors-per-row factor (``word_width``
        for pattern-packed groups, 1 for scalar rows);
        ``represented=None`` marks scalar parts.  Each part is
        ``(payload, rows, vectors)`` with payload pre-packed on the C
        backend.
        """
        runtime = self._probe_runtime
        assert runtime is not None
        row_chunk = max(1, runtime.chunk // group_lanes)
        parts = []
        for i in range(0, len(rows), row_chunk):
            part = rows[i:i + row_chunk]
            if represented is None:
                vectors = len(part)
            else:
                vectors = min(represented - i * group_lanes,
                              len(part) * group_lanes)
            payload = (
                self.machine.pack_block(part)
                if isinstance(self.machine, CMachine) else part
            )
            parts.append((payload, len(part), vectors))
        return parts

    def prepare_packed(self, vectors: Sequence[Sequence[int]]):
        """Transpose + marshal a pattern batch outside the timed region.

        The timed run is then pure compiled passes —
        ``ceil(len(vectors) / (word_width * K))`` of them with K tiles.
        Raises :class:`SimulationError` when the batch is not packable
        (the caller asked for the packed configuration explicitly).
        """
        words = [self._vector_list(vector) for vector in vectors]
        if self.packing_mode != "full" or not self._inputs:
            raise SimulationError(
                f"program {self.program.name!r} is not pattern-packable "
                f"(mode {self.packing_mode!r})"
            )
        if self._probe_runtime is not None:
            # The occupancy column packs into exactly the lane mask
            # (a partial last group gets 0 for the unoccupied lanes),
            # and the previous-value chain carries across parts
            # through the machine state.
            en_words = self._probe_words(words)
            groups, _lane_counts = pack_patterns(
                en_words, self.word_width
            )
            return (
                "probe",
                self._probe_parts(
                    groups,
                    represented=len(words),
                    group_lanes=self.word_width,
                ),
                True,
            )
        groups, _lane_counts = pack_patterns(words, self.word_width)
        machine = self._packed_machine(len(words))
        if machine.tiles > 1:
            groups = tile_groups(
                groups, len(self._inputs), machine.tiles
            )
        if isinstance(machine, CMachine):
            return (
                "c", machine.pack_block(groups), len(groups),
                len(words), machine,
            )
        return ("py", groups, len(groups), len(words), machine)

    def run_prepared(self, prepared) -> None:
        """Run a batch from :meth:`prepare_batch`/:meth:`prepare_packed`.

        Outputs are discarded — this is the timing fast path; the
        throughput counters record scalar vectors simulated either way.
        """
        if prepared[0] == "probe":
            runtime = self._probe_runtime
            assert runtime is not None
            # Start from zeroed counters so each pre-marshalled part
            # has the full wrap-free budget.
            runtime.drain(self.machine)
            _kind, parts, packed_groups = prepared
            for payload, count, vectors in parts:
                represented = vectors if packed_groups else None
                if isinstance(self.machine, CMachine):
                    self.machine.run_packed(
                        payload, count, vectors_represented=represented
                    )
                elif packed_groups:
                    self.machine.run_packed_block(
                        payload, vectors_represented=represented
                    )
                else:
                    self.machine.run_block(payload, masked=True)
                runtime.note_vectors(self.machine, vectors)
            return
        kind, payload, count, represented = prepared[:4]
        machine = prepared[4] if len(prepared) > 4 else self.machine
        if kind == "c":
            machine.run_packed(
                payload, count, vectors_represented=represented
            )
        elif represented is None:
            machine.run_block(payload, masked=True)
        else:
            machine.run_packed_block(
                payload, vectors_represented=represented
            )

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------
    @property
    def probe_runtime(self) -> Optional[ProbeRuntime]:
        return self._probe_runtime

    def probe_reset(
        self, vector: Mapping[str, int] | Sequence[int] | None = None
    ) -> None:
        """Seed the toggle baseline from one settled (uncounted) vector.

        Settles ``vector`` (default all zeros), keeps the resulting
        per-net values as the previous-value bits, and zeroes the
        counters — the next batch's first vector toggles relative to
        this baseline, exactly like a zero-delay reference that starts
        from the same vector.
        """
        if self.partitioned is not None:
            self.partitioned.probe_reset(vector)
            return
        if self._probe_runtime is None:
            raise SimulationError(
                "simulator was built without probes=; nothing to seed"
            )
        if vector is None:
            vector = [0] * len(self._inputs)
        [values] = self._probe_words([self._vector_list(vector)])
        self.machine.step(values)
        self._probe_runtime.discard(self.machine)

    def activity_report(self):
        """Drain the compiled-in probe counters into an ActivityReport.

        Zero-delay simulation sees at most one transition per net per
        vector, so functional toggles equal total toggles and the
        glitch excess is zero by construction.
        """
        if self.partitioned is not None:
            return self.partitioned.activity_report()
        if self._probe_runtime is None:
            raise SimulationError(
                "simulator was built without probes=; no activity "
                "counters to report"
            )
        self._probe_runtime.drain(self.machine)
        return self._probe_runtime.report()
