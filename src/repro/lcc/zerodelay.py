"""Zero-delay LCC code generation and simulation (Fig. 1).

One variable per net; one statement per gate, in levelized order.  Each
run settles the circuit on a vector, so this simulator also provides the
compiled steady-state engine used to seed the unit-delay simulators.

Because the generated code is purely bit-wise (no shifts), the very same
program simulates ``word_width`` independent vectors at once when the
inputs are packed one vector per bit — classic compiled zero-delay
bit-parallelism, reproduced here for the §5 "1/23" comparison.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.analysis.levelize import levelize
from repro.codegen.gates import gate_expression
from repro.codegen.naming import NameAllocator
from repro.codegen.program import Assign, Emit, Input, Program, Var
from repro.codegen.runtime import Machine, compile_program
from repro.errors import SimulationError
from repro.netlist.circuit import Circuit

__all__ = ["generate_lcc_program", "LCCSimulator"]


def generate_lcc_program(
    circuit: Circuit,
    *,
    word_width: int = 32,
    emit_outputs: bool = True,
) -> Program:
    """Generate the zero-delay LCC program for a circuit.

    Input slot ``k`` carries the value(s) of the ``k``-th primary input:
    bit ``j`` belongs to packed vector ``j``, so passing plain 0/1 values
    simulates a single vector.
    """
    program = Program(
        f"lcc_{circuit.name}",
        word_width=word_width,
        inputs=circuit.inputs,
        mask_assignments=False,
    )
    names = NameAllocator()
    for net_name in circuit.nets:
        program.declare(names.get(net_name))
    for slot, net_name in enumerate(circuit.inputs):
        program.init.append(Assign(names.get(net_name), Input(slot)))
    levels = levelize(circuit)
    ordered = sorted(
        circuit.topological_gates(),
        key=lambda g: (levels.gate_levels[g.name], g.name),
    )
    for gate in ordered:
        operands = [Var(names.get(i)) for i in gate.inputs]
        program.body.append(
            Assign(names.get(gate.output),
                   gate_expression(gate.gate_type, operands))
        )
    if emit_outputs:
        for net_name in circuit.outputs:
            program.output.append(
                Emit(Var(names.get(net_name)), (net_name,))
            )
    program.validate()
    return program


class LCCSimulator:
    """Compiled zero-delay simulator.

    ``backend`` is ``"python"`` or ``"c"``.  ``evaluate`` settles one
    vector and returns the monitored outputs; ``apply_vectors`` settles
    a whole batch with the vector loop inside the generated code;
    ``run_batch`` times many vectors and folds a checksum compatible
    with the interpreted
    :class:`repro.eventsim.zerodelay.ZeroDelaySimulator`.
    """

    def __init__(
        self,
        circuit: Circuit,
        *,
        backend: str = "python",
        word_width: int = 32,
    ) -> None:
        self.circuit = circuit
        self.program = generate_lcc_program(circuit, word_width=word_width)
        self.machine: Machine = compile_program(self.program, backend)
        self._inputs = circuit.inputs
        self._outputs = circuit.outputs

    def evaluate(
        self, vector: Mapping[str, int] | Sequence[int]
    ) -> dict[str, int]:
        """Settle on one vector; returns monitored output values."""
        values = self._vector_list(vector)
        out = self.machine.step(values)
        return {name: value & 1 for name, value in zip(self._outputs, out)}

    def evaluate_packed(
        self, vector: Sequence[int]
    ) -> dict[str, int]:
        """Settle ``word_width`` packed vectors at once.

        Slot ``k`` of ``vector`` carries bit ``j`` = value of input ``k``
        in packed vector ``j``; the returned words are packed the same
        way.
        """
        out = self.machine.step(self._vector_list(vector))
        return dict(zip(self._outputs, out))

    def evaluate_all_nets(
        self, vector: Mapping[str, int] | Sequence[int]
    ) -> dict[str, int]:
        """Settle and return every net's value (from machine state)."""
        self.machine.step(self._vector_list(vector))
        state = self.machine.state_dict()
        # State variable order matches circuit.nets insertion order.
        return {
            net_name: state[var] & 1
            for net_name, var in zip(self.circuit.nets, state)
        }

    def _vector_list(
        self, vector: Mapping[str, int] | Sequence[int]
    ) -> list[int]:
        if isinstance(vector, Mapping):
            missing = [n for n in self._inputs if n not in vector]
            if missing:
                raise SimulationError(f"vector missing inputs: {missing}")
            return [vector[n] for n in self._inputs]
        values = list(vector)
        if len(values) != len(self._inputs):
            raise SimulationError(
                f"vector has {len(values)} values, expected "
                f"{len(self._inputs)}"
            )
        return values

    def apply_vectors(
        self, vectors: Sequence[Mapping[str, int] | Sequence[int]]
    ) -> list[list[int]]:
        """Settle a batch; returns per-vector raw output words.

        Bit-identical to ``[self.machine.step(v) for v in vectors]``
        but driven by the generated ``run_block`` loop.
        """
        words = [self._vector_list(vector) for vector in vectors]
        return self.machine.step_many(words)

    def run_batch(self, vectors: Sequence[Sequence[int]]) -> int:
        """Simulate many (unpacked) vectors; fold outputs to a checksum."""
        checksum = 0
        for out in self.apply_vectors(vectors):
            folded = 0
            for value in out:
                folded = ((folded << 1) | (folded >> 61)) & (2**62 - 1)
                folded ^= value & 1
            checksum ^= folded
        return checksum
