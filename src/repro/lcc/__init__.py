"""Zero-delay Levelized Compiled Code simulation (Fig. 1).

The classic technique both of the paper's contributions build on: emit
one bit-wise statement per gate in levelized order, yielding the settled
(steady-state) value of every net with no timing information.  Included
both as the historical baseline for the §5 zero-delay comparison and as
the settling engine that seeds the unit-delay simulators' state.
"""

from repro.lcc.zerodelay import LCCSimulator, generate_lcc_program

__all__ = ["LCCSimulator", "generate_lcc_program"]
