"""Compiled clocked simulation of synchronous sequential circuits.

Combines §1's flip-flop-breaking recipe with any compiled combinational
engine: the broken core is compiled once; each clock cycle feeds the
current flip-flop state and external inputs through it, captures the D
pins as the next state, and (optionally) keeps the full intra-cycle
unit-delay history so glitches *inside* a clock period are visible —
the thing a plain zero-delay clocked model cannot show.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.errors import SimulationError
from repro.netlist.sequential import SequentialCircuit

__all__ = ["CompiledSequentialSimulator"]


class CompiledSequentialSimulator:
    """Clocked simulation over a compiled combinational core.

    Parameters
    ----------
    sequential:
        The broken circuit (from ``parse_bench_sequential`` or
        ``break_at_flipflops``).
    engine:
        ``"lcc"`` — zero-delay compiled core (fastest; per-cycle settled
        values only), or ``"parallel"`` / ``"pcset"`` — unit-delay
        compiled cores that additionally expose the intra-cycle
        waveforms via :meth:`step` with ``record=True``.
    """

    def __init__(
        self,
        sequential: SequentialCircuit,
        *,
        engine: str = "lcc",
        backend: str = "python",
        word_width: int = 32,
    ) -> None:
        if engine not in ("lcc", "parallel", "pcset"):
            raise SimulationError(f"unknown engine: {engine!r}")
        self.sequential = sequential
        self.engine = engine
        core = sequential.core
        monitored = sorted(
            set(sequential.external_outputs)
            | set(sequential.flipflops.values())
        )
        if engine == "lcc":
            from repro.lcc.zerodelay import LCCSimulator

            self._sim = LCCSimulator(
                core, backend=backend, word_width=word_width
            )
        elif engine == "parallel":
            from repro.parallel.simulator import ParallelSimulator

            self._sim = ParallelSimulator(
                core, optimization="pathtrace+trim",
                backend=backend, word_width=word_width,
                monitored=monitored,
            )
        else:
            from repro.pcset.simulator import PCSetSimulator

            self._sim = PCSetSimulator(
                core, backend=backend, word_width=word_width,
                monitored=monitored,
            )
        self._core_inputs = core.inputs
        self.state = sequential.initial_state()
        self.cycle = 0
        self._unit_delay_ready = False
        if engine == "lcc":
            # Positions of the nets the clocked loop actually samples
            # (external outputs + flip-flop D pins) inside the LCC
            # machine's state-dump order (= core.nets declaration
            # order), so the batched driver avoids decoding every net
            # of every cycle.
            index_of = {n: i for i, n in enumerate(core.nets)}
            self._output_slots = [
                (n, index_of[n]) for n in sequential.external_outputs
            ]
            self._ff_slots = [
                (q, index_of[d])
                for q, d in sequential.flipflops.items()
            ]

    # ------------------------------------------------------------------
    def reset(self, state: Optional[Mapping[str, int]] = None) -> None:
        """Set the flip-flop state (default all zeros)."""
        if state is None:
            self.state = self.sequential.initial_state()
        else:
            missing = [
                q for q in self.sequential.flipflops if q not in state
            ]
            if missing:
                raise SimulationError(
                    f"state missing flip-flops: {missing[:5]}"
                )
            self.state = {
                q: state[q] & 1 for q in self.sequential.flipflops
            }
        self.cycle = 0
        self._unit_delay_ready = False

    def _core_vector(self, inputs: Mapping[str, int]) -> list[int]:
        merged = dict(inputs)
        merged.update(self.state)
        missing = [
            n for n in self.sequential.external_inputs if n not in merged
        ]
        if missing:
            raise SimulationError(f"inputs missing: {missing[:5]}")
        return [merged[n] & 1 for n in self._core_inputs]

    def step(
        self,
        inputs: Mapping[str, int],
        record: bool = False,
    ):
        """Advance one clock cycle.

        Returns ``outputs`` (external outputs sampled *before* the
        edge, i.e. the settled values of this cycle), or
        ``(outputs, history)`` with ``record`` on a unit-delay engine —
        ``history`` being the intra-cycle per-net change lists.
        """
        vector = self._core_vector(inputs)
        history = None
        if self.engine == "lcc":
            if record:
                raise SimulationError(
                    "intra-cycle recording needs a unit-delay engine "
                    "(parallel or pcset)"
                )
            settled = self._sim.evaluate_all_nets(vector)
        else:
            if not self._unit_delay_ready:
                # Unit-delay cores start from the previous steady state;
                # the first cycle settles from the current state/input.
                self._sim.reset(vector)
                self._unit_delay_ready = True
            if record:
                history = self._sim.apply_vector_history(vector)
                settled = {
                    net_name: changes[-1][1]
                    for net_name, changes in history.items()
                }
            else:
                self._sim.apply_vector(vector)
                settled = self._sim.final_values()
        outputs = {
            n: settled[n] for n in self.sequential.external_outputs
        }
        self.state = {
            q: settled[d]
            for q, d in self.sequential.flipflops.items()
        }
        self.cycle += 1
        if record:
            return outputs, history
        return outputs

    def apply_vectors(
        self,
        input_sequence: Sequence[Mapping[str, int]],
    ) -> list[dict[str, int]]:
        """Clock through a batch of input maps; return per-cycle outputs.

        Cycle-identical to calling :meth:`step` per entry.  Clocked
        feedback (each cycle's flip-flop state depends on the previous
        cycle's settled values) keeps one machine call per cycle, but
        the zero-delay engine's batched path samples only the nets the
        loop needs — external outputs and flip-flop D pins — instead of
        decoding the full per-net state dictionary every cycle.
        """
        if self.engine != "lcc":
            return [self.step(inputs) for inputs in input_sequence]
        machine = self._sim.machine
        step = machine.step
        dump = machine.dump_state
        results: list[dict[str, int]] = []
        for inputs in input_sequence:
            step(self._core_vector(inputs))
            state = dump()
            results.append(
                {n: state[i] & 1 for n, i in self._output_slots}
            )
            self.state = {q: state[i] & 1 for q, i in self._ff_slots}
            self.cycle += 1
        return results

    def run(
        self,
        input_sequence: Sequence[Mapping[str, int]],
    ) -> list[dict[str, int]]:
        """Clock through a sequence of input maps; return outputs."""
        return self.apply_vectors(input_sequence)
