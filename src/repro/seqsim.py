"""Compiled clocked simulation of synchronous sequential circuits.

Combines §1's flip-flop-breaking recipe with any compiled combinational
engine: the broken core is compiled once; each clock cycle feeds the
current flip-flop state and external inputs through it, captures the D
pins as the next state, and (optionally) keeps the full intra-cycle
unit-delay history so glitches *inside* a clock period are visible —
the thing a plain zero-delay clocked model cannot show.

Partial-progress contract
-------------------------
``apply_vectors`` advances ``state``/``cycle`` one cycle at a time.  If
a cycle raises (bad vector, backend failure), every *completed* cycle
stays committed: ``cycle`` counts the cycles that ran, ``state`` holds
the flip-flop values after the last completed cycle, and the failing
cycle has consumed nothing.  Callers that need all-or-nothing semantics
take a :meth:`snapshot` first and :meth:`restore` it on error.
"""

from __future__ import annotations

import time
from typing import Mapping, Optional, Sequence

from repro import telemetry
from repro.errors import SimulationError
from repro.netlist.sequential import SequentialCircuit

__all__ = ["CompiledSequentialSimulator"]


class CompiledSequentialSimulator:
    """Clocked simulation over a compiled combinational core.

    Parameters
    ----------
    sequential:
        The broken circuit (from ``parse_bench_sequential`` or
        ``break_at_flipflops``).
    engine:
        ``"lcc"`` — zero-delay compiled core (fastest; per-cycle settled
        values only), or ``"parallel"`` / ``"pcset"`` — unit-delay
        compiled cores that additionally expose the intra-cycle
        waveforms via :meth:`step` with ``record=True``.
    tiles / partitions / partition_workers:
        Threaded through to the combinational engine.  Partitions split
        the core across cores for the per-cycle settle; tiles apply to
        packed combinational batches inside the engine (the clocked
        loop itself is one scalar settle per cycle, so tiling is
        accepted for API uniformity but does not change the cycle
        loop's dispatch).
    incremental:
        Evaluate the core through per-fanin-cone programs
        (:class:`repro.codegen.incremental.ConeSimulator`) instead of
        one monolithic program.  Slower steady-state (cone overlap is
        re-evaluated) but editing one gate recompiles only the affected
        cones — see ``cache_delta`` on the underlying simulator.
        Only the ``"lcc"`` engine supports it.
    """

    ENGINES = ("lcc", "parallel", "pcset")

    def __init__(
        self,
        sequential: SequentialCircuit,
        *,
        engine: str = "lcc",
        backend: str = "python",
        word_width: int = 32,
        tiles: "int | str" = 1,
        partitions: int = 1,
        partition_workers: Optional[int] = None,
        incremental: bool = False,
    ) -> None:
        if engine not in self.ENGINES:
            raise SimulationError(f"unknown engine: {engine!r}")
        if incremental and engine != "lcc":
            raise SimulationError(
                "incremental recompilation requires the zero-delay "
                f"core (engine='lcc'), not {engine!r}"
            )
        self.sequential = sequential
        self.engine = engine
        self.backend = backend
        self.incremental = incremental
        self.partitions = partitions
        core = sequential.core
        monitored = sorted(
            set(sequential.external_outputs)
            | set(sequential.flipflops.values())
        )
        if incremental:
            missing = [
                d for d in sequential.flipflops.values()
                if d not in core.nets or not core.nets[d].is_output
            ]
            if missing:
                raise SimulationError(
                    "incremental evaluation samples flip-flop D pins "
                    "as core outputs; not outputs: "
                    f"{sorted(missing)[:5]}"
                )
            from repro.codegen.incremental import ConeSimulator

            self._sim = ConeSimulator(
                core, backend=backend, word_width=word_width
            )
        elif engine == "lcc":
            from repro.lcc.zerodelay import LCCSimulator

            self._sim = LCCSimulator(
                core, backend=backend, word_width=word_width,
                tiles=tiles, partitions=partitions,
                partition_workers=partition_workers,
            )
        elif engine == "parallel":
            from repro.parallel.simulator import ParallelSimulator

            self._sim = ParallelSimulator(
                core, optimization="pathtrace+trim",
                backend=backend, word_width=word_width,
                monitored=monitored, tiles=tiles,
                partitions=partitions,
                partition_workers=partition_workers,
            )
        else:
            from repro.pcset.simulator import PCSetSimulator

            self._sim = PCSetSimulator(
                core, backend=backend, word_width=word_width,
                monitored=monitored, tiles=tiles,
                partitions=partitions,
                partition_workers=partition_workers,
            )
        self._core_inputs = core.inputs
        self._external_input_set = frozenset(sequential.external_inputs)
        self.state = sequential.initial_state()
        self.cycle = 0
        self._unit_delay_ready = False
        #: Driver-loop totals (cycles as "vectors"), mirroring the
        #: machine-level :class:`BatchCounters` the combinational
        #: engines keep — the clocked loop is the unit of work here.
        from repro.codegen.runtime import BatchCounters

        self.counters = BatchCounters()
        self._fast = (
            engine == "lcc" and not incremental and partitions <= 1
        )
        if self._fast:
            # Positions of the nets the clocked loop actually samples
            # (external outputs + flip-flop D pins) inside the LCC
            # machine's state-dump order (= core.nets declaration
            # order), so the batched driver avoids decoding every net
            # of every cycle.
            index_of = {n: i for i, n in enumerate(core.nets)}
            self._output_slots = [
                (n, index_of[n]) for n in sequential.external_outputs
            ]
            self._ff_slots = [
                (q, index_of[d])
                for q, d in sequential.flipflops.items()
            ]

    # ------------------------------------------------------------------
    def reset(self, state: Optional[Mapping[str, int]] = None) -> None:
        """Set the flip-flop state (default all zeros).

        Unknown keys in ``state`` raise :class:`SimulationError` — a
        typo'd flip-flop name must not be silently dropped.
        """
        if state is None:
            self.state = self.sequential.initial_state()
        else:
            flipflops = self.sequential.flipflops
            missing = [q for q in flipflops if q not in state]
            if missing:
                raise SimulationError(
                    f"state missing flip-flops: {missing[:5]}"
                )
            unknown = sorted(q for q in state if q not in flipflops)
            if unknown:
                raise SimulationError(
                    f"state has unknown flip-flops: {unknown[:5]}"
                )
            self.state = {q: state[q] & 1 for q in flipflops}
        self.cycle = 0
        self._unit_delay_ready = False

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The machine state needed to resume bit-identically.

        For every engine that is the flip-flop state plus the cycle
        count: the combinational settle is a pure function of
        state + inputs, so no intra-cycle residue needs saving.
        """
        return {"state": dict(self.state), "cycle": self.cycle}

    def restore(self, snapshot: Mapping) -> None:
        """Resume from a :meth:`snapshot` (or checkpoint payload)."""
        self.reset(snapshot["state"])
        self.cycle = int(snapshot["cycle"])

    # ------------------------------------------------------------------
    def _core_vector(
        self, inputs: "Mapping[str, int] | Sequence[int]"
    ) -> list[int]:
        """Merge external inputs with the flip-flop state.

        Accepts a mapping over the external input names, or a plain
        sequence in ``sequential.external_inputs`` order (the tape
        layout).  Unknown mapping keys raise — in particular a Q-net
        key, which earlier versions silently overrode with the
        internal state.
        """
        external = self.sequential.external_inputs
        if not isinstance(inputs, Mapping):
            values = list(inputs)
            if len(values) != len(external):
                raise SimulationError(
                    f"input vector has {len(values)} values for "
                    f"{len(external)} external inputs"
                )
            merged = dict(zip(external, values))
        else:
            unknown = sorted(
                k for k in inputs if k not in self._external_input_set
            )
            if unknown:
                raise SimulationError(
                    f"unknown inputs: {unknown[:5]}"
                )
            missing = [n for n in external if n not in inputs]
            if missing:
                raise SimulationError(f"inputs missing: {missing[:5]}")
            merged = dict(inputs)
        merged.update(self.state)
        return [merged[n] & 1 for n in self._core_inputs]

    def step(
        self,
        inputs: "Mapping[str, int] | Sequence[int]",
        record: bool = False,
    ):
        """Advance one clock cycle.

        Returns ``outputs`` (external outputs sampled *before* the
        edge, i.e. the settled values of this cycle), or
        ``(outputs, history)`` with ``record`` on a unit-delay engine —
        ``history`` being the intra-cycle per-net change lists.
        """
        vector = self._core_vector(inputs)
        history = None
        if self.engine == "lcc":
            if record:
                raise SimulationError(
                    "intra-cycle recording needs a unit-delay engine "
                    "(parallel or pcset)"
                )
            if self.incremental:
                settled = self._sim.evaluate(vector)
            else:
                settled = self._sim.evaluate_all_nets(vector)
        else:
            if not self._unit_delay_ready:
                # Unit-delay cores start from the previous steady state;
                # the first cycle settles from the current state/input.
                self._sim.reset(vector)
                self._unit_delay_ready = True
            if record:
                history = self._sim.apply_vector_history(vector)
                settled = {
                    net_name: changes[-1][1]
                    for net_name, changes in history.items()
                }
            else:
                self._sim.apply_vector(vector)
                settled = self._sim.final_values()
        outputs = {
            n: settled[n] & 1 for n in self.sequential.external_outputs
        }
        self.state = {
            q: settled[d] & 1
            for q, d in self.sequential.flipflops.items()
        }
        self.cycle += 1
        if record:
            return outputs, history
        return outputs

    def apply_vectors(
        self,
        input_sequence: "Sequence[Mapping[str, int] | Sequence[int]]",
    ) -> list[dict[str, int]]:
        """Clock through a batch of input vectors; return per-cycle outputs.

        Cycle-identical to calling :meth:`step` per entry.  Clocked
        feedback (each cycle's flip-flop state depends on the previous
        cycle's settled values) keeps one machine call per cycle, but
        the zero-delay engine's batched path samples only the nets the
        loop needs — external outputs and flip-flop D pins — instead of
        decoding the full per-net state dictionary every cycle.

        The whole batch runs under a ``seq.run`` telemetry span;
        ``seq.cycles``/``seq.batches`` counters and this simulator's
        :class:`BatchCounters` record *completed* cycles even when a
        mid-batch cycle raises (see the module docstring for the
        partial-progress contract).  On the zero-delay fast path the
        machine-level batch counters are fed the same totals, so
        throughput reports see clocked work like any other batch.
        """
        started = self.cycle
        t0 = time.perf_counter()
        span = telemetry.span("seq.run", engine=self.engine)
        span.__enter__()
        try:
            if not self._fast:
                return [self.step(inputs) for inputs in input_sequence]
            machine = self._sim.machine
            step = machine.step
            dump = machine.dump_state
            results: list[dict[str, int]] = []
            for inputs in input_sequence:
                step(self._core_vector(inputs))
                state = dump()
                results.append(
                    {n: state[i] & 1 for n, i in self._output_slots}
                )
                self.state = {
                    q: state[i] & 1 for q, i in self._ff_slots
                }
                self.cycle += 1
            return results
        finally:
            elapsed = time.perf_counter() - t0
            completed = self.cycle - started
            self.counters.record(completed, elapsed)
            if self._fast:
                self._sim.machine.counters.record(completed, elapsed)
            if telemetry.enabled():
                telemetry.counter("seq.batches")
                telemetry.counter("seq.cycles", completed)
            span.__exit__(None, None, None)

    def run(
        self,
        input_sequence: "Sequence[Mapping[str, int] | Sequence[int]]",
    ) -> list[dict[str, int]]:
        """Clock through a sequence of input vectors; return outputs."""
        return self.apply_vectors(input_sequence)
