"""PC-sets: the set of Potential Change times of every net (§2).

By Lemma 1 of the paper, a net may change value at time ``t`` iff there
is a path of length ``t`` from the primary inputs to the net.  The
PC-set of a net is exactly that set of path lengths; it always contains
the net's minlevel and level, and its size is bounded by
``level - minlevel + 1``.

:func:`compute_pc_sets` implements the queue-driven algorithm of §2
verbatim (counts on gates and nets, a processing queue, set unions and
increments).  :func:`zero_insertion` implements the rule of Fig. 3:
whenever the inputs of a gate do not share the same minlevel, every
input whose minlevel is not minimal must retain its previous-vector
value, which is modelled by adding ``0`` to its PC-set.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from typing import Iterable, Optional

from repro import telemetry
from repro.analysis.levelize import Levelization, levelize
from repro.netlist.circuit import Circuit

__all__ = ["PCSets", "compute_pc_sets", "zero_insertion_targets"]


class PCSets:
    """PC-sets for every net and gate of one circuit.

    PC-sets are stored as sorted tuples of ints.  After
    :meth:`apply_zero_insertion` the net PC-sets may additionally
    contain 0 for nets that must retain their previous-vector value;
    the original (pre-insertion) sets remain available via
    :attr:`raw_net_pc_sets`.
    """

    def __init__(
        self,
        circuit: Circuit,
        net_pc_sets: dict[str, tuple[int, ...]],
        gate_pc_sets: dict[str, tuple[int, ...]],
        levels: Levelization,
    ) -> None:
        self.circuit = circuit
        self.net_pc_sets = net_pc_sets
        self.raw_net_pc_sets = dict(net_pc_sets)
        self.gate_pc_sets = gate_pc_sets
        self.levels = levels
        #: Nets that had 0 added by zero insertion.
        self.zero_added: set[str] = set()

    # ------------------------------------------------------------------
    def net_pc_set(self, net_name: str) -> tuple[int, ...]:
        return self.net_pc_sets[net_name]

    def gate_pc_set(self, gate_name: str) -> tuple[int, ...]:
        return self.gate_pc_sets[gate_name]

    def latest_change_before(self, net_name: str, time: int) -> int:
        """Largest PC element of ``net_name`` strictly smaller than ``time``.

        This is the operand-selection rule of §2: the value of a net at
        time ``time - 1`` lives in the variable of its latest potential
        change at or before that moment.  Zero insertion guarantees the
        element exists; a :class:`KeyError`-like failure here indicates
        the caller skipped :meth:`apply_zero_insertion`.
        """
        pc = self.net_pc_sets[net_name]
        idx = bisect_left(pc, time)
        if idx == 0:
            raise ValueError(
                f"net {net_name!r} has no PC element before t={time} "
                f"(PC-set {pc}); zero insertion missing?"
            )
        return pc[idx - 1]

    def latest_change_at_or_before(self, net_name: str, time: int) -> int:
        """Largest PC element of ``net_name`` that is <= ``time``.

        Used by the output routine: a print at time ``t`` shows the value
        the net holds *at* ``t``, i.e. its latest potential change not
        after ``t``.
        """
        pc = self.net_pc_sets[net_name]
        idx = bisect_left(pc, time + 1)
        if idx == 0:
            raise ValueError(
                f"net {net_name!r} has no PC element at or before t={time} "
                f"(PC-set {pc}); zero insertion missing?"
            )
        return pc[idx - 1]

    # ------------------------------------------------------------------
    def apply_zero_insertion(
        self, monitored: Optional[Iterable[str]] = None
    ) -> set[str]:
        """Add 0 to the PC-set of every net that must retain its value.

        ``monitored`` nets (default: the circuit's primary outputs) are
        treated as the inputs of a pseudo-gate of type PRINT, exactly as
        §2 prescribes for the output routine.

        Returns the set of nets that received a zero.  Idempotent.
        """
        targets = zero_insertion_targets(
            self.circuit, self.levels, monitored=monitored
        )
        for net_name in targets:
            pc = self.net_pc_sets[net_name]
            if not pc or pc[0] != 0:
                self.net_pc_sets[net_name] = (0,) + pc
        self.zero_added |= targets
        return targets

    def output_pc_set(
        self, monitored: Optional[Iterable[str]] = None
    ) -> tuple[int, ...]:
        """PC-set of the PRINT pseudo-gate: union over monitored nets.

        Uses the raw (pre-insertion) PC-sets; one output vector is
        printed per element.
        """
        if monitored is None:
            monitored = self.circuit.outputs
        union: set[int] = set()
        for net_name in monitored:
            union.update(self.raw_net_pc_sets[net_name])
        if not union:
            union = {0}
        return tuple(sorted(union))

    # ------------------------------------------------------------------
    def total_elements(self) -> int:
        """Total PC-set elements over all nets (drives PC-set code size)."""
        return sum(len(pc) for pc in self.net_pc_sets.values())

    def max_size(self) -> int:
        return max((len(pc) for pc in self.net_pc_sets.values()), default=0)

    def __repr__(self) -> str:
        return (
            f"PCSets({self.circuit.name!r}: {len(self.net_pc_sets)} nets, "
            f"{self.total_elements()} elements)"
        )


def compute_pc_sets(
    circuit: Circuit, levels: Optional[Levelization] = None
) -> PCSets:
    """Run the PC-set algorithm of §2.

    The implementation follows the paper's six steps literally: counts
    are attached to every net and gate, zero-count nets seed a processing
    queue, and sets are propagated by union (nets) and union-then-
    increment (gates).
    """
    with telemetry.span("pcset", circuit=circuit.name):
        return _compute_pc_sets(circuit, levels)


def _compute_pc_sets(
    circuit: Circuit, levels: Optional[Levelization] = None
) -> PCSets:
    if levels is None:
        levels = levelize(circuit)

    net_counts: dict[str, int] = {}
    gate_counts: dict[str, int] = {}
    net_pc: dict[str, tuple[int, ...]] = {}
    gate_pc: dict[str, tuple[int, ...]] = {}

    # Step 1: assign counts.
    for net_name, net in circuit.nets.items():
        net_counts[net_name] = 0 if net.driver is None else 1
    for gate_name, gate in circuit.gates.items():
        gate_counts[gate_name] = gate.fan_in

    # Step 2: seed the queue with zero-count items (primary inputs,
    # constants, and zero-input gates).
    queue: deque[tuple[str, str]] = deque()
    for net_name, count in net_counts.items():
        if count == 0:
            queue.append(("net", net_name))
    for gate_name, count in gate_counts.items():
        if count == 0:
            queue.append(("gate", gate_name))

    # Steps 3-6: drain the queue.
    while queue:
        kind, name = queue.popleft()
        if kind == "net":
            net = circuit.nets[name]
            if net.driver is None:
                union: set[int] = set()
            else:
                union = set(gate_pc[net.driver])
            if not union:
                union = {0}
            net_pc[name] = tuple(sorted(union))
            for reader in net.fanout:
                gate_counts[reader] -= 1
                if gate_counts[reader] == 0:
                    queue.append(("gate", reader))
        else:
            gate = circuit.gates[name]
            union = set()
            for in_name in gate.inputs:
                union.update(net_pc[in_name])
            incremented = {t + 1 for t in union}
            if not incremented:
                # Constant signals: treated as changing at time 0 only.
                incremented = {0}
            gate_pc[name] = tuple(sorted(incremented))
            out_name = gate.output
            net_counts[out_name] -= 1
            if net_counts[out_name] == 0:
                queue.append(("net", out_name))

    if len(net_pc) != len(circuit.nets):
        # Counts never reached zero somewhere: a cycle. Let the
        # topological sort produce the canonical error with a witness.
        circuit.topological_gates()

    return PCSets(circuit, net_pc, gate_pc, levels)


def zero_insertion_targets(
    circuit: Circuit,
    levels: Levelization,
    monitored: Optional[Iterable[str]] = None,
) -> set[str]:
    """Nets that must retain their previous-vector value (Figs. 2-3).

    For every gate (and for the PRINT pseudo-gate over ``monitored``),
    compare input minlevels; every input whose minlevel exceeds the
    gate's minimum gets a zero.
    """
    targets: set[str] = set()
    minlevel = levels.net_minlevels

    def mark(input_nets: list[str]) -> None:
        if len(input_nets) < 2:
            return
        lowest = min(minlevel[n] for n in input_nets)
        for n in input_nets:
            if minlevel[n] > lowest:
                targets.add(n)

    for gate in circuit.gates.values():
        mark(gate.inputs)
    monitored_list = list(monitored) if monitored is not None else circuit.outputs
    mark(monitored_list)
    return targets
