"""The undirected network graph of §4 (Figs. 13-16).

One vertex per gate and per net; an undirected edge joins a gate vertex
to a net vertex whenever the gate uses the net as an input or as an
output.  The graph is bipartite and — because a net may feed the same
gate twice — a multigraph.

Shift elimination reads this graph as a constraint system: an *output*
edge says ``alignment(net) = alignment(gate)`` and an *input* edge says
``alignment(net) = alignment(gate) - 1`` (conditions 2-4 of §4).  A
cycle is consistent iff its *weight* — computed by the paper's
traversal rule — is zero; a non-zero-weight cycle forces a retained
shift of that magnitude.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.netlist.circuit import Circuit

__all__ = [
    "Vertex",
    "Edge",
    "UndirectedNetworkGraph",
    "cycle_weight",
    "fundamental_cycles",
    "can_eliminate_all_shifts",
]

#: A vertex is ("net", name) or ("gate", name).
Vertex = tuple[str, str]


class Edge:
    """An undirected gate-net edge.

    ``role`` is ``"input"`` if the gate reads the net, ``"output"`` if
    the gate drives it.  ``key`` disambiguates parallel edges (a net
    wired to two input pins of the same gate).
    """

    __slots__ = ("gate", "net", "role", "key")

    def __init__(self, gate: str, net: str, role: str, key: int) -> None:
        self.gate = gate
        self.net = net
        self.role = role
        self.key = key

    @property
    def gate_vertex(self) -> Vertex:
        return ("gate", self.gate)

    @property
    def net_vertex(self) -> Vertex:
        return ("net", self.net)

    def other(self, vertex: Vertex) -> Vertex:
        return self.net_vertex if vertex == self.gate_vertex else self.gate_vertex

    def __repr__(self) -> str:
        return f"Edge({self.gate}-{self.net}, {self.role}, #{self.key})"


class UndirectedNetworkGraph:
    """The undirected network graph of a circuit."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self.edges: list[Edge] = []
        self.adjacency: dict[Vertex, list[Edge]] = {}
        key = 0
        for gate in circuit.gates.values():
            for in_net in gate.inputs:
                self._add(Edge(gate.name, in_net, "input", key))
                key += 1
            self._add(Edge(gate.name, gate.output, "output", key))
            key += 1
        # Nets with no incident edge (isolated primary inputs) still get
        # vertices so component counting is honest.
        for net_name in circuit.nets:
            self.adjacency.setdefault(("net", net_name), [])

    def _add(self, edge: Edge) -> None:
        self.edges.append(edge)
        self.adjacency.setdefault(edge.gate_vertex, []).append(edge)
        self.adjacency.setdefault(edge.net_vertex, []).append(edge)

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.adjacency)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def vertices(self) -> Iterator[Vertex]:
        return iter(self.adjacency)

    def components(self) -> list[set[Vertex]]:
        """Connected components (as vertex sets)."""
        seen: set[Vertex] = set()
        result: list[set[Vertex]] = []
        for start in self.adjacency:
            if start in seen:
                continue
            component: set[Vertex] = set()
            stack = [start]
            while stack:
                vertex = stack.pop()
                if vertex in component:
                    continue
                component.add(vertex)
                for edge in self.adjacency[vertex]:
                    stack.append(edge.other(vertex))
            seen |= component
            result.append(component)
        return result

    def cycle_rank(self) -> int:
        """Number of independent cycles: sum over components of E-V+1.

        §4: "The number of edges that must be removed from each connected
        component is equal to F = E - V + 1", the back-arc count of any
        DFS of the component.
        """
        return self.num_edges - self.num_vertices + len(self.components())

    def is_acyclic(self) -> bool:
        return self.cycle_rank() == 0

    def to_networkx(self):
        """Export as a ``networkx.MultiGraph`` (for plotting/debugging)."""
        import networkx as nx

        graph = nx.MultiGraph()
        for vertex in self.adjacency:
            graph.add_node(vertex, kind=vertex[0])
        for edge in self.edges:
            graph.add_edge(
                edge.gate_vertex, edge.net_vertex, key=edge.key, role=edge.role
            )
        return graph

    def __repr__(self) -> str:
        return (
            f"UndirectedNetworkGraph({self.circuit.name!r}: "
            f"{self.num_vertices} vertices, {self.num_edges} edges, "
            f"rank {self.cycle_rank()})"
        )


def cycle_weight(cycle: list[Edge]) -> int:
    """Weight of a simple cycle, per the §4 traversal rule.

    ``cycle`` is the edge sequence of a closed walk alternating net and
    gate vertices.  Each gate vertex is entered by one edge and left by
    the next; it contributes +1 when entered through an input edge and
    left through an output edge, -1 for the opposite, 0 when both edges
    have the same role.  Net vertices contribute 0.  The sign depends on
    traversal direction; the magnitude does not.
    """
    if not cycle:
        return 0
    total = 0
    n = len(cycle)
    for i, edge in enumerate(cycle):
        next_edge = cycle[(i + 1) % n]
        if edge.gate != next_edge.gate:
            continue  # the shared vertex is a net, weight 0
        # Consecutive edges sharing the gate vertex: entering via `edge`,
        # leaving via `next_edge`.  But two consecutive edges may share
        # both a gate and a net name (e.g. a 2-edge parallel cycle);
        # alternation means edge i and i+1 share exactly one vertex, and
        # for even positions in a net-started walk that vertex is a gate.
        if edge.role == "input" and next_edge.role == "output":
            total += 1
        elif edge.role == "output" and next_edge.role == "input":
            total -= 1
    return total


def _shares_gate(a: Edge, b: Edge) -> bool:
    return a.gate == b.gate


def fundamental_cycles(
    graph: UndirectedNetworkGraph,
    roots: Optional[list[Vertex]] = None,
) -> list[list[Edge]]:
    """A fundamental cycle basis via an iterative DFS spanning forest.

    Each non-tree ("back") edge closes exactly one cycle with the tree
    path between its endpoints.  Returns each cycle as an edge list
    ordered along the cycle, suitable for :func:`cycle_weight`.
    """
    parent_edge: dict[Vertex, Optional[Edge]] = {}
    depth: dict[Vertex, int] = {}
    cycles: list[list[Edge]] = []
    visited_edges: set[int] = set()

    order = list(roots) if roots else list(graph.adjacency)
    for root in order:
        if root in parent_edge:
            continue
        parent_edge[root] = None
        depth[root] = 0
        stack: list[Vertex] = [root]
        while stack:
            vertex = stack.pop()
            for edge in graph.adjacency[vertex]:
                if edge.key in visited_edges:
                    continue
                other = edge.other(vertex)
                if other not in parent_edge:
                    visited_edges.add(edge.key)
                    parent_edge[other] = edge
                    depth[other] = depth[vertex] + 1
                    stack.append(other)
                else:
                    visited_edges.add(edge.key)
                    cycles.append(_close_cycle(edge, vertex, other,
                                               parent_edge, depth))
    return cycles


def _close_cycle(
    back_edge: Edge,
    u: Vertex,
    v: Vertex,
    parent_edge: dict[Vertex, Optional[Edge]],
    depth: dict[Vertex, int],
) -> list[Edge]:
    """Build the cycle formed by ``back_edge`` and the tree path u..v."""
    up_from_u: list[Edge] = []
    up_from_v: list[Edge] = []
    while depth[u] > depth[v]:
        edge = parent_edge[u]
        assert edge is not None
        up_from_u.append(edge)
        u = edge.other(u)
    while depth[v] > depth[u]:
        edge = parent_edge[v]
        assert edge is not None
        up_from_v.append(edge)
        v = edge.other(v)
    while u != v:
        edge_u = parent_edge[u]
        edge_v = parent_edge[v]
        assert edge_u is not None and edge_v is not None
        up_from_u.append(edge_u)
        up_from_v.append(edge_v)
        u = edge_u.other(u)
        v = edge_v.other(v)
    # Walk: back_edge (u0 -> v0), then v0 up to meeting point, then down
    # to u0.  Ordering the edges along the closed walk:
    return [back_edge] + up_from_v + list(reversed(up_from_u))


def can_eliminate_all_shifts(circuit: Circuit) -> bool:
    """Whether conditions 1-4 of §4 are simultaneously enforceable.

    "A necessary and sufficient condition for a cycle to prevent the
    enforcement of conditions 1-4 is that its weight be non-zero."
    Cycle weights are linear over the cycle space (each weight is a sum
    of per-edge alignment constraints), so checking one fundamental
    cycle basis suffices: every cycle's weight is an integer
    combination of the basis weights.

    When this returns ``True``, path tracing retains zero shifts (a
    property the test suite cross-checks); when ``False``, *any*
    alignment must keep at least one shift.
    """
    graph = UndirectedNetworkGraph(circuit)
    return all(
        cycle_weight(cycle) == 0 for cycle in fundamental_cycles(graph)
    )
