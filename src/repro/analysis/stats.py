"""Aggregate static reports over a circuit.

:func:`circuit_report` gathers, in one dictionary, every static
quantity the paper's tables key on: size statistics, level/word counts
(Fig. 20), PC-set totals (the §3 code-size comparison), retained shift
counts for both shift-elimination algorithms (Fig. 21) and their
bit-field widths (Fig. 22).  The CLI and the benchmark reports print
straight from this.
"""

from __future__ import annotations

from repro.analysis.levelize import levelize
from repro.analysis.pcsets import compute_pc_sets
from repro.netlist.circuit import Circuit

__all__ = ["circuit_report"]


def circuit_report(
    circuit: Circuit,
    *,
    word_width: int = 32,
    include_alignments: bool = True,
) -> dict[str, object]:
    """Compute the full static report of a circuit."""
    from repro.parallel.alignment import unoptimized_shift_count

    levels = levelize(circuit)
    pc = compute_pc_sets(circuit, levels)
    depth = levels.depth
    report: dict[str, object] = {
        "name": circuit.name,
        "inputs": len(circuit.inputs),
        "outputs": len(circuit.outputs),
        "gates": circuit.num_gates,
        "nets": circuit.num_nets,
        "depth": depth,
        "levels": depth + 1,
        "words": -(-(depth + 1) // word_width),
        "pc_elements": pc.total_elements(),
        "pc_max_size": pc.max_size(),
        "shifts_unoptimized": unoptimized_shift_count(circuit),
    }
    if include_alignments:
        from repro.parallel.cyclebreak import cycle_breaking_alignment
        from repro.parallel.pathtrace import path_tracing_alignment

        pathtrace = path_tracing_alignment(circuit, levels)
        cyclebreak = cycle_breaking_alignment(circuit, levels)
        report.update(
            {
                "shifts_pathtrace": pathtrace.retained_shifts(),
                "shifts_cyclebreak": cyclebreak.retained_shifts(),
                "width_unoptimized": depth + 1,
                "width_pathtrace": pathtrace.max_width(),
                "width_cyclebreak": cyclebreak.max_width(),
            }
        )
    return report
