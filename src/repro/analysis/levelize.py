"""Levelization: the foundation of every algorithm in the paper.

Every net and gate gets two numbers:

- ``level`` — length of the *longest* path from the primary inputs
  (the latest time, in gate delays, at which the net may change);
- ``minlevel`` — length of the *shortest* such path (the earliest time
  at which a change can arrive).

Primary inputs and constant signals are level 0 / minlevel 0.  A gate's
level is ``max(input levels) + 1`` and its minlevel is
``min(input minlevels) + 1``; its output nets inherit both.  (§1, §2.)
"""

from __future__ import annotations

from repro import telemetry
from repro.netlist.circuit import Circuit

__all__ = ["Levelization", "levelize"]


class Levelization:
    """Levels and minlevels for one circuit.

    Attributes
    ----------
    net_levels / net_minlevels:
        Mapping net name -> level / minlevel.
    gate_levels / gate_minlevels:
        Mapping gate name -> level / minlevel.
    depth:
        Maximum net level (the circuit depth ``d``; the parallel
        technique uses bit-fields of ``d + 1`` bits).
    """

    def __init__(
        self,
        net_levels: dict[str, int],
        net_minlevels: dict[str, int],
        gate_levels: dict[str, int],
        gate_minlevels: dict[str, int],
    ) -> None:
        self.net_levels = net_levels
        self.net_minlevels = net_minlevels
        self.gate_levels = gate_levels
        self.gate_minlevels = gate_minlevels
        self.depth = max(net_levels.values(), default=0)

    @property
    def num_levels(self) -> int:
        """Number of distinct time points 0..depth (= depth + 1).

        This is the ``n`` of §3: the bit-field width before optimization.
        """
        return self.depth + 1

    def gates_by_level(self, circuit: Circuit) -> list[list[str]]:
        """Gate names grouped by level, ascending (level 1 first)."""
        buckets: dict[int, list[str]] = {}
        for gate_name, level in self.gate_levels.items():
            buckets.setdefault(level, []).append(gate_name)
        return [buckets[k] for k in sorted(buckets)]

    def __repr__(self) -> str:
        return f"Levelization(depth={self.depth}, nets={len(self.net_levels)})"


def levelize(circuit: Circuit) -> Levelization:
    """Compute levels and minlevels for every net and gate.

    Raises :class:`repro.errors.CyclicCircuitError` via the topological
    sort if the circuit has a combinational cycle.
    """
    with telemetry.span("levelize", circuit=circuit.name):
        return _levelize(circuit)


def _levelize(circuit: Circuit) -> Levelization:
    net_levels: dict[str, int] = {}
    net_minlevels: dict[str, int] = {}
    gate_levels: dict[str, int] = {}
    gate_minlevels: dict[str, int] = {}

    for net_name, net in circuit.nets.items():
        if net.driver is None:
            net_levels[net_name] = 0
            net_minlevels[net_name] = 0

    for gate in circuit.topological_gates():
        if gate.fan_in == 0:
            # Constant signals sit at level zero with the primary inputs.
            level = minlevel = 0
        else:
            level = max(net_levels[i] for i in gate.inputs) + 1
            minlevel = min(net_minlevels[i] for i in gate.inputs) + 1
        gate_levels[gate.name] = level
        gate_minlevels[gate.name] = minlevel
        net_levels[gate.output] = level
        net_minlevels[gate.output] = minlevel

    return Levelization(net_levels, net_minlevels, gate_levels, gate_minlevels)
