"""Static circuit analyses used by the code generators.

- :mod:`repro.analysis.levelize` — level / minlevel assignment (§1, §2).
- :mod:`repro.analysis.pcsets` — the PC-set algorithm and zero insertion
  (§2).
- :mod:`repro.analysis.graph` — the undirected network graph, cycles and
  cycle weights (§4, Figs. 13-16).
- :mod:`repro.analysis.stats` — aggregate reports over a circuit.
"""

from repro.analysis.levelize import Levelization, levelize
from repro.analysis.pcsets import PCSets, compute_pc_sets
from repro.analysis.graph import (
    UndirectedNetworkGraph,
    can_eliminate_all_shifts,
    cycle_weight,
    fundamental_cycles,
)

__all__ = [
    "Levelization",
    "levelize",
    "PCSets",
    "compute_pc_sets",
    "UndirectedNetworkGraph",
    "can_eliminate_all_shifts",
    "cycle_weight",
    "fundamental_cycles",
]
