"""Hazard (glitch) analysis over unit-delay histories.

§3 notes that "although the current implementation of the parallel
technique does not perform hazard analysis, such analysis could be done
quickly by using a binary search technique and comparison fields of the
form 0...01...1 and 1...10...0."  This module implements that idea —
a bit-field is hazard-free exactly when it is *monotone* (all of one
value, then all of the other), i.e. when it equals one of those
comparison fields — plus the equivalent classification over change
lists, so the analysis also applies to the event-driven and PC-set
simulators.

Terminology (per vector, per net):

- ``STEADY`` — no change after time 0;
- ``CLEAN`` — exactly one transition;
- ``STATIC`` hazard — starts and ends at the same value but pulses in
  between (0-1-0 or 1-0-1);
- ``DYNAMIC`` hazard — ends at the opposite value with more than one
  transition (e.g. 0-1-0-1).
"""

from __future__ import annotations

import enum
from typing import Mapping, Sequence

from repro.errors import SimulationError

__all__ = [
    "HazardKind",
    "classify_changes",
    "classify_field",
    "field_is_monotone",
    "transition_time_binary_search",
    "find_hazards",
]


class HazardKind(enum.Enum):
    STEADY = "steady"
    CLEAN = "clean"
    STATIC = "static-hazard"
    DYNAMIC = "dynamic-hazard"

    @property
    def is_hazard(self) -> bool:
        return self in (HazardKind.STATIC, HazardKind.DYNAMIC)


def classify_changes(changes: Sequence[tuple[int, int]]) -> HazardKind:
    """Classify a change list ``[(time, value), ...]`` (time 0 first)."""
    transitions = len(changes) - 1
    if transitions <= 0:
        return HazardKind.STEADY
    if transitions == 1:
        return HazardKind.CLEAN
    if changes[0][1] == changes[-1][1]:
        return HazardKind.STATIC
    return HazardKind.DYNAMIC


def field_is_monotone(field: int, width: int) -> bool:
    """True iff ``field`` (over ``width`` bits) has at most one transition.

    Monotone fields are exactly the paper's comparison patterns
    0...01...1 and 1...10...0 (and the two constants).  Constant-time
    check: a 0->1 staircase satisfies ``f & (f + 1) == 0`` after
    masking; the complement covers the 1->0 staircase.
    """
    mask = (1 << width) - 1
    f = field & mask
    if f & (f + 1) == 0:
        return True  # 0...01...1 (includes all-0 and all-1)
    g = (~f) & mask
    return g & (g + 1) == 0  # 1...10...0


def classify_field(field: int, width: int) -> HazardKind:
    """Classify a bit-field history (bit t = value at time t)."""
    if width < 1:
        raise SimulationError("width must be >= 1")
    mask = (1 << width) - 1
    f = field & mask
    first = f & 1
    last = (f >> (width - 1)) & 1
    if f == 0 or f == mask:
        return HazardKind.STEADY
    if field_is_monotone(f, width):
        return HazardKind.CLEAN
    if first == last:
        return HazardKind.STATIC
    return HazardKind.DYNAMIC


def transition_time_binary_search(field: int, width: int) -> int:
    """Time of the single transition of a monotone field, via binary
    search with the paper's comparison fields.

    For a clean 0->1 or 1->0 field, returns the first time holding the
    final value.  Probes compare the field against staircase masks
    0...01...1, halving the interval each step — the §3 suggestion made
    concrete.  Raises if the field is not a clean transition.
    """
    mask = (1 << width) - 1
    f = field & mask
    if f == 0 or f == mask or not field_is_monotone(f, width):
        raise SimulationError("field does not hold a single transition")
    rising = not (f & 1)
    probe_target = f if rising else (~f) & mask
    # probe_target is 0...01...1; find its lowest set bit by binary
    # search with staircase comparison fields.
    lo, hi = 0, width - 1
    while lo < hi:
        mid = (lo + hi) // 2
        staircase = mask ^ ((1 << (mid + 1)) - 1)  # 1...10...0, mid+1 zeros
        if probe_target & ~staircase & mask:
            hi = mid
        else:
            lo = mid + 1
    return lo


def find_hazards(
    histories: Mapping[str, Sequence[tuple[int, int]]],
    *,
    include_clean: bool = False,
) -> dict[str, HazardKind]:
    """Classify every net of a per-vector history.

    Returns only hazardous nets by default; with ``include_clean`` the
    full classification.  Feed it the output of any simulator's
    ``apply_vector_history`` / ``apply_vector(record=True)``.
    """
    result: dict[str, HazardKind] = {}
    for net_name, changes in histories.items():
        kind = classify_changes(changes)
        if include_clean or kind.is_hazard:
            result[net_name] = kind
    return result
