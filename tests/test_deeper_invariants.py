"""Deeper cross-cutting invariants.

Written as a second wave of property checks: mutation detection by the
equivalence checker, time-scaling of uniform multi-delay simulation,
rotation invariance of cycle weights, and PC-set/program-size
consistency laws.
"""

import random

import pytest

from repro.analysis.graph import (
    UndirectedNetworkGraph,
    cycle_weight,
    fundamental_cycles,
)
from repro.analysis.pcsets import compute_pc_sets
from repro.eventsim.multidelay import MultiDelaySimulator
from repro.eventsim.simulator import EventDrivenSimulator
from repro.harness.vectors import vectors_for
from repro.logic import GateType
from repro.netlist.circuit import Circuit
from repro.netlist.random_circuits import random_dag_circuit
from repro.pcset.codegen import generate_pcset_program
from repro.verify import check_equivalence


class TestMutationDetection:
    """The equivalence checker must catch single-gate mutations."""

    SWAP = {
        GateType.AND: GateType.OR,
        GateType.OR: GateType.AND,
        GateType.NAND: GateType.NOR,
        GateType.NOR: GateType.NAND,
        GateType.XOR: GateType.XNOR,
        GateType.XNOR: GateType.XOR,
        GateType.NOT: GateType.BUF,
        GateType.BUF: GateType.NOT,
    }

    def mutate(self, circuit: Circuit, gate_name: str) -> Circuit:
        mutant = Circuit(circuit.name + "_mut")
        for net_name in circuit.inputs:
            mutant.add_net(net_name, is_input=True)
        for gate in circuit.topological_gates():
            gate_type = gate.gate_type
            if gate.name == gate_name and gate_type in self.SWAP:
                gate_type = self.SWAP[gate_type]
            mutant.add_gate(gate_type, gate.output, gate.inputs,
                            name=gate.name)
        for net_name in circuit.outputs:
            mutant.add_net(net_name, is_output=True)
        mutant.validate()
        return mutant

    @pytest.mark.parametrize("seed", range(5))
    def test_observable_mutations_caught(self, seed):
        circuit = random_dag_circuit(seed + 110, num_inputs=4,
                                     num_gates=12)
        rng = random.Random(seed)
        mutated_gate = rng.choice(list(circuit.gates))
        mutant = self.mutate(circuit, mutated_gate)
        result = check_equivalence(circuit, mutant)
        if not result:
            # Counterexample must actually witness the difference.
            from repro.eventsim.zerodelay import steady_state

            golden_out = steady_state(circuit, result.counterexample)
            mutant_out = steady_state(mutant, result.counterexample)
            for name in result.mismatched_outputs:
                assert golden_out[name] != mutant_out[name]
        # (An unobservable mutation — masked logic — legitimately
        # passes; the exhaustive check proves it is truly equivalent.)


class TestUniformDelayScaling:
    """With every gate delay = d, change times scale by exactly d."""

    @pytest.mark.parametrize("scale", [2, 3])
    def test_histories_scale(self, scale):
        circuit = random_dag_circuit(123, num_inputs=4, num_gates=15)
        unit = EventDrivenSimulator(circuit)
        multi = MultiDelaySimulator(circuit, delays=scale)
        zeros = [0] * len(circuit.inputs)
        unit.reset(zeros)
        multi.reset(zeros)
        for vector in vectors_for(circuit, 8, seed=5):
            base = unit.apply_vector(vector, record=True)
            scaled = multi.apply_vector(vector, record=True)
            for net_name, changes in base.items():
                expected = [
                    (time * scale, value) for time, value in changes
                ]
                assert scaled[net_name] == expected, net_name


class TestCycleWeightLaws:
    def test_rotation_invariance(self):
        circuit = random_dag_circuit(7, num_inputs=4, num_gates=18)
        graph = UndirectedNetworkGraph(circuit)
        for cycle in fundamental_cycles(graph):
            weight = cycle_weight(cycle)
            for shift in range(1, len(cycle)):
                rotated = cycle[shift:] + cycle[:shift]
                assert cycle_weight(rotated) == weight

    def test_reversal_negates(self):
        circuit = random_dag_circuit(8, num_inputs=4, num_gates=18)
        graph = UndirectedNetworkGraph(circuit)
        for cycle in fundamental_cycles(graph):
            weight = cycle_weight(cycle)
            reversed_cycle = list(reversed(cycle))
            assert cycle_weight(reversed_cycle) == -weight


class TestProgramSizeLaws:
    @pytest.mark.parametrize("seed", range(4))
    def test_pcset_statement_count_is_pc_mass(self, seed):
        """Body statements == sum over gates of |PC-set(gate)|."""
        circuit = random_dag_circuit(seed + 130, num_inputs=4,
                                     num_gates=15)
        program, variables = generate_pcset_program(circuit)
        pc = variables.pc_sets
        expected = sum(
            len(pc.gate_pc_set(g.name))
            for g in circuit.gates.values()
            if g.fan_in > 0
        )
        assert len(program.body) == expected

    @pytest.mark.parametrize("seed", range(4))
    def test_pcset_state_vars_are_pc_elements(self, seed):
        circuit = random_dag_circuit(seed + 140, num_inputs=4,
                                     num_gates=15)
        program, variables = generate_pcset_program(circuit)
        assert len(program.state_vars) == \
            variables.pc_sets.total_elements()

    @pytest.mark.parametrize("seed", range(4))
    def test_parallel_state_words_match_layout(self, seed):
        from repro.parallel.codegen import generate_parallel_program

        circuit = random_dag_circuit(seed + 150, num_inputs=4,
                                     num_gates=15)
        program, layout = generate_parallel_program(circuit,
                                                    word_width=8)
        assert len(program.state_vars) == layout.total_words()
