"""Tests for the PC-set algorithm (§2) and zero insertion."""

import pytest

from repro.analysis.levelize import levelize
from repro.analysis.pcsets import (
    compute_pc_sets,
    zero_insertion_targets,
)
from repro.netlist.builder import CircuitBuilder


def brute_force_path_lengths(circuit, net_name):
    """All path lengths from the primary inputs to ``net_name``.

    Lemma 1 (§2) says this set *is* the PC-set; the recursive
    enumeration below is the specification the queue algorithm must
    match.
    """
    memo: dict[str, set[int]] = {}

    def lengths(net: str) -> set[int]:
        if net in memo:
            return memo[net]
        driver = circuit.nets[net].driver
        if driver is None:
            memo[net] = {0}
            return memo[net]
        gate = circuit.gates[driver]
        if gate.fan_in == 0:
            memo[net] = {0}
            return memo[net]
        union: set[int] = set()
        for in_net in gate.inputs:
            union |= {length + 1 for length in lengths(in_net)}
        memo[net] = union
        return union

    return lengths(net_name)


def test_fig4_pc_sets(fig4_circuit):
    pc = compute_pc_sets(fig4_circuit)
    assert pc.net_pc_set("A") == (0,)
    assert pc.net_pc_set("D") == (1,)
    assert pc.net_pc_set("E") == (1, 2)
    assert pc.gate_pc_set("E") == (1, 2)


def test_fig3_zero_insertion(fig4_circuit):
    pc = compute_pc_sets(fig4_circuit)
    added = pc.apply_zero_insertion()
    # D (minlevel 1) feeds E together with C (minlevel 0): D retains.
    assert added == {"D"}
    assert pc.net_pc_set("D") == (0, 1)
    assert pc.raw_net_pc_sets["D"] == (1,)
    # Idempotent.
    pc.apply_zero_insertion()
    assert pc.net_pc_set("D") == (0, 1)


def test_fig2_shape():
    """A gate whose inputs have PC-sets {2,3}, {3}, {2,4} gets {3,4,5}."""
    b = CircuitBuilder("fig2")
    a = b.input("A")
    # chains producing the desired PC-sets:
    d1 = b.buf(None, a)            # {1}
    d2 = b.buf(None, d1)           # {2}
    d3 = b.buf(None, d2)           # {3}
    in1 = b.or_("IN1", d1, d2)     # {2,3}
    in2 = b.buf("IN2", d2)         # {3}
    in3 = b.or_("IN3", d1, d3)     # {2,4}
    g = b.and_("G", in1, in2, in3)
    b.outputs(g)
    pc = compute_pc_sets(b.build())
    assert pc.net_pc_set("IN1") == (2, 3)
    assert pc.net_pc_set("IN2") == (3,)
    assert pc.net_pc_set("IN3") == (2, 4)
    assert pc.net_pc_set("G") == (3, 4, 5)


def test_pc_sets_match_brute_force(small_random_circuit):
    pc = compute_pc_sets(small_random_circuit)
    for net_name in small_random_circuit.nets:
        expected = brute_force_path_lengths(small_random_circuit, net_name)
        assert set(pc.net_pc_set(net_name)) == expected, net_name


def test_pc_set_contains_level_and_minlevel(small_random_circuit):
    lev = levelize(small_random_circuit)
    pc = compute_pc_sets(small_random_circuit, lev)
    for net_name in small_random_circuit.nets:
        pcset = pc.net_pc_set(net_name)
        assert pcset[0] == lev.net_minlevels[net_name]
        assert pcset[-1] == lev.net_levels[net_name]
        # Size bound from §2.
        assert len(pcset) <= (
            lev.net_levels[net_name] - lev.net_minlevels[net_name] + 1
        )


def test_latest_change_rules(fig4_circuit):
    pc = compute_pc_sets(fig4_circuit)
    pc.apply_zero_insertion()
    assert pc.latest_change_before("D", 2) == 1
    assert pc.latest_change_before("D", 1) == 0
    assert pc.latest_change_at_or_before("D", 1) == 1
    assert pc.latest_change_at_or_before("E", 1) == 1
    with pytest.raises(ValueError, match="no PC element"):
        pc.latest_change_before("A", 0)


def test_latest_change_requires_zero_insertion(fig4_circuit):
    pc = compute_pc_sets(fig4_circuit)
    with pytest.raises(ValueError, match="zero insertion"):
        pc.latest_change_before("D", 1)


def test_output_pc_set_is_union(fig4_circuit):
    pc = compute_pc_sets(fig4_circuit)
    pc.apply_zero_insertion(["D", "E"])
    assert pc.output_pc_set(["D", "E"]) == (1, 2)
    assert pc.output_pc_set(["D"]) == (1,)


def test_zero_insertion_monitored_as_print_gate():
    # Monitored nets with differing minlevels behave like gate inputs.
    b = CircuitBuilder("mon")
    a, c = b.inputs("A", "C")
    d = b.buf("D", a)
    b.outputs(d, c)
    circuit = b.build()
    lev = levelize(circuit)
    targets = zero_insertion_targets(circuit, lev)
    assert targets == {"D"}


def test_unary_gates_never_force_insertion():
    b = CircuitBuilder("unary")
    a = b.input("A")
    n1 = b.not_("N1", a)
    n2 = b.not_("N2", n1)
    b.outputs(n2)
    circuit = b.build()
    pc = compute_pc_sets(circuit)
    assert pc.apply_zero_insertion() == set()


def test_constant_pc_set():
    b = CircuitBuilder("const")
    a = b.input("A")
    one = b.const1("ONE")
    out = b.and_("OUT", a, one)
    b.outputs(out)
    pc = compute_pc_sets(b.build())
    assert pc.net_pc_set("ONE") == (0,)
    assert pc.net_pc_set("OUT") == (1,)


def test_totals(fig4_circuit):
    pc = compute_pc_sets(fig4_circuit)
    assert pc.total_elements() == 1 + 1 + 1 + 1 + 2  # A B C D E
    assert pc.max_size() == 2
    assert "fig4" in repr(pc)
