"""Tests for hazard analysis (the §3 binary-search suggestion)."""

import itertools

import pytest

from repro.errors import SimulationError
from repro.eventsim.simulator import EventDrivenSimulator
from repro.hazards import (
    HazardKind,
    classify_changes,
    classify_field,
    field_is_monotone,
    find_hazards,
    transition_time_binary_search,
)
from repro.netlist.builder import CircuitBuilder
from repro.parallel.simulator import ParallelSimulator


class TestClassifyChanges:
    def test_steady(self):
        assert classify_changes([(0, 1)]) is HazardKind.STEADY

    def test_clean(self):
        assert classify_changes([(0, 0), (3, 1)]) is HazardKind.CLEAN

    def test_static_hazard(self):
        kind = classify_changes([(0, 0), (2, 1), (4, 0)])
        assert kind is HazardKind.STATIC
        assert kind.is_hazard

    def test_dynamic_hazard(self):
        kind = classify_changes([(0, 0), (1, 1), (2, 0), (5, 1)])
        assert kind is HazardKind.DYNAMIC
        assert kind.is_hazard

    def test_clean_not_hazard(self):
        assert not HazardKind.CLEAN.is_hazard
        assert not HazardKind.STEADY.is_hazard


class TestFieldClassification:
    def test_monotone_patterns(self):
        # The paper's comparison fields: 0...01...1 and 1...10...0.
        assert field_is_monotone(0b0000, 4)
        assert field_is_monotone(0b1111, 4)
        assert field_is_monotone(0b1100, 4)
        assert field_is_monotone(0b0011, 4)
        assert not field_is_monotone(0b0101, 4)
        assert not field_is_monotone(0b1001, 4)

    def test_exhaustive_equivalence_with_changes(self):
        # classify_field must agree with classify_changes on every
        # 6-bit history.
        for width in (2, 4, 6):
            for field in range(1 << width):
                bits = [(field >> t) & 1 for t in range(width)]
                changes = [(0, bits[0])]
                for t, value in enumerate(bits):
                    if value != changes[-1][1]:
                        changes.append((t, value))
                assert classify_field(field, width) is \
                    classify_changes(changes), (width, bin(field))

    def test_width_guard(self):
        with pytest.raises(SimulationError):
            classify_field(0, 0)


class TestBinarySearch:
    @pytest.mark.parametrize("width", [4, 8, 32])
    def test_finds_every_transition(self, width):
        for t in range(1, width):
            rising = ((1 << width) - 1) ^ ((1 << t) - 1)  # 1..10..0
            assert transition_time_binary_search(rising, width) == t
            falling = (1 << t) - 1  # 0..01..1 reversed in time
            assert transition_time_binary_search(falling, width) == t

    def test_rejects_non_clean(self):
        with pytest.raises(SimulationError):
            transition_time_binary_search(0b0101, 4)
        with pytest.raises(SimulationError):
            transition_time_binary_search(0b0000, 4)
        with pytest.raises(SimulationError):
            transition_time_binary_search(0b1111, 4)


class TestFindHazards:
    def _static_hazard_circuit(self):
        """Classic static-1 hazard: OUT = (A & S) | (B & ~S)."""
        b = CircuitBuilder("mux_hazard")
        a, bb, s = b.inputs("A", "B", "S")
        sn = b.not_("SN", s)
        p = b.and_("P", a, s)
        q = b.and_("Q", bb, sn)
        out = b.or_("OUT", p, q)
        b.outputs(out)
        return b.build()

    def test_detects_mux_glitch(self):
        circuit = self._static_hazard_circuit()
        sim = EventDrivenSimulator(circuit)
        # A=B=1; S falls 1 -> 0: OUT should stay 1 but glitches low.
        sim.reset([1, 1, 1])
        history = sim.apply_vector([1, 1, 0], record=True)
        hazards = find_hazards(history)
        assert hazards.get("OUT") is HazardKind.STATIC

    def test_parallel_fields_show_same_glitch(self):
        circuit = self._static_hazard_circuit()
        sim = ParallelSimulator(circuit, word_width=8)
        sim.reset([1, 1, 1])
        history = sim.apply_vector_history([1, 1, 0])
        hazards = find_hazards(history)
        assert hazards.get("OUT") is HazardKind.STATIC

    def test_include_clean_mode(self):
        circuit = self._static_hazard_circuit()
        sim = EventDrivenSimulator(circuit)
        sim.reset([1, 1, 1])
        history = sim.apply_vector([1, 1, 0], record=True)
        full = find_hazards(history, include_clean=True)
        assert set(full) == set(history)
        assert full["A"] is HazardKind.STEADY

    def test_no_hazards_in_clean_run(self, fig4_circuit):
        sim = EventDrivenSimulator(fig4_circuit)
        sim.reset([0, 0, 0])
        history = sim.apply_vector([1, 1, 1], record=True)
        assert find_hazards(history) == {}
