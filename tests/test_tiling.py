"""Lane tiling past the word_width ceiling.

A machine compiled with ``tiles=K`` gives every net an array of K
words — ``word_width * K`` pattern lanes per compiled pass — and a
shift program run laned gives each lane its own word so time-shift
ops move history *within* a lane.  The contract everywhere is
bit-identity: at any K, on any backend, outputs (and, for the laned
chain, final machine state) equal the K=1 run word for word.
"""

import random

import pytest

from repro.codegen.packing import (
    MAX_TILES,
    lane_segments,
    select_lanes,
    select_tiles,
    tile_groups,
)
from repro.codegen.program import Assign, Bin, Const, Emit, Input, Program, Var
from repro.codegen.runtime import (
    compile_program,
    have_c_compiler,
    have_numpy,
)
from repro.errors import BackendError, SimulationError
from repro.faults.simulator import run_fault_simulation
from repro.fuzz.lattice import FuzzConfig
from repro.harness.vectors import vectors_for
from repro.lcc.zerodelay import LCCSimulator
from repro.netlist.random_circuits import random_dag_circuit
from repro.parallel.simulator import ParallelSimulator
from repro.partition.executor import PartitionedSimulator
from repro.pcset.simulator import PCSetSimulator

BACKENDS = ("python",) + (("c",) if have_c_compiler() else ())
ALL_BACKENDS = BACKENDS + (("numpy",) if have_numpy() else ())


def _program_with_state():
    """A tiny program exercising state, shifts, and sar."""
    p = Program("tiled_probe", word_width=8, inputs=["a", "b"])
    p.declare("s", 3)
    t = p.declare_temp("t")
    p.init.append(Assign(t, Bin("&", Input(0), Input(1))))
    p.body.append(Assign("s", Bin("^", Var("s"), Var(t))))
    p.body.append(Assign(t, Bin("sar", Var("s"), Const(2))))
    p.output.append(Emit(Bin("|", Var("s"), Bin("<<", Var(t), Const(1))),
                         ("o",)))
    p.validate()
    return p


class TestEmitterStability:
    """tiles=1 must be byte-identical to the untiled emitters —
    otherwise every existing cached artifact would recompile."""

    def test_python_source_k1_identity(self):
        p = _program_with_state()
        assert p.python_source(tiles=1) == p.python_source()

    def test_c_source_k1_identity(self):
        p = _program_with_state()
        assert p.c_source(tiles=1) == p.c_source()

    def test_tiled_sources_differ(self):
        p = _program_with_state()
        assert p.python_source(tiles=2) != p.python_source()
        assert p.c_source(tiles=2) != p.c_source()


class TestTiledMachineIdentity:
    """A K-tile machine is K independent copies of the K=1 machine."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("tiles", [2, 3])
    def test_lanes_are_independent(self, backend, tiles):
        p = _program_with_state()
        scalar = compile_program(p, backend)
        tiled = compile_program(p, backend, tiles=tiles)
        rng = random.Random(7)
        groups = [[rng.randrange(256) for _ in range(2)]
                  for _ in range(tiles)]
        want = []
        for group in groups:
            m = compile_program(p, backend)
            out = []
            m.run_packed_block([group], out)
            want.append(out)
        row = [groups[t][s] for s in range(2) for t in range(tiles)]
        got = []
        tiled.run_packed_block([row], got)
        n_out = scalar.num_outputs
        for t in range(tiles):
            assert [got[o * tiles + t] for o in range(n_out)] == want[t]

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_state_roundtrip_is_tile_minor(self, backend):
        p = _program_with_state()
        tiled = compile_program(p, backend, tiles=2)
        tiled.load_state([5, 9])
        assert tiled.dump_state() == [5, 9]


class TestSelectionPolicy:
    def test_python_backend_never_tiles(self):
        assert select_tiles(10_000, 8, backend="python") == 1
        assert select_lanes(10_000, backend="python") == 1

    def test_c_backend_scales_with_groups(self):
        assert select_tiles(8, 8, backend="c") == 1
        assert select_tiles(3 * 8, 8, backend="c") == 3
        assert select_tiles(100 * 8, 8, backend="c") == MAX_TILES

    def test_lane_floor(self):
        assert select_lanes(31, backend="c") == 1
        assert select_lanes(32, backend="c") == 2
        assert select_lanes(1000, backend="c") == MAX_TILES

    def test_word_width_one_packing_functions(self):
        # The packing-layer helpers must cope with degenerate 1-bit
        # words (one vector per lane) even though compiled programs
        # only exist at 8/16/32/64.
        assert select_tiles(5, 1, backend="c") == 5
        rows = tile_groups([[1], [0], [1]], 1, 2)
        assert rows == [[1, 0], [1, 0]]
        assert lane_segments(5, 2) == [(0, 2), (2, 3)]

    def test_lane_segments_cover_batch_in_order(self):
        for total in (1, 7, 16, 33):
            for lanes in (1, 2, 5):
                segs = lane_segments(total, lanes)
                assert len(segs) == lanes
                cursor = 0
                for start, length in segs:
                    assert start == cursor
                    cursor += length
                assert cursor == total
                # last lane always ends at the final vector
                assert segs[-1][0] + segs[-1][1] == total

    def test_bad_tiles_rejected(self):
        with pytest.raises(SimulationError, match="tiles"):
            LCCSimulator(random_dag_circuit(0, num_inputs=3, num_gates=6),
                         tiles=0)


class TestPackedTiledExecution:
    """Tiled packed apply_vectors vs the single-word packed path."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("tiles", [2, 4, "auto"])
    def test_lcc_batch_identity(self, backend, tiles):
        circuit = random_dag_circuit(21, num_inputs=5, num_gates=24)
        # 37 is not a multiple of word_width*K for any K under test.
        vectors = vectors_for(circuit, 37, seed=21)
        base = LCCSimulator(circuit, word_width=8,
                            backend=backend).apply_vectors(vectors)
        sim = LCCSimulator(circuit, word_width=8, backend=backend,
                           tiles=tiles)
        assert sim.apply_vectors(vectors) == base
        assert (sim.run_batch(vectors)
                == LCCSimulator(circuit, word_width=8,
                                backend=backend).run_batch(vectors))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pcset_settled_identity(self, backend):
        circuit = random_dag_circuit(22, num_inputs=4, num_gates=20)
        vectors = vectors_for(circuit, 29, seed=22)
        zeros = [0] * len(circuit.inputs)
        base = PCSetSimulator(circuit, word_width=8, backend=backend)
        base.reset(zeros)
        tiled = PCSetSimulator(circuit, word_width=8, backend=backend,
                               tiles=3)
        tiled.reset(zeros)
        assert tiled.settled_outputs(vectors) == base.settled_outputs(
            vectors
        )

    def test_batch_smaller_than_one_tile(self):
        # K clamps to the group count: a 3-vector batch on a K=4
        # request must not pad itself into a mostly-idle pass.
        circuit = random_dag_circuit(23, num_inputs=4, num_gates=15)
        vectors = vectors_for(circuit, 3, seed=23)
        base = LCCSimulator(circuit, word_width=8).apply_vectors(vectors)
        sim = LCCSimulator(circuit, word_width=8, tiles=4)
        assert sim.apply_vectors(vectors) == base


class TestLanedShiftExecution:
    """Shift programs packed K vectors per pass, one lane per word."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("optimization",
                             ["none", "pathtrace+trim"])
    @pytest.mark.parametrize("tiles", [2, 3])
    def test_outputs_and_final_state(self, backend, optimization, tiles):
        circuit = random_dag_circuit(31, num_inputs=5, num_gates=25)
        vectors = vectors_for(circuit, 41, seed=31)
        zeros = [0] * len(circuit.inputs)

        scalar = ParallelSimulator(circuit, optimization=optimization,
                                   word_width=8, backend=backend)
        scalar.reset(zeros)
        want = scalar.apply_vectors(vectors)

        laned = ParallelSimulator(circuit, optimization=optimization,
                                  word_width=8, backend=backend,
                                  tiles=tiles)
        laned.reset(zeros)
        assert laned.apply_vectors(vectors) == want
        # Exact chain continuity: the laned run hands the last lane's
        # state back to the scalar machine.
        assert (laned.machine.dump_state()
                == scalar.machine.dump_state())

    def test_chain_continues_across_batches(self):
        circuit = random_dag_circuit(32, num_inputs=4, num_gates=20)
        vectors = vectors_for(circuit, 50, seed=32)
        zeros = [0] * len(circuit.inputs)
        scalar = ParallelSimulator(circuit, word_width=8)
        scalar.reset(zeros)
        want = scalar.apply_vectors(vectors)
        laned = ParallelSimulator(circuit, word_width=8, tiles=2)
        laned.reset(zeros)
        got = laned.apply_vectors(vectors[:23])
        got += laned.apply_vectors(vectors[23:])
        assert got == want


class TestPartitionTiledExchange:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("tiles", [2, "auto"])
    def test_partitioned_matches_monolithic(self, backend, tiles):
        circuit = random_dag_circuit(41, num_inputs=5, num_gates=30)
        vectors = vectors_for(circuit, 37, seed=41)
        mono = LCCSimulator(circuit, word_width=8,
                            backend=backend).apply_vectors(vectors)
        part = PartitionedSimulator(circuit, partitions=3,
                                    word_width=8, backend=backend,
                                    tiles=tiles)
        assert part.apply_vectors(vectors) == mono


class TestTiledFaultGrading:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_report_identity(self, backend):
        circuit = random_dag_circuit(51, num_inputs=5, num_gates=22)
        vectors = vectors_for(circuit, 45, seed=51)
        base = run_fault_simulation(circuit, vectors, word_width=8,
                                    backend=backend)
        for tiles in (2, "auto"):
            tiled = run_fault_simulation(circuit, vectors, word_width=8,
                                         backend=backend, tiles=tiles)
            assert tiled == base

    def test_sharded_tiled_identity(self):
        circuit = random_dag_circuit(52, num_inputs=4, num_gates=18)
        vectors = vectors_for(circuit, 30, seed=52)
        base = run_fault_simulation(circuit, vectors, word_width=8)
        sharded = run_fault_simulation(circuit, vectors, word_width=8,
                                       tiles=2, workers=2)
        assert sharded == base


class TestNumpyBackend:
    @pytest.mark.skipif(have_numpy() is None, reason="numpy missing")
    def test_protocol_matches_python(self):
        p = _program_with_state()
        py = compile_program(p, "python")
        np_m = compile_program(p, "numpy")
        rng = random.Random(9)
        vectors = [[rng.randrange(256), rng.randrange(256)]
                   for _ in range(10)]
        for v in vectors:
            assert np_m.step(v) == py.step(v)
        assert np_m.dump_state() == py.dump_state()
        np_m.load_state([7])
        py.load_state([7])
        flat_a, flat_b = [], []
        np_m.run_block(vectors, flat_a)
        py.run_block(vectors, flat_b)
        assert flat_a == flat_b

    @pytest.mark.skipif(have_numpy() is None, reason="numpy missing")
    def test_lcc_numpy_identity(self):
        circuit = random_dag_circuit(61, num_inputs=4, num_gates=16)
        vectors = vectors_for(circuit, 20, seed=61)
        base = LCCSimulator(circuit, word_width=8).apply_vectors(vectors)
        for tiles in (1, 2):
            sim = LCCSimulator(circuit, word_width=8, backend="numpy",
                               tiles=tiles)
            assert sim.apply_vectors(vectors) == base

    def test_missing_numpy_raises_backenderror(self, monkeypatch):
        import repro.codegen.runtime as runtime

        monkeypatch.setattr(runtime, "_NUMPY", None)
        monkeypatch.setattr(runtime, "_NUMPY_PROBED", True)
        with pytest.raises(BackendError, match="numpy is not installed"):
            compile_program(_program_with_state(), "numpy")


class TestDiagnostics:
    def test_validate_group_names_vector_span(self):
        p = _program_with_state()
        m = compile_program(p, "python")
        with pytest.raises(SimulationError,
                           match=r"group 1 \(vectors 8\.\.15\)"):
            m.run_packed_block([[1, 2], [1, 1 << 20]])

    def test_validate_group_span_scales_with_tiles(self):
        p = _program_with_state()
        m = compile_program(p, "python", tiles=2)
        with pytest.raises(SimulationError,
                           match=r"group 1 \(vectors 16\.\.31\)"):
            m.run_packed_block([[0, 0, 0, 0], [0, 1 << 20, 0, 0]])


class TestFuzzLatticeTiles:
    def test_default_tiles_keeps_corpus_ids(self):
        config = FuzzConfig()
        assert "tiles" not in config.as_dict()
        assert FuzzConfig.from_dict(config.as_dict()) == config

    def test_tiled_config_round_trip(self):
        config = FuzzConfig(check="packed", technique="zero-lcc",
                            word_width=8, tiles=4)
        data = config.as_dict()
        assert data["tiles"] == 4
        assert FuzzConfig.from_dict(data) == config
        assert config.label().endswith("k4")
