"""Tests for stimulus tapes, replay, checkpoints and cone recompiles."""

import filecmp
import json

import pytest

from repro.codegen.runtime import have_c_compiler
from repro.errors import SimulationError
from repro.netlist.builder import CircuitBuilder
from repro.netlist.seqgen import binary_counter, lfsr, shift_register
from repro.replay import (
    ReplayCheckpoint,
    Tape,
    TapeError,
    fold_outputs,
    load_checkpoint,
    random_tape,
    replay_tape,
    write_tape,
)
from repro.seqsim import CompiledSequentialSimulator

BACKENDS = ["python"] + (["c"] if have_c_compiler() else [])


class TestTape:
    def test_write_read_round_trip(self, tmp_path):
        path = str(tmp_path / "t.tape")
        rows = [[1, 0], [0, 1], [1, 1], [0, 0]]
        assert write_tape(path, ["A", "B"], rows) == 4
        tape = Tape(path)
        assert tape.inputs == ["A", "B"]
        assert tape.cycles == 4
        assert tape.read(0, 4) == rows

    def test_mapping_rows(self, tmp_path):
        path = str(tmp_path / "t.tape")
        write_tape(path, ["A", "B"], [{"B": 1, "A": 0}, {"A": 1, "B": 0}])
        assert Tape(path).read(0, 2) == [[0, 1], [1, 0]]

    def test_seek_mid_tape(self, tmp_path):
        path = str(tmp_path / "t.tape")
        rows = [[i & 1, (i >> 1) & 1, (i >> 2) & 1] for i in range(50)]
        write_tape(path, ["A", "B", "C"], rows)
        with Tape(path) as tape:
            assert tape.read(17, 5) == rows[17:22]
            assert tape.read(49, 1) == rows[49:]
            assert tape.read(0, 1) == rows[:1]

    def test_chunks_cover_tape_exactly(self, tmp_path):
        path = str(tmp_path / "t.tape")
        rows = [[i & 1] for i in range(10)]
        write_tape(path, ["A"], rows)
        tape = Tape(path)
        seen = []
        starts = []
        for start, vectors in tape.chunks(3):
            starts.append(start)
            seen.extend(vectors)
        assert starts == [0, 3, 6, 9]
        assert seen == rows

    def test_random_tape_deterministic(self, tmp_path):
        a = random_tape(str(tmp_path / "a.tape"), ["X", "Y"], 64, seed=7)
        b = random_tape(str(tmp_path / "b.tape"), ["X", "Y"], 64, seed=7)
        c = random_tape(str(tmp_path / "c.tape"), ["X", "Y"], 64, seed=8)
        assert a.read(0, 64) == b.read(0, 64)
        assert a.read(0, 64) != c.read(0, 64)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.tape"
        path.write_text("#not-a-tape\n#inputs A\n0\n")
        with pytest.raises(TapeError, match="not a stimulus tape"):
            Tape(str(path))

    def test_missing_inputs_header(self, tmp_path):
        path = tmp_path / "bad.tape"
        path.write_text("#repro-tape v1\n0\n")
        with pytest.raises(TapeError, match="#inputs"):
            Tape(str(path))

    def test_truncated_payload(self, tmp_path):
        path = tmp_path / "bad.tape"
        path.write_text("#repro-tape v1\n#inputs A,B\n10\n0")
        with pytest.raises(TapeError, match="truncated"):
            Tape(str(path))

    def test_bad_character(self, tmp_path):
        path = tmp_path / "bad.tape"
        path.write_text("#repro-tape v1\n#inputs A,B\n10\n2x\n")
        tape = Tape(str(path))
        with pytest.raises(TapeError, match="bad character"):
            tape.read(0, 2)

    def test_out_of_range_read(self, tmp_path):
        path = str(tmp_path / "t.tape")
        write_tape(path, ["A"], [[0], [1]])
        with pytest.raises(TapeError, match="out of range"):
            Tape(path).read(1, 2)

    def test_write_rejects_non_bits(self, tmp_path):
        path = str(tmp_path / "t.tape")
        with pytest.raises(TapeError, match="must be 0 or 1"):
            write_tape(path, ["A"], [[2]])
        with pytest.raises(TapeError, match="missing input"):
            write_tape(path, ["A", "B"], [{"A": 1}])


class TestCheckpoint:
    def test_save_load_round_trip(self, tmp_path):
        cp = ReplayCheckpoint(
            cycle=42,
            state={"Q0": 1, "Q1": 0},
            checksum=0xDEADBEEF,
            toggles={"O0": 7},
            prev_outputs={"O0": 1},
            tape_inputs=["EN"],
            tape_cycles=100,
            circuit="counter",
            engine="lcc",
        )
        path = cp.save(str(tmp_path / "cp.json"))
        loaded = load_checkpoint(path)
        assert loaded.as_dict() == cp.as_dict()

    def test_state_masked(self):
        cp = ReplayCheckpoint(cycle=0, state={"Q0": 3, "Q1": -1})
        assert cp.state == {"Q0": 1, "Q1": 1}

    def test_format_guards(self, tmp_path):
        with pytest.raises(SimulationError, match="not a replay"):
            ReplayCheckpoint.from_dict({"format": "something-else"})
        with pytest.raises(SimulationError, match="version"):
            ReplayCheckpoint.from_dict(
                {"format": "repro-replay-checkpoint", "version": 99}
            )
        path = tmp_path / "cp.json"
        path.write_text(json.dumps({"format": "nope"}))
        with pytest.raises(SimulationError):
            load_checkpoint(str(path))


class TestFoldOutputs:
    def test_order_sensitive(self):
        a = fold_outputs(fold_outputs(0, [1, 0]), [0, 1])
        b = fold_outputs(fold_outputs(0, [0, 1]), [1, 0])
        assert a != b

    def test_stays_64_bit(self):
        checksum = 0
        for _ in range(200):
            checksum = fold_outputs(checksum, [1, 1, 0, 1])
        assert 0 <= checksum < (1 << 64)


def _replay_setup(tmp_path, *, bits=4, cycles=400, seed=11):
    seq = binary_counter(bits)
    tape = random_tape(
        str(tmp_path / "stim.tape"), seq.external_inputs, cycles,
        seed=seed,
    )
    return seq, tape


class TestReplay:
    @pytest.mark.parametrize("engine", ["lcc", "parallel", "pcset"])
    def test_matches_manual_step_loop(self, tmp_path, engine):
        seq, tape = _replay_setup(tmp_path, cycles=60)
        manual = CompiledSequentialSimulator(
            binary_counter(4), engine=engine
        )
        outputs = list(seq.external_outputs)
        checksum = 0
        toggles = {o: 0 for o in outputs}
        prev = None
        for row in tape.read(0, tape.cycles):
            out = manual.step(row)
            checksum = fold_outputs(checksum, [out[o] for o in outputs])
            if prev is not None:
                for o in outputs:
                    toggles[o] += int(out[o] != prev[o])
            prev = out
        sim = CompiledSequentialSimulator(seq, engine=engine)
        result = replay_tape(sim, tape, chunk_cycles=17)
        assert result.cycles == result.cycle == 60
        assert result.checksum == checksum
        assert result.toggles == toggles

    def test_engines_agree_on_shared_tape(self, tmp_path):
        _, tape = _replay_setup(tmp_path, cycles=150)
        results = {}
        for engine in ("lcc", "parallel", "pcset"):
            sim = CompiledSequentialSimulator(
                binary_counter(4), engine=engine
            )
            results[engine] = replay_tape(sim, tape, chunk_cycles=64)
        checksums = {r.checksum for r in results.values()}
        toggle_sets = [r.toggles for r in results.values()]
        assert len(checksums) == 1
        assert toggle_sets[0] == toggle_sets[1] == toggle_sets[2]

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("engine", ["lcc", "parallel", "pcset"])
    def test_checkpoint_restore_bit_identical(
        self, tmp_path, engine, backend
    ):
        seq, tape = _replay_setup(tmp_path, cycles=120)
        full_out = str(tmp_path / f"full_{engine}_{backend}.out")
        full = replay_tape(
            CompiledSequentialSimulator(
                binary_counter(4), engine=engine, backend=backend
            ),
            tape, chunk_cycles=50, outputs_path=full_out,
        )
        cpdir = tmp_path / f"cp_{engine}_{backend}"
        cpdir.mkdir()
        first = replay_tape(
            CompiledSequentialSimulator(
                binary_counter(4), engine=engine, backend=backend
            ),
            tape, chunk_cycles=50, checkpoint_every=48,
            checkpoint_dir=str(cpdir), limit=70,
        )
        assert first.cycle == 70
        assert len(first.checkpoints) == 1
        # A *fresh* simulator resumes from the mid-stream checkpoint and
        # must reproduce both the remaining cycles and the summary.
        resumed = replay_tape(
            CompiledSequentialSimulator(
                binary_counter(4), engine=engine, backend=backend
            ),
            tape, chunk_cycles=50, resume_from=first.checkpoints[0],
        )
        assert resumed.resumed_from == 48
        assert resumed.cycle == 120
        assert resumed.checksum == full.checksum
        assert resumed.toggles == full.toggles

    def test_resumed_output_segments_concatenate(self, tmp_path):
        seq, tape = _replay_setup(tmp_path, cycles=90)
        full_out = str(tmp_path / "full.out")
        replay_tape(
            CompiledSequentialSimulator(binary_counter(4)),
            tape, outputs_path=full_out,
        )
        cpdir = tmp_path / "cp"
        cpdir.mkdir()
        head_out = str(tmp_path / "head.out")
        head = replay_tape(
            CompiledSequentialSimulator(binary_counter(4)),
            tape, checkpoint_every=30, checkpoint_dir=str(cpdir),
            limit=30, outputs_path=head_out,
        )
        tail_out = str(tmp_path / "tail.out")
        replay_tape(
            CompiledSequentialSimulator(binary_counter(4)),
            tape, resume_from=head.checkpoints[0],
            outputs_path=tail_out,
        )
        # Output streams are tape-format files: strip the two header
        # lines and the segments must concatenate to the full stream.
        def body(p):
            return open(p).read().splitlines()[2:]

        assert body(head_out) + body(tail_out) == body(full_out)

    def test_identical_runs_byte_compare(self, tmp_path):
        _, tape = _replay_setup(tmp_path, cycles=80)
        a = str(tmp_path / "a.out")
        b = str(tmp_path / "b.out")
        replay_tape(
            CompiledSequentialSimulator(binary_counter(4)),
            tape, outputs_path=a, chunk_cycles=7,
        )
        replay_tape(
            CompiledSequentialSimulator(
                binary_counter(4), engine="parallel"
            ),
            tape, outputs_path=b, chunk_cycles=64,
        )
        assert filecmp.cmp(a, b, shallow=False)

    @pytest.mark.parametrize("options", [
        {"tiles": 2},
        {"partitions": 2},
        {"partitions": 2, "partition_workers": 2},
        {"incremental": True},
        {"engine": "parallel", "tiles": 2},
        {"engine": "pcset", "partitions": 2},
    ])
    def test_option_threading_bit_identical(self, tmp_path, options):
        _, tape = _replay_setup(tmp_path, cycles=64)
        base = replay_tape(
            CompiledSequentialSimulator(binary_counter(4)), tape
        )
        tuned = replay_tape(
            CompiledSequentialSimulator(binary_counter(4), **options),
            tape,
        )
        assert tuned.checksum == base.checksum
        assert tuned.toggles == base.toggles

    def test_lfsr_and_shiftreg_generators(self, tmp_path):
        for seq in (lfsr(5), shift_register(6)):
            tape = random_tape(
                str(tmp_path / f"{seq.core.name}.tape"),
                seq.external_inputs, 40, seed=3,
            )
            results = [
                replay_tape(
                    CompiledSequentialSimulator(seq, engine=e), tape
                ).checksum
                for e in ("lcc", "parallel")
            ]
            assert results[0] == results[1]

    def test_guards(self, tmp_path):
        seq, tape = _replay_setup(tmp_path, cycles=10)
        sim = CompiledSequentialSimulator(binary_counter(4))
        with pytest.raises(SimulationError, match="checkpoint_dir"):
            replay_tape(sim, tape, checkpoint_every=5)
        with pytest.raises(SimulationError, match="chunk_cycles"):
            replay_tape(sim, tape, chunk_cycles=0)
        other = random_tape(
            str(tmp_path / "other.tape"), ["X", "Y"], 10
        )
        with pytest.raises(SimulationError, match="do not match"):
            replay_tape(sim, other)
        # Checkpoint beyond the tape, or for a different tape: refused.
        cp = ReplayCheckpoint(
            cycle=99, state=seq.initial_state(), tape_inputs=["EN"]
        )
        with pytest.raises(SimulationError, match="beyond the tape"):
            replay_tape(sim, tape, resume_from=cp)
        cp = ReplayCheckpoint(
            cycle=2, state=seq.initial_state(), tape_inputs=["ZZ"]
        )
        with pytest.raises(SimulationError, match="different"):
            replay_tape(sim, tape, resume_from=cp)

    def test_on_chunk_and_limit(self, tmp_path):
        _, tape = _replay_setup(tmp_path, cycles=100)
        sim = CompiledSequentialSimulator(binary_counter(4))
        seen = []
        result = replay_tape(
            sim, tape, chunk_cycles=16, limit=40,
            on_chunk=lambda cycle, total: seen.append((cycle, total)),
        )
        assert result.cycles == 40
        assert seen == [(16, 40), (32, 40), (40, 40)]

    def test_replay_telemetry(self, tmp_path):
        from repro import telemetry

        _, tape = _replay_setup(tmp_path, cycles=60)
        telemetry.enable(reset_state=True)
        try:
            cpdir = tmp_path / "cp"
            cpdir.mkdir()
            first = replay_tape(
                CompiledSequentialSimulator(binary_counter(4)),
                tape, checkpoint_every=20, checkpoint_dir=str(cpdir),
                limit=40,
            )
            replay_tape(
                CompiledSequentialSimulator(binary_counter(4)),
                tape, resume_from=first.checkpoints[-1],
            )
            snap = telemetry.snapshot()
            assert snap["counters"]["seq.checkpoints"] == 2
            assert snap["counters"]["seq.restores"] == 1
            assert snap["seq"]["checkpoints"] == 2
            assert snap["seq"]["restores"] == 1
            assert any("seq.replay" in name for name in snap["phases"])
        finally:
            telemetry.disable()
            telemetry.reset()


def _three_cone_circuit(flip=False):
    """Three disjoint-top cones; ``flip`` edits only the middle one."""
    b = CircuitBuilder("threecones")
    a, c, d, e = b.inputs("KA", "KB", "KC", "KD")
    m = b.and_("KM", a, c)
    b.output(b.xor("KO0", m, d))
    b.output((b.nor if flip else b.or_)("KO1", c, d))
    b.output(b.xor("KO2", d, e))
    return b.build()


class TestConeSimulator:
    def test_matches_monolithic_lcc(self):
        from repro.codegen.incremental import ConeSimulator
        from repro.lcc.zerodelay import LCCSimulator

        circuit = _three_cone_circuit()
        cones = ConeSimulator(circuit)
        mono = LCCSimulator(circuit)
        for value in range(16):
            vector = [(value >> i) & 1 for i in range(4)]
            full = mono.evaluate_all_nets(vector)
            expected = {o: full[o] & 1 for o in circuit.outputs}
            assert cones.evaluate(vector) == expected
        batch = cones.apply_vectors([[0, 1, 1, 0], [1, 1, 0, 1]])
        assert batch == [cones.evaluate([0, 1, 1, 0]),
                         cones.evaluate([1, 1, 0, 1])]

    def test_single_gate_edit_reuses_untouched_cones(self):
        from repro.codegen.incremental import ConeSimulator

        cold = ConeSimulator(_three_cone_circuit())
        warm = ConeSimulator(_three_cone_circuit(flip=True))
        assert cold.num_cones == warm.num_cones == 3
        # Acceptance: after editing one gate, untouched cones hit the
        # ProgramCache (hit rate > 0) and only the affected cone
        # recompiles.
        assert warm.cache_delta["hits"] == 2
        assert warm.cache_delta["misses"] == 1
        same = [o for o in ("KO0", "KO2")
                if warm.cone_keys[o] == cold.cone_keys[o]]
        assert same == ["KO0", "KO2"]
        assert warm.cone_keys["KO1"] != cold.cone_keys["KO1"]

    def test_identical_rebuild_all_hits(self):
        from repro.codegen.incremental import ConeSimulator

        ConeSimulator(_three_cone_circuit())
        again = ConeSimulator(_three_cone_circuit())
        assert again.cache_delta["hits"] == 3
        assert again.cache_delta["misses"] == 0

    def test_seqsim_incremental_matches_monolithic(self, tmp_path):
        _, tape = _replay_setup(tmp_path, cycles=50)
        mono = CompiledSequentialSimulator(binary_counter(4))
        inc = CompiledSequentialSimulator(
            binary_counter(4), incremental=True
        )
        assert inc._sim.num_cones > 0
        rows = tape.read(0, 50)
        assert inc.apply_vectors(rows) == mono.apply_vectors(rows)
        assert inc.state == mono.state
        with pytest.raises(SimulationError, match="incremental"):
            CompiledSequentialSimulator(
                binary_counter(4), engine="parallel", incremental=True
            )


class TestReplayCLI:
    def test_tape_then_replay(self, tmp_path, capsys):
        from repro.cli import main

        tape = str(tmp_path / "cli.tape")
        assert main(["tape", "counter4", "-n", "200", "-o", tape]) == 0
        assert "200 cycles" in capsys.readouterr().out
        assert main(["replay", "counter4", "--tape", tape]) == 0
        out = capsys.readouterr().out
        assert "checksum" in out
        assert "cycles/s" in out

    def test_cli_resume_matches_full(self, tmp_path, capsys):
        from repro.cli import main

        tape = str(tmp_path / "cli.tape")
        main(["tape", "counter4", "-n", "100", "-o", tape])
        capsys.readouterr()
        full_out = str(tmp_path / "full.out")
        main(["replay", "counter4", "--tape", tape,
              "--outputs", full_out])
        full_text = capsys.readouterr().out
        cpdir = tmp_path / "cp"
        cpdir.mkdir()
        assert main([
            "replay", "counter4", "--tape", tape,
            "--checkpoint-every", "40", "--checkpoint-dir", str(cpdir),
            "--limit", "40",
        ]) == 0
        capsys.readouterr()
        cps = sorted(cpdir.glob("checkpoint_*.json"))
        assert len(cps) == 1
        assert main([
            "replay", "counter4", "--tape", tape,
            "--resume-from", str(cps[0]), "--coverage", "3",
        ]) == 0
        resumed_text = capsys.readouterr().out
        def checksum_line(text):
            return [l for l in text.splitlines() if "checksum" in l]
        assert checksum_line(resumed_text) == checksum_line(full_text)

    def test_cli_incremental_and_engines_agree(self, tmp_path, capsys):
        from repro.cli import main

        tape = str(tmp_path / "cli.tape")
        main(["tape", "lfsr5", "-n", "80", "-o", tape])
        capsys.readouterr()
        sums = []
        for extra in ([], ["-e", "parallel"], ["--incremental"]):
            assert main(
                ["replay", "lfsr5", "--tape", tape] + extra
            ) == 0
            text = capsys.readouterr().out
            sums.append(
                [l for l in text.splitlines() if "checksum" in l]
            )
        assert sums[0] == sums[1] == sums[2]

    def test_stats_cones(self, capsys):
        from repro.cli import main

        assert main(["stats", "rca4", "--cones"]) == 0
        out = capsys.readouterr().out
        assert "fanin cones" in out
        assert "reuse" in out
