"""Tests for levelization (level / minlevel)."""

import pytest

from repro.analysis.levelize import levelize
from repro.errors import CyclicCircuitError
from repro.netlist.builder import CircuitBuilder


def test_fig1_levels(fig1_circuit):
    lev = levelize(fig1_circuit)
    assert lev.net_levels == {"A": 0, "B": 0, "C": 0, "D": 1, "E": 2}
    assert lev.gate_levels == {"D": 1, "E": 2}
    assert lev.depth == 2
    assert lev.num_levels == 3


def test_fig4_minlevels(fig4_circuit):
    lev = levelize(fig4_circuit)
    # E = AND(D, C): shortest path via C has length 1.
    assert lev.net_minlevels["E"] == 1
    assert lev.net_levels["E"] == 2
    assert lev.net_minlevels["D"] == 1


def test_level_is_longest_path_and_minlevel_shortest():
    # Diamond with a long and a short arm.
    b = CircuitBuilder("diamond")
    a = b.input("A")
    long1 = b.buf("L1", a)
    long2 = b.buf("L2", long1)
    long3 = b.buf("L3", long2)
    short = b.buf("S1", a)
    out = b.and_("OUT", long3, short)
    b.outputs(out)
    lev = levelize(b.build())
    assert lev.net_levels["OUT"] == 4
    assert lev.net_minlevels["OUT"] == 2


def test_constants_sit_at_level_zero():
    b = CircuitBuilder("consts")
    a = b.input("A")
    one = b.const1("ONE")
    out = b.and_("OUT", a, one)
    b.outputs(out)
    lev = levelize(b.build())
    assert lev.net_levels["ONE"] == 0
    assert lev.net_minlevels["ONE"] == 0
    assert lev.net_levels["OUT"] == 1


def test_levels_bound_minlevels(small_random_circuit):
    lev = levelize(small_random_circuit)
    for net_name in small_random_circuit.nets:
        assert 0 <= lev.net_minlevels[net_name] <= lev.net_levels[net_name]


def test_gate_level_is_max_input_plus_one(small_random_circuit):
    lev = levelize(small_random_circuit)
    for gate in small_random_circuit.gates.values():
        if gate.fan_in == 0:
            continue
        assert lev.gate_levels[gate.name] == 1 + max(
            lev.net_levels[i] for i in gate.inputs
        )
        assert lev.gate_minlevels[gate.name] == 1 + min(
            lev.net_minlevels[i] for i in gate.inputs
        )
        assert lev.net_levels[gate.output] == lev.gate_levels[gate.name]


def test_gates_by_level_partition(small_random_circuit):
    lev = levelize(small_random_circuit)
    buckets = lev.gates_by_level(small_random_circuit)
    flattened = [g for bucket in buckets for g in bucket]
    assert sorted(flattened) == sorted(small_random_circuit.gates)
    # Ascending level order.
    previous = 0
    for bucket in buckets:
        level = lev.gate_levels[bucket[0]]
        assert all(lev.gate_levels[g] == level for g in bucket)
        assert level > previous
        previous = level


def test_levelize_rejects_cycles():
    from repro.logic import GateType
    from repro.netlist.circuit import Circuit
    from repro.netlist.nets import Gate, Net

    c = Circuit("cyc")
    c.add_net("A", is_input=True)
    c.nets["B"] = Net("B", driver="B")
    c.gates["B"] = Gate("B", GateType.AND, ["A", "C"], "B")
    c.nets["C"] = Net("C", driver="C")
    c.gates["C"] = Gate("C", GateType.NOT, ["B"], "C")
    c.nets["A"].fanout.append("B")
    c.nets["C"].fanout.append("B")
    c.nets["B"].fanout.append("C")
    with pytest.raises(CyclicCircuitError):
        levelize(c)


def test_repr(fig1_circuit):
    assert "depth=2" in repr(levelize(fig1_circuit))
