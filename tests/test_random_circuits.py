"""Tests for the random circuit generators."""

import pytest

from repro.analysis.levelize import levelize
from repro.errors import NetlistError
from repro.netlist.bench import write_bench
from repro.netlist.random_circuits import layered_circuit, random_dag_circuit


class TestRandomDag:
    @pytest.mark.parametrize("seed", range(5))
    def test_valid_and_acyclic(self, seed):
        circuit = random_dag_circuit(seed, num_inputs=5, num_gates=30)
        circuit.validate()
        assert circuit.is_acyclic()
        assert circuit.num_gates == 30
        assert len(circuit.inputs) == 5
        assert circuit.outputs

    def test_deterministic(self):
        a = random_dag_circuit(3)
        b = random_dag_circuit(3)
        assert write_bench(a) == write_bench(b)

    def test_sinks_monitored(self):
        circuit = random_dag_circuit(0, num_inputs=4, num_gates=15)
        for net_name, net in circuit.nets.items():
            if net.driver is not None and not net.fanout:
                assert net.is_output

    def test_guards(self):
        with pytest.raises(NetlistError):
            random_dag_circuit(0, num_inputs=0)
        with pytest.raises(NetlistError):
            random_dag_circuit(0, num_gates=0)


class TestLayered:
    @pytest.mark.parametrize("seed", range(5))
    def test_exact_gate_count_and_depth(self, seed):
        circuit = layered_circuit(
            seed, num_inputs=8, num_gates=120, depth=17, num_outputs=5
        )
        circuit.validate()
        stats = circuit.stats()
        assert stats.num_gates == 120
        assert stats.depth == 17
        assert stats.num_inputs == 8
        assert stats.num_outputs == 5

    def test_minimal_chain(self):
        circuit = layered_circuit(
            1, num_inputs=2, num_gates=10, depth=10
        )
        assert circuit.stats().depth == 10

    def test_every_level_populated(self):
        circuit = layered_circuit(
            2, num_inputs=4, num_gates=50, depth=12
        )
        lev = levelize(circuit)
        populated = {lev.gate_levels[g] for g in circuit.gates}
        assert populated == set(range(1, 13))

    def test_deterministic(self):
        a = layered_circuit(9, num_inputs=4, num_gates=30, depth=6)
        b = layered_circuit(9, num_inputs=4, num_gates=30, depth=6)
        assert write_bench(a) == write_bench(b)

    def test_guards(self):
        with pytest.raises(NetlistError, match="depth"):
            layered_circuit(0, num_inputs=2, num_gates=5, depth=0)
        with pytest.raises(NetlistError, match="cannot reach"):
            layered_circuit(0, num_inputs=2, num_gates=3, depth=5)

    def test_output_padding_beyond_sinks(self):
        circuit = layered_circuit(
            4, num_inputs=4, num_gates=40, depth=8, num_outputs=20
        )
        assert len(circuit.outputs) == 20
