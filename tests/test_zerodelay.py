"""Tests for zero-delay simulation: interpreted and compiled LCC."""

import pytest

from repro.errors import SimulationError
from repro.eventsim.zerodelay import ZeroDelaySimulator, steady_state
from repro.harness.vectors import vectors_for
from repro.lcc.zerodelay import LCCSimulator, generate_lcc_program
from repro.logic import X
from repro.netlist.builder import CircuitBuilder


def test_fig1_generated_code(fig1_circuit):
    program = generate_lcc_program(fig1_circuit)
    source = program.python_source()
    # The exact Fig. 1 statements, in levelized order.
    assert "D = A & B" in source
    assert "E = C & D" in source
    assert source.index("D = A & B") < source.index("E = C & D")


def test_steady_state_is_fixed_point(small_random_circuit):
    vector = [1] * len(small_random_circuit.inputs)
    settled = steady_state(small_random_circuit, vector)
    for gate in small_random_circuit.gates.values():
        from repro.logic import eval_gate

        expected = eval_gate(
            gate.gate_type, [settled[i] for i in gate.inputs]
        ) & 1
        assert settled[gate.output] == expected


def test_interpreted_matches_compiled(small_random_circuit):
    interp = ZeroDelaySimulator(small_random_circuit)
    compiled = LCCSimulator(small_random_circuit)
    for vector in vectors_for(small_random_circuit, 25, seed=3):
        expected = interp.evaluate(vector)
        got = compiled.evaluate(vector)
        for net_name in small_random_circuit.outputs:
            assert expected[net_name] == got[net_name]


def test_run_batch_checksums_agree(small_random_circuit):
    vectors = vectors_for(small_random_circuit, 40, seed=9)
    interp = ZeroDelaySimulator(small_random_circuit)
    compiled = LCCSimulator(small_random_circuit)
    assert interp.run_batch(vectors) == compiled.run_batch(vectors)


def test_lcc_evaluate_all_nets(fig1_circuit):
    sim = LCCSimulator(fig1_circuit)
    values = sim.evaluate_all_nets([1, 1, 0])
    assert values == {"A": 1, "B": 1, "C": 0, "D": 1, "E": 0}


def test_lcc_packed_mode(fig1_circuit):
    sim = LCCSimulator(fig1_circuit, word_width=32)
    # Lane 0: A=B=C=1 -> E=1; lane 1: A=1,B=0,C=1 -> E=0.
    packed = sim.evaluate_packed([0b11, 0b01, 0b11])
    assert packed["E"] & 1 == 1
    assert (packed["E"] >> 1) & 1 == 0


def test_three_valued_zero_delay(fig1_circuit):
    sim = ZeroDelaySimulator(fig1_circuit, logic="three")
    out = sim.evaluate([0, X, X])
    assert out["D"] == 0  # controlling 0
    assert out["E"] == 0  # D=0 controls E = AND(C, D) despite C being X
    out = sim.evaluate([1, X, X])
    assert out["D"] == X
    assert out["E"] == X


def test_bad_logic_model(fig1_circuit):
    with pytest.raises(SimulationError):
        ZeroDelaySimulator(fig1_circuit, logic="five")


def test_vector_shape_errors(fig1_circuit):
    sim = LCCSimulator(fig1_circuit)
    with pytest.raises(SimulationError, match="missing"):
        sim.evaluate({"A": 1})
    with pytest.raises(SimulationError, match="expected 3"):
        sim.evaluate([1])


def test_lcc_with_constants():
    b = CircuitBuilder("k")
    a = b.input("A")
    one = b.const1("ONE")
    b.outputs(b.and_("OUT", a, one), b.nor("N", a, b.const0("ZERO")))
    circuit = b.build()
    sim = LCCSimulator(circuit)
    assert sim.evaluate([1]) == {"OUT": 1, "N": 0}
    assert sim.evaluate([0]) == {"OUT": 0, "N": 1}
