"""Tests for shift elimination: alignments, path tracing, cycle breaking."""

import pytest

from repro.analysis.levelize import levelize
from repro.errors import AlignmentError
from repro.netlist.builder import CircuitBuilder
from repro.netlist.random_circuits import random_dag_circuit
from repro.parallel.alignment import Alignment, unoptimized_shift_count
from repro.parallel.cyclebreak import cycle_breaking_alignment, spanning_forest
from repro.parallel.pathtrace import path_tracing_alignment
from repro.analysis.graph import UndirectedNetworkGraph


class TestFig10PathTracing:
    """Fig. 10: the optimized Fig. 4 network needs zero shifts."""

    def test_alignments_match_paper(self, fig4_circuit):
        alignment = path_tracing_alignment(fig4_circuit)
        # "the alignment of net E must be ... set to 1, the alignment of
        # nets C and D can be set to zero ... A and B to minus one."
        assert alignment.net_align["E"] == 1
        assert alignment.net_align["D"] == 0
        assert alignment.net_align["C"] == 0
        assert alignment.net_align["A"] == -1
        assert alignment.net_align["B"] == -1

    def test_all_shifts_eliminated(self, fig4_circuit):
        alignment = path_tracing_alignment(fig4_circuit)
        assert alignment.retained_shifts() == 0

    def test_width_reduced_to_two(self, fig4_circuit):
        # "it is also possible to reduce the width of the bit-fields
        # from 3 to 2."
        alignment = path_tracing_alignment(fig4_circuit)
        assert alignment.max_width() == 2


class TestFig11:
    """Fig. 11: reconvergent fanout along unequal paths keeps 1 shift."""

    def test_one_shift_retained(self, fig11_circuit):
        for build in (path_tracing_alignment, cycle_breaking_alignment):
            alignment = build(fig11_circuit)
            assert alignment.retained_shifts() == 1, build.__name__


class TestFig12:
    """Fig. 12: a weight-3 cycle without reconvergent fanout."""

    def test_shifts_retained(self, fig12_circuit):
        path = path_tracing_alignment(fig12_circuit)
        cycle = cycle_breaking_alignment(fig12_circuit)
        # Some shift(s) must survive in both algorithms.
        assert path.retained_shifts() >= 1
        assert cycle.retained_shifts() >= 1
        # Cycle breaking concentrates the mismatch in one place: the
        # total shifted *bits* can differ between the algorithms, but
        # the magnitude-3 imbalance appears somewhere.
        path_total = sum(
            abs(s) for _g, _n, s in path.iter_input_shifts() if s
        )
        assert path_total >= 3


class TestPathTracingProperties:
    @pytest.mark.parametrize("seed", range(8))
    def test_right_shifts_only(self, seed):
        circuit = random_dag_circuit(seed, num_inputs=4, num_gates=22)
        alignment = path_tracing_alignment(circuit)
        for _gate, _net, shift in alignment.iter_input_shifts():
            assert shift >= 0

    @pytest.mark.parametrize("seed", range(8))
    def test_never_expands_bit_field(self, seed):
        circuit = random_dag_circuit(seed, num_inputs=4, num_gates=22)
        depth = levelize(circuit).depth
        alignment = path_tracing_alignment(circuit)
        assert alignment.max_width() <= depth + 1

    @pytest.mark.parametrize("seed", range(8))
    def test_alignment_below_minlevel(self, seed):
        circuit = random_dag_circuit(seed, num_inputs=4, num_gates=22)
        levels = levelize(circuit)
        alignment = path_tracing_alignment(circuit)
        for net_name in circuit.nets:
            assert alignment.stored_align(net_name) <= \
                levels.net_minlevels[net_name]

    def test_fanout_free_region_shiftless(self):
        # "any fanout-free region of the circuit will be simulated
        # without shifts" — a pure tree has no fanout at all.
        b = CircuitBuilder("tree")
        leaves = b.inputs(*[f"I{i}" for i in range(8)])
        layer = list(leaves)
        while len(layer) > 1:
            layer = [
                b.and_(None, layer[i], layer[i + 1])
                for i in range(0, len(layer), 2)
            ]
        b.outputs(layer[0])
        alignment = path_tracing_alignment(b.build())
        assert alignment.retained_shifts() == 0

    def test_gate_aligned_with_its_output(self, small_random_circuit):
        alignment = path_tracing_alignment(small_random_circuit)
        for gate in small_random_circuit.gates.values():
            assert alignment.gate_align[gate.name] == \
                alignment.stored_align(gate.output)


class TestCycleBreaking:
    def test_spanning_forest_counts(self, fig11_circuit):
        graph = UndirectedNetworkGraph(fig11_circuit)
        tree, removed = spanning_forest(graph)
        kept = sum(len(edges) for edges in tree.values()) // 2
        assert kept + len(removed) == graph.num_edges
        assert len(removed) == graph.cycle_rank()

    @pytest.mark.parametrize("seed", range(8))
    def test_tree_edges_consistent(self, seed):
        # Along every kept (tree) edge, conditions 2-4 hold exactly.
        circuit = random_dag_circuit(seed, num_inputs=4, num_gates=22)
        graph = UndirectedNetworkGraph(circuit)
        tree, _removed = spanning_forest(graph)
        alignment = cycle_breaking_alignment(circuit)
        seen = set()
        for edges in tree.values():
            for edge in edges:
                if edge.key in seen:
                    continue
                seen.add(edge.key)
                gate_value = alignment.gate_align[edge.gate]
                net_value = alignment.net_align[edge.net]
                if edge.role == "output":
                    assert net_value == gate_value
                else:
                    assert net_value == gate_value - 1

    @pytest.mark.parametrize("seed", range(8))
    def test_validates_after_normalization(self, seed):
        circuit = random_dag_circuit(seed, num_inputs=4, num_gates=22)
        alignment = cycle_breaking_alignment(circuit)
        alignment.validate()  # raises on violation

    def test_left_shifts_possible(self):
        # The Fig. 11 network traversed from C assigns B = a(AND)-1,
        # and the removed NOT edge shows up as a shift of either sign.
        b = CircuitBuilder("f11")
        a = b.input("A")
        bn = b.not_("B", a)
        c = b.and_("C", a, bn)
        b.outputs(c)
        alignment = cycle_breaking_alignment(b.build())
        shifts = [s for _g, _n, s in alignment.iter_input_shifts() if s]
        assert len(shifts) == 1


class TestAlignmentContainer:
    def test_unoptimized_shift_count(self, fig4_circuit):
        assert unoptimized_shift_count(fig4_circuit) == 2

    def test_width_formula(self, fig4_circuit):
        levels = levelize(fig4_circuit)
        alignment = Alignment(
            fig4_circuit,
            {n: 0 for n in fig4_circuit.nets},
            {g: 0 for g in fig4_circuit.gates},
            "manual",
            levels,
        )
        # width = level - alignment + 1
        assert alignment.width("E") == 3
        assert alignment.width("A") == 1
        assert alignment.max_width() == 3

    def test_validate_catches_lost_changes(self, fig4_circuit):
        levels = levelize(fig4_circuit)
        alignment = Alignment(
            fig4_circuit,
            {n: 5 for n in fig4_circuit.nets},
            {g: 5 for g in fig4_circuit.gates},
            "manual",
            levels,
        )
        with pytest.raises(AlignmentError, match="changes would be lost"):
            alignment.validate()

    def test_normalize_slides_to_legality(self, fig4_circuit):
        levels = levelize(fig4_circuit)
        alignment = Alignment(
            fig4_circuit,
            {n: 5 for n in fig4_circuit.nets},
            {g: 5 for g in fig4_circuit.gates},
            "manual",
            levels,
        )
        # Every pin shift is (5-1) - 5 = -1 (left), so the binding net
        # is A: bound = minlevel - 1 = -1, excess = 5 - (-1) = 6.
        delta = alignment.normalize()
        assert delta == 6
        alignment.validate()

    def test_left_shift_needs_strict_margin(self):
        # B read with a left shift must sit strictly below its minlevel.
        b = CircuitBuilder("strict")
        a = b.input("A")
        n1 = b.buf("N1", a)
        n2 = b.buf("N2", n1)
        out = b.and_("OUT", n1, n2)
        b.outputs(out)
        circuit = b.build()
        levels = levelize(circuit)
        # Force a left shift: align N2's reader below N2's storage.
        alignment = Alignment(
            circuit,
            {"A": 0, "N1": 1, "N2": 2, "OUT": 2},
            {"N1": 1, "N2": 2, "OUT": 2},
            "manual",
            levels,
        )
        # OUT reads N2 with shift (2-1) - 2 = -1 (left); stored align
        # of N2 is 2 = minlevel -> must fail strict check.
        with pytest.raises(AlignmentError, match="left shift"):
            alignment.validate()

    def test_repr(self, fig4_circuit):
        alignment = path_tracing_alignment(fig4_circuit)
        assert "pathtrace" in repr(alignment)
