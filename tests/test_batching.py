"""Batched execution: cross-backend equivalence and the speed contract.

The batching API's correctness contract is exact: ``step_many`` /
``apply_vectors`` must be bit-identical to an equivalent per-vector
``step()`` loop, on both backends, and machine state must round-trip
between backends.  The performance contract — the whole point of
moving the vector loop inside the generated code — is demonstrated on
a c880-scale circuit at the bottom of this module.
"""

import time

import pytest

from repro.codegen.runtime import have_c_compiler
from repro.faults.simulator import (
    ParallelFaultSimulator,
    serial_fault_simulation,
)
from repro.harness.runner import simulate_outputs
from repro.harness.vectors import vectors_for
from repro.lcc.zerodelay import LCCSimulator
from repro.netlist.random_circuits import random_dag_circuit
from repro.parallel.simulator import ParallelSimulator
from repro.pcset.simulator import PCSetSimulator

NEED_CC = pytest.mark.skipif(
    have_c_compiler() is None, reason="no C compiler available"
)

BACKENDS = ["python"] + (["c"] if have_c_compiler() else [])


def _fresh(sim_cls, circuit, backend, **kw):
    sim = sim_cls(circuit, backend=backend, **kw)
    sim.reset([0] * len(circuit.inputs))
    return sim


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("sim_cls", [PCSetSimulator, ParallelSimulator])
def test_apply_vectors_matches_scalar_loop(
    small_random_circuit, sim_cls, backend
):
    vectors = vectors_for(small_random_circuit, 24, seed=9)
    batched = _fresh(sim_cls, small_random_circuit, backend)
    scalar = _fresh(sim_cls, small_random_circuit, backend)
    expected = [scalar.apply_vector(v) for v in vectors]
    assert batched.apply_vectors(vectors) == expected
    # The persistent state evolved identically too.
    assert batched.machine.dump_state() == scalar.machine.dump_state()


@pytest.mark.parametrize("backend", BACKENDS)
def test_lcc_apply_vectors_matches_scalar_loop(
    small_random_circuit, backend
):
    vectors = vectors_for(small_random_circuit, 16, seed=3)
    sim = LCCSimulator(small_random_circuit, backend=backend)
    expected = [sim.machine.step(list(v)) for v in vectors]
    assert sim.apply_vectors(vectors) == expected


@NEED_CC
@pytest.mark.parametrize("sim_cls", [PCSetSimulator, ParallelSimulator])
def test_state_round_trips_across_backends(small_random_circuit, sim_cls):
    vectors = vectors_for(small_random_circuit, 10, seed=4)
    py = _fresh(sim_cls, small_random_circuit, "python")
    cc = _fresh(sim_cls, small_random_circuit, "c")
    py.apply_vectors(vectors)
    # Python machine state -> C machine; both must continue identically.
    state = py.machine.dump_state()
    cc.machine.load_state(state)
    assert cc.machine.dump_state() == state
    follow_up = vectors_for(small_random_circuit, 6, seed=5)
    assert py.apply_vectors(follow_up) == cc.apply_vectors(follow_up)
    # And back: C state loads into a fresh Python machine.
    back = _fresh(sim_cls, small_random_circuit, "python")
    back.machine.load_state(cc.machine.dump_state())
    assert back.machine.dump_state() == cc.machine.dump_state()


@NEED_CC
def test_batched_outputs_identical_across_backends():
    circuit = random_dag_circuit(17, num_inputs=6, num_gates=40)
    vectors = vectors_for(circuit, 32, seed=8)
    py = simulate_outputs(circuit, "parallel-best", vectors,
                          backend="python")
    cc = simulate_outputs(circuit, "parallel-best", vectors, backend="c")
    assert py == cc


@pytest.mark.parametrize("backend", BACKENDS)
def test_oversized_inputs_do_not_diverge(backend):
    # Unmasked Python ints used to sail through while ctypes truncated:
    # feed out-of-range words straight to the machines and compare.
    circuit = random_dag_circuit(3, num_inputs=4, num_gates=12)
    sim = _fresh(PCSetSimulator, circuit, backend, word_width=16)
    machine = sim.machine
    huge = [0x1_0001, 0x2_0000, 0xFFFF_0001, 7]
    reference = _fresh(PCSetSimulator, circuit, backend, word_width=16)
    masked = [value & 0xFFFF for value in huge]
    assert machine.step(huge) == reference.machine.step(masked)


def test_seqsim_apply_vectors_matches_per_cycle_step():
    from repro.seqsim import CompiledSequentialSimulator

    seq = _small_sequential()
    stimulus = _sequential_stimulus(seq, cycles=12)
    for engine in ("lcc", "pcset"):
        batched = CompiledSequentialSimulator(seq, engine=engine)
        scalar = CompiledSequentialSimulator(seq, engine=engine)
        expected = [scalar.step(inputs) for inputs in stimulus]
        assert batched.apply_vectors(stimulus) == expected
        assert batched.state == scalar.state
        assert batched.cycle == scalar.cycle


def _small_sequential():
    """A small SequentialCircuit for the clocked-batching test."""
    from repro.netlist.bench import parse_bench_sequential

    text = """
# 2-bit toggle/shift register
INPUT(EN)
OUTPUT(Q1)
Q0 = DFF(D0)
Q1 = DFF(D1)
N0 = NAND(Q0, EN)
D0 = NAND(N0, N0)
D1 = AND(Q0, EN)
"""
    return parse_bench_sequential(text, name="toggle2")


def _sequential_stimulus(seq, cycles):
    import random

    rng = random.Random(11)
    return [
        {name: rng.randint(0, 1) for name in seq.external_inputs}
        for _ in range(cycles)
    ]


def test_fault_simulation_batched_path_unchanged():
    circuit = random_dag_circuit(5, num_inputs=5, num_gates=20)
    vectors = vectors_for(circuit, 40, seed=13)
    parallel = ParallelFaultSimulator(circuit, word_width=8)
    report = parallel.run(vectors, drop_detected=False)
    reference = serial_fault_simulation(circuit, vectors)
    assert report.detected == reference.detected
    assert set(report.undetected) == set(reference.undetected)
    # drop_detected only changes how far batches run, never the result.
    eager = ParallelFaultSimulator(circuit, word_width=8)
    assert eager.run(vectors).detected == report.detected


# ----------------------------------------------------------------------
# the speed contract (acceptance criterion)
# ----------------------------------------------------------------------
def _best_of(run, repeat):
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def test_batched_python_backend_beats_scalar_loop_on_c880():
    """``step_many`` must outrun the per-vector ``step()`` loop.

    Full-size c880 analog, parallel technique, timing configuration
    (no outputs) — the workload the ROADMAP's hot path cares about.
    The margin is the per-vector dispatch overhead (generator protocol,
    tuple/list allocation), so it shrinks as circuits grow, but on c880
    it is reliably measurable (~5-10% here).  Interleaved best-of-N
    with a retry keeps the comparison robust on noisy hosts.
    """
    from repro.netlist.iscas85 import make_circuit

    circuit = make_circuit("c880", scale_factor=1.0)
    sim = ParallelSimulator(
        circuit, optimization="pathtrace+trim", with_outputs=False
    )
    sim.reset([0] * len(circuit.inputs))
    vectors = vectors_for(circuit, 192, seed=2)
    words = [[v & 1 for v in vec] for vec in vectors]
    machine = sim.machine

    def scalar_loop():
        step = machine.step
        for w in words:
            step(w)

    def batched():
        machine.run_block(words, masked=True)

    scalar_loop(), batched()  # warm both paths
    for attempt in range(3):
        loop_best = _best_of(scalar_loop, 5)
        batch_best = _best_of(batched, 5)
        if batch_best < loop_best:
            break
    assert batch_best < loop_best, (
        f"batched {batch_best:.4f}s not faster than "
        f"per-vector loop {loop_best:.4f}s"
    )
