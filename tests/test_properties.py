"""Property-based tests (hypothesis) on the core invariants.

The central contract: for any acyclic circuit, any initial vector and
any vector sequence, every compiled technique produces exactly the
event-driven unit-delay history (DESIGN.md §4).  Circuits are drawn
from a hypothesis strategy that builds arbitrary DAGs with repeated
inputs, constants, unary gates and deep chains.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.analysis.levelize import levelize
from repro.analysis.pcsets import compute_pc_sets
from repro.eventsim.simulator import EventDrivenSimulator
from repro.hazards import classify_changes, classify_field
from repro.logic import GateType
from repro.netlist.bench import parse_bench, write_bench
from repro.netlist.circuit import Circuit
from repro.parallel.cyclebreak import cycle_breaking_alignment
from repro.parallel.pathtrace import path_tracing_alignment
from repro.parallel.simulator import ParallelSimulator
from repro.pcset.multivector import pack_lanes, unpack_lanes
from repro.pcset.simulator import PCSetSimulator

BINARY = [GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
          GateType.XOR, GateType.XNOR]
UNARY = [GateType.NOT, GateType.BUF]


@st.composite
def circuits(draw, max_inputs=4, max_gates=14):
    """An arbitrary acyclic circuit."""
    num_inputs = draw(st.integers(1, max_inputs))
    num_gates = draw(st.integers(1, max_gates))
    circuit = Circuit("hyp")
    nets = []
    for i in range(num_inputs):
        circuit.add_net(f"I{i}", is_input=True)
        nets.append(f"I{i}")
    for g in range(num_gates):
        kind = draw(st.integers(0, 9))
        out = f"N{g}"
        if kind == 0:
            circuit.add_gate(
                draw(st.sampled_from([GateType.CONST0, GateType.CONST1])),
                out, [],
            )
        elif kind <= 3:
            gate_type = draw(st.sampled_from(UNARY))
            src = nets[draw(st.integers(0, len(nets) - 1))]
            circuit.add_gate(gate_type, out, [src])
        else:
            gate_type = draw(st.sampled_from(BINARY))
            fan_in = draw(st.integers(2, 3))
            inputs = [
                nets[draw(st.integers(0, len(nets) - 1))]
                for _ in range(fan_in)
            ]
            circuit.add_gate(gate_type, out, inputs)
        nets.append(out)
    for net_name, net in circuit.nets.items():
        if net.driver is not None and not net.fanout:
            circuit.add_net(net_name, is_output=True)
    if not circuit.outputs:
        circuit.add_net(nets[-1], is_output=True)
    circuit.validate()
    return circuit


def vectors_strategy(circuit, count):
    width = len(circuit.inputs)
    return st.lists(
        st.lists(st.integers(0, 1), min_size=width, max_size=width),
        min_size=count, max_size=count,
    )


@st.composite
def circuit_with_vectors(draw, num_vectors=4):
    circuit = draw(circuits())
    vectors = draw(vectors_strategy(circuit, num_vectors))
    initial = draw(vectors_strategy(circuit, 1))[0]
    return circuit, initial, vectors


COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@settings(max_examples=40, **COMMON)
@given(data=circuit_with_vectors())
def test_pcset_equals_event_driven(data):
    circuit, initial, vectors = data
    reference = EventDrivenSimulator(circuit)
    sim = PCSetSimulator(circuit)
    reference.reset(initial)
    sim.reset(initial)
    for vector in vectors:
        assert reference.apply_vector(vector, record=True) == \
            sim.apply_vector_history(vector)


@settings(max_examples=25, **COMMON)
@given(data=circuit_with_vectors(),
       optimization=st.sampled_from(
           ["none", "trim", "pathtrace", "cyclebreak", "pathtrace+trim"]),
       word_width=st.sampled_from([8, 32]))
def test_parallel_equals_event_driven(data, optimization, word_width):
    circuit, initial, vectors = data
    reference = EventDrivenSimulator(circuit)
    sim = ParallelSimulator(
        circuit, optimization=optimization, word_width=word_width
    )
    reference.reset(initial)
    sim.reset(initial)
    for vector in vectors:
        assert reference.apply_vector(vector, record=True) == \
            sim.apply_vector_history(vector)


@settings(max_examples=60, **COMMON)
@given(circuit=circuits())
def test_pc_sets_are_path_length_sets(circuit):
    from tests.test_pcsets import brute_force_path_lengths

    pc = compute_pc_sets(circuit)
    for net_name in circuit.nets:
        assert set(pc.net_pc_set(net_name)) == \
            brute_force_path_lengths(circuit, net_name)


@settings(max_examples=60, **COMMON)
@given(circuit=circuits())
def test_levelization_bounds(circuit):
    levels = levelize(circuit)
    pc = compute_pc_sets(circuit, levels)
    for net_name in circuit.nets:
        pcset = pc.net_pc_set(net_name)
        assert pcset[0] == levels.net_minlevels[net_name]
        assert pcset[-1] == levels.net_levels[net_name]


@settings(max_examples=40, **COMMON)
@given(circuit=circuits())
def test_pathtrace_invariants(circuit):
    levels = levelize(circuit)
    alignment = path_tracing_alignment(circuit, levels)
    # Right shifts only; no width expansion; alignment <= minlevel.
    for _g, _n, shift in alignment.iter_input_shifts():
        assert shift >= 0
    assert alignment.max_width() <= levels.depth + 1
    for net_name in circuit.nets:
        assert alignment.stored_align(net_name) <= \
            levels.net_minlevels[net_name]


@settings(max_examples=40, **COMMON)
@given(circuit=circuits())
def test_cyclebreak_validates(circuit):
    alignment = cycle_breaking_alignment(circuit)
    alignment.validate()
    # Retained shifts bounded by the graph's cycle rank is NOT a paper
    # claim; but retained shifts never exceed total pins.
    pins = sum(g.fan_in for g in circuit.gates.values())
    assert 0 <= alignment.retained_shifts() <= pins


@settings(max_examples=60, **COMMON)
@given(circuit=circuits())
def test_bench_roundtrip(circuit):
    text = write_bench(circuit)
    back = parse_bench(text, circuit.name)
    assert back.inputs == circuit.inputs
    assert set(back.outputs) == set(circuit.outputs)
    assert len(back.gates) == len(circuit.gates)
    assert write_bench(back) == text


@settings(max_examples=100, deadline=None)
@given(field=st.integers(0, (1 << 12) - 1))
def test_field_classification_matches_change_list(field):
    width = 12
    bits = [(field >> t) & 1 for t in range(width)]
    changes = [(0, bits[0])]
    for t, value in enumerate(bits):
        if value != changes[-1][1]:
            changes.append((t, value))
    assert classify_field(field, width) is classify_changes(changes)


@settings(max_examples=100, deadline=None)
@given(rows=st.lists(
    st.lists(st.integers(0, 1), min_size=3, max_size=3),
    min_size=1, max_size=8,
))
def test_pack_unpack_roundtrip(rows):
    words = pack_lanes(rows)
    assert unpack_lanes(words, len(rows)) == rows


@settings(max_examples=25, **COMMON)
@given(data=circuit_with_vectors(num_vectors=3))
def test_parallel_field_bits_satisfy_recurrence(data):
    """Bit t of every field equals f(input bits t-1) — the §3 semantics."""
    from repro.logic import eval_gate

    circuit, initial, vectors = data
    sim = ParallelSimulator(circuit, word_width=32)
    sim.reset(initial)
    depth = sim.depth
    for vector in vectors:
        sim.apply_vector(vector)
        fields = sim._state_words()
        for gate in circuit.gates.values():
            if gate.fan_in == 0:
                continue
            out_bits = fields[gate.output][0]
            for t in range(1, depth + 1):
                inputs_prev = [
                    (fields[i][0] >> (t - 1)) & 1 for i in gate.inputs
                ]
                expected = eval_gate(gate.gate_type, inputs_prev) & 1
                assert (out_bits >> t) & 1 == expected


@settings(max_examples=30, **COMMON)
@given(circuit=circuits())
def test_prune_preserves_outputs(circuit):
    from repro.eventsim.zerodelay import steady_state
    from repro.netlist.transform import prune_dead_logic

    pruned = prune_dead_logic(circuit)
    vector = [1] * len(circuit.inputs)
    full = steady_state(circuit, vector)
    slim = steady_state(pruned, vector)
    for net_name in circuit.outputs:
        assert slim[net_name] == full[net_name]


@settings(max_examples=30, **COMMON)
@given(data=circuit_with_vectors(num_vectors=3))
def test_multidelay_unit_case_matches(data):
    from repro.eventsim.multidelay import MultiDelaySimulator

    circuit, initial, vectors = data
    reference = EventDrivenSimulator(circuit)
    multi = MultiDelaySimulator(circuit, delays=1)
    reference.reset(initial)
    multi.reset(initial)
    for vector in vectors:
        assert reference.apply_vector(vector, record=True) == \
            multi.apply_vector(vector, record=True)


@settings(max_examples=30, **COMMON)
@given(data=circuit_with_vectors(num_vectors=3))
def test_activity_identical_across_engines(data):
    from repro.activity import collect_activity

    circuit, initial, vectors = data
    reports = []
    for simulator in (
        EventDrivenSimulator(circuit),
        PCSetSimulator(circuit),
        ParallelSimulator(circuit, word_width=32),
    ):
        report = collect_activity(simulator, vectors, initial=initial)
        reports.append((report.toggles, report.functional))
    assert reports[0] == reports[1] == reports[2]


@settings(max_examples=15, **COMMON)
@given(data=circuit_with_vectors(num_vectors=4))
def test_parallel_fault_sim_matches_serial(data):
    from repro.faults.model import full_fault_list
    from repro.faults.simulator import (
        run_fault_simulation,
        serial_fault_simulation,
    )

    circuit, initial, vectors = data
    if not circuit.outputs:
        return
    faults = full_fault_list(circuit)[:14]  # bound the work
    serial = serial_fault_simulation(
        circuit, vectors, faults, initial=initial
    )
    parallel = run_fault_simulation(
        circuit, vectors, faults, word_width=16, initial=initial
    )
    assert serial.detected == parallel.detected
    assert set(serial.undetected) == set(parallel.undetected)
