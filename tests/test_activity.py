"""Tests for switching-activity analysis."""

import pytest

from repro.activity import ActivityCollector, collect_activity
from repro.errors import SimulationError
from repro.eventsim.simulator import EventDrivenSimulator
from repro.harness.vectors import vectors_for
from repro.netlist.builder import CircuitBuilder
from repro.parallel.simulator import ParallelSimulator
from repro.pcset.simulator import PCSetSimulator


def mux_with_hazard():
    b = CircuitBuilder("mux")
    a, bb, s = b.inputs("A", "B", "S")
    sn = b.not_("SN", s)
    b.outputs(b.or_("OUT", b.and_("P", a, s), b.and_("Q", bb, sn)))
    return b.build()


class TestCollector:
    def test_counts_transitions_and_functional(self):
        collector = ActivityCollector()
        collector.add_vector({
            "X": [(0, 0), (1, 1), (3, 0)],   # 2 toggles, functional 0
            "Y": [(0, 0), (2, 1)],           # 1 toggle, functional 1
        })
        report = collector.report()
        assert report.toggles == {"X": 2, "Y": 1}
        assert report.functional == {"X": 0, "Y": 1}
        assert report.glitch_toggles("X") == 2
        assert report.glitch_toggles("Y") == 0
        assert report.total_toggles() == 3
        assert report.total_glitch_toggles() == 2
        assert "3 toggles" in repr(report)

    def test_accumulates_over_vectors(self):
        collector = ActivityCollector()
        for _ in range(4):
            collector.add_vector({"X": [(0, 0), (1, 1)]})
        report = collector.report()
        assert report.toggles["X"] == 4
        assert report.activity_factor("X") == pytest.approx(1.0)

    def test_empty_report_rejected(self):
        with pytest.raises(SimulationError, match="no vectors"):
            ActivityCollector().report()

    def test_weighted_activity(self):
        collector = ActivityCollector()
        collector.add_vector({
            "X": [(0, 0), (1, 1)],
            "Y": [(0, 0), (1, 1), (2, 0)],
        })
        report = collector.report()
        assert report.weighted_activity() == 3.0
        assert report.weighted_activity({"X": 10.0}) == 10.0 + 2.0

    def test_hottest_ranking(self):
        collector = ActivityCollector()
        collector.add_vector({
            "A": [(0, 0), (1, 1), (2, 0), (3, 1)],
            "B": [(0, 0), (1, 1)],
            "C": [(0, 0)],
        })
        report = collector.report()
        assert report.hottest(2) == [("A", 3), ("B", 1)]


class TestEndToEnd:
    def test_glitch_excess_detected_on_hazardous_mux(self):
        circuit = mux_with_hazard()
        sim = EventDrivenSimulator(circuit)
        # Sweep A=B=1 with S toggling: OUT glitches each time S falls.
        vectors = [[1, 1, s % 2] for s in range(10)]
        report = collect_activity(sim, vectors, initial=[1, 1, 0])
        assert report.total_glitch_toggles() > 0
        assert report.glitch_toggles("OUT") > 0

    def test_all_simulators_report_identical_activity(self):
        circuit = mux_with_hazard()
        vectors = vectors_for(circuit, 20, seed=4)
        reports = []
        for simulator in (
            EventDrivenSimulator(circuit),
            PCSetSimulator(circuit),
            ParallelSimulator(circuit, optimization="pathtrace",
                              word_width=8),
        ):
            report = collect_activity(simulator, vectors,
                                      initial=[0, 0, 0])
            reports.append((report.toggles, report.functional))
        assert reports[0] == reports[1] == reports[2]

    def test_zero_delay_bound_holds(self, small_random_circuit):
        sim = EventDrivenSimulator(small_random_circuit)
        vectors = vectors_for(small_random_circuit, 15, seed=5)
        report = collect_activity(
            sim, vectors,
            initial=[0] * len(small_random_circuit.inputs),
        )
        for net_name in report.toggles:
            assert report.toggles[net_name] >= report.functional[net_name]
