"""Tests for the alignment-aware code generator (§4, Figs. 10/18)."""

import pytest

from repro.codegen.program import Bin, Const, Un, Var
from repro.eventsim.simulator import EventDrivenSimulator
from repro.harness.vectors import vectors_for
from repro.netlist.builder import CircuitBuilder
from repro.netlist.random_circuits import layered_circuit, random_dag_circuit
from repro.parallel.aligned_codegen import (
    _extract_word,
    generate_aligned_program,
)
from repro.parallel.bitfields import FieldSpec, WordClass
from repro.parallel.cyclebreak import cycle_breaking_alignment
from repro.parallel.pathtrace import path_tracing_alignment
from repro.parallel.simulator import ParallelSimulator


class TestFig10Code:
    def test_shiftless_gate_statements(self, fig4_circuit):
        alignment = path_tracing_alignment(fig4_circuit)
        program, layout = generate_aligned_program(
            fig4_circuit, alignment, word_width=8
        )
        source = program.python_source()
        # Fig. 10: "D = A & B; E = D & C;" — no shifts, no ORs.
        assert "D = (A & B) & MASK" in source
        assert "E = (D & C) & MASK" in source
        assert program.stats().shifts == \
            source.count("sar") * 0 + program.stats().shifts
        # Only the PI init uses shifts (previous-value recovery).
        body_only = program.body
        from repro.codegen.program import Assign
        for stmt in body_only:
            if isinstance(stmt, Assign):
                assert ">>" not in repr(stmt.expr) or "sar" in repr(stmt.expr)

    def test_no_internal_net_initialization(self, fig4_circuit):
        # §4: "initialization code is not required for any nets other
        # than primary inputs" (without trimming).
        alignment = path_tracing_alignment(fig4_circuit)
        program, _ = generate_aligned_program(
            fig4_circuit, alignment, word_width=8
        )
        from repro.codegen.program import Assign

        init_targets = {
            s.dest for s in program.init if isinstance(s, Assign)
        }
        assert init_targets <= {"A", "B", "C", "t_old"}

    def test_negative_alignment_pi_init(self, fig4_circuit):
        alignment = path_tracing_alignment(fig4_circuit)
        program, layout = generate_aligned_program(
            fig4_circuit, alignment, word_width=8
        )
        source = program.python_source()
        # A is aligned at -1: bit 0 keeps the previous value, bits >= 1
        # get the new value.
        assert "t_old" in source
        assert "(t_old & 1) | ((-V[0]) & MASK) << 1" in source.replace(
            "((((", "(("
        ) or "(t_old & 1)" in source


class TestExtractWord:
    def spec(self, num_words=3, alignment=0):
        words = [f"N_{j}" for j in range(num_words)]
        if num_words == 1:
            words = ["N"]
        return FieldSpec("N", alignment, num_words * 8 - 2, num_words,
                         words, [WordClass.ACTIVE] * num_words)

    def test_word_aligned_is_free(self):
        expr = _extract_word(self.spec(), 8, 8)
        assert isinstance(expr, Var) and expr.name == "N_1"

    def test_in_range_straddle(self):
        expr = _extract_word(self.spec(), 3, 8)
        # (N_0 >> 3) | (N_1 << 5)
        assert expr.op == "|"
        assert expr.a.op == ">>" and expr.a.b.value == 3
        assert expr.b.op == "<<" and expr.b.b.value == 5

    def test_top_straddle_uses_sar(self):
        expr = _extract_word(self.spec(), 2 * 8 + 3, 8)
        assert expr.op == "sar"
        assert expr.a.name == "N_2"
        assert expr.b.value == 3

    def test_above_field_replicates_msb(self):
        expr = _extract_word(self.spec(), 5 * 8, 8)
        assert expr.op == "sar" and expr.b.value == 7
        expr2 = _extract_word(self.spec(), 5 * 8 + 4, 8)
        assert expr2.op == "sar" and expr2.b.value == 7

    def test_below_field_replicates_bit0(self):
        expr = _extract_word(self.spec(), -16, 8)
        assert isinstance(expr, Un) and expr.op == "-"
        expr2 = _extract_word(self.spec(), -9, 8)
        assert isinstance(expr2, Un)

    def test_partial_below(self):
        expr = _extract_word(self.spec(), -3, 8)
        # (fill >> 3) | (N_0 << 5)
        assert expr.op == "|"
        assert isinstance(expr.a.a, Un)
        assert expr.b.a.name == "N_0"


@pytest.mark.parametrize("algorithm", ["pathtrace", "cyclebreak"])
@pytest.mark.parametrize("word_width", [8, 16, 32])
class TestAlignedSimulation:
    def test_matches_event_driven(self, algorithm, word_width):
        for seed in range(4):
            circuit = random_dag_circuit(
                seed + 20, num_inputs=4, num_gates=20
            )
            reference = EventDrivenSimulator(circuit)
            sim = ParallelSimulator(
                circuit, optimization=algorithm, word_width=word_width
            )
            zeros = [0] * len(circuit.inputs)
            reference.reset(zeros)
            sim.reset(zeros)
            for vector in vectors_for(circuit, 12, seed=seed):
                assert reference.apply_vector(vector, record=True) == \
                    sim.apply_vector_history(vector), (seed, algorithm)


class TestAlignedTrimming:
    def test_combined_matches_reference_deep(self):
        circuit = layered_circuit(
            7, num_inputs=5, num_gates=60, depth=40, num_outputs=3
        )
        reference = EventDrivenSimulator(circuit)
        sim = ParallelSimulator(
            circuit, optimization="pathtrace+trim", word_width=16
        )
        zeros = [0] * 5
        reference.reset(zeros)
        sim.reset(zeros)
        for vector in vectors_for(circuit, 12, seed=1):
            assert reference.apply_vector(vector, record=True) == \
                sim.apply_vector_history(vector)

    def test_trimming_reinstates_low_word_init(self):
        # A deep buffer chain ANDed with a primary input: path tracing
        # drags the chain to negative alignments, so the chain nets'
        # low-order words sit entirely below their minlevels — exactly
        # the case §5 says needs its initialization reinstated.
        b = CircuitBuilder("chainmix")
        a, side = b.inputs("A", "SIDE")
        net = a
        for i in range(20):
            net = b.not_(f"C{i}", net)
        b.outputs(b.and_("OUT", net, side))
        circuit = b.build()
        alignment = path_tracing_alignment(circuit)
        plain, _ = generate_aligned_program(
            circuit, alignment, word_width=8, trimming=False
        )
        trimmed, _ = generate_aligned_program(
            circuit, alignment, word_width=8, trimming=True
        )
        # More init statements (re-introduced fills), fewer total ops.
        assert len(trimmed.init) > len(plain.init)
        assert trimmed.stats().total_ops < plain.stats().total_ops

        # And the trimmed program still simulates correctly.
        reference = EventDrivenSimulator(circuit)
        sim = ParallelSimulator(
            circuit, optimization="pathtrace+trim", word_width=8
        )
        reference.reset([0, 0])
        sim.reset([0, 0])
        for vector in ([1, 0], [1, 1], [0, 1], [0, 0], [1, 1]):
            assert reference.apply_vector(vector, record=True) == \
                sim.apply_vector_history(vector)


class TestOutputModes:
    def test_bits_mode_clamps_below_alignment(self, fig4_circuit):
        alignment = path_tracing_alignment(fig4_circuit)
        program, _ = generate_aligned_program(
            fig4_circuit, alignment, word_width=8, output_mode="bits"
        )
        labels = program.output_labels()
        assert labels == [("E", 0), ("E", 1), ("E", 2)]

    def test_invalid_mode(self, fig4_circuit):
        from repro.errors import CodegenError

        alignment = path_tracing_alignment(fig4_circuit)
        with pytest.raises(CodegenError, match="output mode"):
            generate_aligned_program(
                fig4_circuit, alignment, output_mode="json"
            )
